"""Dataflow target specifiers.

In an EDGE ISA, instructions name their *consumers*, not their sources
(Section 2.2).  A nine-bit target field holds a seven-bit destination slot
plus two bits selecting which operand of the consumer is being delivered:
the left operand, the right operand, or the predicate.

We additionally use the fourth encoding of the two type bits to address a
*write-queue slot*: results whose consumer is one of the block's 32 register
write instructions (which live in the header chunk, not the body) are sent to
write slot ``W[n]``.  The prototype's actual header-target encoding differs
in bit placement but is isomorphic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class OperandKind(enum.Enum):
    """Which input of the consuming instruction a target feeds."""

    LEFT = 0
    RIGHT = 1
    PRED = 2
    WRITE = 3  # destination is a write-queue slot, not a body instruction

    @property
    def letter(self) -> str:
        return {"LEFT": "l", "RIGHT": "r", "PRED": "p", "WRITE": "w"}[self.name]


@dataclass(frozen=True, order=True)
class Target:
    """One nine-bit target specifier: (slot, operand kind).

    ``slot`` indexes the block's body instructions (0..127) for LEFT / RIGHT
    / PRED kinds, or the write queue (0..31) for WRITE kind.
    """

    slot: int
    kind: OperandKind

    MAX_SLOT = 127

    def __post_init__(self) -> None:
        limit = 31 if self.kind is OperandKind.WRITE else self.MAX_SLOT
        if not 0 <= self.slot <= limit:
            raise ValueError(f"target slot {self.slot} out of range for {self.kind}")

    def encode(self) -> int:
        """Pack into the nine-bit field: type in bits [8:7], slot in [6:0]."""
        return (self.kind.value << 7) | self.slot

    @classmethod
    def decode(cls, bits: int) -> "Target":
        return cls(bits & 0x7F, OperandKind((bits >> 7) & 0x3))

    def __str__(self) -> str:
        if self.kind is OperandKind.WRITE:
            return f"W[{self.slot}]"
        return f"N[{self.slot},{self.kind.letter.upper()}]"


#: encoding of "no target" — slot 127 left is reserved as the null target
#: because instruction 127 cannot be targeted on its left operand.  We use an
#: explicit validity bit in the encoders instead wherever a format has room,
#: but instruction words have none, so this sentinel is the wire encoding.
NO_TARGET_BITS = 0x1FF


def encode_optional(target) -> int:
    """Encode ``target`` or the no-target sentinel if it is ``None``."""
    return NO_TARGET_BITS if target is None else target.encode()


def decode_optional(bits: int):
    """Inverse of :func:`encode_optional`."""
    return None if bits == NO_TARGET_BITS else Target.decode(bits)

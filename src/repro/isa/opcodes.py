"""Opcode space of the TRIPS EDGE ISA.

The TRIPS ISA (Figure 1 of the paper) encodes instructions in 32-bit words
using a small number of formats.  Each opcode carries static properties the
rest of the system needs:

* which **format** it is encoded in (G, I, L, S, B, C),
* how many **dataflow operands** it consumes (left / right / none),
* its **execution latency** in cycles on an execution tile, and
* its **class** (arithmetic, test, memory, branch, ...), which the
  microarchitecture uses for routing results (e.g. branches go to the
  global tile, stores go to data tiles).

All arithmetic is performed on 64-bit two's-complement integers or IEEE
doubles; sub-word loads/stores truncate/extend exactly as a 64-bit machine
would.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Format(enum.Enum):
    """Instruction encoding formats from Figure 1."""

    G = "G"  # general: OPCODE PR XOP T1 T0
    I = "I"  # immediate: OPCODE PR IMM T0
    L = "L"  # load: OPCODE PR LSID IMM T0
    S = "S"  # store: OPCODE PR LSID IMM
    B = "B"  # branch: OPCODE PR EXIT OFFSET
    C = "C"  # constant: OPCODE CONST T0
    # Read (R) and write (W) instructions live in the block header chunk and
    # are modelled by :class:`repro.isa.block.ReadInstruction` /
    # :class:`repro.isa.block.WriteInstruction` rather than by opcodes.


class OpClass(enum.Enum):
    """Coarse functional class of an opcode."""

    ARITH = "arith"          # integer ALU
    FP = "fp"                # floating point unit
    TEST = "test"            # produces a 0/1 predicate value
    MOVE = "move"            # fanout / data movement
    NULLIFY = "null"         # produces null tokens (Section 4.2)
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"


@dataclass(frozen=True)
class OpInfo:
    """Static properties of one opcode."""

    mnemonic: str
    format: Format
    opclass: OpClass
    latency: int
    num_operands: int          # dataflow operands (not counting predicate)
    pipelined: bool = True


class Opcode(enum.Enum):
    """All opcodes understood by the assembler, compiler and simulator.

    The value of each member is its :class:`OpInfo`.  Integer encodings are
    assigned deterministically by declaration order (see :data:`ENCODING`).
    """

    # --- integer arithmetic (G format: two operands) ---------------------
    ADD = OpInfo("add", Format.G, OpClass.ARITH, 1, 2)
    SUB = OpInfo("sub", Format.G, OpClass.ARITH, 1, 2)
    MUL = OpInfo("mul", Format.G, OpClass.ARITH, 3, 2)
    DIVS = OpInfo("divs", Format.G, OpClass.ARITH, 24, 2, pipelined=False)
    AND = OpInfo("and", Format.G, OpClass.ARITH, 1, 2)
    OR = OpInfo("or", Format.G, OpClass.ARITH, 1, 2)
    XOR = OpInfo("xor", Format.G, OpClass.ARITH, 1, 2)
    SLL = OpInfo("sll", Format.G, OpClass.ARITH, 1, 2)
    SRL = OpInfo("srl", Format.G, OpClass.ARITH, 1, 2)
    SRA = OpInfo("sra", Format.G, OpClass.ARITH, 1, 2)

    # --- tests: produce 0/1, typically routed to predicate fields --------
    TEQ = OpInfo("teq", Format.G, OpClass.TEST, 1, 2)
    TNE = OpInfo("tne", Format.G, OpClass.TEST, 1, 2)
    TLT = OpInfo("tlt", Format.G, OpClass.TEST, 1, 2)
    TLE = OpInfo("tle", Format.G, OpClass.TEST, 1, 2)
    TGT = OpInfo("tgt", Format.G, OpClass.TEST, 1, 2)
    TGE = OpInfo("tge", Format.G, OpClass.TEST, 1, 2)
    TLTU = OpInfo("tltu", Format.G, OpClass.TEST, 1, 2)
    TGEU = OpInfo("tgeu", Format.G, OpClass.TEST, 1, 2)

    # --- floating point (operands are IEEE-754 doubles in 64-bit regs) ---
    FADD = OpInfo("fadd", Format.G, OpClass.FP, 4, 2)
    FSUB = OpInfo("fsub", Format.G, OpClass.FP, 4, 2)
    FMUL = OpInfo("fmul", Format.G, OpClass.FP, 4, 2)
    FDIV = OpInfo("fdiv", Format.G, OpClass.FP, 12, 2)
    FTOI = OpInfo("ftoi", Format.G, OpClass.FP, 2, 1)
    ITOF = OpInfo("itof", Format.G, OpClass.FP, 2, 1)
    FEQ = OpInfo("feq", Format.G, OpClass.FP, 2, 2)
    FNE = OpInfo("fne", Format.G, OpClass.FP, 2, 2)
    FLT = OpInfo("flt", Format.G, OpClass.FP, 2, 2)
    FLE = OpInfo("fle", Format.G, OpClass.FP, 2, 2)
    FGT = OpInfo("fgt", Format.G, OpClass.FP, 2, 2)
    FGE = OpInfo("fge", Format.G, OpClass.FP, 2, 2)

    # --- single-operand moves / nullification ----------------------------
    MOV = OpInfo("mov", Format.G, OpClass.MOVE, 1, 1)
    NOT = OpInfo("not", Format.G, OpClass.ARITH, 1, 1)
    NULL = OpInfo("null", Format.G, OpClass.NULLIFY, 1, 0)

    # --- immediate forms (I format: one operand + signed 14-bit imm) -----
    ADDI = OpInfo("addi", Format.I, OpClass.ARITH, 1, 1)
    SUBI = OpInfo("subi", Format.I, OpClass.ARITH, 1, 1)
    MULI = OpInfo("muli", Format.I, OpClass.ARITH, 3, 1)
    ANDI = OpInfo("andi", Format.I, OpClass.ARITH, 1, 1)
    ORI = OpInfo("ori", Format.I, OpClass.ARITH, 1, 1)
    XORI = OpInfo("xori", Format.I, OpClass.ARITH, 1, 1)
    SLLI = OpInfo("slli", Format.I, OpClass.ARITH, 1, 1)
    SRLI = OpInfo("srli", Format.I, OpClass.ARITH, 1, 1)
    SRAI = OpInfo("srai", Format.I, OpClass.ARITH, 1, 1)
    TEQI = OpInfo("teqi", Format.I, OpClass.TEST, 1, 1)
    TNEI = OpInfo("tnei", Format.I, OpClass.TEST, 1, 1)
    TLTI = OpInfo("tlti", Format.I, OpClass.TEST, 1, 1)
    TGEI = OpInfo("tgei", Format.I, OpClass.TEST, 1, 1)
    TGTI = OpInfo("tgti", Format.I, OpClass.TEST, 1, 1)
    TLEI = OpInfo("tlei", Format.I, OpClass.TEST, 1, 1)

    # --- constants (C format: 16-bit constant, no operands) --------------
    MOVI = OpInfo("movi", Format.C, OpClass.MOVE, 1, 0)
    # "movih" shifts the current value left 16 and ors in the constant,
    # allowing wide constants to be synthesised in 16-bit pieces.
    MOVIH = OpInfo("movih", Format.C, OpClass.MOVE, 1, 1)

    # --- memory (address = left operand + IMM; store data = right) -------
    LB = OpInfo("lb", Format.L, OpClass.LOAD, 2, 1)
    LBU = OpInfo("lbu", Format.L, OpClass.LOAD, 2, 1)
    LH = OpInfo("lh", Format.L, OpClass.LOAD, 2, 1)
    LHU = OpInfo("lhu", Format.L, OpClass.LOAD, 2, 1)
    LW = OpInfo("lw", Format.L, OpClass.LOAD, 2, 1)
    LWU = OpInfo("lwu", Format.L, OpClass.LOAD, 2, 1)
    LD = OpInfo("ld", Format.L, OpClass.LOAD, 2, 1)
    SB = OpInfo("sb", Format.S, OpClass.STORE, 1, 2)
    SH = OpInfo("sh", Format.S, OpClass.STORE, 1, 2)
    SW = OpInfo("sw", Format.S, OpClass.STORE, 1, 2)
    SD = OpInfo("sd", Format.S, OpClass.STORE, 1, 2)

    # --- branches (exactly one fires per block) ---------------------------
    BRO = OpInfo("bro", Format.B, OpClass.BRANCH, 1, 0)    # pc-relative
    CALLO = OpInfo("callo", Format.B, OpClass.BRANCH, 1, 0)
    BR = OpInfo("br", Format.B, OpClass.BRANCH, 1, 1)      # target = operand
    RET = OpInfo("ret", Format.B, OpClass.BRANCH, 1, 1)    # target = operand
    HALT = OpInfo("halt", Format.B, OpClass.BRANCH, 1, 0)  # stop simulation

    # Static properties (info, mnemonic, opclass, latency, num_operands,
    # is_load/is_store/is_memory/is_branch, uses_fpu, format) are attached
    # as plain member attributes below: Enum's ``.value`` goes through a
    # DynamicClassAttribute descriptor on every access, which shows up in
    # the simulator's station-wakeup and issue loops.


# Flatten each member's OpInfo onto the member itself.  ``Opcode.ADD.latency``
# is then a single instance-dict lookup instead of two descriptor calls.
for _op in Opcode:
    _info = _op.value
    _op.info = _info
    _op.mnemonic = _info.mnemonic
    _op.format = _info.format
    _op.opclass = _info.opclass
    _op.latency = _info.latency
    _op.num_operands = _info.num_operands
    _op.pipelined = _info.pipelined
    _op.is_load = _info.opclass is OpClass.LOAD
    _op.is_store = _info.opclass is OpClass.STORE
    _op.is_memory = _op.is_load or _op.is_store
    _op.is_branch = _info.opclass is OpClass.BRANCH
    _op.uses_fpu = _info.opclass is OpClass.FP
del _op, _info


#: opcode -> 7-bit binary encoding, by declaration order.
ENCODING: dict = {op: i for i, op in enumerate(Opcode)}
#: 7-bit binary encoding -> opcode.
DECODING: dict = {i: op for op, i in ENCODING.items()}
#: mnemonic -> opcode, for the assembler.
BY_MNEMONIC: dict = {op.mnemonic: op for op in Opcode}

#: width of a memory access in bytes, for load/store opcodes.
ACCESS_SIZE = {
    Opcode.LB: 1, Opcode.LBU: 1, Opcode.SB: 1,
    Opcode.LH: 2, Opcode.LHU: 2, Opcode.SH: 2,
    Opcode.LW: 4, Opcode.LWU: 4, Opcode.SW: 4,
    Opcode.LD: 8, Opcode.SD: 8,
}

#: loads that sign-extend their result.
SIGNED_LOADS = {Opcode.LB, Opcode.LH, Opcode.LW, Opcode.LD}

assert len(ENCODING) <= 128, "opcode field is 7 bits wide"

"""32-bit instruction word formats (Figure 1) and their codecs.

Every body instruction occupies one 32-bit word.  Field layout by format::

    G: OPCODE[31:25] PR[24:23] XOP[22:18]  T1[17:9]    T0[8:0]
    I: OPCODE[31:25] PR[24:23] IMM[22:9]               T0[8:0]
    L: OPCODE[31:25] PR[24:23] LSID[22:18] IMM[17:9]   T0[8:0]
    S: OPCODE[31:25] PR[24:23] LSID[22:18] IMM[17:9]   0[8:0]
    B: OPCODE[31:25] PR[24:23] EXIT[22:20] OFFSET[19:0]
    C: OPCODE[31:25] CONST[24:9]                       T0[8:0]

``PR`` is the predicate field: 0 = unpredicated, 2 = predicated on false,
3 = predicated on true (1 is reserved).  Immediates and branch offsets are
signed two's complement.  Branch offsets are in bytes relative to the base
address of the containing block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .opcodes import BY_MNEMONIC, DECODING, ENCODING, Format, Opcode
from .targets import NO_TARGET_BITS, Target, decode_optional, encode_optional

# Field widths.
IMM_I_BITS = 14     # I-format immediate
IMM_LS_BITS = 9     # load/store immediate
OFFSET_BITS = 20    # branch offset
CONST_BITS = 16     # C-format constant
LSID_BITS = 5
EXIT_BITS = 3

# PR field values.
PR_NONE = 0
PR_FALSE = 2
PR_TRUE = 3


class EncodingError(ValueError):
    """A field value does not fit its format, or a word is malformed."""


def _signed_fits(value: int, bits: int) -> bool:
    return -(1 << (bits - 1)) <= value < (1 << (bits - 1))


def _to_unsigned(value: int, bits: int) -> int:
    return value & ((1 << bits) - 1)


def _to_signed(value: int, bits: int) -> int:
    sign = 1 << (bits - 1)
    return (value & (sign - 1)) - (value & sign)


@dataclass
class Instruction:
    """One decoded TRIPS body instruction.

    Only the fields meaningful for ``opcode.format`` are used; the others
    stay at their defaults.  ``pred`` is ``None`` for unpredicated
    instructions, or ``True``/``False`` for instructions that fire when the
    arriving predicate is 1/0 respectively.
    """

    opcode: Opcode
    pred: Optional[bool] = None
    targets: List[Target] = field(default_factory=list)
    imm: int = 0          # I and L/S formats
    lsid: int = 0         # L/S formats
    exit_no: int = 0      # B format
    offset: int = 0       # B format (byte offset from block base)
    const: int = 0        # C format (signed 16-bit)

    def __post_init__(self) -> None:
        self.validate()

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`EncodingError` if any field is out of range."""
        fmt = self.opcode.format
        max_targets = {
            Format.G: 2, Format.I: 1, Format.L: 1,
            Format.S: 0, Format.B: 1, Format.C: 1,
        }[fmt]
        # Branch instructions deliver their next-block address to the GT via
        # the OPN rather than via an encoded target; CALLO additionally may
        # target a write slot with the return address, which is why B allows
        # one target.
        if len(self.targets) > max_targets:
            raise EncodingError(
                f"{self.opcode.mnemonic}: {len(self.targets)} targets, "
                f"format {fmt.value} allows {max_targets}")
        if fmt is Format.C and self.pred is not None:
            raise EncodingError("constant instructions cannot be predicated")
        if fmt is Format.I and not _signed_fits(self.imm, IMM_I_BITS):
            raise EncodingError(f"immediate {self.imm} exceeds {IMM_I_BITS} bits")
        if fmt in (Format.L, Format.S):
            if not _signed_fits(self.imm, IMM_LS_BITS):
                raise EncodingError(f"mem immediate {self.imm} exceeds {IMM_LS_BITS} bits")
            if not 0 <= self.lsid < 32:
                raise EncodingError(f"LSID {self.lsid} out of range")
        if fmt is Format.B:
            if not 0 <= self.exit_no < 8:
                raise EncodingError(f"exit number {self.exit_no} out of range")
            if not _signed_fits(self.offset, OFFSET_BITS):
                raise EncodingError(f"branch offset {self.offset} exceeds {OFFSET_BITS} bits")
        if fmt is Format.C and not _signed_fits(self.const, CONST_BITS):
            raise EncodingError(f"constant {self.const} exceeds {CONST_BITS} bits")

    # ------------------------------------------------------------------
    @property
    def pr_bits(self) -> int:
        if self.pred is None:
            return PR_NONE
        return PR_TRUE if self.pred else PR_FALSE

    def _target(self, index: int) -> Optional[Target]:
        return self.targets[index] if index < len(self.targets) else None

    def encode(self) -> int:
        """Pack this instruction into its 32-bit word."""
        self.validate()
        op = ENCODING[self.opcode] << 25
        fmt = self.opcode.format
        pr = self.pr_bits << 23
        if fmt is Format.G:
            t0 = encode_optional(self._target(0))
            t1 = encode_optional(self._target(1))
            return op | pr | (t1 << 9) | t0
        if fmt is Format.I:
            return op | pr | (_to_unsigned(self.imm, IMM_I_BITS) << 9) \
                | encode_optional(self._target(0))
        if fmt is Format.L:
            return op | pr | (self.lsid << 18) \
                | (_to_unsigned(self.imm, IMM_LS_BITS) << 9) \
                | encode_optional(self._target(0))
        if fmt is Format.S:
            return op | pr | (self.lsid << 18) \
                | (_to_unsigned(self.imm, IMM_LS_BITS) << 9)
        if fmt is Format.B:
            # B-format has no room for a target word; CALLO's optional write
            # target is packed into the low bits of OFFSET's spare space.
            # OFFSET occupies [19:0]; the optional write-slot target uses a
            # side table in the block header in real TRIPS.  We keep the
            # offset full-width and encode CALLO's link target (always a
            # write slot, 0..31) plus a validity bit in bits [19:14] of the
            # EXIT-extended region... which do not exist.  Instead, CALLO
            # link targets are restricted to offsets that fit 14 bits and
            # the target is stored in bits [19:14] shifted form below.
            if self.targets:
                tgt = self.targets[0]
                if tgt.kind.name != "WRITE":
                    raise EncodingError("branch target must be a write slot")
                if not _signed_fits(self.offset, IMM_I_BITS):
                    raise EncodingError("callo offset too wide with link target")
                packed = (1 << 19) | (tgt.slot << 14) \
                    | _to_unsigned(self.offset, IMM_I_BITS)
            else:
                if not _signed_fits(self.offset, OFFSET_BITS - 1):
                    raise EncodingError("branch offset exceeds 19 bits")
                packed = _to_unsigned(self.offset, OFFSET_BITS - 1)
            return op | pr | (self.exit_no << 20) | packed
        if fmt is Format.C:
            return op | (_to_unsigned(self.const, CONST_BITS) << 9) \
                | encode_optional(self._target(0))
        raise EncodingError(f"unknown format {fmt}")  # pragma: no cover

    # ------------------------------------------------------------------
    @classmethod
    def decode(cls, word: int) -> "Instruction":
        """Unpack a 32-bit word back into an :class:`Instruction`."""
        if not 0 <= word < (1 << 32):
            raise EncodingError(f"word {word:#x} is not 32 bits")
        opbits = (word >> 25) & 0x7F
        if opbits not in DECODING:
            raise EncodingError(f"unknown opcode bits {opbits:#x}")
        opcode = DECODING[opbits]
        fmt = opcode.format
        if fmt is Format.C:
            pred = None  # the constant field overlaps PR's bit positions
        else:
            pr = (word >> 23) & 0x3
            if pr == 1:
                raise EncodingError("reserved PR encoding 01")
            pred = None if pr == PR_NONE else (pr == PR_TRUE)
        if fmt is Format.G:
            t0 = decode_optional(word & 0x1FF)
            t1 = decode_optional((word >> 9) & 0x1FF)
            targets = [t for t in (t0, t1) if t is not None]
            return cls(opcode, pred, targets)
        if fmt is Format.I:
            t0 = decode_optional(word & 0x1FF)
            return cls(opcode, pred, [t0] if t0 else [],
                       imm=_to_signed((word >> 9) & 0x3FFF, IMM_I_BITS))
        if fmt is Format.L:
            t0 = decode_optional(word & 0x1FF)
            return cls(opcode, pred, [t0] if t0 else [],
                       imm=_to_signed((word >> 9) & 0x1FF, IMM_LS_BITS),
                       lsid=(word >> 18) & 0x1F)
        if fmt is Format.S:
            return cls(opcode, pred, [],
                       imm=_to_signed((word >> 9) & 0x1FF, IMM_LS_BITS),
                       lsid=(word >> 18) & 0x1F)
        if fmt is Format.B:
            exit_no = (word >> 20) & 0x7
            packed = word & 0xFFFFF
            if packed >> 19:  # link-target form (CALLO)
                slot = (packed >> 14) & 0x1F
                offset = _to_signed(packed & 0x3FFF, IMM_I_BITS)
                from .targets import OperandKind
                return cls(opcode, pred, [Target(slot, OperandKind.WRITE)],
                           exit_no=exit_no, offset=offset)
            return cls(opcode, pred, [], exit_no=exit_no,
                       offset=_to_signed(packed, OFFSET_BITS - 1))
        if fmt is Format.C:
            t0 = decode_optional(word & 0x1FF)
            return cls(opcode, None, [t0] if t0 else [],
                       const=_to_signed((word >> 9) & 0xFFFF, CONST_BITS))
        raise EncodingError(f"unknown format {fmt}")  # pragma: no cover

    # ------------------------------------------------------------------
    def __str__(self) -> str:
        parts = [self.opcode.mnemonic]
        if self.pred is not None:
            parts[0] += "_t" if self.pred else "_f"
        fmt = self.opcode.format
        if fmt is Format.I:
            parts.append(f"#{self.imm}")
        elif fmt in (Format.L, Format.S):
            parts.append(f"L[{self.lsid}]")
            parts.append(f"#{self.imm}")
        elif fmt is Format.B:
            parts.append(f"exit{self.exit_no}")
            parts.append(f"@{self.offset:+d}")
        elif fmt is Format.C:
            parts.append(f"#{self.const}")
        parts.extend(str(t) for t in self.targets)
        return " ".join(parts)


def make(mnemonic: str, **kwargs) -> Instruction:
    """Convenience constructor: ``make("addi", imm=4, targets=[...])``."""
    pred = kwargs.pop("pred", None)
    if mnemonic.endswith("_t"):
        mnemonic, pred = mnemonic[:-2], True
    elif mnemonic.endswith("_f"):
        mnemonic, pred = mnemonic[:-2], False
    if mnemonic not in BY_MNEMONIC:
        raise EncodingError(f"unknown mnemonic {mnemonic!r}")
    return Instruction(BY_MNEMONIC[mnemonic], pred=pred, **kwargs)

"""Functional semantics of TRIPS opcodes, shared by every execution model.

The execution tiles of the cycle simulator, the functional block simulator
and the compiler's constant folder all call :func:`execute` so that results
are bit-identical everywhere.  The arithmetic itself is delegated to
:mod:`repro.tir.semantics`, the single source of truth for 64-bit operator
behaviour.
"""

from __future__ import annotations

from typing import Optional

from ..tir import semantics
from ..tir.ir import MASK64, int_to_bits
from .encoding import Instruction
from .opcodes import OpClass, Opcode

#: TRIPS opcode -> TIR binary operator name.
_BINOP = {
    Opcode.ADD: "add", Opcode.SUB: "sub", Opcode.MUL: "mul",
    Opcode.DIVS: "div", Opcode.AND: "and", Opcode.OR: "or",
    Opcode.XOR: "xor", Opcode.SLL: "shl", Opcode.SRL: "shr",
    Opcode.SRA: "sra",
    Opcode.TEQ: "eq", Opcode.TNE: "ne", Opcode.TLT: "lt",
    Opcode.TLE: "le", Opcode.TGT: "gt", Opcode.TGE: "ge",
    Opcode.TLTU: "ltu", Opcode.TGEU: "geu",
    Opcode.FADD: "fadd", Opcode.FSUB: "fsub", Opcode.FMUL: "fmul",
    Opcode.FDIV: "fdiv",
    Opcode.FEQ: "feq", Opcode.FNE: "fne", Opcode.FLT: "flt",
    Opcode.FLE: "fle", Opcode.FGT: "fgt", Opcode.FGE: "fge",
}

#: TRIPS immediate opcode -> TIR binary operator applied as (left, imm).
_IMMOP = {
    Opcode.ADDI: "add", Opcode.SUBI: "sub", Opcode.MULI: "mul",
    Opcode.ANDI: "and", Opcode.ORI: "or", Opcode.XORI: "xor",
    Opcode.SLLI: "shl", Opcode.SRLI: "shr", Opcode.SRAI: "sra",
    Opcode.TEQI: "eq", Opcode.TNEI: "ne", Opcode.TLTI: "lt",
    Opcode.TGEI: "ge", Opcode.TGTI: "gt", Opcode.TLEI: "le",
}

#: TRIPS unary opcode -> TIR unary operator name.
_UNOP = {Opcode.NOT: "not", Opcode.FTOI: "ftoi", Opcode.ITOF: "itof"}


class AluError(ValueError):
    """An opcode reached the ALU that the ALU cannot evaluate."""


def execute(inst: Instruction, left: Optional[int] = None,
            right: Optional[int] = None) -> int:
    """Compute the result value of a non-memory, non-branch instruction.

    ``left``/``right`` are 64-bit patterns (already known to be non-null
    tokens; nullification is handled by the caller).  Loads, stores and
    branches have side effects and are executed by the tiles, not here.
    """
    op = inst.opcode
    if op in _BINOP:
        return semantics.binop(_BINOP[op], left, right)
    if op in _IMMOP:
        return semantics.binop(_IMMOP[op], left, int_to_bits(inst.imm))
    if op in _UNOP:
        return semantics.unop(_UNOP[op], left)
    if op is Opcode.MOV:
        return left & MASK64
    if op is Opcode.MOVI:
        return int_to_bits(inst.const)
    if op is Opcode.MOVIH:
        return ((left << 16) | (inst.const & 0xFFFF)) & MASK64
    raise AluError(f"ALU cannot execute {op.mnemonic}")


def effective_address(inst: Instruction, left: int) -> int:
    """Address of a load/store: left operand plus the signed immediate."""
    if not inst.opcode.is_memory:
        raise AluError(f"{inst.opcode.mnemonic} has no effective address")
    return (left + inst.imm) & MASK64

"""Program images: TRIPS blocks laid out in memory plus a data segment.

A :class:`Program` is what the assembler and compiler produce and what the
simulators consume: a set of validated blocks at 128-byte-aligned addresses,
initialised data regions, an entry PC, and initial register values.

Branch resolution is by *byte offset from the current block's base address*
(``BRO``/``CALLO``) or by absolute address from an operand (``BR``/``RET``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from .block import CHUNK_BYTES, BlockError, TripsBlock

#: Branching to this address terminates simulation (HALT also terminates).
EXIT_ADDRESS = 0


class ProgramError(ValueError):
    """Malformed program image."""


@dataclass
class Program:
    """An executable TRIPS program."""

    blocks: Dict[int, TripsBlock] = field(default_factory=dict)
    data: Dict[int, bytes] = field(default_factory=dict)
    entry: int = 0
    initial_regs: Dict[int, int] = field(default_factory=dict)
    labels: Dict[str, int] = field(default_factory=dict)

    def add_block(self, address: int, block: TripsBlock) -> None:
        if address % CHUNK_BYTES:
            raise ProgramError(f"block address {address:#x} not 128B-aligned")
        if address in self.blocks:
            raise ProgramError(f"two blocks at {address:#x}")
        block.validate()
        self.blocks[address] = block

    def add_data(self, address: int, payload: bytes) -> None:
        self.data[address] = bytes(payload)

    def block_at(self, address: int) -> TripsBlock:
        try:
            return self.blocks[address]
        except KeyError:
            raise ProgramError(f"no block at address {address:#x}") from None

    def validate(self) -> None:
        for addr, block in self.blocks.items():
            block.validate()
            # Every static branch offset must land on a block or the exit.
            for slot in block.branches():
                inst = block.body[slot]
                if inst.opcode.mnemonic in ("bro", "callo"):
                    tgt = addr + inst.offset
                    if tgt != EXIT_ADDRESS and tgt not in self.blocks:
                        raise ProgramError(
                            f"block {block.name} at {addr:#x}: branch to "
                            f"{tgt:#x} which holds no block")
        if self.entry != EXIT_ADDRESS and self.entry not in self.blocks:
            raise ProgramError(f"entry {self.entry:#x} holds no block")

    # ------------------------------------------------------------------
    def memory_image(self) -> Dict[int, bytes]:
        """All initialised memory: encoded blocks plus data regions."""
        image: Dict[int, bytes] = {}
        for addr, block in sorted(self.blocks.items()):
            image[addr] = block.encode()
        image.update(self.data)
        return image

    def total_code_bytes(self) -> int:
        return sum(b.size_bytes for b in self.blocks.values())

    def static_instruction_count(self) -> int:
        """Total static instructions including header reads/writes."""
        return sum(len(b.body) + len(b.reads) + len(b.writes)
                   for b in self.blocks.values())

    def listing(self) -> str:
        rev = {v: k for k, v in self.labels.items()}
        lines = []
        for addr in sorted(self.blocks):
            label = rev.get(addr, "")
            lines.append(f"{addr:#010x} {label}")
            lines.append(self.blocks[addr].listing())
        return "\n".join(lines)


class ProgramBuilder:
    """Incremental builder that packs blocks contiguously and fixes labels.

    Blocks are appended with symbolic branch targets ("label" strings stored
    on the instruction as ``.label`` attributes by the compiler/assembler);
    :meth:`finish` resolves them to byte offsets.
    """

    def __init__(self, base: int = 0x1000, data_base: int = 0x100000):
        self._base = base
        self._next = base
        self._data_next = data_base
        self.program = Program(entry=base)

    def append(self, block: TripsBlock, label: Optional[str] = None) -> int:
        """Place ``block`` at the next free code address; returns address."""
        addr = self._next
        if label:
            if label in self.program.labels:
                raise ProgramError(f"duplicate label {label!r}")
            self.program.labels[label] = addr
        self._pending_validate(block)
        self.program.blocks[addr] = block
        self._next += block.size_bytes
        return addr

    @staticmethod
    def _pending_validate(block: TripsBlock) -> None:
        # Full validation happens at finish(); here we only need structure
        # sound enough to compute the block size.
        if len(block.body) > 128:
            raise BlockError("block too large")

    def add_data(self, payload: bytes, align: int = 8,
                 at: Optional[int] = None) -> int:
        """Place ``payload`` in the data segment; returns its address.

        ``at`` pins the payload to an exact address (used by the
        assembler's ``.data name @addr`` form so disassembled programs
        re-assemble to the identical memory image regardless of the
        alignment that originally produced the address).
        """
        if at is not None:
            addr = at
            if addr in self.program.data:
                raise ProgramError(f"data at {addr:#x} placed twice")
        else:
            self._data_next = -(-self._data_next // align) * align
            addr = self._data_next
        self.program.data[addr] = bytes(payload)
        self._data_next = max(self._data_next, addr + len(payload))
        return addr

    def finish(self) -> Program:
        """Resolve symbolic branch targets, validate, and return the program."""
        for addr, block in self.program.blocks.items():
            for slot in block.branches():
                inst = block.body[slot]
                label = getattr(inst, "label", None)
                if label is None:
                    continue
                if label == "@exit":
                    target = EXIT_ADDRESS
                elif label in self.program.labels:
                    target = self.program.labels[label]
                else:
                    raise ProgramError(f"undefined label {label!r}")
                inst.offset = target - addr
                inst.validate()
        self.program.validate()
        return self.program

"""The TRIPS EDGE instruction set architecture.

Public API::

    from repro.isa import (
        Opcode, Format, OpClass, Instruction, Target, OperandKind,
        TripsBlock, ReadInstruction, WriteInstruction, Program,
        ProgramBuilder, make,
    )
"""

from .opcodes import ACCESS_SIZE, BY_MNEMONIC, Format, OpClass, Opcode
from .targets import OperandKind, Target
from .encoding import EncodingError, Instruction, make
from .block import (
    BlockError,
    CHUNK_BYTES,
    MAX_BODY_INSTS,
    MAX_MEM_OPS,
    MAX_READS,
    MAX_WRITES,
    NUM_ARCH_REGS,
    NUM_REG_BANKS,
    SLOTS_PER_BANK,
    ReadInstruction,
    TripsBlock,
    WriteInstruction,
    reg_bank,
)
from .program import EXIT_ADDRESS, Program, ProgramBuilder, ProgramError

__all__ = [
    "ACCESS_SIZE", "BY_MNEMONIC", "Format", "OpClass", "Opcode",
    "OperandKind", "Target", "EncodingError", "Instruction", "make",
    "BlockError", "CHUNK_BYTES", "MAX_BODY_INSTS", "MAX_MEM_OPS",
    "MAX_READS", "MAX_WRITES", "NUM_ARCH_REGS", "NUM_REG_BANKS",
    "SLOTS_PER_BANK", "ReadInstruction", "TripsBlock", "WriteInstruction",
    "reg_bank", "EXIT_ADDRESS", "Program", "ProgramBuilder", "ProgramError",
]

"""TRIPS block model: header chunk + up to four 32-instruction body chunks.

A TRIPS block (Section 2.1) is the unit of fetch, execution and commit:

* a 128-byte **header chunk** holding up to 32 read and 32 write
  instructions, a 32-bit **store mask** (which LSIDs are stores), block
  execution flags and the body chunk count;
* two to four (the paper says "between two and five chunks" counting the
  header) 128-byte **body chunks** of 32 instruction words each, for at most
  128 instructions.

Constraints enforced by :meth:`TripsBlock.validate` (the compiler must emit
conforming blocks; the hardware assumes them):

* at most 128 body instructions, at most 32 loads+stores (unique LSIDs,
  issued in LSID order per address),
* at most 8 reads and 8 writes per register bank (bank = register mod 4),
* every possible predicated path emits the same outputs: all 32 potential
  register writes/stores are either always or never produced (nullified
  writes/stores still signal), and **exactly one** branch fires,
* targets reference valid slots.

The header's binary layout (1024 bits, little-endian bit numbering)::

    [   0,  32)  store mask
    [  32,  40)  block flags
    [  40,  48)  number of body chunks (1..4)
    [  48,  64)  reserved
    [  64, 256)  32 write records x 6 bits:  V(1) GR(5)
    [ 256,1024)  32 read records x 24 bits:  V(1) GR(5) RT0(9) RT1(9)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .encoding import Instruction
from .opcodes import OpClass, Opcode
from .targets import NO_TARGET_BITS, OperandKind, Target, decode_optional, encode_optional

CHUNK_BYTES = 128
MAX_BODY_INSTS = 128
MAX_READS = 32
MAX_WRITES = 32
MAX_MEM_OPS = 32
NUM_REG_BANKS = 4
SLOTS_PER_BANK = 8
NUM_ARCH_REGS = 128

#: Block execution-mode flags (header byte 4).
FLAG_DEFAULT = 0


class BlockError(ValueError):
    """A block violates an ISA constraint."""


def reg_bank(reg: int) -> int:
    """Bank of architectural register ``reg``: registers interleave mod 4."""
    return reg % NUM_REG_BANKS


@dataclass
class ReadInstruction:
    """Header read: pull register ``reg`` and send it to 1-2 targets."""

    reg: int
    targets: List[Target] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0 <= self.reg < NUM_ARCH_REGS:
            raise BlockError(f"read register {self.reg} out of range")
        if not 1 <= len(self.targets) <= 2:
            raise BlockError("read instruction needs one or two targets")

    @property
    def bank(self) -> int:
        return reg_bank(self.reg)

    def __str__(self) -> str:
        return f"read R{self.reg} " + " ".join(str(t) for t in self.targets)


@dataclass
class WriteInstruction:
    """Header write: the value arriving at this write slot commits to ``reg``."""

    reg: int

    def __post_init__(self) -> None:
        if not 0 <= self.reg < NUM_ARCH_REGS:
            raise BlockError(f"write register {self.reg} out of range")

    @property
    def bank(self) -> int:
        return reg_bank(self.reg)

    def __str__(self) -> str:
        return f"write R{self.reg}"


@dataclass
class TripsBlock:
    """One compiler-produced, hardware-executable TRIPS block.

    ``reads`` and ``writes`` are dense maps from header slot (0..31) to
    instructions; slot assignment respects banking: slot ``s`` lives on
    register tile ``s // 8`` and may only name registers of bank ``s // 8``.
    ``body`` maps body slot (0..127) to instructions; body slot ``i``
    executes on execution tile ``i % 16``, reservation station ``i // 16``.
    """

    name: str = ""
    reads: Dict[int, ReadInstruction] = field(default_factory=dict)
    writes: Dict[int, WriteInstruction] = field(default_factory=dict)
    body: Dict[int, Instruction] = field(default_factory=dict)
    flags: int = FLAG_DEFAULT

    # ------------------------------------------------------------------
    @property
    def store_mask(self) -> int:
        """Bit ``i`` set iff LSID ``i`` belongs to a store in this block."""
        mask = 0
        for inst in self.body.values():
            if inst.opcode.is_store:
                mask |= 1 << inst.lsid
        return mask

    @property
    def load_mask(self) -> int:
        mask = 0
        for inst in self.body.values():
            if inst.opcode.is_load:
                mask |= 1 << inst.lsid
        return mask

    @property
    def num_body_chunks(self) -> int:
        """Number of 32-instruction body chunks needed (1..4, min 1)."""
        highest = max(self.body) if self.body else 0
        return max(1, -(-(highest + 1) // 32))

    @property
    def size_bytes(self) -> int:
        return CHUNK_BYTES * (1 + self.num_body_chunks)

    @property
    def num_outputs(self) -> int:
        """Register writes + stores + the one branch (completion target)."""
        return len(self.writes) + bin(self.store_mask).count("1") + 1

    def branches(self) -> List[int]:
        """Body slots holding branch instructions."""
        return sorted(s for s, i in self.body.items() if i.opcode.is_branch)

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check every static block constraint; raise :class:`BlockError`."""
        if len(self.body) > MAX_BODY_INSTS:
            raise BlockError(f"{len(self.body)} body instructions > {MAX_BODY_INSTS}")
        for slot in self.body:
            if not 0 <= slot < MAX_BODY_INSTS:
                raise BlockError(f"body slot {slot} out of range")
        for slot, read in self.reads.items():
            self._check_header_slot(slot, read.bank, "read")
        for slot, write in self.writes.items():
            self._check_header_slot(slot, write.bank, "write")
        written = [w.reg for w in self.writes.values()]
        if len(set(written)) != len(written):
            raise BlockError("two write slots name the same register")

        lsids: Dict[int, Opcode] = {}
        for slot, inst in sorted(self.body.items()):
            if inst.opcode.is_memory:
                if inst.lsid in lsids:
                    raise BlockError(f"duplicate LSID {inst.lsid}")
                lsids[inst.lsid] = inst.opcode
        if len(lsids) > MAX_MEM_OPS:
            raise BlockError(f"{len(lsids)} memory operations > {MAX_MEM_OPS}")

        if not self.branches():
            raise BlockError("block has no branch")
        self._check_targets()
        self._check_constant_outputs()

    def _check_header_slot(self, slot: int, bank: int, what: str) -> None:
        if not 0 <= slot < MAX_READS:
            raise BlockError(f"{what} slot {slot} out of range")
        if slot // SLOTS_PER_BANK != bank:
            raise BlockError(
                f"{what} slot {slot} is on RT{slot // SLOTS_PER_BANK} but its "
                f"register is in bank {bank}")

    def _check_targets(self) -> None:
        producers = list(self.body.items()) + list(self.reads.items())
        for slot, inst in producers:
            for tgt in inst.targets:
                if tgt.kind is OperandKind.WRITE:
                    if tgt.slot not in self.writes:
                        raise BlockError(
                            f"slot {slot} targets missing write slot {tgt.slot}")
                else:
                    if tgt.slot not in self.body:
                        raise BlockError(
                            f"slot {slot} targets empty body slot {tgt.slot}")
                    consumer = self.body[tgt.slot]
                    needed = consumer.opcode.num_operands
                    if tgt.kind is OperandKind.RIGHT and needed < 2:
                        raise BlockError(
                            f"slot {slot} sends a right operand to "
                            f"{consumer.opcode.mnemonic} at {tgt.slot}")
                    if tgt.kind is OperandKind.PRED and consumer.pred is None:
                        raise BlockError(
                            f"slot {slot} sends a predicate to unpredicated "
                            f"slot {tgt.slot}")

    def _guarded_slots(self) -> set:
        """Body slots that provably fire on at most one predicated path.

        A slot is *guarded* if it carries a predicate field, or — fixpoint —
        if some data operand it needs is fed by exactly one producer and
        that producer is itself guarded (the consumer can only ever receive
        that operand when its guarded supplier fires; fanout ``mov`` trees
        hanging off predicated producers are the common case).  A port fed
        by several guarded producers does NOT guard the consumer: those
        producers may sit on complementary paths (a predicated merge), in
        which case the port always receives a value.
        """
        port_suppliers: Dict[tuple, List[int]] = {}
        for slot, inst in self.body.items():
            for tgt in inst.targets:
                if tgt.kind is not OperandKind.WRITE:
                    port_suppliers.setdefault(
                        (tgt.slot, tgt.kind), []).append(slot)
        for read in self.reads.values():
            for tgt in read.targets:
                if tgt.kind is not OperandKind.WRITE:
                    # reads always fire: mark the port multi-supplied so it
                    # never transfers guardedness
                    port_suppliers.setdefault(
                        (tgt.slot, tgt.kind), []).extend((-1, -1))
        guarded = {slot for slot, inst in self.body.items()
                   if inst.pred is not None}
        changed = True
        while changed:
            changed = False
            for slot, inst in self.body.items():
                if slot in guarded:
                    continue
                for kind in (OperandKind.LEFT, OperandKind.RIGHT):
                    suppliers = port_suppliers.get((slot, kind), ())
                    if len(suppliers) == 1 and suppliers[0] in guarded:
                        guarded.add(slot)
                        changed = True
                        break
        return guarded

    def _check_constant_outputs(self) -> None:
        """Every write slot and store LSID must have at least one producer.

        Exactness across predicated paths (each output produced exactly once
        per execution) cannot be proven statically in general; the simulator
        asserts it dynamically.  Here we check the necessary condition that
        each output is targeted at all, and that predicated alternatives are
        plausible (an output with a single always-firing producer is always
        produced; one with multiple producers must have all of them guarded
        — predicated, or downstream of a sole guarded supplier).
        """
        guarded = self._guarded_slots()
        write_producers: Dict[int, int] = {s: 0 for s in self.writes}
        unguarded_write: Dict[int, int] = {s: 0 for s in self.writes}
        for slot, inst in self.body.items():
            for tgt in inst.targets:
                if tgt.kind is OperandKind.WRITE:
                    write_producers[tgt.slot] += 1
                    if slot not in guarded:
                        unguarded_write[tgt.slot] += 1
        for read in self.reads.values():
            for tgt in read.targets:
                if tgt.kind is OperandKind.WRITE:
                    write_producers[tgt.slot] += 1
                    unguarded_write[tgt.slot] += 1
        for wslot, count in write_producers.items():
            if count == 0:
                raise BlockError(f"write slot {wslot} has no producer")
            if count > 1 and unguarded_write[wslot] > 0:
                raise BlockError(
                    f"write slot {wslot} has {count} producers, one "
                    "unguarded — outputs would not be constant")

    # ------------------------------------------------------------------
    # Binary encoding
    # ------------------------------------------------------------------
    def encode_header(self) -> bytes:
        """Pack the header chunk (128 bytes) per the module docstring."""
        bits = self.store_mask & 0xFFFFFFFF
        bits |= (self.flags & 0xFF) << 32
        bits |= (self.num_body_chunks & 0xFF) << 40
        for slot, write in self.writes.items():
            rec = 1 | (write.reg // NUM_REG_BANKS) << 1
            bits |= rec << (64 + 6 * slot)
        for slot, read in self.reads.items():
            rt0 = read.targets[0].encode()
            rt1 = encode_optional(read.targets[1] if len(read.targets) > 1 else None)
            rec = 1 | (read.reg // NUM_REG_BANKS) << 1 | (rt0 << 6) | (rt1 << 15)
            bits |= rec << (256 + 24 * slot)
        return bits.to_bytes(CHUNK_BYTES, "little")

    @classmethod
    def decode_header(cls, data: bytes) -> "TripsBlock":
        """Unpack a header chunk into a block with empty body.

        Register indices are reconstructed from the in-bank index plus the
        bank implied by the slot position (Section 3.3: banked header).
        """
        if len(data) != CHUNK_BYTES:
            raise BlockError("header chunk must be 128 bytes")
        bits = int.from_bytes(data, "little")
        block = cls()
        block.flags = (bits >> 32) & 0xFF
        expected_chunks = (bits >> 40) & 0xFF
        for slot in range(MAX_WRITES):
            rec = (bits >> (64 + 6 * slot)) & 0x3F
            if rec & 1:
                gr = rec >> 1
                block.writes[slot] = WriteInstruction(
                    gr * NUM_REG_BANKS + slot // SLOTS_PER_BANK)
        for slot in range(MAX_READS):
            rec = (bits >> (256 + 24 * slot)) & 0xFFFFFF
            if rec & 1:
                gr = (rec >> 1) & 0x1F
                rt0 = Target.decode((rec >> 6) & 0x1FF)
                rt1 = decode_optional((rec >> 15) & 0x1FF)
                targets = [rt0] + ([rt1] if rt1 else [])
                block.reads[slot] = ReadInstruction(
                    gr * NUM_REG_BANKS + slot // SLOTS_PER_BANK, targets)
        block._expected_chunks = expected_chunks  # used by decode()
        return block

    def encode(self) -> bytes:
        """Full binary image: header + body chunks, NOP-padded with zeros.

        Empty body slots encode as the all-ones word, which is not a valid
        instruction and is skipped by :meth:`decode`.
        """
        self.validate()
        out = bytearray(self.encode_header())
        nchunks = self.num_body_chunks
        for slot in range(nchunks * 32):
            inst = self.body.get(slot)
            word = inst.encode() if inst is not None else 0xFFFFFFFF
            out += word.to_bytes(4, "little")
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes) -> "TripsBlock":
        """Inverse of :meth:`encode`."""
        if len(data) % CHUNK_BYTES or len(data) < 2 * CHUNK_BYTES:
            raise BlockError(f"block image of {len(data)} bytes is malformed")
        block = cls.decode_header(data[:CHUNK_BYTES])
        nchunks = len(data) // CHUNK_BYTES - 1
        if getattr(block, "_expected_chunks", nchunks) != nchunks:
            raise BlockError("header chunk count disagrees with image size")
        for slot in range(nchunks * 32):
            off = CHUNK_BYTES + 4 * slot
            word = int.from_bytes(data[off:off + 4], "little")
            if word != 0xFFFFFFFF:
                block.body[slot] = Instruction.decode(word)
        return block

    # ------------------------------------------------------------------
    def listing(self) -> str:
        """Human-readable disassembly of the whole block."""
        lines = [f"; block {self.name or '<anon>'}  "
                 f"outputs={self.num_outputs} store_mask={self.store_mask:#010x}"]
        for slot in sorted(self.reads):
            lines.append(f"  R[{slot:2d}]  {self.reads[slot]}")
        for slot in sorted(self.writes):
            lines.append(f"  W[{slot:2d}]  {self.writes[slot]}")
        for slot in sorted(self.body):
            lines.append(f"  N[{slot:3d}]  {self.body[slot]}")
        return "\n".join(lines)

"""Regenerate the paper's tables.

* :func:`table1_rows` — TRIPS tile specifications (Table 1).
* :func:`table2_rows` — control and data networks (Table 2).
* :func:`table3_rows` — per-benchmark critical-path overheads and
  TRIPS-vs-baseline performance (Table 3).  Absolute values are not
  expected to match the paper (our substrate is a rewritten simulator and
  rewritten workloads); the *shape* — which categories dominate, who wins
  where — is what EXPERIMENTS.md compares.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..analysis import analyze_critical_path
from ..analysis.area import AreaModel
from ..uarch.config import TripsConfig
from ..workloads import workload_names
from ..workloads.registry import HAND_OPTIMIZED
from .runner import run_baseline_workload, run_trips_workload


def table1_rows() -> List[Dict]:
    return AreaModel.prototype().table1()


def table2_rows() -> List[Dict]:
    return AreaModel.prototype().table2()


def table3_rows(workloads: Optional[Sequence[str]] = None,
                config: Optional[TripsConfig] = None,
                include_performance: bool = True) -> List[Dict]:
    """One Table 3 row per benchmark.

    Columns: the seven critical-path categories (percent, measured at the
    best available code quality, as the paper does), then speedups over
    the baseline and the three IPCs.  Hand-level numbers are omitted for
    the SPEC proxies, matching the paper's footnote that SPEC was never
    hand-optimized.
    """
    names = list(workloads) if workloads is not None else workload_names()
    rows = []
    for name in names:
        hand_available = name in HAND_OPTIMIZED
        level = "hand" if hand_available else "tcc"
        run = run_trips_workload(name, level=level, config=config,
                                 trace=True)
        report = analyze_critical_path(run.proc.trace)
        row: Dict = {"Benchmark": name}
        row.update({k: round(v, 2) for k, v in report.row().items()})
        if include_performance:
            alpha = run_baseline_workload(name)
            tcc = run_trips_workload(name, level="tcc", config=config) \
                if level != "tcc" else run
            row["Speedup TCC"] = round(alpha.cycles / tcc.cycles, 2)
            row["Speedup Hand"] = round(alpha.cycles / run.cycles, 2) \
                if hand_available else None
            row["IPC Alpha"] = round(alpha.ipc, 2)
            row["IPC TCC"] = round(tcc.ipc, 2)
            row["IPC Hand"] = round(run.ipc, 2) if hand_available else None
        rows.append(row)
    return rows


def render_table(rows: Iterable[Dict], title: str = "") -> str:
    """Fixed-width text rendering of a list of row dicts."""
    rows = list(rows)
    if not rows:
        return title
    columns = list(rows[0].keys())
    widths = {c: max(len(str(c)), *(len(_cell(r.get(c))) for r in rows))
              for c in columns}
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(c).ljust(widths[c]) for c in columns))
    lines.append("  ".join("-" * widths[c] for c in columns))
    for row in rows:
        lines.append("  ".join(_cell(row.get(c)).ljust(widths[c])
                               for c in columns))
    return "\n".join(lines)


def _cell(value) -> str:
    if value is None:
        return "—"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)

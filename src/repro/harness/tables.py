"""Regenerate the paper's tables.

* :func:`table1_rows` — TRIPS tile specifications (Table 1).
* :func:`table2_rows` — control and data networks (Table 2).
* :func:`table3_rows` — per-benchmark critical-path overheads and
  TRIPS-vs-baseline performance (Table 3).  Absolute values are not
  expected to match the paper (our substrate is a rewritten simulator and
  rewritten workloads); the *shape* — which categories dominate, who wins
  where — is what EXPERIMENTS.md compares.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..analysis.area import AreaModel
from ..baseline.ooo import BaselineStats
from ..simlab import ResultCache, RunSpec, run_specs
from ..uarch.config import TripsConfig
from ..uarch.proc import ProcStats
from ..workloads import workload_names
from ..workloads.registry import HAND_OPTIMIZED


def table1_rows() -> List[Dict]:
    return AreaModel.prototype().table1()


def table2_rows() -> List[Dict]:
    return AreaModel.prototype().table2()


def table3_specs(workloads: Optional[Sequence[str]] = None,
                 config: Optional[TripsConfig] = None,
                 include_performance: bool = True):
    """The simlab job list behind Table 3.

    Returns ``(specs, layout)`` where each layout entry is
    ``(name, hand_available, trips_index, baseline_index, tcc_index)``
    into the spec list (the last two are None when not needed).
    """
    names = list(workloads) if workloads is not None else workload_names()
    specs: List[RunSpec] = []
    layout = []
    for name in names:
        hand_available = name in HAND_OPTIMIZED
        level = "hand" if hand_available else "tcc"
        trips_index = len(specs)
        specs.append(RunSpec.trips(name, level=level, config=config,
                                   trace=True))
        baseline_index = tcc_index = None
        if include_performance:
            baseline_index = len(specs)
            specs.append(RunSpec.baseline(name))
            if level != "tcc":
                tcc_index = len(specs)
                specs.append(RunSpec.trips(name, level="tcc",
                                           config=config))
        layout.append((name, hand_available, trips_index, baseline_index,
                       tcc_index))
    return specs, layout


def table3_rows(workloads: Optional[Sequence[str]] = None,
                config: Optional[TripsConfig] = None,
                include_performance: bool = True,
                workers: int = 0,
                cache: Optional[ResultCache] = None,
                log: Optional[Callable[[str], None]] = None,
                metrics=None) -> List[Dict]:
    """One Table 3 row per benchmark.

    Columns: the seven critical-path categories (percent, measured at the
    best available code quality, as the paper does), then speedups over
    the baseline and the three IPCs.  Hand-level numbers are omitted for
    the SPEC proxies, matching the paper's footnote that SPEC was never
    hand-optimized.

    The per-benchmark jobs are submitted through simlab: ``workers=0``
    (the default) runs them serially in-process exactly as before;
    ``workers=N`` fans out across N processes, and a ``cache`` makes
    repeated invocations pure cache hits — results are identical either
    way.
    """
    specs, layout = table3_specs(workloads, config, include_performance)
    results = run_specs(specs, workers=workers, cache=cache, log=log,
                        metrics=metrics)
    rows = []
    for name, hand_available, trips_index, baseline_index, tcc_index \
            in layout:
        main = results[trips_index]
        main_stats = ProcStats.from_dict(main["stats"])
        row: Dict = {"Benchmark": name}
        row.update({k: round(v, 2) for k, v in main["critpath"].items()})
        if include_performance:
            alpha = BaselineStats.from_dict(
                results[baseline_index]["stats"])
            tcc_stats = ProcStats.from_dict(
                results[tcc_index]["stats"]) if tcc_index is not None \
                else main_stats
            row["Speedup TCC"] = round(alpha.cycles / tcc_stats.cycles, 2)
            row["Speedup Hand"] = \
                round(alpha.cycles / main_stats.cycles, 2) \
                if hand_available else None
            row["IPC Alpha"] = round(alpha.ipc, 2)
            row["IPC TCC"] = round(tcc_stats.ipc, 2)
            row["IPC Hand"] = round(main_stats.ipc, 2) \
                if hand_available else None
        rows.append(row)
    return rows


def render_table(rows: Iterable[Dict], title: str = "") -> str:
    """Fixed-width text rendering of a list of row dicts."""
    rows = list(rows)
    if not rows:
        return title
    columns = list(rows[0].keys())
    widths = {c: max(len(str(c)), *(len(_cell(r.get(c))) for r in rows))
              for c in columns}
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(c).ljust(widths[c]) for c in columns))
    lines.append("  ".join("-" * widths[c] for c in columns))
    for row in rows:
        lines.append("  ".join(_cell(row.get(c)).ljust(widths[c])
                               for c in columns))
    return "\n".join(lines)


def _cell(value) -> str:
    if value is None:
        return "—"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)

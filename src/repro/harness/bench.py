"""Simulator-throughput benchmark: fast-path engine vs. the escape hatch.

``python -m repro.harness bench`` runs every Table 3 workload (all 21 at
``tcc``, the 16 non-SPEC ones additionally at ``hand``) under both memory
configurations — ``l2perfect`` (Table 3's flat-latency L2) and ``nuca``
(the detailed OCN + NUCA banks + SDRAM model, the long-wait regime the
fast path targets) — twice per case: once with the fast-path cycle
engine (``TripsConfig.fast_path=True``, the default) and once with the
original full-scan engine (``fast_path=False``).  Throughput is reported
in kilo-simulated-cycles per wall-clock second (kcycles/s).

The two engines are required to be *cycle-for-cycle identical*: every
case compares the full ``ProcStats`` records and the report carries an
``equivalent`` flag that CI fails on.  Only the simulation loop
(``TripsProcessor.run``) is timed; TIR construction and compilation are
shared setup and excluded, so the numbers measure the engine, not the
compiler.

The report is written to ``BENCH_engine.json`` at the repo root (override
with ``--out``); ``--smoke`` selects a three-workload subset for CI.
"""

from __future__ import annotations

import json
import math
import platform
import subprocess
import sys
import time
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..compiler import compile_tir
from ..uarch.config import TripsConfig
from ..uarch.proc import TripsProcessor
from ..workloads import get_workload
from ..workloads.registry import HAND_OPTIMIZED, workload_names

#: quick CI subset: one micro kernel, one hashing loop, one SPEC proxy
SMOKE_WORKLOADS = ("vadd", "sha", "mcf")
#: memory configurations: Table 3's idealized L2 and the detailed NUCA
MEM_MODES = ("l2perfect", "nuca")


def bench_cases(smoke: bool = False,
                workloads: Optional[Sequence[str]] = None
                ) -> List[Tuple[str, str, str]]:
    """(workload, code level, memory mode) — the Table 3 sweep, both
    code levels, both memory systems."""
    if workloads:
        names = list(workloads)
    elif smoke:
        names = list(SMOKE_WORKLOADS)
    else:
        names = workload_names()
    pairs = [(name, "tcc") for name in names]
    pairs += [(name, "hand") for name in names if name in HAND_OPTIMIZED]
    return [(name, level, mem) for name, level in pairs
            for mem in MEM_MODES]


def _timed_run(program, config: TripsConfig,
               repeat: int) -> Tuple[Dict, float]:
    """Best-of-``repeat`` wall time of the simulation loop alone."""
    stats: Optional[Dict] = None
    best = math.inf
    for _ in range(max(1, repeat)):
        proc = TripsProcessor(program, config=config)
        t0 = time.perf_counter()
        run_stats = proc.run()
        elapsed = time.perf_counter() - t0
        record = run_stats.to_dict()
        if stats is None:
            stats = record
        elif record != stats:
            raise AssertionError("nondeterministic ProcStats across repeats")
        best = min(best, elapsed)
    return stats, best


#: regression gate: fail when the matched-case geomean fast-engine
#: throughput drops below this fraction of the baseline report's
REGRESSION_THRESHOLD = 0.90


def compare_to_baseline(report: Dict, baseline: Dict, log=None) -> Dict:
    """Per-case and geomean throughput deltas against an earlier report.

    Cases are matched on (workload, level, mem); the verdict's
    ``regressed`` flag trips when the geomean fast-engine throughput
    over the matched cases drops more than 10% below the baseline
    (:data:`REGRESSION_THRESHOLD`).  Baselines from a different host are
    still compared — the note in the log is the reader's cue that
    absolute deltas may reflect hardware, not code.
    """
    def say(message: str) -> None:
        if log is not None:
            log(message)

    base_rows = {(r["workload"], r["level"], r["mem"]): r
                 for r in baseline.get("results", [])}
    rows: List[Dict] = []
    ratios: List[float] = []
    skipped: List[str] = []
    for row in report["results"]:
        case = (row["workload"], row["level"], row["mem"])
        base = base_rows.get(case)
        if base is None or not base.get("fast_kcycles_per_s"):
            # an older baseline predating a workload (or recorded with a
            # zero/absent throughput) is not an error: warn and compare
            # the cases both reports actually share
            skipped.append("{}@{}/{}".format(*case))
            say(f"warning: no baseline for {skipped[-1]} — skipped")
            continue
        ratio = row["fast_kcycles_per_s"] / base["fast_kcycles_per_s"]
        ratios.append(ratio)
        rows.append({
            "workload": row["workload"], "level": row["level"],
            "mem": row["mem"],
            "baseline_kcycles_per_s": base["fast_kcycles_per_s"],
            "fast_kcycles_per_s": row["fast_kcycles_per_s"],
            "ratio": round(ratio, 3),
        })
        say(f"{row['workload']:>10s} @ {row['level']:<4s} "
            f"{row['mem']:<9s} base {base['fast_kcycles_per_s']:8.1f} "
            f"now {row['fast_kcycles_per_s']:8.1f} kcyc/s   x{ratio:.3f}")
    geomean = _geomean(ratios)
    regressed = bool(ratios) and geomean < REGRESSION_THRESHOLD
    verdict = {
        "baseline_git_rev": baseline.get("git_rev", "unknown"),
        "baseline_host": baseline.get("host", "unknown"),
        "baseline_created_utc": baseline.get("created_utc", "unknown"),
        "matched_cases": len(rows),
        "skipped_cases": len(skipped),
        "skipped": skipped,
        "geomean_ratio": round(geomean, 3) if ratios else None,
        "threshold": REGRESSION_THRESHOLD,
        "regressed": regressed,
        "rows": rows,
    }
    say(f"baseline delta: geomean x{geomean:.3f} over {len(rows)} "
        f"matched cases (threshold x{REGRESSION_THRESHOLD:.2f})"
        + (f", {len(skipped)} skipped" if skipped else "")
        + ("   REGRESSION" if regressed else ""))
    if baseline.get("host") not in (None, report.get("host")):
        say(f"note: baseline was recorded on host "
            f"{baseline.get('host')!r}; absolute deltas may reflect "
            f"hardware, not code")
    return verdict


def run_bench(smoke: bool = False, repeat: int = 2,
              workloads: Optional[Sequence[str]] = None,
              out: Optional[str] = "BENCH_engine.json",
              baseline: Optional[str] = None,
              log=None) -> Dict:
    """Run the engine benchmark; returns (and optionally writes) the report."""
    def say(message: str) -> None:
        if log is not None:
            log(message)

    results: List[Dict] = []
    mismatches: List[str] = []
    programs: Dict[Tuple[str, str], object] = {}
    for name, level, mem in bench_cases(smoke, workloads):
        program = programs.get((name, level))
        if program is None:
            program = compile_tir(get_workload(name), level=level).program
            programs[(name, level)] = program
        perfect = mem == "l2perfect"
        fast_cfg = TripsConfig(fast_path=True, perfect_l2=perfect)
        slow_cfg = TripsConfig(fast_path=False, perfect_l2=perfect)
        fast_stats, fast_t = _timed_run(program, fast_cfg, repeat)
        slow_stats, slow_t = _timed_run(program, slow_cfg, repeat)
        equivalent = fast_stats == slow_stats
        if not equivalent:
            mismatches.append(f"{name}@{level}/{mem}")
        cycles = fast_stats["cycles"]
        fast_kcps = cycles / fast_t / 1e3
        slow_kcps = cycles / slow_t / 1e3
        speedup = fast_kcps / slow_kcps
        results.append({
            "workload": name,
            "level": level,
            "mem": mem,
            "cycles": cycles,
            "fast_kcycles_per_s": round(fast_kcps, 2),
            "slow_kcycles_per_s": round(slow_kcps, 2),
            "speedup": round(speedup, 3),
            "equivalent": equivalent,
        })
        say(f"{name:>10s} @ {level:<4s} {mem:<9s} {cycles:>8d} cycles   "
            f"fast {fast_kcps:8.1f} kcyc/s   slow {slow_kcps:8.1f} kcyc/s   "
            f"x{speedup:.2f}" + ("" if equivalent else "   STATS MISMATCH"))

    speedups = [row["speedup"] for row in results]
    geomean = _geomean(speedups)
    by_mem = {mem: _geomean([row["speedup"] for row in results
                             if row["mem"] == mem]) for mem in MEM_MODES}
    report = {
        "benchmark": "engine-throughput",
        "suite": "smoke" if smoke else "table3",
        "repeat": repeat,
        "python": platform.python_version(),
        **provenance(),
        "cases": len(results),
        "equivalent": not mismatches,
        "mismatches": mismatches,
        "geomean_speedup": round(geomean, 3),
        "geomean_speedup_by_mem": {mem: round(value, 3)
                                   for mem, value in by_mem.items()},
        "geomean_fast_kcycles_per_s": round(_geomean(
            [row["fast_kcycles_per_s"] for row in results]), 1),
        "geomean_slow_kcycles_per_s": round(_geomean(
            [row["slow_kcycles_per_s"] for row in results]), 1),
        "results": results,
    }
    say(f"geomean speedup x{geomean:.2f} over {len(results)} cases "
        f"({', '.join(f'{mem} x{value:.2f}' for mem, value in by_mem.items())})"
        + ("" if not mismatches else f"; MISMATCHES: {mismatches}"))
    if baseline:
        with open(baseline) as fh:
            base_report = json.load(fh)
        report["baseline_delta"] = compare_to_baseline(report, base_report,
                                                       log=log)
    if out:
        with open(out, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        say(f"wrote {out}")
    return report


def _git_rev() -> str:
    """Short commit hash of the working tree, or "unknown"."""
    root = Path(__file__).resolve().parents[3]
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=root,
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def provenance() -> Dict:
    """Where and with what a benchmark report was produced — enough to
    judge whether two reports' absolute numbers are comparable."""
    return {
        "host": platform.node(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "git_rev": _git_rev(),
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "config": asdict(TripsConfig()),
    }


def _geomean(values: List[float]) -> float:
    positive = [v for v in values if v > 0]
    if not positive:
        return 0.0
    return math.exp(sum(math.log(v) for v in positive) / len(positive))


def main(argv=None) -> int:
    import argparse
    parser = argparse.ArgumentParser(
        prog="repro.harness.bench",
        description="Engine throughput: fast path vs. escape hatch.")
    parser.add_argument("workloads", nargs="*", default=None)
    parser.add_argument("--smoke", action="store_true")
    parser.add_argument("--repeat", type=int, default=2)
    parser.add_argument("--out", default="BENCH_engine.json")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help="earlier BENCH_engine.json to diff against; "
                        "exits 1 on a >10%% geomean throughput drop")
    args = parser.parse_args(argv)
    report = run_bench(smoke=args.smoke, repeat=args.repeat,
                       workloads=args.workloads or None, out=args.out,
                       baseline=args.baseline,
                       log=lambda message: print(message, file=sys.stderr))
    if report.get("baseline_delta", {}).get("regressed"):
        return 1
    return 0 if report["equivalent"] else 1


if __name__ == "__main__":
    sys.exit(main())

"""cProfile-backed hot-function report for the simulation engine.

``python -m repro.harness profile <workload>`` compiles a workload, then
profiles *only* the simulation loop (``TripsProcessor.run``) — compile
and TIR construction are warmup, excluded from the numbers — and prints
the top-N functions by cumulative and by self time.  This is the
starting point for performance work: measure first, then optimize the
function the profile names, not the one intuition suspects.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import sys
from typing import Optional

from ..compiler import compile_tir
from ..uarch.config import TripsConfig
from ..uarch.proc import TripsProcessor
from ..workloads import get_workload


def profile_workload(workload: str, level: str = "tcc",
                     mem: str = "l2perfect", top: int = 25,
                     fast_path: Optional[bool] = None,
                     sort: str = "cumulative") -> str:
    """Profile one workload's simulation loop; returns the report text."""
    tir = get_workload(workload)
    program = compile_tir(tir, level=level).program
    config = TripsConfig(perfect_l2=(mem != "nuca"))
    if fast_path is not None:
        config = config.with_overrides(fast_path=fast_path)
    proc = TripsProcessor(program, config=config)

    profiler = cProfile.Profile()
    profiler.enable()
    stats = proc.run()
    profiler.disable()

    out = io.StringIO()
    out.write(f"{workload} @ {level} (mem={mem}, "
              f"fast_path={config.fast_path}): "
              f"{stats.cycles} cycles, "
              f"{stats.blocks_committed} blocks committed\n\n")
    ps = pstats.Stats(profiler, stream=out)
    ps.strip_dirs().sort_stats(sort).print_stats(top)
    if sort != "tottime":
        out.write("\n--- by self time ---\n")
        ps.sort_stats("tottime").print_stats(top)
    return out.getvalue()


def main(argv=None) -> int:
    import argparse
    parser = argparse.ArgumentParser(
        prog="repro.harness.profile",
        description="cProfile the simulation loop of one workload.")
    parser.add_argument("workload")
    parser.add_argument("--level", default="tcc", choices=["tcc", "hand"])
    parser.add_argument("--mem", default="l2perfect",
                        choices=["l2perfect", "nuca"])
    parser.add_argument("--top", type=int, default=25, metavar="N",
                        help="functions per table (default 25)")
    parser.add_argument("--slow", action="store_true",
                        help="profile the full-scan engine instead")
    parser.add_argument("--sort", default="cumulative",
                        choices=["cumulative", "tottime", "ncalls"])
    args = parser.parse_args(argv)
    print(profile_workload(args.workload, level=args.level, mem=args.mem,
                           top=args.top,
                           fast_path=False if args.slow else None,
                           sort=args.sort))
    return 0


if __name__ == "__main__":
    sys.exit(main())

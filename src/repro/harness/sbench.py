"""Sampling benchmark: sampled vs. full simulation on scaled workloads.

``python -m repro.harness sbench`` takes five scaled workloads — ``mcf``
(pointer chasing), ``dct8x8`` (dense loop nests), ``a2time01`` (branchy
control), ``bezier02`` (FP-dense), ``basefp01`` (FP arithmetic mix) — at
sizes where a full cycle-accurate run costs minutes, runs each both
ways, and reports the *realized* sampling error (the sampled estimate
against ground truth) next to the confidence interval the sampler
claimed, plus the effective speedup: full wall-clock over sampled
wall-clock, fast-forward and checkpoint overhead included.

The report is written to ``BENCH_sampling.json`` at the repo root.  The
headline claim it backs: **>=20x effective speedup on every roster case
(geomean >=28x) at <=1% realized cycles/IPC error**.  Phase clustering
(``SamplingConfig.clustering``) plus bounded functional warming
(``warm_horizon``) are what buy those margins: clustering replaced
mcf's 50 stratified windows with ~16 phase-placed ones (its bimodal
cycles-per-block distribution is exactly a two-phase mixture), and the
horizon lets the fast-forwarder run cold everywhere a window will not
sample — in the clustered flow the measurement pass then skips those
cold stretches entirely by teleporting between the profiling pass's
interval-boundary snapshots (byte-identical estimates, see
``FastForwarder.restore_arch``).  Workloads whose windows carry a systematic
warm-state bias the CI cannot see (``rspeed01``, ``parser``,
``tblook01`` — wrong-path-*trained* predictor tables; re-measured under
phase-chosen windows, which do not help: the bias is per-window, not a
placement artifact) stay excluded and documented in the EXPERIMENTS.md
sampling note.

``--smoke`` shrinks the sizes ~10x for CI — the error bounds still hold
there but the speedup shrinks with the coverage ratio, so the smoke
tier records speedups without asserting the 20x target.  ``--baseline``
diffs against an earlier report (mirroring ``bench --baseline``): the
verdict flags a >10% geomean effective-speedup drop or realized-error
growth past the error target.
"""

from __future__ import annotations

import json
import math
import sys
from typing import Dict, List, Optional, Sequence, Tuple

from ..sampling import SamplingConfig
from ..sampling.validate import measure_error
from .bench import _geomean, provenance

#: the full-size tier: (workload, size, sampling geometry).  Sizes put
#: every case in the ~300-400k committed-block range (minutes of full
#: detailed simulation).  All cases run phase clustering + bounded
#: warming; the interval is the phase-detection granularity (~30-50
#: intervals per run) and ``phase_windows`` keeps cycle-accurate
#: coverage near 1% with ~12-16 windows each.
FULL_CASES: Tuple[Tuple[str, int, SamplingConfig], ...] = (
    ("mcf", 512, SamplingConfig(interval_blocks=8000, warmup_blocks=100,
                                measure_blocks=150, clustering=True,
                                phase_windows=14, warm_horizon=2000)),
    ("dct8x8", 128, SamplingConfig(interval_blocks=10000, warmup_blocks=100,
                                   measure_blocks=150, clustering=True,
                                   phase_windows=14, warm_horizon=2000)),
    ("a2time01", 3072, SamplingConfig(interval_blocks=12000,
                                      warmup_blocks=100,
                                      measure_blocks=150, clustering=True,
                                      phase_windows=14, warm_horizon=2000)),
    ("bezier02", 4096, SamplingConfig(interval_blocks=10000,
                                      warmup_blocks=100,
                                      measure_blocks=150, clustering=True,
                                      phase_windows=14, warm_horizon=2000)),
    ("basefp01", 4096, SamplingConfig(interval_blocks=8000,
                                      warmup_blocks=100,
                                      measure_blocks=150, clustering=True,
                                      phase_windows=20, warm_horizon=2000)),
)

#: CI tier: ~10x smaller, seconds not minutes.  The last case exercises
#: the clustered + bounded-warming path end to end in CI.
SMOKE_CASES: Tuple[Tuple[str, int, SamplingConfig], ...] = (
    ("mcf", 48, SamplingConfig(interval_blocks=1200, warmup_blocks=60,
                               measure_blocks=100)),
    ("dct8x8", 12, SamplingConfig(interval_blocks=1200, warmup_blocks=60,
                                  measure_blocks=100)),
    ("a2time01", 256, SamplingConfig(interval_blocks=1200, warmup_blocks=60,
                                     measure_blocks=100)),
    ("mcf", 48, SamplingConfig(interval_blocks=1200, warmup_blocks=60,
                               measure_blocks=100, clustering=True,
                               phase_windows=12, warm_horizon=600)),
)

#: headline targets (asserted on the full tier only): *every* roster
#: case must meet both the per-case speedup and the error target, and
#: the geomean effective speedup must clear GEOMEAN_TARGET.
SPEEDUP_TARGET = 20.0
GEOMEAN_TARGET = 28.0
ERROR_TARGET_PCT = 1.0
MIN_PASSING_CASES = 5

#: a run regresses against ``--baseline`` when its geomean effective
#: speedup over the matched cases drops below this fraction of the
#: baseline's (mirrors ``bench.REGRESSION_THRESHOLD``).
REGRESSION_THRESHOLD = 0.90


def compare_to_sampling_baseline(report: Dict, baseline: Dict,
                                 log=None) -> Dict:
    """Per-case and geomean speedup/error deltas against an earlier report.

    Cases are matched on (workload, size, level).  The verdict's
    ``regressed`` flag trips on either failure mode sampling can have:
    the geomean effective speedup dropping more than 10% below the
    baseline (:data:`REGRESSION_THRESHOLD` — the optimization eroded),
    or any matched case whose realized cycles error grew past
    :data:`ERROR_TARGET_PCT` when the baseline's was within it (the
    estimate broke).  Wall-clock ratios from a different host may
    reflect hardware, not code — the log note is the reader's cue.
    """
    def say(message: str) -> None:
        if log is not None:
            log(message)

    base_rows = {(r["workload"], r["size"], r["level"]): r
                 for r in baseline.get("results", [])}
    rows: List[Dict] = []
    ratios: List[float] = []
    skipped: List[str] = []
    error_growth: List[str] = []
    for row in report["results"]:
        case = (row["workload"], row["size"], row["level"])
        base = base_rows.get(case)
        if base is None or not base.get("effective_speedup"):
            skipped.append("{}x{}@{}".format(*case))
            say(f"warning: no baseline for {skipped[-1]} — skipped")
            continue
        ratio = row["effective_speedup"] / base["effective_speedup"]
        ratios.append(ratio)
        err_now = abs(row["cycles_err_pct"])
        err_base = abs(base["cycles_err_pct"])
        grew = err_now > ERROR_TARGET_PCT and err_base <= ERROR_TARGET_PCT
        if grew:
            error_growth.append("{}x{}@{}".format(*case))
        rows.append({
            "workload": row["workload"], "size": row["size"],
            "level": row["level"],
            "baseline_speedup": base["effective_speedup"],
            "effective_speedup": row["effective_speedup"],
            "ratio": round(ratio, 3),
            "baseline_cycles_err_pct": base["cycles_err_pct"],
            "cycles_err_pct": row["cycles_err_pct"],
            "error_grew": grew,
        })
        say(f"{row['workload']:>10s}x{row['size']:<5d} "
            f"base x{base['effective_speedup']:5.1f} "
            f"now x{row['effective_speedup']:5.1f}   x{ratio:.3f}  "
            f"err {err_base:.2f}% -> {err_now:.2f}%"
            + ("   ERROR GREW" if grew else ""))
    geomean = _geomean(ratios)
    regressed = (bool(ratios) and geomean < REGRESSION_THRESHOLD
                 or bool(error_growth))
    verdict = {
        "baseline_git_rev": baseline.get("git_rev", "unknown"),
        "baseline_host": baseline.get("host", "unknown"),
        "baseline_created_utc": baseline.get("created_utc", "unknown"),
        "matched_cases": len(rows),
        "skipped_cases": len(skipped),
        "skipped": skipped,
        "geomean_ratio": round(geomean, 3) if ratios else None,
        "threshold": REGRESSION_THRESHOLD,
        "error_growth_cases": error_growth,
        "regressed": regressed,
        "rows": rows,
    }
    say(f"baseline delta: geomean x{geomean:.3f} over {len(rows)} "
        f"matched cases (threshold x{REGRESSION_THRESHOLD:.2f})"
        + (f", {len(skipped)} skipped" if skipped else "")
        + (f", error grew on {len(error_growth)}" if error_growth else "")
        + ("   REGRESSION" if regressed else ""))
    if baseline.get("host") not in (None, report.get("host")):
        say(f"note: baseline was recorded on host "
            f"{baseline.get('host')!r}; speedup deltas may reflect "
            f"hardware, not code")
    return verdict


def run_sampling_bench(smoke: bool = False,
                       cases: Optional[Sequence] = None,
                       out: Optional[str] = "BENCH_sampling.json",
                       baseline: Optional[str] = None,
                       log=None) -> Dict:
    """Run the sampled-vs-full benchmark; returns (and writes) the report."""
    def say(message: str) -> None:
        if log is not None:
            log(message)

    cases = list(cases if cases is not None
                 else (SMOKE_CASES if smoke else FULL_CASES))
    rows: List[Dict] = []
    for name, size, sampling in cases:
        row = measure_error(name, size=size, sampling=sampling)
        rows.append(row)
        mode = (f"{row['phases']}ph" if row["phases"] else "strat")
        say(f"{name}x{size:<5d} {row['blocks']:>7d} blocks  "
            f"{row['windows']:>3d} win/{mode:<5s} "
            f"cov {100 * row['coverage']:.2f}%  "
            f"cycles err {row['cycles_err_pct']:+.2f}% "
            f"(CI ±{100 * row['est_cycles_ci'] / row['full_cycles']:.2f}%)  "
            f"ipc err {row['ipc_err_pct']:+.2f}%  "
            f"speedup x{row['effective_speedup']:.1f} "
            f"({row['full_wall_s']:.1f}s -> {row['sampled_wall_s']:.1f}s)")

    max_cycles_err = max(abs(r["cycles_err_pct"]) for r in rows)
    max_ipc_err = max(abs(r["ipc_err_pct"]) for r in rows)
    geomean_speedup = _geomean([r["effective_speedup"] for r in rows])
    min_speedup = min(r["effective_speedup"] for r in rows)
    for r in rows:
        r["meets_both_targets"] = (
            r["effective_speedup"] >= SPEEDUP_TARGET
            and abs(r["cycles_err_pct"]) <= ERROR_TARGET_PCT
            and abs(r["ipc_err_pct"]) <= ERROR_TARGET_PCT)
    passing = sum(1 for r in rows if r["meets_both_targets"])
    meets = (not smoke and passing >= MIN_PASSING_CASES
             and geomean_speedup >= GEOMEAN_TARGET
             and max_cycles_err <= ERROR_TARGET_PCT
             and max_ipc_err <= ERROR_TARGET_PCT)
    report = {
        "benchmark": "sampled-simulation",
        "suite": "smoke" if smoke else "full",
        **provenance(),
        "cases": len(rows),
        "speedup_target": SPEEDUP_TARGET,
        "geomean_target": GEOMEAN_TARGET,
        "error_target_pct": ERROR_TARGET_PCT,
        "min_passing_cases": MIN_PASSING_CASES,
        "passing_cases": passing,
        "geomean_effective_speedup": round(geomean_speedup, 2),
        "min_effective_speedup": round(min_speedup, 2),
        "max_cycles_err_pct": round(max_cycles_err, 3),
        "max_ipc_err_pct": round(max_ipc_err, 3),
        "meets_targets": meets,
        "results": rows,
    }
    say(f"geomean effective speedup x{geomean_speedup:.1f} over "
        f"{len(rows)} cases (target x{GEOMEAN_TARGET:.0f}); "
        f"worst cycles err {max_cycles_err:.2f}%, "
        f"worst ipc err {max_ipc_err:.2f}%; "
        f"{passing}/{len(rows)} cases meet both targets"
        + ("" if smoke else
           ("   MEETS TARGETS" if meets else "   MISSES TARGETS")))
    if baseline:
        with open(baseline) as fh:
            base_report = json.load(fh)
        report["baseline_delta"] = compare_to_sampling_baseline(
            report, base_report, log=log)
    if out:
        with open(out, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        say(f"wrote {out}")
    return report


def main(argv=None) -> int:
    import argparse
    parser = argparse.ArgumentParser(
        prog="repro.harness.sbench",
        description="Sampled vs. full simulation on scaled workloads.")
    parser.add_argument("--smoke", action="store_true",
                        help="~10x smaller sizes for CI")
    parser.add_argument("--out", default="BENCH_sampling.json")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help="earlier BENCH_sampling.json to diff against")
    args = parser.parse_args(argv)
    report = run_sampling_bench(
        smoke=args.smoke, out=args.out, baseline=args.baseline,
        log=lambda message: print(message, file=sys.stderr))
    if report.get("baseline_delta", {}).get("regressed"):
        return 1
    if not args.smoke and not report["meets_targets"]:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

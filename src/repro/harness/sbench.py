"""Sampling benchmark: sampled vs. full simulation on scaled workloads.

``python -m repro.harness sbench`` takes five scaled workloads — ``mcf``
(pointer chasing), ``dct8x8`` (dense loop nests), ``a2time01`` (branchy
control), ``bezier02`` (FP-dense), ``basefp01`` (FP arithmetic mix) — at
sizes where a full cycle-accurate run costs minutes, runs each both
ways, and reports the *realized* sampling error (the sampled estimate
against ground truth) next to the confidence interval the sampler
claimed, plus the effective speedup: full wall-clock over sampled
wall-clock, fast-forward and checkpoint overhead included.

The report is written to ``BENCH_sampling.json`` at the repo root.  The
headline claim it backs: **>=20x effective speedup at <=2% cycles/IPC
error on at least three scaled workloads** (``MIN_PASSING_CASES`` of
the roster must meet both targets simultaneously; every case must meet
the error target).  One case is kept in the roster even though it sits
right at the speedup line: ``mcf``'s bimodal cycles-per-block
distribution needs ~50 windows for a <=2% draw, which pushes its
coverage up and its speedup to ~20x — SimPoint-style window placement
is the known fix (ROADMAP.md).  Workloads whose windows carry a
systematic warm-state bias the CI cannot see (``rspeed01``, ``parser``,
``tblook01`` — wrong-path-*trained* predictor tables, ~8-12% error at
any scale and warmup) are excluded and documented in the EXPERIMENTS.md
sampling note.

``--smoke`` shrinks the sizes ~10x for CI — the error bounds still hold
there but the speedup shrinks with the coverage ratio, so the smoke
tier records speedups without asserting the 20x target.
"""

from __future__ import annotations

import json
import math
import sys
from typing import Dict, List, Optional, Sequence, Tuple

from ..sampling import SamplingConfig
from ..sampling.validate import measure_error
from .bench import _geomean, provenance

#: the full-size tier: (workload, size, sampling geometry).  Sizes put
#: every case in the ~300-400k committed-block range (minutes of full
#: detailed simulation); intervals keep coverage near 2% with ~30-50
#: windows each.  mcf runs a tighter interval than the rest: its
#: bimodal cycles-per-block needs the extra windows to stay inside the
#: error target (at the cost of its speedup, see the module docstring).
FULL_CASES: Tuple[Tuple[str, int, SamplingConfig], ...] = (
    ("mcf", 512, SamplingConfig(interval_blocks=8000, warmup_blocks=100,
                                measure_blocks=150)),
    ("dct8x8", 128, SamplingConfig(interval_blocks=10000, warmup_blocks=100,
                                   measure_blocks=150)),
    ("a2time01", 3072, SamplingConfig(interval_blocks=12000,
                                      warmup_blocks=100,
                                      measure_blocks=150)),
    ("bezier02", 4096, SamplingConfig(interval_blocks=10000,
                                      warmup_blocks=100,
                                      measure_blocks=150)),
    ("basefp01", 4096, SamplingConfig(interval_blocks=12000,
                                      warmup_blocks=100,
                                      measure_blocks=150)),
)

#: CI tier: a three-workload subset ~10x smaller, seconds not minutes.
SMOKE_CASES: Tuple[Tuple[str, int, SamplingConfig], ...] = (
    ("mcf", 48, SamplingConfig(interval_blocks=1200, warmup_blocks=60,
                               measure_blocks=100)),
    ("dct8x8", 12, SamplingConfig(interval_blocks=1200, warmup_blocks=60,
                                  measure_blocks=100)),
    ("a2time01", 256, SamplingConfig(interval_blocks=1200, warmup_blocks=60,
                                     measure_blocks=100)),
)

#: headline targets (asserted on the full tier only): at least
#: MIN_PASSING_CASES of the roster must meet both the speedup and the
#: error target simultaneously.
SPEEDUP_TARGET = 20.0
ERROR_TARGET_PCT = 2.0
MIN_PASSING_CASES = 3


def run_sampling_bench(smoke: bool = False,
                       cases: Optional[Sequence] = None,
                       out: Optional[str] = "BENCH_sampling.json",
                       log=None) -> Dict:
    """Run the sampled-vs-full benchmark; returns (and writes) the report."""
    def say(message: str) -> None:
        if log is not None:
            log(message)

    cases = list(cases if cases is not None
                 else (SMOKE_CASES if smoke else FULL_CASES))
    rows: List[Dict] = []
    for name, size, sampling in cases:
        row = measure_error(name, size=size, sampling=sampling)
        rows.append(row)
        say(f"{name}x{size:<5d} {row['blocks']:>7d} blocks  "
            f"{row['windows']:>3d} win  cov {100 * row['coverage']:.2f}%  "
            f"cycles err {row['cycles_err_pct']:+.2f}% "
            f"(CI ±{100 * row['est_cycles_ci'] / row['full_cycles']:.2f}%)  "
            f"ipc err {row['ipc_err_pct']:+.2f}%  "
            f"speedup x{row['effective_speedup']:.1f} "
            f"({row['full_wall_s']:.1f}s -> {row['sampled_wall_s']:.1f}s)")

    max_cycles_err = max(abs(r["cycles_err_pct"]) for r in rows)
    max_ipc_err = max(abs(r["ipc_err_pct"]) for r in rows)
    geomean_speedup = _geomean([r["effective_speedup"] for r in rows])
    min_speedup = min(r["effective_speedup"] for r in rows)
    for r in rows:
        r["meets_both_targets"] = (
            r["effective_speedup"] >= SPEEDUP_TARGET
            and abs(r["cycles_err_pct"]) <= ERROR_TARGET_PCT
            and abs(r["ipc_err_pct"]) <= ERROR_TARGET_PCT)
    passing = sum(1 for r in rows if r["meets_both_targets"])
    meets = (not smoke and passing >= MIN_PASSING_CASES
             and max_cycles_err <= ERROR_TARGET_PCT
             and max_ipc_err <= ERROR_TARGET_PCT)
    report = {
        "benchmark": "sampled-simulation",
        "suite": "smoke" if smoke else "full",
        **provenance(),
        "cases": len(rows),
        "speedup_target": SPEEDUP_TARGET,
        "error_target_pct": ERROR_TARGET_PCT,
        "min_passing_cases": MIN_PASSING_CASES,
        "passing_cases": passing,
        "geomean_effective_speedup": round(geomean_speedup, 2),
        "min_effective_speedup": round(min_speedup, 2),
        "max_cycles_err_pct": round(max_cycles_err, 3),
        "max_ipc_err_pct": round(max_ipc_err, 3),
        "meets_targets": meets,
        "results": rows,
    }
    say(f"geomean effective speedup x{geomean_speedup:.1f} over "
        f"{len(rows)} cases; worst cycles err {max_cycles_err:.2f}%, "
        f"worst ipc err {max_ipc_err:.2f}%; "
        f"{passing}/{len(rows)} cases meet both targets"
        + ("" if smoke else
           ("   MEETS TARGETS" if meets else "   MISSES TARGETS")))
    if out:
        with open(out, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        say(f"wrote {out}")
    return report


def main(argv=None) -> int:
    import argparse
    parser = argparse.ArgumentParser(
        prog="repro.harness.sbench",
        description="Sampled vs. full simulation on scaled workloads.")
    parser.add_argument("--smoke", action="store_true",
                        help="~10x smaller sizes for CI")
    parser.add_argument("--out", default="BENCH_sampling.json")
    args = parser.parse_args(argv)
    report = run_sampling_bench(
        smoke=args.smoke, out=args.out,
        log=lambda message: print(message, file=sys.stderr))
    if not args.smoke and not report["meets_targets"]:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

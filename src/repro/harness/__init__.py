"""Experiment drivers that regenerate the paper's tables and figures."""

from .runner import (
    BaselineRun,
    TripsRun,
    compare_workload,
    run_baseline_workload,
    run_trips_workload,
)
from .tables import table1_rows, table2_rows, table3_rows, render_table

__all__ = [
    "BaselineRun", "TripsRun", "compare_workload",
    "run_baseline_workload", "run_trips_workload",
    "table1_rows", "table2_rows", "table3_rows", "render_table",
]

"""Run workloads on the TRIPS core and the baseline, with validation.

Every run co-validates architectural outputs against the TIR interpreter's
golden results before its timing numbers are reported — the reproduction's
equivalent of the paper's RTL-vs-tsim-proc validation discipline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..baseline.ooo import BaselineConfig, BaselineStats, OooCore
from ..serialize import dataclass_from_dict, dataclass_to_dict
from ..baseline.srisc import run_functional
from ..compiler import CompiledProgram, compile_tir
from ..compiler.srisc import compile_srisc
from ..tir import TirProgram, interpret
from ..tir.semantics import truncate_load
from ..uarch.config import TripsConfig
from ..uarch.proc import ProcStats, TripsProcessor
from ..workloads import get_workload


class ValidationError(AssertionError):
    """A simulator produced architecturally-wrong results."""


@dataclass
class TripsRun:
    name: str
    level: str
    stats: ProcStats
    proc: TripsProcessor
    compiled: CompiledProgram

    @property
    def cycles(self) -> int:
        return self.stats.cycles

    @property
    def ipc(self) -> float:
        return self.stats.ipc


@dataclass
class BaselineRun:
    name: str
    stats: BaselineStats

    @property
    def cycles(self) -> int:
        return self.stats.cycles

    @property
    def ipc(self) -> float:
        return self.stats.ipc


def _resolve(workload, size: int = 1) -> TirProgram:
    if isinstance(workload, TirProgram):
        return workload
    return get_workload(workload, size=size)


def run_trips_workload(workload, level: str = "hand",
                       config: Optional[TripsConfig] = None,
                       trace: bool = False,
                       validate: bool = True,
                       telemetry=None, size: int = 1) -> TripsRun:
    """Compile and run one workload on tsim-proc.

    ``telemetry`` may be True or a
    :class:`~repro.telemetry.TelemetryConfig`; the recorder is then
    reachable as ``run.proc.tel``.  ``size`` scales the input for the
    workloads in :data:`~repro.workloads.registry.SCALABLE`.
    """
    tir = _resolve(workload, size=size)
    compiled = compile_tir(tir, level=level)
    proc = TripsProcessor(compiled.program,
                          config=config or TripsConfig(), trace=trace,
                          telemetry=telemetry)
    stats = proc.run()
    if validate:
        golden = interpret(tir).output_signature(tir.outputs)
        got = compiled.extract_outputs(proc.regs, proc.memory)
        if got != golden:
            raise ValidationError(
                f"{tir.name}@{level}: TRIPS outputs diverge from golden")
    return TripsRun(name=tir.name, level=level, stats=stats, proc=proc,
                    compiled=compiled)


def run_baseline_workload(workload,
                          config: Optional[BaselineConfig] = None,
                          validate: bool = True) -> BaselineRun:
    """Compile and run one workload on the conventional OoO baseline."""
    tir = _resolve(workload)
    program = compile_srisc(tir)
    functional = run_functional(program)
    if validate:
        golden = interpret(tir).output_signature(tir.outputs)
        parts = []
        for out in tir.outputs:
            if out in tir.arrays:
                arr = tir.arrays[out]
                base = program.array_addrs[out]
                parts.append((out, tuple(
                    truncate_load(
                        functional.memory.read(base + i * arr.elem_size,
                                               arr.elem_size),
                        arr.elem_size, arr.signed)
                    for i in range(len(arr.data)))))
            else:
                parts.append((out, functional.regs[program.var_regs[out]]))
        if tuple(parts) != golden:
            raise ValidationError(
                f"{tir.name}: baseline outputs diverge from golden")
    stats = OooCore(config).run(program, functional)
    return BaselineRun(name=tir.name, stats=stats)


@dataclass
class Comparison:
    """One benchmark's Table 3 performance columns."""

    name: str
    speedup_tcc: float
    speedup_hand: Optional[float]
    ipc_alpha: float
    ipc_tcc: float
    ipc_hand: Optional[float]

    # -- JSON round trip (simlab cache records, harness --json) ---------
    def to_dict(self) -> Dict:
        return dataclass_to_dict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "Comparison":
        return dataclass_from_dict(cls, data)


def compare_workload(workload, config: Optional[TripsConfig] = None,
                     hand: bool = True) -> Comparison:
    """TRIPS (both levels) vs the baseline, the paper's speedup metric:
    the ratio of cycle counts for the same workload."""
    tir = _resolve(workload)
    alpha = run_baseline_workload(tir)
    tcc = run_trips_workload(tir, level="tcc", config=config)
    hand_run = run_trips_workload(tir, level="hand", config=config) \
        if hand else None
    return Comparison(
        name=tir.name,
        speedup_tcc=alpha.cycles / tcc.cycles,
        speedup_hand=(alpha.cycles / hand_run.cycles) if hand_run else None,
        ipc_alpha=alpha.ipc,
        ipc_tcc=tcc.ipc,
        ipc_hand=hand_run.ipc if hand_run else None,
    )

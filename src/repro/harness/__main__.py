"""Command-line entry point: regenerate the paper's tables.

Usage::

    python -m repro.harness table1
    python -m repro.harness table2
    python -m repro.harness table3 [workload ...] [--json] [--workers N]
                                   [--cache DIR]
    python -m repro.harness floorplan
    python -m repro.harness run <workload> [--level hand|tcc] [--json]
                                [--size N] [--sample [--interval B]
                                [--warmup B] [--measure B] [--phases]
                                [--phase-windows N] [--max-phases K]
                                [--warm-horizon B]]
    python -m repro.harness sbench [--smoke] [--out FILE]
                                   [--baseline FILE]
    python -m repro.harness inspect <workload> [--level hand|tcc]
                                    [--mem l2perfect|nuca]
                                    [--perfetto out.json] [--json]
    python -m repro.harness diff <specA> <specB> [--cache DIR]
                                 [--workers N] [--top N] [--json]

``inspect`` runs one workload with the :mod:`repro.telemetry` probe
layer enabled and prints the per-tile utilization heatmap and
stall-attribution table; ``--perfetto`` additionally exports a
Chrome/Perfetto trace-event timeline.

``diff`` compares two telemetry runs (served from the simlab cache,
simulated on a miss) and attributes the cycle delta to the stall
taxonomy, per-tile shifts, and per-link traffic movers.  Specs use the
``workload[@level][/mem][+flag|-flag ...]`` grammar — e.g.
``harness diff 'vadd@hand/l2perfect' 'vadd@hand/nuca'`` asks where the
NUCA hierarchy spends its extra cycles (see :mod:`repro.metrics.diff`).

``run --sample`` switches to sampled + checkpointed simulation
(:mod:`repro.sampling`): architectural results stay exact, cycles/IPC
become estimates with 95% confidence intervals, and ``--size`` scales the
input far past what full simulation can afford.  ``sbench`` measures the
sampled-vs-full error and effective speedup on scaled workloads and
writes ``BENCH_sampling.json``.

``table3`` submits its per-benchmark jobs through :mod:`repro.simlab`;
``--workers``/``--cache`` opt into parallel execution and result caching
(see ``python -m repro.simlab`` for the full sweep engine).  ``--json``
emits machine-consumable rows instead of the fixed-width table.
"""

from __future__ import annotations

import argparse
import json
import sys

from ..analysis.floorplan import render_floorplan
from ..simlab import ResultCache
from ..workloads import workload_names
from .runner import run_trips_workload
from .tables import render_table, table1_rows, table2_rows, table3_rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.harness",
        description="Regenerate the TRIPS paper's tables and figures.")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("table1", help="Table 1: tile specifications")
    sub.add_parser("table2", help="Table 2: control and data networks")
    t3 = sub.add_parser("table3", help="Table 3: overheads + performance")
    t3.add_argument("workloads", nargs="*", default=None,
                    help="subset of benchmarks (default: all 21)")
    t3.add_argument("--json", action="store_true",
                    help="emit rows as JSON instead of a text table")
    t3.add_argument("--workers", type=int, default=0, metavar="N",
                    help="simlab worker processes (0 = serial, default)")
    t3.add_argument("--cache", default=None, metavar="DIR",
                    help="simlab result-cache directory (default: off)")
    sub.add_parser("floorplan", help="Figure 6: chip floorplan")
    sub.add_parser("list", help="list the benchmark suite")
    bench_p = sub.add_parser(
        "bench", help="engine throughput: fast path vs. escape hatch")
    bench_p.add_argument("workloads", nargs="*", default=None,
                         help="subset of benchmarks (default: Table 3 sweep)")
    bench_p.add_argument("--smoke", action="store_true",
                         help="three-workload CI subset")
    bench_p.add_argument("--repeat", type=int, default=2, metavar="N",
                         help="best-of-N timing per engine (default 2)")
    bench_p.add_argument("--out", default="BENCH_engine.json", metavar="FILE",
                         help="JSON report path (default BENCH_engine.json)")
    bench_p.add_argument("--baseline", default=None, metavar="FILE",
                         help="earlier BENCH_engine.json to diff against: "
                         "prints per-case and geomean throughput deltas "
                         "and exits 1 on a >10%% geomean drop")
    bench_p.add_argument("--json", action="store_true",
                         help="emit the report on stdout as well")
    prof_p = sub.add_parser(
        "profile", help="cProfile the simulation loop of one workload")
    prof_p.add_argument("workload")
    prof_p.add_argument("--level", default="tcc", choices=["tcc", "hand"])
    prof_p.add_argument("--mem", default="l2perfect",
                        choices=["l2perfect", "nuca"],
                        help="secondary memory model (default l2perfect)")
    prof_p.add_argument("--top", type=int, default=25, metavar="N",
                        help="functions per table (default 25)")
    prof_p.add_argument("--slow", action="store_true",
                        help="profile the full-scan engine instead")
    prof_p.add_argument("--sort", default="cumulative",
                        choices=["cumulative", "tottime", "ncalls"])
    run_p = sub.add_parser("run", help="run one workload on tsim-proc")
    run_p.add_argument("workload")
    run_p.add_argument("--level", default="hand", choices=["tcc", "hand"])
    run_p.add_argument("--size", type=int, default=1, metavar="N",
                       help="input-size multiplier for scalable workloads")
    run_p.add_argument("--sample", action="store_true",
                       help="sampled + checkpointed simulation: exact "
                       "architectural results, cycle estimates with 95%% "
                       "confidence intervals (see repro.sampling)")
    run_p.add_argument("--interval", type=int, default=2000, metavar="B",
                       help="blocks between measurement windows "
                       "(default 2000)")
    run_p.add_argument("--warmup", type=int, default=150, metavar="B",
                       help="discarded detailed warmup per window "
                       "(default 150)")
    run_p.add_argument("--measure", type=int, default=300, metavar="B",
                       help="measured blocks per window (default 300)")
    run_p.add_argument("--phases", action="store_true",
                       help="SimPoint-style phase clustering: pick "
                       "windows by BBV similarity instead of stratified "
                       "stride (see repro.sampling.phases)")
    run_p.add_argument("--phase-windows", type=int, default=12,
                       metavar="N", help="target window count under "
                       "--phases (default 12)")
    run_p.add_argument("--max-phases", type=int, default=8, metavar="K",
                       help="k-means cluster ceiling under --phases "
                       "(default 8)")
    run_p.add_argument("--warm-horizon", type=int, default=None,
                       metavar="B", help="bound functional warming to "
                       "the last B blocks before each window (default: "
                       "warm continuously)")
    run_p.add_argument("--json", action="store_true",
                       help="emit the full stats record as JSON")
    sb_p = sub.add_parser(
        "sbench", help="sampled vs. full simulation on scaled workloads")
    sb_p.add_argument("--smoke", action="store_true",
                      help="~10x smaller sizes for CI")
    sb_p.add_argument("--out", default="BENCH_sampling.json", metavar="FILE",
                      help="JSON report path (default BENCH_sampling.json)")
    sb_p.add_argument("--baseline", default=None, metavar="FILE",
                      help="earlier BENCH_sampling.json to diff against: "
                      "exits 1 on a >10%% geomean speedup drop or "
                      "realized-error growth past the target")
    sb_p.add_argument("--json", action="store_true",
                      help="emit the report on stdout as well")
    ins_p = sub.add_parser(
        "inspect", help="run one workload with telemetry and report")
    ins_p.add_argument("workload")
    ins_p.add_argument("--level", default="hand", choices=["tcc", "hand"])
    ins_p.add_argument("--mem", default="l2perfect",
                       choices=["l2perfect", "nuca"],
                       help="secondary memory model (default l2perfect)")
    ins_p.add_argument("--perfetto", default=None, metavar="FILE",
                       help="also export a Perfetto trace-event JSON")
    ins_p.add_argument("--json", action="store_true",
                       help="emit the telemetry summary as JSON")
    diff_p = sub.add_parser(
        "diff", help="attribute the cycle delta between two configs")
    diff_p.add_argument("spec_a", metavar="specA",
                        help="baseline: workload[@level][/mem][±flag...]")
    diff_p.add_argument("spec_b", metavar="specB",
                        help="candidate, same grammar")
    diff_p.add_argument("--cache", default=None, metavar="DIR",
                        help="simlab result-cache directory (default: "
                             "the simlab default cache)")
    diff_p.add_argument("--workers", type=int, default=0, metavar="N",
                        help="simlab worker processes (0 = serial)")
    diff_p.add_argument("--top", type=int, default=8, metavar="N",
                        help="rows per movers table (default 8)")
    diff_p.add_argument("--json", action="store_true",
                        help="emit the attribution report as JSON")

    args = parser.parse_args(argv)
    if args.command == "table1":
        print(render_table(table1_rows(), "Table 1: TRIPS Tile Specifications"))
    elif args.command == "table2":
        print(render_table(table2_rows(),
                           "Table 2: TRIPS Control and Data Networks"))
    elif args.command == "table3":
        names = args.workloads or None
        cache = ResultCache(args.cache) if args.cache else None
        rows = table3_rows(names, workers=args.workers, cache=cache,
                           log=lambda message: print(message,
                                                     file=sys.stderr))
        if args.json:
            print(json.dumps(rows, indent=2))
        else:
            print(render_table(rows, "Table 3: overheads and performance"))
    elif args.command == "bench":
        from .bench import run_bench
        report = run_bench(smoke=args.smoke, repeat=args.repeat,
                           workloads=args.workloads or None, out=args.out,
                           baseline=args.baseline,
                           log=lambda message: print(message,
                                                     file=sys.stderr))
        if args.json:
            print(json.dumps(report, indent=2))
        if not report["equivalent"] \
                or report.get("baseline_delta", {}).get("regressed"):
            return 1
    elif args.command == "profile":
        from .profile import profile_workload
        print(profile_workload(args.workload, level=args.level,
                               mem=args.mem, top=args.top,
                               fast_path=False if args.slow else None,
                               sort=args.sort))
    elif args.command == "floorplan":
        print(render_floorplan())
    elif args.command == "list":
        for name in workload_names():
            print(name)
    elif args.command == "run" and args.sample:
        from ..sampling import SamplingConfig, run_sampled_workload
        sampling = SamplingConfig(interval_blocks=args.interval,
                                  warmup_blocks=args.warmup,
                                  measure_blocks=args.measure,
                                  clustering=args.phases,
                                  phase_windows=args.phase_windows,
                                  max_phases=args.max_phases,
                                  warm_horizon=args.warm_horizon)
        run = run_sampled_workload(args.workload, level=args.level,
                                   sampling=sampling, size=args.size)
        s = run.sampled
        if args.json:
            print(json.dumps({"name": run.name, "level": run.level,
                              "size": args.size,
                              "sampling": sampling.to_dict(),
                              "sampled": s.to_dict()}, indent=2))
        else:
            ci_pct = 100 * s.cycles_ci / s.cycles_est if s.cycles_est \
                else float("inf")
            print(f"{run.name} @ {args.level} (sampled): "
                  f"{s.cycles_est:.0f} ± {s.cycles_ci:.0f} cycles "
                  f"(95% CI ±{ci_pct:.2f}%), "
                  f"IPC {s.ipc_est:.2f} ± {s.ipc_ci:.2f}, "
                  f"{s.blocks_total} blocks")
            print(f"  {s.windows} realized windows, "
                  f"{s.measured_blocks} measured blocks "
                  f"({100 * s.coverage:.2f}% cycle-accurate coverage)"
                  + (f", warm horizon {sampling.warm_horizon} blocks"
                     if sampling.warm_horizon is not None else ""))
            if s.phases:
                windows_by_phase = {}
                for detail in s.window_detail:
                    phase = detail.get("phase", 0)
                    windows_by_phase[phase] = \
                        windows_by_phase.get(phase, 0) + 1
                parts = [f"p{c} {100 * w:.1f}%"
                         f"×{windows_by_phase.get(c, 0)}"
                         for c, w in enumerate(s.phase_weights)]
                print(f"  {s.phases} phases "
                      f"(weight×windows): {', '.join(parts)}")
    elif args.command == "run":
        run = run_trips_workload(args.workload, level=args.level,
                                 size=args.size)
        if args.json:
            print(json.dumps({"name": run.name, "level": run.level,
                              "cycles": run.cycles,
                              "ipc": round(run.ipc, 4),
                              "stats": run.stats.to_dict()}, indent=2))
        else:
            print(f"{run.name} @ {args.level}: {run.cycles} cycles, "
                  f"IPC {run.ipc:.2f}, "
                  f"{run.stats.blocks_committed} blocks committed, "
                  f"{run.stats.blocks_flushed} flushed "
                  f"({run.stats.flushes_mispredict} mispredict / "
                  f"{run.stats.flushes_violation} violation)")
    elif args.command == "sbench":
        from .sbench import run_sampling_bench
        report = run_sampling_bench(
            smoke=args.smoke, out=args.out, baseline=args.baseline,
            log=lambda message: print(message, file=sys.stderr))
        if args.json:
            print(json.dumps(report, indent=2))
        if report.get("baseline_delta", {}).get("regressed"):
            return 1
        if not args.smoke and not report["meets_targets"]:
            return 1
    elif args.command == "inspect":
        from ..telemetry.perfetto import export_perfetto
        from ..telemetry.report import render_report
        from ..uarch.config import TripsConfig
        config = TripsConfig(perfect_l2=(args.mem != "nuca"))
        run = run_trips_workload(args.workload, level=args.level,
                                 config=config, telemetry=True)
        summary = run.proc.tel.summary()
        if args.json:
            print(json.dumps(summary.to_dict(), indent=2))
        else:
            title = (f"{args.workload} @ {args.level} "
                     f"(mem={args.mem}, IPC {run.ipc:.2f})")
            print(render_report(summary, title=title))
        if args.perfetto:
            doc = export_perfetto(run.proc.tel, args.perfetto)
            print(f"wrote {args.perfetto} "
                  f"({len(doc['traceEvents'])} trace events)",
                  file=sys.stderr)
    elif args.command == "diff":
        from ..metrics.diff import DiffError, diff_specs, render_diff
        from ..simlab.cache import DEFAULT_CACHE_DIR
        cache = ResultCache(args.cache or DEFAULT_CACHE_DIR)
        try:
            report = diff_specs(
                args.spec_a, args.spec_b, cache=cache,
                workers=args.workers,
                log=lambda message: print(message, file=sys.stderr))
        except DiffError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps(report, indent=2))
        else:
            print(render_diff(report, top=args.top))
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Evaluation machinery: critical-path attribution, area model, floorplan.

* :mod:`repro.analysis.critpath` — Fields-et-al.-style critical-path
  construction and cycle attribution (Table 3, left half).
* :mod:`repro.analysis.area` — the Table 1 / Table 2 area and wire model.
* :mod:`repro.analysis.floorplan` — the Figure 6 floorplan renderer.
"""

from .critpath import CATEGORIES, CriticalPathReport, analyze_critical_path

__all__ = ["CATEGORIES", "CriticalPathReport", "analyze_critical_path"]

"""Figure 6: an ASCII rendering of the TRIPS chip floorplan.

The floorplan follows the logical tile hierarchy directly (Section 5): two
processor cores on the east side, the 4x10 OCN with its 16 MT banks down
the middle-west, and the I/O clients (SDC/DMA/EBC/C2C) on the west edge —
nearest-neighbour connectivity only.
"""

from __future__ import annotations

from typing import List

from .area import AreaModel

#: each row: (west I/O client or MT column, OCN column, processor tiles)
_PROC_ROWS = [
    ["GT", "RT", "RT", "RT", "RT"],
    ["IT", "DT", "ET", "ET", "ET", "ET"],
    ["IT", "DT", "ET", "ET", "ET", "ET"],
    ["IT", "DT", "ET", "ET", "ET", "ET"],
    ["IT", "DT", "ET", "ET", "ET", "ET"],
]
_IO_WEST = ["DMA", "SDC", "EBC", "C2C", "SDC", "DMA"]


def render_floorplan(model: AreaModel = None) -> str:
    """The Figure 6 tile mosaic plus the area-by-function breakdown."""
    model = model or AreaModel.prototype()
    lines: List[str] = []
    lines.append("+" + "-" * 74 + "+")
    lines.append("|  TRIPS chip floorplan (18.30mm x 18.37mm, 130nm ASIC)"
                 .ljust(75) + "|")
    lines.append("+" + "-" * 74 + "+")

    def fmt_proc(rows, label):
        out = [f"  {label}:"]
        out.append("    IT " + " ".join(f"{t:>3}" for t in _PROC_ROWS[0]))
        for row in _PROC_ROWS[1:]:
            out.append("       " + " ".join(f"{t:>3}" for t in row))
        return out

    lines.append("  west I/O        OCN (4x10 mesh)           processors")
    for r in range(6):
        io = _IO_WEST[r]
        mts = " ".join(["MT", "MT", "NT"]) if r < 4 else "MT MT NT"
        lines.append(f"   {io:>4}   |  {mts}  |   "
                     + ("PROC 0" if r < 3 else "PROC 1"))
    lines.append("")
    for label in ("PROC 0", "PROC 1"):
        lines.extend(fmt_proc(_PROC_ROWS, label))
        lines.append("")

    lines.append("  area by function:")
    for row in _function_breakdown(model):
        lines.append(f"    {row[0]:<28s} {row[1]:5.1f}%")
    return "\n".join(lines)


def _function_breakdown(model: AreaModel) -> List:
    """Coarse area breakdown by function, as Figure 6 annotates."""
    t1 = {r["Tile"]: r for r in model.table1() if r["Tile"] != "Chip Total"}

    def pct(*names):
        return sum(t1[n]["% Chip Area"] for n in names)

    rows = [
        ("processor cores (GT/RT/IT/DT/ET)", pct("GT", "RT", "IT", "DT", "ET")),
        ("secondary memory (MT)", pct("MT")),
        ("OCN interfaces (NT)", pct("NT")),
        ("I/O controllers (SDC/DMA/EBC/C2C)", pct("SDC", "DMA", "EBC", "C2C")),
    ]
    covered = sum(r[1] for r in rows)
    rows.append(("top-level routing, pads, spare", 100.0 - covered))
    return rows

"""Area and wiring model for the TRIPS chip (Tables 1 and 2, Section 5).

Tables 1 and 2 are descriptive physical-design data.  We model them
parametrically: per-tile structural parameters (cell counts, array bits,
areas, replication counts as published for the 130nm IBM CU-11 prototype)
feed a model that recomputes every derived quantity — totals, chip-area
percentages, the overhead attributions quoted in Section 5.2 (OPN ~12% of
processor area, OCN ~14% of chip, LSQ ~13% of core / ~40% of each DT) —
so design-change ablations (LSQ sizing, OPN width) move the numbers
coherently instead of being a hard-coded table.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional


@dataclass(frozen=True)
class TileSpec:
    """One tile type's physical parameters (Table 1 row)."""

    name: str
    cell_count: int        # placeable instances
    array_bits: int        # dense SRAM/register-array bits
    size_mm2: float
    tile_count: int
    role: str


#: the prototype's published per-tile data (Table 1).
PROTOTYPE_TILES: List[TileSpec] = [
    TileSpec("GT", 52_000, 93_000, 3.1, 2, "global control"),
    TileSpec("RT", 26_000, 14_000, 1.2, 8, "register file bank"),
    TileSpec("IT", 5_000, 135_000, 1.0, 10, "instruction cache bank"),
    TileSpec("DT", 119_000, 89_000, 8.8, 8, "data cache + LSQ"),
    TileSpec("ET", 84_000, 13_000, 2.9, 32, "execution"),
    TileSpec("MT", 60_000, 542_000, 6.5, 16, "NUCA L2 bank"),
    TileSpec("NT", 23_000, 0, 1.0, 24, "OCN interface/routing"),
    TileSpec("SDC", 64_000, 6_000, 5.8, 2, "SDRAM controller"),
    TileSpec("DMA", 30_000, 4_000, 1.3, 2, "DMA controller"),
    TileSpec("EBC", 29_000, 0, 1.0, 1, "external bus controller"),
    TileSpec("C2C", 48_000, 0, 2.2, 1, "chip-to-chip network"),
]

#: published whole-chip reference values.
CHIP_AREA_MM2 = 18.30 * 18.37
CHIP_CELLS = 5_800_000
CHIP_ARRAY_BITS = 11_500_000

#: fraction of each DT occupied by the replicated 256-entry LSQ
#: (Section 7: LSQs occupy 40% of the DTs).
LSQ_FRACTION_OF_DT = 0.40
PROTOTYPE_LSQ_ENTRIES = 256


@dataclass(frozen=True)
class NetworkSpec:
    """One micronetwork (Table 2 row)."""

    name: str
    use: str
    bits: int
    links_per_tile: Optional[int] = None

    def label(self) -> str:
        if self.links_per_tile:
            return f"{self.bits} (x{self.links_per_tile})"
        return str(self.bits)


#: Table 2: control and data networks with per-link bit widths.
PROTOTYPE_NETWORKS: List[NetworkSpec] = [
    NetworkSpec("Global Dispatch (GDN)", "I-fetch", 205),
    NetworkSpec("Global Status (GSN)", "Block status", 6),
    NetworkSpec("Global Control (GCN)", "Commit/flush", 13),
    NetworkSpec("Global Refill (GRN)", "I-cache refill", 36),
    NetworkSpec("Data Status (DSN)", "Store completion", 72),
    NetworkSpec("External Store (ESN)", "L1 misses", 10),
    NetworkSpec("Operand Network (OPN)", "Operand routing", 141,
                links_per_tile=8),
    NetworkSpec("On-chip Network (OCN)", "Memory traffic", 138,
                links_per_tile=8),
]


@dataclass
class AreaModel:
    """Derived chip-level accounting with ablation support."""

    tiles: List[TileSpec]

    @classmethod
    def prototype(cls) -> "AreaModel":
        return cls(tiles=list(PROTOTYPE_TILES))

    # -- Table 1 -----------------------------------------------------------
    def total_area(self) -> float:
        # tiled area plus top-level routing/pads: normalize against the
        # published die so percentages match the paper's "% Chip Area"
        return CHIP_AREA_MM2

    def tiled_area(self) -> float:
        return sum(t.size_mm2 * t.tile_count for t in self.tiles)

    def table1(self) -> List[Dict]:
        """Rows of Table 1, with the derived % column recomputed."""
        rows = []
        for t in self.tiles:
            rows.append({
                "Tile": t.name,
                "Cell Count": t.cell_count,
                "Array Bits": t.array_bits,
                "Size (mm2)": t.size_mm2,
                "Tile Count": t.tile_count,
                "% Chip Area": 100.0 * t.size_mm2 * t.tile_count
                               / self.total_area(),
            })
        rows.append({
            "Tile": "Chip Total",
            "Cell Count": CHIP_CELLS,
            "Array Bits": CHIP_ARRAY_BITS,
            "Size (mm2)": round(self.total_area()),
            "Tile Count": sum(t.tile_count for t in self.tiles),
            "% Chip Area": 100.0,
        })
        return rows

    def by_name(self, name: str) -> TileSpec:
        for t in self.tiles:
            if t.name == name:
                return t
        raise KeyError(name)

    # -- Section 5.2 overhead attributions -----------------------------------
    def processor_core_area(self) -> float:
        """One core = 1 GT + 4 RT + 5 IT + 4 DT + 16 ET."""
        per_core = {"GT": 1, "RT": 4, "IT": 5, "DT": 4, "ET": 16}
        return sum(self.by_name(n).size_mm2 * c for n, c in per_core.items())

    def lsq_area_per_core(self) -> float:
        return self.by_name("DT").size_mm2 * 4 * LSQ_FRACTION_OF_DT

    def lsq_fraction_of_core(self) -> float:
        """Paper: ~13% of the processor core area."""
        return self.lsq_area_per_core() / self.processor_core_area()

    def ocn_fraction_of_chip(self) -> float:
        """Paper: OCN routers/buffering ~14% of the chip.  We attribute the
        NT tiles plus the router share of each MT."""
        nt = self.by_name("NT")
        mt = self.by_name("MT")
        router_share_of_mt = 0.25   # router + 4-VC buffering share per MT
        area = nt.size_mm2 * nt.tile_count \
            + mt.size_mm2 * mt.tile_count * router_share_of_mt
        return area / self.total_area()

    def opn_fraction_of_processor(self) -> float:
        """Paper: OPN routers/links ~12% of total processor area.  The OPN
        presence is a per-tile router share at the 25 OPN clients."""
        router_share = {"GT": 0.10, "RT": 0.20, "DT": 0.06, "ET": 0.16}
        area = sum(self.by_name(n).size_mm2 * c * router_share[n]
                   for n, c in (("GT", 1), ("RT", 4), ("DT", 4), ("ET", 16)))
        return area / self.processor_core_area()

    # -- ablations -------------------------------------------------------------
    def with_lsq_entries(self, entries: int) -> "AreaModel":
        """Resize the replicated LSQs (the paper's 'brute force' choice).

        LSQ area scales ~linearly in entries (CAM dominated); the rest of
        the DT is fixed.
        """
        dt = self.by_name("DT")
        fixed = dt.size_mm2 * (1 - LSQ_FRACTION_OF_DT)
        lsq = dt.size_mm2 * LSQ_FRACTION_OF_DT \
            * entries / PROTOTYPE_LSQ_ENTRIES
        new_dt = replace(dt, size_mm2=round(fixed + lsq, 2))
        return AreaModel(tiles=[new_dt if t.name == "DT" else t
                                for t in self.tiles])

    def table2(self) -> List[Dict]:
        return [{"Network": n.name, "Use": n.use, "Bits": n.label()}
                for n in PROTOTYPE_NETWORKS]


def wire_count_check() -> Dict[str, int]:
    """Cross-check Table 2's OPN width against our message model.

    One OPN link = control channel (destination/type/identifiers) + a
    64-bit data channel; the paper counts 141 wires.  Our accounting:
    64 data + 9 target + block/frame ids + valid/credit sideband.
    """
    data = 64
    target = 9          # 7-bit slot + 2-bit operand type
    frame = 3           # 8 in-flight blocks
    lsid = 5
    opcode_kind = 2     # operand / memory / branch
    sideband = 141 - (data + target + frame + lsid + opcode_kind)
    return {"data": data, "target": target, "frame": frame, "lsid": lsid,
            "kind": opcode_kind, "routing_and_flow_control": sideband,
            "total": 141}

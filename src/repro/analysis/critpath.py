"""Critical-path construction and cycle attribution (Section 5.4).

The paper uses the methodology of Fields et al. [7]: build the dependence
graph of the execution, find the critical (longest) path, and attribute
each of its cycles to a microarchitectural activity.  tsim-proc records a
*last-arrival* edge for every dynamic event (which requirement completed
last), so the critical path here is reconstructed by walking those edges
backwards from the final block's commit acknowledgment to the first fetch.

Categories (the columns of Table 3):

* ``ifetch``          — instruction distribution: fetch pipeline + GDN delivery
* ``opn_hops``        — operand network hop latency between dependent insts
* ``opn_contention``  — operand network queueing beyond pure hop latency
* ``fanout``          — execution of mov/null instructions that replicate
                        operands (compiler fanout trees, predicate merges)
* ``block_complete``  — waiting for the GT to learn all outputs arrived
                        (GSN daisy-chains, DSN store counting)
* ``commit``          — commit command + architectural writes + ack + the
                        wait for a window slot bounded by older commits
* ``other``           — ALU execution, cache access, select stalls, memory
                        ordering waits: components a monolithic core has too
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..uarch.trace import BlockEvent, InstEvent, Trace

CATEGORIES = ("ifetch", "opn_hops", "opn_contention", "fanout",
              "block_complete", "commit", "other")

#: opcodes whose execution is operand-replication overhead, not real work.
_FANOUT_MNEMONICS = {"mov", "null"}


@dataclass
class CriticalPathReport:
    """Cycle attribution of one run's critical path."""

    cycles: Dict[str, int] = field(default_factory=lambda: {
        c: 0 for c in CATEGORIES})
    path_length: int = 0
    events_walked: int = 0

    def charge(self, category: str, cycles: int) -> None:
        if cycles > 0:
            self.cycles[category] += cycles
            self.path_length += cycles

    def percentages(self) -> Dict[str, float]:
        total = max(1, self.path_length)
        return {c: 100.0 * v / total for c, v in self.cycles.items()}

    def row(self) -> Dict[str, float]:
        """A Table 3 row: the seven categories as percentages."""
        p = self.percentages()
        return {
            "IFetch": p["ifetch"],
            "OPN Hops": p["opn_hops"],
            "OPN Cont.": p["opn_contention"],
            "Fanout Ops": p["fanout"],
            "Block Complete": p["block_complete"],
            "Block Commit": p["commit"],
            "Other": p["other"],
        }


class _Walker:
    """Backward walk over last-arrival edges."""

    MAX_STEPS = 5_000_000

    def __init__(self, trace: Trace, report: CriticalPathReport):
        self.trace = trace
        self.report = report
        self.steps = 0
        # committed blocks indexed once in seq order: predecessor lookups
        # during the walk become a bisect instead of a scan over every
        # traced block (the walk visits O(blocks) commit edges, so the
        # naive scan was quadratic in run length)
        committed = sorted((b.seq, b) for b in trace.blocks.values()
                           if b.outcome == "committed")
        self._committed_seqs = [seq for seq, _b in committed]
        self._committed_blocks = [b for _seq, b in committed]

    # Each visit method returns the next (kind, ...) hop or None (done).
    def walk(self) -> None:
        final = self.trace.blocks.get(self.trace.final_block_uid)
        if final is None:      # nothing committed; nothing to attribute
            return
        hop: Optional[Tuple] = ("ack", final)
        while hop is not None:
            self.steps += 1
            if self.steps > self.MAX_STEPS:
                raise RuntimeError("critical-path walk did not terminate")
            kind = hop[0]
            if kind == "ack":
                hop = self._from_ack(hop[1])
            elif kind == "commit":
                hop = self._from_commit(hop[1])
            elif kind == "complete":
                hop = self._from_complete(hop[1])
            elif kind == "inst":
                hop = self._from_inst(hop[1], hop[2])
            elif kind == "fetch":
                hop = self._from_fetch(hop[1], hop[2])
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown hop {hop!r}")
        self.report.events_walked = self.steps

    # ------------------------------------------------------------------
    def _block(self, uid: int) -> Optional[BlockEvent]:
        return self.trace.blocks.get(uid)

    def _from_ack(self, block: BlockEvent):
        self.report.charge("commit", block.ack_t - block.commit_t)
        return ("commit", block)

    def _from_commit(self, block: BlockEvent):
        """The commit command waited for completion and for older commits."""
        if block.commit_t > block.completed_t:
            # bounded by an older block's commit command (pipelined commit)
            older = self._previous_committed(block)
            if older is not None:
                self.report.charge("commit",
                                   block.commit_t - older.commit_t)
                return ("commit", older)
        self.report.charge("commit", max(0, block.commit_t - block.completed_t))
        return ("complete", block)

    def _previous_committed(self, block: BlockEvent) -> Optional[BlockEvent]:
        i = bisect_left(self._committed_seqs, block.seq)
        return self._committed_blocks[i - 1] if i else None

    def _from_complete(self, block: BlockEvent):
        """Completion = last output + GSN/DSN signalling to the GT."""
        kind, producer_key = block.complete_reason if \
            len(block.complete_reason) == 2 else ("unknown", None)
        producer = self.trace.insts.get(producer_key) \
            if producer_key is not None else None
        if producer is None or producer.complete_t < 0:
            self.report.charge("block_complete",
                               block.completed_t - block.dispatch_done_t)
            return ("fetch", block, block.dispatch_done_t)
        # output value left the producer at complete_t; the remainder is
        # output delivery + completion-detection signalling
        self.report.charge("block_complete",
                           block.completed_t - producer.complete_t)
        return ("inst", producer, producer.complete_t)

    def _from_inst(self, inst: InstEvent, at_t: int):
        """Walk back through one dynamic instruction."""
        # execution interval: issue -> complete
        exec_cycles = max(0, inst.complete_t - inst.issue_t)
        if inst.mnemonic in _FANOUT_MNEMONICS:
            self.report.charge("fanout", exec_cycles)
        elif inst.mem_latency or inst.mem_hops or inst.mem_wait:
            # a load: split its round trip
            self.report.charge("opn_hops", inst.mem_hops)
            self.report.charge("opn_contention", inst.mem_queue)
            self.report.charge("other",
                               exec_cycles - inst.mem_hops - inst.mem_queue)
        else:
            self.report.charge("other", exec_cycles)
        # select / ALU-contention wait: ready -> issue (monolithic cores
        # have this too; the paper folds it into Other)
        if inst.ready_t >= 0:
            self.report.charge("other", max(0, inst.issue_t - inst.ready_t))

        release = inst.release
        kind = release[0]
        if kind == "operand":
            _, producer_key, send_t, hops, queue, arrive_t = release
            self.report.charge("opn_hops", hops)
            self.report.charge("opn_contention", queue)
            producer = self.trace.insts.get(producer_key)
            if producer is None:
                return self._fetch_of(inst, send_t)
            return ("inst", producer, send_t)
        if kind in ("local", "regfwd"):
            producer = self.trace.insts.get(release[1])
            if producer is None:
                return self._fetch_of(inst, release[2])
            if kind == "regfwd" and producer.complete_t >= 0:
                # producer ET -> RT network travel, then RT-side wait
                # (read buffered until the write-queue value landed)
                arrive_rt = release[3] if len(release) > 3 else release[2]
                self.report.charge("opn_hops",
                                   max(0, arrive_rt - producer.complete_t))
                self.report.charge("other",
                                   max(0, release[2] - arrive_rt))
            return ("inst", producer, release[2])
        # dispatch-released: charge GDN delivery as IFetch back to fetch
        return self._fetch_of(inst, release[1] if len(release) > 1 else -1)

    def _fetch_of(self, inst: InstEvent, at_t: int):
        block = self._block(inst.key[0])
        if block is None:
            return None
        arrive = inst.dispatch_t if inst.dispatch_t >= 0 else at_t
        self.report.charge("ifetch", max(0, arrive - block.fetch_t))
        return ("fetch", block, block.fetch_t)

    def _from_fetch(self, block: BlockEvent, at_t: int):
        """Why did this block's fetch happen when it did?"""
        cause = block.cause
        kind = cause[0]
        if kind == "init":
            return None
        if kind == "frame":
            dealloc_uid = cause[1]
            older = self._block(dealloc_uid) if dealloc_uid is not None \
                else None
            if older is None:
                self.report.charge("commit", 0)
                return None
            self.report.charge("commit", max(0, block.fetch_t - older.ack_t))
            return ("ack", older)
        if kind in ("pred", "resolved"):
            prev = self._block(cause[1])
            if prev is None:
                return None
            if kind == "resolved":
                # fetch waited for the previous block's branch to resolve
                self.report.charge("ifetch",
                                   max(0, block.fetch_t - cause[2]))
                resolver_key = self._branch_key_of(prev)
                resolver = self.trace.insts.get(resolver_key) \
                    if resolver_key is not None else None
                if resolver is not None:
                    # branch message travel to the GT
                    self.report.charge("opn_hops", max(
                        0, cause[2] - max(0, resolver.complete_t)))
                    return ("inst", resolver, cause[2])
                return ("fetch", prev, prev.fetch_t)
            self.report.charge("ifetch", max(0, block.fetch_t - prev.fetch_t))
            return ("fetch", prev, prev.fetch_t)
        if kind.startswith("flush"):
            # misprediction / violation recovery: a monolithic core pays
            # this too, so it lands in Other
            resolver_key = cause[1]
            resolver = self.trace.insts.get(resolver_key) \
                if resolver_key is not None else None
            self.report.charge("other", max(0, block.fetch_t - cause[2]))
            if resolver is not None and resolver.complete_t >= 0:
                self.report.charge("other",
                                   max(0, cause[2] - resolver.complete_t))
                return ("inst", resolver, resolver.complete_t)
            return None
        return None  # pragma: no cover - defensive

    def _branch_key_of(self, block: BlockEvent):
        # the branch producer key was recorded as the completion reason
        # when the branch was the last output; otherwise unknown
        if len(block.complete_reason) == 2 \
                and block.complete_reason[0] == "branch":
            return block.complete_reason[1]
        return None


def analyze_critical_path(trace: Trace) -> CriticalPathReport:
    """Attribute the traced run's critical path to Table 3 categories."""
    report = CriticalPathReport()
    _Walker(trace, report).walk()
    return report

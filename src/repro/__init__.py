"""repro — a reproduction of the TRIPS prototype processor (MICRO 2006).

Subpackages:

* :mod:`repro.isa` — the EDGE instruction set: formats, blocks, programs.
* :mod:`repro.asm` — assembler / disassembler for TRIPS assembly text.
* :mod:`repro.tir` — the tiny imperative IR and DSL used as the C stand-in.
* :mod:`repro.compiler` — TIR -> TRIPS blocks (scheduling, predication).
* :mod:`repro.uarch` — the cycle-level tiled processor core (tsim-proc).
* :mod:`repro.mem` — the NUCA secondary memory system on the OCN.
* :mod:`repro.baseline` — the Alpha-21264-like conventional comparator.
* :mod:`repro.analysis` — critical-path attribution, area model, floorplan.
* :mod:`repro.workloads` — the paper's benchmark suite in TIR form.
* :mod:`repro.harness` — experiment drivers that regenerate the tables.
"""

__version__ = "1.0.0"

"""Signal-processing kernels: cfar, conv, ct, genalg, pm, qr, svd.

These mirror the HPEC/GMTI-style signal-processing library kernels the
paper draws from: windowed detection, filtering, data reorganization, and
small dense linear algebra.
"""

from __future__ import annotations

from ..tir import Array, Assign, BinOp, Const, F, For, If, Load, Store, TirProgram, UnOp, V


def cfar() -> TirProgram:
    """Constant false-alarm rate detection: sliding guard-window average,
    threshold compare, detection count."""
    n = 64
    guard, window = 2, 8
    # three planted targets, all inside the scanned range [10, 54)
    cells = [((i * 37) % 97) + (4000 if i in (17, 30, 45) else 0)
             for i in range(n)]
    lo, hi = window + guard, n - window - guard
    body = [
        Assign("detections", Const(0)),
        For("i", lo, hi, 1, [
            Assign("acc", Const(0)),
            For("j", 1, window + 1, 1, [
                Assign("acc", V("acc")
                       + Load("cells", V("i") - guard - V("j"))
                       + Load("cells", V("i") + guard + V("j"))),
            ]),
            # threshold: cell * 2*window > 8 * acc  (factor-4 CFAR)
            Assign("lhs", Load("cells", V("i")) * (2 * window)),
            If(V("lhs").gt(V("acc") * 8),
               [Assign("detections", V("detections") + 1),
                Store("hits", V("detections") - 1, V("i"))],
               []),
        ]),
    ]
    return TirProgram(
        "cfar",
        arrays={"cells": Array("i64", cells),
                "hits": Array("i64", [-1] * 16)},
        scalars={"detections": 0},
        body=body, outputs=["detections", "hits"])


def conv() -> TirProgram:
    """1-D convolution of a 96-sample signal with an 8-tap filter:
    streaming, load-bandwidth-bound like vadd."""
    n, taps = 96, 8
    signal = [(i * 13) % 31 - 15 for i in range(n)]
    filt = [1, -2, 3, -1, 2, -3, 1, 1]
    body = [
        For("i", 0, n - taps, 1, [
            Assign("acc", Const(0)),
            For("k", 0, taps, 1, [
                Assign("acc", V("acc") + Load("x", V("i") + V("k"))
                       * Load("h", V("k"))),
            ], unroll=8),
            Store("y", V("i"), V("acc")),
        ], unroll=2),
    ]
    return TirProgram(
        "conv",
        arrays={"x": Array("i64", signal), "h": Array("i64", filt),
                "y": Array("i64", [0] * (n - taps))},
        body=body, outputs=["y"])


def ct() -> TirProgram:
    """Corner turn: a 16x16 blocked transpose — pure data movement."""
    n = 16
    data = [i for i in range(n * n)]
    body = [
        For("i", 0, n, 1, [
            For("j", 0, n, 1, [
                Store("out", V("j") * n + V("i"),
                      Load("inp", V("i") * n + V("j"))),
            ], unroll=8),
        ]),
    ]
    return TirProgram(
        "ct",
        arrays={"inp": Array("i64", data),
                "out": Array("i64", [0] * (n * n))},
        body=body, outputs=["out"])


def genalg() -> TirProgram:
    """One generation of a genetic algorithm: fitness evaluation,
    tournament selection of the best individual, LCG mutation."""
    pop, genes = 12, 8
    chrom = [((i * 7 + g * 3) % 19) - 9 for i in range(pop)
             for g in range(genes)]
    weights = [3, -1, 4, 1, -5, 9, -2, 6]
    body = [
        # fitness[i] = sum_g chrom[i,g] * weights[g]
        For("i", 0, pop, 1, [
            Assign("acc", Const(0)),
            For("g", 0, genes, 1, [
                Assign("acc", V("acc")
                       + Load("chrom", V("i") * genes + V("g"))
                       * Load("w", V("g"))),
            ], unroll=8),
            Store("fitness", V("i"), V("acc")),
        ]),
        # argmax
        Assign("best", Const(0)),
        Assign("bestf", Load("fitness", Const(0))),
        For("i", 1, pop, 1, [
            Assign("f", Load("fitness", V("i"))),
            If(V("f").gt(V("bestf")),
               [Assign("bestf", V("f")), Assign("best", V("i"))], []),
        ]),
        # LCG-mutate everyone toward the best
        Assign("seed", Const(12345)),
        For("i", 0, pop, 1, [
            For("g", 0, genes, 1, [
                Assign("seed", (V("seed") * 1103515245 + 12345)
                       & 0x7FFFFFFF),
                If((V("seed") & 7).eq(0),
                   [Store("chrom", V("i") * genes + V("g"),
                          Load("chrom", V("best") * genes + V("g")))],
                   []),
            ]),
        ]),
    ]
    return TirProgram(
        "genalg",
        arrays={"chrom": Array("i64", chrom), "w": Array("i64", weights),
                "fitness": Array("i64", [0] * pop)},
        scalars={"best": 0, "bestf": 0},
        body=body, outputs=["chrom", "fitness", "best"])


def pm() -> TirProgram:
    """Pattern match: minimum sum-of-absolute-differences over shifts."""
    n, m = 64, 12
    signal = [((i * 29) % 41) - 20 for i in range(n)]
    template = [((i * 29 + 7 * 29) % 41) - 20 for i in range(m)]  # shift 7
    body = [
        Assign("bestsad", Const(1 << 40)),
        Assign("bestpos", Const(0)),
        For("s", 0, n - m, 1, [
            Assign("sad", Const(0)),
            For("k", 0, m, 1, [
                Assign("d", Load("x", V("s") + V("k")) - Load("t", V("k"))),
                If(V("d").lt(0), [Assign("d", Const(0) - V("d"))], []),
                Assign("sad", V("sad") + V("d")),
            ], unroll=4),
            If(V("sad").lt(V("bestsad")),
               [Assign("bestsad", V("sad")), Assign("bestpos", V("s"))],
               []),
        ]),
    ]
    return TirProgram(
        "pm",
        arrays={"x": Array("i64", signal), "t": Array("i64", template)},
        scalars={"bestsad": 0, "bestpos": 0},
        body=body, outputs=["bestsad", "bestpos"])


def qr() -> TirProgram:
    """Modified Gram-Schmidt QR on a 4x4 f64 matrix (no square root:
    we orthogonalize against unnormalized columns, tracking norms)."""
    n = 4
    a = [float((i * 3 + j * 7) % 11 - 5) + (1.0 if i == j else 0.0)
         for i in range(n) for j in range(n)]
    body = [
        For("k", 0, n, 1, [
            # norm2[k] = <q_k, q_k>
            Assign("nrm", F(0.0)),
            For("i", 0, n, 1, [
                Assign("qik", Load("q", V("i") * n + V("k"))),
                Assign("nrm", BinOp("fadd", V("nrm"),
                                    BinOp("fmul", V("qik"), V("qik")))),
            ]),
            Store("norm2", V("k"), V("nrm")),
            # project the later columns off q_k
            For("j", V("k") + 1, n, 1, [
                Assign("dot", F(0.0)),
                For("i", 0, n, 1, [
                    Assign("dot", BinOp("fadd", V("dot"),
                                        BinOp("fmul",
                                              Load("q", V("i") * n + V("k")),
                                              Load("q", V("i") * n + V("j"))))),
                ]),
                Assign("r", BinOp("fdiv", V("dot"), V("nrm"))),
                Store("rmat", V("k") * n + V("j"), V("r")),
                For("i", 0, n, 1, [
                    Store("q", V("i") * n + V("j"),
                          BinOp("fsub", Load("q", V("i") * n + V("j")),
                                BinOp("fmul", V("r"),
                                      Load("q", V("i") * n + V("k"))))),
                ]),
            ]),
        ]),
    ]
    return TirProgram(
        "qr",
        arrays={"q": Array("f64", a),
                "rmat": Array("f64", [0.0] * (n * n)),
                "norm2": Array("f64", [0.0] * n)},
        body=body, outputs=["q", "rmat", "norm2"])


def svd() -> TirProgram:
    """One cyclic Jacobi sweep for a symmetric 4x4 eigenproblem (the SVD
    kernel's inner loop), using rotation-free updates c=1, s=t approx."""
    n = 4
    a = [float((i * 5 + j * 5) % 7 - 3) for i in range(n) for j in range(n)]
    # symmetrize
    sym = [0.0] * (n * n)
    for i in range(n):
        for j in range(n):
            sym[i * n + j] = (a[i * n + j] + a[j * n + i]) / 2.0
    body = [
        For("p", 0, n - 1, 1, [
            For("q", V("p") + 1, n, 1, [
                Assign("apq", Load("m", V("p") * n + V("q"))),
                Assign("app", Load("m", V("p") * n + V("p"))),
                Assign("aqq", Load("m", V("q") * n + V("q"))),
                Assign("den", BinOp("fsub", V("aqq"), V("app"))),
                # guard the divide; t = apq / (aqq - app + eps-ish)
                If(BinOp("feq", V("den"), F(0.0)),
                   [Assign("t", F(0.5))],
                   [Assign("t", BinOp("fdiv", V("apq"), V("den")))]),
                # row/col update: m[p,i] -= t*m[q,i]; m[q,i] += t*m[p,i]
                For("i", 0, n, 1, [
                    Assign("mpi", Load("m", V("p") * n + V("i"))),
                    Assign("mqi", Load("m", V("q") * n + V("i"))),
                    Store("m", V("p") * n + V("i"),
                          BinOp("fsub", V("mpi"),
                                BinOp("fmul", V("t"), V("mqi")))),
                    Store("m", V("q") * n + V("i"),
                          BinOp("fadd", V("mqi"),
                                BinOp("fmul", V("t"), V("mpi")))),
                ]),
            ]),
        ]),
    ]
    return TirProgram(
        "svd",
        arrays={"m": Array("f64", sym)},
        body=body, outputs=["m"])

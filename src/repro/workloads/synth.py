"""Synthetic benchmarks promoted from the differential-fuzzing corpus.

Each program here began life as a minimized fuzzing counterexample in
``tests/fuzz/corpus/`` — a machine-generated TIR program that once
exposed a real simulator or compiler bug.  The four promoted entries are
kept as first-class registry workloads because they exercise corners no
hand-written kernel reaches (guarded-slot phi webs, if-conversion cost
cliffs, baseline address-CSE aliasing, deferred-load wakeup timing) and
therefore make the Table 3 sweeps and engine-equivalence tests strictly
more adversarial.

The programs are stored as exact-JSON :mod:`repro.tir.serialize` payloads
next to this module (``synth/<name>.json``), with the original corpus
entry's ``reason`` string preserved as provenance.  They are
machine-generated and tiny (1-15 blocks), so they carry no hand-optimized
level and are not scalable.
"""

from __future__ import annotations

import json
from functools import lru_cache
from pathlib import Path
from typing import Dict, List

from ..tir import TirProgram
from ..tir.serialize import program_from_dict

SYNTH_DIR = Path(__file__).resolve().parent / "synth"

#: registry order (suite row order in Table 3).
SYNTH_NAMES: List[str] = [
    "guarded_slots_phi",
    "ifconv_block_limit",
    "srisc_addr_cse",
    "wheel_deferred_wake",
]


@lru_cache(maxsize=None)
def _entry(name: str) -> Dict:
    path = SYNTH_DIR / f"{name}.json"
    return json.loads(path.read_text())


def provenance(name: str) -> Dict[str, str]:
    """Where a synthetic benchmark came from and which bug it exposed."""
    entry = _entry(name)
    return {"origin": entry["origin"], "reason": entry["reason"]}


def _load(name: str) -> TirProgram:
    return program_from_dict(_entry(name)["program"])


def guarded_slots_phi() -> TirProgram:
    return _load("guarded_slots_phi")


def ifconv_block_limit() -> TirProgram:
    return _load("ifconv_block_limit")


def srisc_addr_cse() -> TirProgram:
    return _load("srisc_addr_cse")


def wheel_deferred_wake() -> TirProgram:
    return _load("wheel_deferred_wake")

"""EEMBC-subset workloads: a2time01, bezier02, basefp01, rspeed01, tblook01.

Scaled-down rewrites of the EEMBC automotive suite members the paper uses,
preserving their mix: angle/time integer math with divides (a2time01),
fixed-point curve evaluation (bezier02), straight floating-point arithmetic
(basefp01), branchy integer sensor processing (rspeed01), and table lookup
with interpolation (tblook01).
"""

from __future__ import annotations

from ..tir import Array, Assign, BinOp, Const, F, For, If, Load, Store, TirProgram, V


def a2time01(size: int = 1) -> TirProgram:
    """Angle-to-time conversion: per-tooth engine calculations with
    divides and range checks.  ``size`` multiplies the tooth count."""
    teeth = 24 * size
    pulses = [(1000 + ((i * 317) % 213)) for i in range(teeth)]
    body = [
        Assign("total", Const(0)),
        For("i", 0, teeth, 1, [
            Assign("dt", Load("pulse", V("i"))),
            # rpm-ish: 600000 / dt, clamped
            Assign("rpm", BinOp("div", Const(600_000), V("dt"))),
            If(V("rpm").gt(545),
               [Assign("rpm", Const(545))], []),
            # angle advance table-free approximation
            Assign("adv", BinOp("div", V("rpm") * 7, Const(16)) + 5),
            Assign("tta", BinOp("div", V("adv") * V("dt"), Const(360))),
            Store("out", V("i"), V("tta")),
            Assign("total", V("total") + V("tta")),
        ]),
    ]
    return TirProgram(
        "a2time01" if size == 1 else f"a2time01x{size}",
        arrays={"pulse": Array("i64", pulses),
                "out": Array("i64", [0] * teeth)},
        scalars={"total": 0},
        body=body, outputs=["out", "total"])


def bezier02(size: int = 1) -> TirProgram:
    """Fixed-point cubic Bezier curve evaluation at 24 parameter steps
    (``size`` multiplies the step count)."""
    steps = 24 * size
    # control points in 8.8 fixed point
    px = [10 * 256, 60 * 256, 180 * 256, 250 * 256]
    py = [20 * 256, 200 * 256, 10 * 256, 220 * 256]
    one = 256

    def bez(axis):
        p0, p1, p2, p3 = (Load(axis, Const(k)) for k in range(4))
        # de Casteljau in fixed point; t in [0,256]
        t, s = V("t"), V("s")
        a01 = BinOp("sra", p0 * s + p1 * t, Const(8))
        a12 = BinOp("sra", p1 * s + p2 * t, Const(8))
        a23 = BinOp("sra", p2 * s + p3 * t, Const(8))
        b01 = BinOp("sra", a01 * s + a12 * t, Const(8))
        b12 = BinOp("sra", a12 * s + a23 * t, Const(8))
        return BinOp("sra", b01 * s + b12 * t, Const(8))

    body = [
        For("i", 0, steps, 1, [
            Assign("t", BinOp("div", V("i") * one, Const(steps - 1))),
            Assign("s", Const(one) - V("t")),
            Store("outx", V("i"), bez("cx")),
            Store("outy", V("i"), bez("cy")),
        ]),
    ]
    return TirProgram(
        "bezier02" if size == 1 else f"bezier02x{size}",
        arrays={"cx": Array("i64", px), "cy": Array("i64", py),
                "outx": Array("i64", [0] * steps),
                "outy": Array("i64", [0] * steps)},
        body=body, outputs=["outx", "outy"])


def basefp01(size: int = 1) -> TirProgram:
    """Basic floating point: fused add/mul/div chains over a small array
    (``size`` multiplies its length)."""
    n = 32 * size
    data = [0.5 + 0.125 * i for i in range(n)]
    body = [
        Assign("acc", F(1.0)),
        For("i", 0, n, 1, [
            Assign("x", Load("a", V("i"))),
            Assign("y", BinOp("fadd", BinOp("fmul", V("x"), F(1.5)),
                              F(-0.25))),
            Assign("y", BinOp("fdiv", V("y"),
                              BinOp("fadd", V("x"), F(2.0)))),
            Store("out", V("i"), V("y")),
            Assign("acc", BinOp("fadd", V("acc"), V("y"))),
        ], unroll=2),
    ]
    return TirProgram(
        "basefp01" if size == 1 else f"basefp01x{size}",
        arrays={"a": Array("f64", data), "out": Array("f64", [0.0] * n)},
        body=body, outputs=["out"])


def rspeed01(size: int = 1) -> TirProgram:
    """Road-speed calculation: debounced pulse intervals with branchy
    validity filtering.  ``size`` multiplies the pulse-train length."""
    n = 48 * size
    raw = [((i * 53) % 40) + (200 if (i % 7) else 15) for i in range(n)]
    body = [
        Assign("speed", Const(0)),
        Assign("valid", Const(0)),
        Assign("last", Const(0)),
        For("i", 0, n, 1, [
            Assign("p", Load("pulses", V("i"))),
            If(V("p").lt(50),
               [Assign("last", V("p"))],                  # glitch: debounce
               [If(V("p").gt(V("last") + 150),
                   [Assign("valid", V("valid") + 1),
                    Assign("speed",
                           BinOp("div", Const(100_000), V("p")))],
                   []),
                Assign("last", V("p"))]),
            Store("trace", V("i"), V("speed")),
        ]),
    ]
    return TirProgram(
        "rspeed01" if size == 1 else f"rspeed01x{size}",
        arrays={"pulses": Array("i64", raw),
                "trace": Array("i64", [0] * n)},
        scalars={"speed": 0, "valid": 0, "last": 0},
        body=body, outputs=["trace", "speed", "valid"])


def tblook01(size: int = 1) -> TirProgram:
    """Table lookup with linear interpolation: the classic EEMBC pattern
    of a search loop plus fixed-point interpolation arithmetic.
    ``size`` multiplies the query count."""
    entries = 16
    nq = 24 * size
    xs = [i * i * 4 for i in range(entries)]            # monotone keys
    ys = [1000 - 3 * i * i for i in range(entries)]
    queries = [(q * 61) % (xs[-1]) for q in range(nq)]
    body = [
        For("q", 0, nq, 1, [
            Assign("key", Load("queries", V("q"))),
            # linear search for the bracketing segment
            Assign("idx", Const(0)),
            For("i", 0, entries - 1, 1, [
                If(Load("xs", V("i") + 1).le(V("key")),
                   [Assign("idx", V("i") + 1)], []),
            ]),
            If(V("idx").ge(entries - 1),
               [Assign("res", Load("ys", Const(entries - 1)))],
               [Assign("x0", Load("xs", V("idx"))),
                Assign("x1", Load("xs", V("idx") + 1)),
                Assign("y0", Load("ys", V("idx"))),
                Assign("y1", Load("ys", V("idx") + 1)),
                Assign("res", V("y0") + BinOp(
                    "div", (V("y1") - V("y0")) * (V("key") - V("x0")),
                    V("x1") - V("x0")))]),
            Store("out", V("q"), V("res")),
        ]),
    ]
    return TirProgram(
        "tblook01" if size == 1 else f"tblook01x{size}",
        arrays={"xs": Array("i64", xs), "ys": Array("i64", ys),
                "queries": Array("i64", queries),
                "out": Array("i64", [0] * nq)},
        body=body, outputs=["out"])

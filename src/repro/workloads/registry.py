"""Workload registry: name -> TIR program factory, plus suite metadata."""

from __future__ import annotations

from typing import Callable, Dict, List

from ..tir import TirProgram
from . import eembc, kernels, micro, spec

#: suite name -> ordered benchmark list (Table 3 row order).
SUITES: Dict[str, List[str]] = {
    "micro": ["dct8x8", "matrix", "sha", "vadd"],
    "kernels": ["cfar", "conv", "ct", "genalg", "pm", "qr", "svd"],
    "eembc": ["a2time01", "bezier02", "basefp01", "rspeed01", "tblook01"],
    "spec": ["mcf", "parser", "bzip2", "twolf", "mgrid"],
}

ALL_WORKLOADS: Dict[str, Callable[[], TirProgram]] = {
    "dct8x8": micro.dct8x8,
    "matrix": micro.matrix,
    "sha": micro.sha,
    "vadd": micro.vadd,
    "cfar": kernels.cfar,
    "conv": kernels.conv,
    "ct": kernels.ct,
    "genalg": kernels.genalg,
    "pm": kernels.pm,
    "qr": kernels.qr,
    "svd": kernels.svd,
    "a2time01": eembc.a2time01,
    "bezier02": eembc.bezier02,
    "basefp01": eembc.basefp01,
    "rspeed01": eembc.rspeed01,
    "tblook01": eembc.tblook01,
    "mcf": spec.mcf,
    "parser": spec.parser,
    "bzip2": spec.bzip2,
    "twolf": spec.twolf,
    "mgrid": spec.mgrid,
}

#: workloads the paper reports hand-optimized numbers for (Table 3 has no
#: hand column for the SPEC programs: "We have not optimized any of the
#: SPEC programs by hand").
HAND_OPTIMIZED = [name for suite in ("micro", "kernels", "eembc")
                  for name in SUITES[suite]]


def workload_names() -> List[str]:
    return [name for suite in SUITES.values() for name in suite]


def get_workload(name: str) -> TirProgram:
    """Build a fresh TIR program for the named benchmark."""
    try:
        factory = ALL_WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {workload_names()}") from None
    program = factory()
    program.validate()
    return program

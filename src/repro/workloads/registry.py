"""Workload registry: name -> TIR program factory, plus suite metadata."""

from __future__ import annotations

from typing import Callable, Dict, List

from ..tir import TirProgram
from . import eembc, kernels, micro, spec, synth

#: suite name -> ordered benchmark list (Table 3 row order).  ``synth``
#: holds machine-generated programs promoted from the fuzzing corpus
#: (see :mod:`repro.workloads.synth` for their provenance).
SUITES: Dict[str, List[str]] = {
    "micro": ["dct8x8", "matrix", "sha", "vadd"],
    "kernels": ["cfar", "conv", "ct", "genalg", "pm", "qr", "svd"],
    "eembc": ["a2time01", "bezier02", "basefp01", "rspeed01", "tblook01"],
    "spec": ["mcf", "parser", "bzip2", "twolf", "mgrid"],
    "synth": list(synth.SYNTH_NAMES),
}

ALL_WORKLOADS: Dict[str, Callable[[], TirProgram]] = {
    "dct8x8": micro.dct8x8,
    "matrix": micro.matrix,
    "sha": micro.sha,
    "vadd": micro.vadd,
    "cfar": kernels.cfar,
    "conv": kernels.conv,
    "ct": kernels.ct,
    "genalg": kernels.genalg,
    "pm": kernels.pm,
    "qr": kernels.qr,
    "svd": kernels.svd,
    "a2time01": eembc.a2time01,
    "bezier02": eembc.bezier02,
    "basefp01": eembc.basefp01,
    "rspeed01": eembc.rspeed01,
    "tblook01": eembc.tblook01,
    "mcf": spec.mcf,
    "parser": spec.parser,
    "bzip2": spec.bzip2,
    "twolf": spec.twolf,
    "mgrid": spec.mgrid,
    "guarded_slots_phi": synth.guarded_slots_phi,
    "ifconv_block_limit": synth.ifconv_block_limit,
    "srisc_addr_cse": synth.srisc_addr_cse,
    "wheel_deferred_wake": synth.wheel_deferred_wake,
}

#: workloads the paper reports hand-optimized numbers for (Table 3 has no
#: hand column for the SPEC programs: "We have not optimized any of the
#: SPEC programs by hand").
HAND_OPTIMIZED = [name for suite in ("micro", "kernels", "eembc")
                  for name in SUITES[suite]]

#: workloads whose factories accept a ``size`` multiplier (size=1 is
#: bit-identical to the unscaled program; larger sizes grow the input —
#: more DCT macroblocks, longer mcf chains, bigger EEMBC iteration
#: counts — for sampled simulation).
SCALABLE = frozenset({
    "dct8x8", "vadd", "mcf", "parser", "bzip2",
    "a2time01", "bezier02", "basefp01", "rspeed01", "tblook01",
})


def workload_names() -> List[str]:
    return [name for suite in SUITES.values() for name in suite]


def get_workload(name: str, size: int = 1) -> TirProgram:
    """Build a fresh TIR program for the named benchmark.

    ``size`` scales the input for workloads in :data:`SCALABLE`
    (``size=1`` always reproduces the original program exactly); passing
    ``size > 1`` for any other workload is an error.
    """
    try:
        factory = ALL_WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {workload_names()}") from None
    if size < 1:
        raise ValueError(f"size must be >= 1, got {size}")
    if size == 1:
        program = factory()
    elif name in SCALABLE:
        program = factory(size=size)
    else:
        raise ValueError(f"workload {name!r} does not scale; "
                         f"scalable workloads: {sorted(SCALABLE)}")
    program.validate()
    return program

"""Microbenchmarks: dct8x8, matrix, sha, vadd."""

from __future__ import annotations

import math

from ..tir import Array, Assign, BinOp, Const, F, For, Load, Store, TirProgram, V

M32 = 0xFFFFFFFF


def _f(op, a, b):
    return BinOp(op, a, b)


def dct8x8(size: int = 1) -> TirProgram:
    """Two-pass 8x8 DCT-II on f64 (as in JPEG/MPEG).

    ``size`` is the macroblock count: 1 reproduces the original
    single-macroblock program bit-for-bit; larger values process a frame
    of ``size`` macroblocks (a full QCIF luma frame is size=396).
    """
    n = 8
    pixels = [float((i * 7 + j * 13 + m) % 64 - 32) for m in range(size)
              for i in range(n) for j in range(n)]
    cos_tab = [math.cos((2 * x + 1) * u * math.pi / (2 * n))
               for u in range(n) for x in range(n)]

    def passes(base):
        return [
            # rows: tmp[u + i*8] = sum_x pix[x + i*8] * cos[u*8 + x]
            For("i", 0, n, 1, [
                For("u", 0, n, 1, [
                    Assign("acc", F(0.0)),
                    For("x", 0, n, 1, [
                        Assign("acc", _f("fadd", V("acc"),
                                         _f("fmul",
                                            Load("pix", base + V("i") * n + V("x")) if size > 1
                                            else Load("pix", V("i") * n + V("x")),
                                            Load("costab", V("u") * n + V("x"))))),
                    ]),
                    Store("tmp", V("i") * n + V("u"), V("acc")),
                ]),
            ]),
            # columns: out[u*8 + v] = sum_y tmp[y*8 + v] * cos[u*8 + y]
            For("v", 0, n, 1, [
                For("u", 0, n, 1, [
                    Assign("acc", F(0.0)),
                    For("y", 0, n, 1, [
                        Assign("acc", _f("fadd", V("acc"),
                                         _f("fmul",
                                            Load("tmp", V("y") * n + V("v")),
                                            Load("costab", V("u") * n + V("y"))))),
                    ]),
                    (Store("out", base + V("u") * n + V("v"), V("acc")) if size > 1
                     else Store("out", V("u") * n + V("v"), V("acc"))),
                ]),
            ]),
        ]

    if size == 1:
        body = passes(None)
    else:
        body = [For("m", 0, size, 1, passes(V("m") * (n * n)))]
    return TirProgram(
        "dct8x8" if size == 1 else f"dct8x8x{size}",
        arrays={"pix": Array("f64", pixels),
                "costab": Array("f64", cos_tab),
                "tmp": Array("f64", [0.0] * (n * n)),
                "out": Array("f64", [0.0] * (n * n * size))},
        body=body, outputs=["out"])


def matrix() -> TirProgram:
    """8x8 integer matrix multiply."""
    n = 8
    a = [(i * 3 + j) % 17 - 8 for i in range(n) for j in range(n)]
    b = [(i * 5 + j * 2) % 13 - 6 for i in range(n) for j in range(n)]
    body = [
        For("i", 0, n, 1, [
            For("j", 0, n, 1, [
                Assign("acc", Const(0)),
                For("k", 0, n, 1, [
                    Assign("acc", V("acc") +
                           Load("a", V("i") * n + V("k")) *
                           Load("b", V("k") * n + V("j"))),
                ], unroll=8),
                Store("c", V("i") * n + V("j"), V("acc")),
            ]),
        ]),
    ]
    return TirProgram(
        "matrix",
        arrays={"a": Array("i64", a), "b": Array("i64", b),
                "c": Array("i64", [0] * (n * n))},
        body=body, outputs=["c"])


def sha() -> TirProgram:
    """SHA-1 compression of one 512-bit block: an almost entirely serial
    dependence chain (the paper's worst case for TRIPS)."""
    message = [(i * 0x01010101 + 0x6a09e667) & M32 for i in range(16)]
    rotl = lambda x, s: ((x << s) | BinOp("shr", x & M32, Const(32 - s))) & M32

    schedule = For("t", 16, 80, 1, [
        Assign("w", BinOp("xor",
                          BinOp("xor", Load("W", V("t") - 3),
                                Load("W", V("t") - 8)),
                          BinOp("xor", Load("W", V("t") - 14),
                                Load("W", V("t") - 16)))),
        Store("W", V("t"), rotl(V("w"), 1)),
    ])

    def round_range(lo, hi, f_expr, k):
        return For("t", lo, hi, 1, [
            Assign("f", f_expr),
            Assign("tmp", (rotl(V("a"), 5) + V("f") + V("e")
                           + k + Load("W", V("t"))) & M32),
            Assign("e", V("d")),
            Assign("d", V("c")),
            Assign("c", rotl(V("b"), 30)),
            Assign("b", V("a")),
            Assign("a", V("tmp")),
        ])

    ch = BinOp("or", V("b") & V("c"),
               BinOp("and", BinOp("xor", V("b"), Const(M32)), V("d"))) & M32
    parity = BinOp("xor", BinOp("xor", V("b"), V("c")), V("d")) & M32
    maj = BinOp("or", BinOp("or", V("b") & V("c"), V("b") & V("d")),
                V("c") & V("d")) & M32

    body = [
        schedule,
        Assign("a", Const(0x67452301)), Assign("b", Const(0xEFCDAB89)),
        Assign("c", Const(0x98BADCFE)), Assign("d", Const(0x10325476)),
        Assign("e", Const(0xC3D2E1F0)),
        round_range(0, 20, ch, 0x5A827999),
        round_range(20, 40, parity, 0x6ED9EBA1),
        round_range(40, 60, maj, 0x8F1BBCDC),
        round_range(60, 80, parity, 0xCA62C1D6),
        Store("digest", Const(0), (V("a") + 0x67452301) & M32),
        Store("digest", Const(1), (V("b") + 0xEFCDAB89) & M32),
        Store("digest", Const(2), (V("c") + 0x98BADCFE) & M32),
        Store("digest", Const(3), (V("d") + 0x10325476) & M32),
        Store("digest", Const(4), (V("e") + 0xC3D2E1F0) & M32),
    ]
    return TirProgram(
        "sha",
        arrays={"W": Array("u32", message + [0] * 64),
                "digest": Array("u32", [0] * 5)},
        body=body, outputs=["digest"])


def vadd(size: int = 1) -> TirProgram:
    """Streaming f64 vector add: bounded by L1 bandwidth (TRIPS has four
    DT ports against the baseline's two -> the paper's ~2x speedup cap).

    ``size`` multiplies the vector length (128 elements at size=1)."""
    n = 128 * size
    a = [float(i) * 0.5 for i in range(n)]
    b = [float(n - i) * 0.25 for i in range(n)]
    body = [
        For("i", 0, n, 1, [
            Store("c", V("i"), BinOp("fadd", Load("a", V("i")),
                                     Load("b", V("i")))),
        ], unroll=8),
    ]
    return TirProgram(
        "vadd" if size == 1 else f"vaddx{size}",
        arrays={"a": Array("f64", a), "b": Array("f64", b),
                "c": Array("f64", [0.0] * n)},
        body=body, outputs=["c"])

"""The paper's benchmark suite, re-expressed in TIR (see DESIGN.md).

Four groups, matching Section 5.4's Table 3:

* microbenchmarks: ``dct8x8``, ``matrix``, ``sha``, ``vadd``
* signal-processing kernels: ``cfar``, ``conv``, ``ct``, ``genalg``,
  ``pm``, ``qr``, ``svd``
* EEMBC subset: ``a2time01``, ``bezier02``, ``basefp01``, ``rspeed01``,
  ``tblook01``
* SPEC2000 proxies: ``mcf``, ``parser``, ``bzip2``, ``twolf``, ``mgrid``

Each is a scaled-down rewrite preserving the original's algorithmic
character — `sha` is serial, `vadd`/`conv` are L1-bandwidth-streaming,
`mcf` is pointer-chasing, `twolf`/`parser` are branchy — because the
paper's Table 3 shape is driven by exactly those characters.  Problem
sizes are chosen so a run completes in tens of thousands of simulated
cycles (the paper likewise used "small programs or program fragments ...
because we are limited by the speed of tsim-proc").
"""

from .registry import ALL_WORKLOADS, SUITES, get_workload, workload_names

__all__ = ["ALL_WORKLOADS", "SUITES", "get_workload", "workload_names"]

"""Scaled-down SPEC2000 proxies: mcf, parser, bzip2, twolf, mgrid.

Each proxy reproduces the *microarchitectural character* the original is
known for — which is what drives the paper's Table 3 rows:

* ``mcf``    — pointer chasing over a sparse graph (load-latency bound,
               near-serial address chains)
* ``parser`` — byte scanning and dictionary matching (data-dependent
               branches, little ILP)
* ``bzip2``  — move-to-front coding (small loops, shifting data)
* ``twolf``  — simulated-annealing cost evaluation (branchy accept/reject
               on pseudo-random swaps)
* ``mgrid``  — 3-D 7-point stencil relaxation (regular FP with high ILP)
"""

from __future__ import annotations

from ..tir import Array, Assign, BinOp, Const, F, For, If, Load, Store, TirProgram, V, While


def mcf(size: int = 1) -> TirProgram:
    """Pointer chasing: repeatedly walk successor chains of a shuffled
    ring, accumulating costs — the mcf network-simplex character.

    ``size`` multiplies both the graph (64 nodes at size=1) and the walk
    length, so larger sizes chase longer chains over a bigger footprint.
    """
    n = 64 * size
    # a stride-27 permutation ring (27 is coprime with 64 -> one cycle)
    succ = [(i + 27) % n for i in range(n)]
    cost = [((i * 31) % 23) - 11 for i in range(n)]
    body = [
        Assign("node", Const(0)),
        Assign("total", Const(0)),
        For("step", 0, 3 * n, 1, [
            Assign("c", Load("cost", V("node"))),
            Assign("total", V("total") + V("c")),
            If(V("c").lt(0),
               [Store("cost", V("node"), Const(0) - V("c"))],
               []),
            Assign("node", Load("succ", V("node"))),
        ]),
    ]
    return TirProgram(
        "mcf" if size == 1 else f"mcfx{size}",
        arrays={"succ": Array("i64", succ), "cost": Array("i64", cost)},
        scalars={"node": 0, "total": 0},
        body=body, outputs=["total", "cost"])


def parser(size: int = 1) -> TirProgram:
    """Dictionary word matching over a byte stream: compare each input
    token against a word list, byte by byte, with early-out branches.

    ``size`` multiplies the scanned text length."""
    text = b"the cat sat on the mat with a hat " * size
    words = [b"the ", b"cat ", b"rat ", b"mat ", b"hat ", b"bat "]
    dict_bytes = b"".join(w for w in words)
    wlen = 4
    body = [
        Assign("matches", Const(0)),
        Assign("pos", Const(0)),
        While(V("pos").lt(len(text) - wlen), [
            Assign("w", Const(0)),
            Assign("hit", Const(0)),
            While(BinOp("and", V("w").lt(len(words)),
                        V("hit").eq(0)), [
                Assign("k", Const(0)),
                Assign("same", Const(1)),
                While(BinOp("and", V("k").lt(wlen), V("same").ne(0)), [
                    If(Load("text", V("pos") + V("k")).ne(
                            Load("dict", V("w") * wlen + V("k"))),
                       [Assign("same", Const(0))], []),
                    Assign("k", V("k") + 1),
                ]),
                If(V("same").ne(0), [Assign("hit", Const(1))], []),
                Assign("w", V("w") + 1),
            ]),
            Assign("matches", V("matches") + V("hit")),
            Assign("pos", V("pos") + 1),
        ]),
    ]
    return TirProgram(
        "parser" if size == 1 else f"parserx{size}",
        arrays={"text": Array("u8", list(text)),
                "dict": Array("u8", list(dict_bytes))},
        scalars={"matches": 0, "pos": 0},
        body=body, outputs=["matches"])


def bzip2(size: int = 1) -> TirProgram:
    """Move-to-front transform over a 48-byte buffer — bzip2's inner
    coding loop: a search loop plus a data-shifting loop per symbol.

    ``size`` multiplies the input stream length."""
    data = [ord(c) for c in
            "abracadabra_abracadabra_banana_band_anagram_mass" * size]
    body = [
        # initialize the MTF alphabet table 0..255 is overkill; 32 symbols
        For("i", 0, 128, 1, [Store("table", V("i"), V("i"))]),
        For("p", 0, len(data), 1, [
            Assign("sym", Load("data", V("p"))),
            # find the symbol's current rank
            Assign("rank", Const(0)),
            While(Load("table", V("rank")).ne(V("sym")), [
                Assign("rank", V("rank") + 1),
            ]),
            Store("out", V("p"), V("rank")),
            # shift table[0..rank) up by one, move symbol to front
            For("j", V("rank"), 0, -1, [
                Store("table", V("j"), Load("table", V("j") - 1)),
            ]),
            Store("table", Const(0), V("sym")),
        ]),
    ]
    return TirProgram(
        "bzip2" if size == 1 else f"bzip2x{size}",
        arrays={"data": Array("u8", data),
                "table": Array("i64", [0] * 128),
                "out": Array("i64", [0] * len(data))},
        body=body, outputs=["out"])


def twolf() -> TirProgram:
    """Simulated-annealing placement step: propose LCG-random cell swaps,
    evaluate a wirelength delta, accept improving moves — twolf's
    branchy accept/reject character."""
    cells = 16
    pos = [((i * 11) % cells) for i in range(cells)]
    wire = [((i * 7 + j * 3) % 5) for i in range(cells) for j in range(cells)]
    body = [
        Assign("seed", Const(987654321)),
        Assign("accepted", Const(0)),
        For("trial", 0, 40, 1, [
            Assign("seed", (V("seed") * 1103515245 + 12345) & 0x7FFFFFFF),
            Assign("a", BinOp("rem", V("seed"), Const(cells))),
            Assign("seed", (V("seed") * 1103515245 + 12345) & 0x7FFFFFFF),
            Assign("b", BinOp("rem", V("seed"), Const(cells))),
            # delta = sum_j w[a,j]*(|pb-pj| - |pa-pj|) + w[b,j]*(...)
            Assign("pa", Load("pos", V("a"))),
            Assign("pb", Load("pos", V("b"))),
            Assign("delta", Const(0)),
            For("j", 0, cells, 1, [
                Assign("pj", Load("pos", V("j"))),
                Assign("d1", V("pb") - V("pj")),
                If(V("d1").lt(0), [Assign("d1", Const(0) - V("d1"))], []),
                Assign("d2", V("pa") - V("pj")),
                If(V("d2").lt(0), [Assign("d2", Const(0) - V("d2"))], []),
                Assign("delta", V("delta")
                       + Load("w", V("a") * cells + V("j"))
                       * (V("d1") - V("d2"))),
            ]),
            If(V("delta").lt(0),
               [Store("pos", V("a"), V("pb")),
                Store("pos", V("b"), V("pa")),
                Assign("accepted", V("accepted") + 1)],
               []),
        ]),
    ]
    return TirProgram(
        "twolf",
        arrays={"pos": Array("i64", pos), "w": Array("i64", wire)},
        scalars={"seed": 0, "accepted": 0},
        body=body, outputs=["pos", "accepted"])


def mgrid() -> TirProgram:
    """One red-black-free Jacobi sweep of a 7-point stencil on a 6^3 grid
    — mgrid's regular, high-ILP floating-point character."""
    n = 6
    grid = [0.0] * (n * n * n)
    for i in range(n):
        for j in range(n):
            for k in range(n):
                grid[(i * n + j) * n + k] = float((i * 3 + j * 5 + k * 7) % 11)

    def at(i, j, k):
        return Load("u", (i * n + j) * n + k)

    i, j, k = V("i"), V("j"), V("k")
    body = [
        For("i", 1, n - 1, 1, [
            For("j", 1, n - 1, 1, [
                For("k", 1, n - 1, 1, [
                    Assign("s", BinOp("fadd", at(i - 1, j, k),
                                      at(i + 1, j, k))),
                    Assign("s", BinOp("fadd", V("s"),
                                      BinOp("fadd", at(i, j - 1, k),
                                            at(i, j + 1, k)))),
                    Assign("s", BinOp("fadd", V("s"),
                                      BinOp("fadd", at(i, j, k - 1),
                                            at(i, j, k + 1)))),
                    Store("v", (i * n + j) * n + k,
                          BinOp("fadd",
                                BinOp("fmul", at(i, j, k), F(0.5)),
                                BinOp("fmul", V("s"), F(1.0 / 12.0)))),
                ], unroll=4),
            ]),
        ]),
    ]
    return TirProgram(
        "mgrid",
        arrays={"u": Array("f64", grid),
                "v": Array("f64", [0.0] * (n * n * n))},
        body=body, outputs=["v"])

"""The TRIPS secondary memory system and backing storage.

* :mod:`repro.mem.backing` — flat byte-addressable backing store used by
  every execution model.
* :mod:`repro.mem.ocn` — the 4x10 wormhole-routed on-chip network.
* :mod:`repro.mem.mt` — memory tiles (64KB NUCA banks with routers).
* :mod:`repro.mem.nt` — network tiles (programmable request routing).
* :mod:`repro.mem.sysmem` — the configurable secondary system: 1MB shared
  L2, split 512KB L2s, scratchpad mappings, and the OCN I/O clients (SDC,
  DMA, EBC, C2C).
"""

from .backing import BackingStore

__all__ = ["BackingStore"]

"""The secondary memory system: OCN + MTs + NTs + I/O clients (Section 3.6).

Topology: a 4x10 wormhole-routed mesh with 16-byte links and four virtual
channels.  The 16 memory tiles occupy the two middle columns; the network
tiles on the outer columns are the translation agents where processors and
I/O controllers attach.  Aligning the OCN with the DTs gives each IT/DT
pair a private port into the memory system.

Clients call :meth:`SecondaryMemory.request`; responses come back through
:meth:`take_responses` after the request packet crosses the OCN, the home
bank (and, on a miss, an SDRAM controller) services it, and the reply —
one header flit plus four 16-byte data flits for a 64-byte line — crosses
back.

The three memory configurations of Section 3.6 are reproduced by
reprogramming NT tables and MT mode bits: ``shared_l2`` (one 1MB cache),
``split_l2`` (two independent 512KB caches), ``scratchpad`` (1MB on-chip
physical memory, no L2).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..uarch.mesh import Packet, WormholeMesh
from .backing import BackingStore
from .mt import MemoryTile, MtConfig
from .nt import NetworkTile, RouteEntry

ROWS, COLS = 10, 4
LINE_BYTES = 64
FLIT_BYTES = 16
DATA_FLITS = LINE_BYTES // FLIT_BYTES  # 4 data flits per line


@dataclass
class SysMemConfig:
    mode: str = "shared_l2"     # shared_l2 | split_l2 | scratchpad
    dram_cycles: int = 80
    mt: MtConfig = field(default_factory=MtConfig)
    vcs: int = 4
    #: False selects the full-scan OCN router loop (escape hatch, mirrors
    #: :attr:`repro.uarch.config.TripsConfig.fast_path`)
    active_set: bool = True
    #: express OCN routing: conflict-free packets are delivered at their
    #: computed arrival time via link reservations instead of hop-by-hop
    #: stepping (mirrors
    #: :attr:`repro.uarch.config.TripsConfig.express_routing`; only active
    #: together with ``active_set``)
    express: bool = True


@dataclass
class _Request:
    port: int
    address: int
    is_write: bool
    meta: object
    issued: int


class SecondaryMemory:
    """The full 1MB NUCA array plus its I/O clients."""

    #: processor-port NT coordinates: 8 per side column — each IT/DT pair
    #: of each processor gets a private port (Section 3.6).
    PROC_PORTS = [(r, 3) for r in range(8)]
    #: I/O clients on the west edge.
    IO_PORTS = {"sdc0": (1, 0), "sdc1": (6, 0), "dma0": (0, 0),
                "dma1": (8, 0), "ebc": (4, 0), "c2c": (9, 0)}

    def __init__(self, config: SysMemConfig = None,
                 backing: Optional[BackingStore] = None):
        self.config = config or SysMemConfig()
        self.backing = backing if backing is not None else BackingStore()
        self.ocn = WormholeMesh(ROWS, COLS, vcs=self.config.vcs,
                                queue_depth=2,
                                active_set=self.config.active_set,
                                express=self.config.express
                                and self.config.active_set)
        # 16 MTs in the two middle columns
        self.mt_coords = [(r, c) for c in (1, 2) for r in range(8)]
        self.mts = [MemoryTile(i, self.config.mt) for i in range(16)]
        self.nts = [NetworkTile(i) for i in range(24)]
        self._responses: Dict[int, List[object]] = {}
        self._resp_count = 0      # total queued responses across ports
        # min-heap of (done_at, seq, request, mt index); the seq tiebreak
        # preserves issue order among same-cycle completions, which is all
        # the fast-forward logic ever lets fall due together
        self._pending_dram: List[Tuple[int, int, _Request, int]] = []
        self._dram_seq = 0
        self._parked: List = []
        self.cycle = 0
        self.stats = {"requests": 0, "dram_accesses": 0, "dma_copies": 0}
        #: optional :class:`repro.telemetry.recorder.SysMemTelemetry` sink
        self.telemetry = None
        self.configure(self.config.mode)

    # ------------------------------------------------------------------
    # configuration (Section 3.6's mapping flexibility)
    # ------------------------------------------------------------------
    def configure(self, mode: str) -> None:
        self.config.mode = mode
        if mode == "shared_l2":
            for nt in self.nts:
                nt.program_interleave(
                    lambda addr: (addr // LINE_BYTES) % 16)
            for mt in self.mts:
                mt.configure("l2")
        elif mode == "split_l2":
            # processor 0's ports use banks 0..7, processor 1's use 8..15;
            # we model processor 0 (ports 0-3) and leave 4-7 for proc 1
            for nt in self.nts:
                nt.program_interleave(
                    lambda addr: (addr // LINE_BYTES) % 8)
            for mt in self.mts:
                mt.configure("l2")
        elif mode == "scratchpad":
            # 1MB of on-chip physical memory: 64KB ranges per MT from the
            # scratch base; everything else goes to bank 0's SDC path
            base = 0x100000
            entries = [RouteEntry(base + i * 65536, base + (i + 1) * 65536, i)
                       for i in range(16)]
            entries.append(RouteEntry(0, 1 << 40, 0))
            for nt in self.nts:
                nt.program_ranges(entries)
            for mt in self.mts:
                mt.configure("scratch")
        else:
            raise ValueError(f"unknown memory mode {mode!r}")

    # ------------------------------------------------------------------
    # client API
    # ------------------------------------------------------------------
    def request(self, port: int, address: int, is_write: bool,
                meta: object) -> None:
        """Issue a line request from processor port ``port`` (0..7)."""
        self.stats["requests"] += 1
        src = self.PROC_PORTS[port]
        nt = self.nts[port % len(self.nts)]
        mt_index = nt.route(address)
        dest = self.mt_coords[mt_index]
        req = _Request(port=port, address=address, is_write=is_write,
                       meta=meta, issued=self.cycle)
        flits = 1 + (DATA_FLITS if is_write else 0)
        packet = Packet(src=src, dest=dest, payload=("req", req, mt_index),
                        flits=flits, vc=0)
        self._inject_retry(src, packet)

    def take_responses(self, port: int) -> List[object]:
        out = self._responses.get(port, [])
        if out:
            self._responses[port] = []
            self._resp_count -= len(out)
        return out

    def has_responses(self) -> bool:
        """Any response awaiting pickup on any port (cheap poll gate)."""
        return self._resp_count > 0

    def next_work_t(self) -> Optional[int]:
        """Earliest cycle >= ``self.cycle`` with memory-system activity.

        ``self.cycle`` while any packet is parked, queued in an OCN
        router, or a response awaits pickup; otherwise the earliest of
        the next express-packet arrival and the next bank/DRAM
        completion; None when fully drained.  Lets a quiescent processor
        fast-forward straight to the next memory event instead of
        stepping an empty OCN.
        """
        if self._parked or self._resp_count:
            return self.cycle
        times = []
        ocn_t = self.ocn.next_event_t()
        if ocn_t is not None:
            if ocn_t <= self.cycle:
                return self.cycle
            times.append(ocn_t)
        if self._pending_dram:
            times.append(self._pending_dram[0][0])
        return min(times) if times else None

    def fast_forward(self, cycle: int) -> None:
        """Advance the clock over a provably-idle stretch (no stepping)."""
        self.cycle = cycle
        self.ocn.fast_forward(cycle)

    # ------------------------------------------------------------------
    def _inject_retry(self, src, packet) -> None:
        if not self.ocn.inject(src, packet):
            # park until next cycle; the step loop retries
            self._parked.append((src, packet))

    def step(self) -> None:
        """Advance the memory system one cycle."""
        parked, self._parked = self._parked, []
        for src, packet in parked:
            self._inject_retry(src, packet)

        # bank/DRAM completions that fell due
        pending_dram = self._pending_dram
        while pending_dram and pending_dram[0][0] <= self.cycle:
            _done_at, _seq, req, mt_index = heapq.heappop(pending_dram)
            self._reply(req, mt_index, self.cycle)

        # deliveries at MTs and back at the processor/I/O ports (the
        # pending-set check skips 24 per-coordinate scans on quiet cycles)
        # fast engine: visit only coordinates with packets waiting; the
        # escape hatch keeps the original engine's unconditional scan
        pending = self.ocn.delivery_pending if self.config.active_set \
            else None
        if pending is None or pending:
            take = self.ocn.take_delivered
            for coord in self.mt_coords:
                if pending is not None and coord not in pending:
                    continue
                for packet in take(coord):
                    kind, req, idx = packet.payload
                    mt = self.mts[idx]
                    ready, needs_dram = mt.access(req.address, self.cycle)
                    if self.telemetry is not None:
                        self.telemetry.note_mt(idx, needs_dram)
                    if needs_dram:
                        done = ready + self.config.dram_cycles
                        mt.note_refill(done)
                        self.stats["dram_accesses"] += 1
                    else:
                        done = ready
                    self._dram_seq += 1
                    heapq.heappush(self._pending_dram,
                                   (done, self._dram_seq, req, idx))
            for coord in self.PROC_PORTS:
                if pending is not None and coord not in pending:
                    continue
                for packet in take(coord):
                    kind, req, _ = packet.payload
                    self._responses.setdefault(req.port, []).append(req.meta)
                    self._resp_count += 1
        if self.telemetry is not None:
            self.telemetry.note_inflight(self.cycle, len(self._pending_dram))
        self.ocn.step()
        self.cycle += 1

    def _reply(self, req: _Request, mt_index: int, now: int) -> None:
        src = self.mt_coords[mt_index]
        dest = self.PROC_PORTS[req.port]
        flits = 1 + (0 if req.is_write else DATA_FLITS)
        packet = Packet(src=src, dest=dest,
                        payload=("resp", req, mt_index), flits=flits, vc=1)
        self._inject_retry(src, packet)

    # ------------------------------------------------------------------
    # I/O clients
    # ------------------------------------------------------------------
    def dma_copy(self, src_addr: int, dst_addr: int, nbytes: int) -> int:
        """Programmed DMA transfer between two physical regions.

        Returns the estimated completion cycle: the DMA controller streams
        line-sized OCN transactions at one line per round trip per
        direction, the paper's "transfer data to and from any two regions
        of the physical address space"."""
        self.stats["dma_copies"] += 1
        data = self.backing.read_bytes(src_addr, nbytes)
        self.backing.write_bytes(dst_addr, data)
        lines = -(-nbytes // LINE_BYTES)
        per_line = 2 * (DATA_FLITS + 1) + 2 * self.config.mt.bank_latency
        return self.cycle + lines * per_line

    def run_idle(self, cycles: int) -> None:
        for _ in range(cycles):
            self.step()

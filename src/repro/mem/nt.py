"""Network tiles (NT): programmable request routing (Section 3.6).

The NTs surrounding the memory system decide where each request goes.
Each holds a programmable routing table; reprogramming the tables (plus
the MT mode bits) reconfigures the memory system between a single shared
1MB L2, two independent 512KB L2s, on-chip scratchpad memory, and
combinations — without touching the clients.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional


@dataclass
class RouteEntry:
    """One routing-table entry: an address range and its home MT."""

    base: int
    limit: int                 # exclusive
    mt_index: int

    def matches(self, address: int) -> bool:
        return self.base <= address < self.limit


class NetworkTile:
    """Translation agent: address -> home memory tile."""

    def __init__(self, index: int):
        self.index = index
        self.entries: List[RouteEntry] = []
        self.interleave: Optional[Callable[[int], int]] = None
        self.routed = 0

    def program_interleave(self, fn: Callable[[int], int]) -> None:
        """Install a hashing/interleaving function (e.g. line-granularity
        round-robin across all 16 banks for the shared-L2 configuration)."""
        self.interleave = fn
        self.entries = []

    def program_ranges(self, entries: List[RouteEntry]) -> None:
        """Install explicit ranges (scratchpad / split configurations)."""
        self.entries = list(entries)
        self.interleave = None

    def route(self, address: int) -> int:
        """Home MT index for ``address``."""
        self.routed += 1
        if self.interleave is not None:
            return self.interleave(address)
        for entry in self.entries:
            if entry.matches(address):
                return entry.mt_index
        raise LookupError(f"NT{self.index}: no route for {address:#x}")

"""Flat byte-addressable backing store.

Used directly by the functional simulator and the baseline core, and as the
DRAM behind the NUCA cache hierarchy in the detailed model.  Storage is a
dict of 4KB pages allocated on first touch, so sparse address spaces (code
at 0x1000, data at 0x100000) cost nothing.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Tuple

PAGE_SIZE = 4096
PAGE_MASK = PAGE_SIZE - 1


class BackingStore:
    """Sparse 64-bit byte-addressable memory, little-endian."""

    def __init__(self) -> None:
        self._pages: Dict[int, bytearray] = {}

    def _page(self, address: int) -> bytearray:
        page_no = address >> 12
        page = self._pages.get(page_no)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[page_no] = page
        return page

    # ------------------------------------------------------------------
    def read(self, address: int, size: int) -> int:
        """Read ``size`` bytes as an unsigned little-endian integer."""
        if size <= 0:
            raise ValueError("size must be positive")
        end_page = (address + size - 1) >> 12
        if end_page == address >> 12:
            off = address & PAGE_MASK
            return int.from_bytes(self._page(address)[off:off + size], "little")
        return int.from_bytes(self.read_bytes(address, size), "little")

    def write(self, address: int, value: int, size: int) -> None:
        """Write the low ``size`` bytes of ``value``, little-endian."""
        if size <= 0:
            raise ValueError("size must be positive")
        data = (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
        self.write_bytes(address, data)

    def read_bytes(self, address: int, size: int) -> bytes:
        out = bytearray()
        while size > 0:
            off = address & PAGE_MASK
            chunk = min(size, PAGE_SIZE - off)
            out += self._page(address)[off:off + chunk]
            address += chunk
            size -= chunk
        return bytes(out)

    def write_bytes(self, address: int, data: bytes) -> None:
        pos = 0
        while pos < len(data):
            off = (address + pos) & PAGE_MASK
            chunk = min(len(data) - pos, PAGE_SIZE - off)
            self._page(address + pos)[off:off + chunk] = data[pos:pos + chunk]
            pos += chunk

    # ------------------------------------------------------------------
    def load_image(self, image: Mapping[int, bytes]) -> None:
        """Install a program's memory image (address -> bytes)."""
        for address, payload in image.items():
            self.write_bytes(address, payload)

    def touched_pages(self) -> Iterable[Tuple[int, bytes]]:
        """All allocated pages, for snapshot/diff in tests."""
        for page_no in sorted(self._pages):
            yield page_no << 12, bytes(self._pages[page_no])

    def copy(self) -> "BackingStore":
        clone = BackingStore()
        for page_no, page in self._pages.items():
            clone._pages[page_no] = bytearray(page)
        return clone

"""Memory tiles (MT): the 16 NUCA level-2 banks (Section 3.6).

Each MT holds one 4-way, 64KB bank plus an OCN router (modelled by the
shared mesh) and a single-entry MSHR.  A configuration command can switch
a bank between **L2-cache** mode and **scratchpad** mode; in scratchpad
mode the bank is directly-addressed on-chip memory and never misses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..uarch.caches import CacheBank


@dataclass
class MtConfig:
    size_kb: int = 64
    assoc: int = 4
    line_bytes: int = 64
    bank_latency: int = 4          # SRAM access pipeline
    mshr_entries: int = 1          # single-entry MSHR (Section 3.6)


class MemoryTile:
    """One NUCA bank."""

    def __init__(self, index: int, config: MtConfig = None):
        self.index = index
        self.config = config or MtConfig()
        self.bank = CacheBank(self.config.size_kb * 1024, self.config.assoc,
                              self.config.line_bytes)
        self.mode = "l2"                  # "l2" | "scratch"
        self.mshr_busy_until = 0
        self.hits = 0
        self.misses = 0
        self.scratch_accesses = 0
        self.mshr_stalls = 0

    def configure(self, mode: str) -> None:
        if mode not in ("l2", "scratch"):
            raise ValueError(f"unknown MT mode {mode!r}")
        self.mode = mode

    def access(self, address: int, now: int) -> Tuple[int, bool]:
        """(ready time at the bank, needs_dram).

        In L2 mode a miss occupies the single MSHR; a second miss arriving
        while it is busy waits for it (the single-entry MSHR is precisely
        why the paper's OCN needed four virtual channels less than it
        needed bandwidth).
        """
        if self.mode == "scratch":
            self.scratch_accesses += 1
            return now + self.config.bank_latency, False
        if self.bank.lookup(address):
            self.hits += 1
            return now + self.config.bank_latency, False
        self.misses += 1
        start = now
        if self.mshr_busy_until > now:
            self.mshr_stalls += 1
            start = self.mshr_busy_until
        self.bank.fill(address)
        return start + self.config.bank_latency, True

    def note_refill(self, done_at: int) -> None:
        self.mshr_busy_until = done_at

"""A 4-wide out-of-order uniprocessor timing model (the Alpha 21264 role).

The functional pass (:func:`repro.baseline.srisc.run_functional`) resolves
the dynamic instruction stream — branch outcomes, memory addresses — and
this model replays it through a constraint-based OoO timing analysis:

* in-order fetch at ``fetch_width``/cycle, one-bubble taken-branch
  redirects, and a 21264-style tournament direction predictor whose
  mispredictions restart fetch after the branch resolves,
* register renaming expressed as ready-times per architectural register
  (write-after-write/read never stall, exactly what renaming buys),
* a finite reorder buffer and per-class functional-unit bandwidth
  (int ALUs, FP units, and — crucially for the paper's `vadd`/`conv`
  bandwidth argument — two L1D ports against TRIPS's four DTs),
* loads check a 64KB 2-way L1D for latency and forward from earlier
  stores at the stores' issue time (an idealized disambiguator: the 21264's
  memory speculation was very good),
* in-order commit at ``commit_width``/cycle.

This is the "timing-first, functional-ahead" style of model; it captures
dataflow ILP, bandwidth and misprediction effects without modelling wrong-
path execution (second-order for these kernels).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..serialize import dataclass_from_dict, dataclass_to_dict
from ..uarch.caches import CacheBank
from .srisc import DynInst, FunctionalResult, SriscProgram, run_functional


@dataclass
class BaselineConfig:
    fetch_width: int = 4
    frontend_depth: int = 4        # fetch -> rename/queue latency
    rob_entries: int = 80
    int_alus: int = 4
    fp_units: int = 2
    mem_ports: int = 2             # the 21264's two L1D ports
    commit_width: int = 4
    mispredict_penalty: int = 7
    taken_bubble: int = 1
    l1d_kb: int = 64
    l1d_assoc: int = 2
    line_bytes: int = 64
    l1_hit_cycles: int = 3
    l2_hit_cycles: int = 12        # matched to the TRIPS config
    perfect_l2: bool = True
    int_mul_latency: int = 7
    int_div_latency: int = 20
    fp_latency: int = 4
    fp_div_latency: int = 12
    # branch predictor budgets (local/global/choice)
    local_entries: int = 1024
    global_entries: int = 4096
    #: the 21264 splits its integer units into two clusters; a result
    #: consumed in the other cluster pays one extra bypass cycle
    cluster_penalty: int = 1
    clustered: bool = True


@dataclass
class BaselineStats:
    cycles: int = 0
    instructions: int = 0
    branches: int = 0
    mispredicts: int = 0
    l1d_hits: int = 0
    l1d_misses: int = 0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    # -- JSON round trip (simlab cache records, harness --json) ---------
    def to_dict(self) -> Dict[str, int]:
        return dataclass_to_dict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, int]) -> "BaselineStats":
        return dataclass_from_dict(cls, data)


class _Tournament:
    """21264-style local/global/choice direction predictor."""

    def __init__(self, config: BaselineConfig):
        # counters start weakly-taken: backward loop branches predict
        # correctly from the first encounter, as a warm predictor would
        self.local_hist = [0] * config.local_entries
        self.local_pht = [2] * config.local_entries
        self.global_pht = [2] * config.global_entries
        self.choice = [1] * config.global_entries
        self.ghist = 0
        self.n_local = config.local_entries
        self.n_global = config.global_entries

    def predict(self, pc: int) -> bool:
        lh = self.local_hist[pc % self.n_local]
        local = self.local_pht[(pc ^ lh) % self.n_local] >= 2
        glob = self.global_pht[(pc ^ self.ghist) % self.n_global] >= 2
        use_global = self.choice[(pc ^ self.ghist) % self.n_global] >= 2
        return glob if use_global else local

    def update(self, pc: int, taken: bool) -> None:
        lh = self.local_hist[pc % self.n_local]
        li = (pc ^ lh) % self.n_local
        gi = (pc ^ self.ghist) % self.n_global
        local_ok = (self.local_pht[li] >= 2) == taken
        global_ok = (self.global_pht[gi] >= 2) == taken
        if local_ok != global_ok:
            self.choice[gi] = min(3, self.choice[gi] + 1) if global_ok \
                else max(0, self.choice[gi] - 1)
        self.local_pht[li] = min(3, self.local_pht[li] + 1) if taken \
            else max(0, self.local_pht[li] - 1)
        self.global_pht[gi] = min(3, self.global_pht[gi] + 1) if taken \
            else max(0, self.global_pht[gi] - 1)
        self.local_hist[pc % self.n_local] = ((lh << 1) | taken) & 0x3FF
        self.ghist = ((self.ghist << 1) | taken) & 0xFFF


class _SlotTable:
    """Earliest-cycle-with-free-slot finder for a W-wide resource."""

    def __init__(self, width: int):
        self.width = width
        self.used: Dict[int, int] = {}

    def reserve(self, earliest: int) -> int:
        t = earliest
        while self.used.get(t, 0) >= self.width:
            t += 1
        self.used[t] = self.used.get(t, 0) + 1
        return t


class OooCore:
    """Replay a resolved SRISC stream through the timing constraints."""

    def __init__(self, config: BaselineConfig = None):
        self.config = config or BaselineConfig()

    def run(self, program: SriscProgram,
            functional: FunctionalResult = None) -> BaselineStats:
        cfg = self.config
        if functional is None:
            functional = run_functional(program)
        stream = functional.stream
        stats = BaselineStats(instructions=len(stream))
        bpred = _Tournament(cfg)
        cache = CacheBank(cfg.l1d_kb * 1024, cfg.l1d_assoc, cfg.line_bytes)

        int_slots = _SlotTable(cfg.int_alus)
        fp_slots = _SlotTable(cfg.fp_units)
        mem_slots = _SlotTable(cfg.mem_ports)
        commit_slots = _SlotTable(cfg.commit_width)
        fetch_slots = _SlotTable(cfg.fetch_width)

        reg_ready = [0] * 64
        reg_cluster = [0] * 64           # which cluster produced the value
        store_visible: Dict[int, int] = {}   # 8-byte granule -> data time
        commit_t: List[int] = []
        fetch_floor = 0

        for i, rec in enumerate(stream):
            inst = rec.inst
            fetch = fetch_slots.reserve(fetch_floor)
            dispatch = fetch + cfg.frontend_depth
            if len(commit_t) >= cfg.rob_entries:
                dispatch = max(dispatch, commit_t[-cfg.rob_entries])

            # 21264-style clustering: integer instructions steer to one of
            # two clusters; consuming a value produced by the other
            # cluster costs an extra bypass cycle
            cluster = i & 1
            ready = dispatch

            def src_ready(reg: int) -> int:
                t = reg_ready[reg]
                if cfg.clustered and reg_cluster[reg] != cluster and t > 0:
                    t += cfg.cluster_penalty
                return t

            if inst.ra >= 0:
                ready = max(ready, src_ready(inst.ra))
            if inst.rb is not None and inst.rb >= 0:
                ready = max(ready, src_ready(inst.rb))

            op = inst.op
            if op in ("ld", "st"):
                if op == "ld":
                    for g in _granules(rec.address, inst.size):
                        ready = max(ready, store_visible.get(g, 0))
                issue = mem_slots.reserve(ready)
                if op == "ld":
                    if cache.lookup(rec.address):
                        stats.l1d_hits += 1
                        latency = cfg.l1_hit_cycles
                    else:
                        stats.l1d_misses += 1
                        latency = cfg.l1_hit_cycles + cfg.l2_hit_cycles
                        cache.fill(rec.address)
                    wb = issue + latency
                else:
                    wb = issue + 1
                    cache.fill(rec.address)
                    for g in _granules(rec.address, inst.size):
                        store_visible[g] = wb
            elif inst.is_fp:
                issue = fp_slots.reserve(ready)
                latency = cfg.fp_div_latency if op == "fdiv" \
                    else cfg.fp_latency
                wb = issue + latency
            else:
                issue = int_slots.reserve(ready)
                if op == "mul":
                    latency = cfg.int_mul_latency
                elif op in ("div", "rem"):
                    latency = cfg.int_div_latency
                else:
                    latency = 1
                wb = issue + latency

            if inst.rd >= 0:
                reg_ready[inst.rd] = wb
                reg_cluster[inst.rd] = cluster

            # control flow: redirects and mispredicts gate later fetch
            if op in ("bz", "bnz"):
                stats.branches += 1
                predicted = bpred.predict(rec.index)
                bpred.update(rec.index, rec.taken)
                if predicted != rec.taken:
                    stats.mispredicts += 1
                    fetch_floor = max(fetch_floor,
                                      wb + cfg.mispredict_penalty)
                elif rec.taken:
                    fetch_floor = max(fetch_floor, fetch + cfg.taken_bubble)
            elif op == "jmp":
                fetch_floor = max(fetch_floor, fetch + cfg.taken_bubble)

            prev_commit = commit_t[-1] if commit_t else 0
            commit_t.append(commit_slots.reserve(max(wb, prev_commit)))

        stats.cycles = (commit_t[-1] + 1) if commit_t else 0
        return stats


def _granules(address: int, size: int):
    return range(address >> 3, (address + size - 1 >> 3) + 1)


def run_baseline(program: SriscProgram, config: BaselineConfig = None):
    """Convenience: functional + timing in one call.

    Returns (FunctionalResult, BaselineStats).
    """
    functional = run_functional(program)
    stats = OooCore(config).run(program, functional)
    return functional, stats

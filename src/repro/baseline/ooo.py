"""A 4-wide out-of-order uniprocessor timing model (the Alpha 21264 role).

The functional pass (:func:`repro.baseline.srisc.run_functional`) resolves
the dynamic instruction stream — branch outcomes, memory addresses — and
this model replays it through a constraint-based OoO timing analysis:

* in-order fetch at ``fetch_width``/cycle, one-bubble taken-branch
  redirects, and a 21264-style tournament direction predictor whose
  mispredictions restart fetch after the branch resolves,
* register renaming expressed as ready-times per architectural register
  (write-after-write/read never stall, exactly what renaming buys),
* a finite reorder buffer and per-class functional-unit bandwidth
  (int ALUs, FP units, and — crucially for the paper's `vadd`/`conv`
  bandwidth argument — two L1D ports against TRIPS's four DTs),
* loads check a 64KB 2-way L1D for latency and forward from earlier
  stores at the stores' issue time (an idealized disambiguator: the 21264's
  memory speculation was very good),
* in-order commit at ``commit_width``/cycle.

This is the "timing-first, functional-ahead" style of model; it captures
dataflow ILP, bandwidth and misprediction effects without modelling wrong-
path execution (second-order for these kernels).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..serialize import dataclass_from_dict, dataclass_to_dict
from ..uarch.caches import CacheBank
from .srisc import DynInst, FunctionalResult, SriscProgram, run_functional


@dataclass
class BaselineConfig:
    fetch_width: int = 4
    frontend_depth: int = 4        # fetch -> rename/queue latency
    rob_entries: int = 80
    int_alus: int = 4
    fp_units: int = 2
    mem_ports: int = 2             # the 21264's two L1D ports
    commit_width: int = 4
    mispredict_penalty: int = 7
    taken_bubble: int = 1
    l1d_kb: int = 64
    l1d_assoc: int = 2
    line_bytes: int = 64
    l1_hit_cycles: int = 3
    l2_hit_cycles: int = 12        # matched to the TRIPS config
    perfect_l2: bool = True
    int_mul_latency: int = 7
    int_div_latency: int = 20
    fp_latency: int = 4
    fp_div_latency: int = 12
    # branch predictor budgets (local/global/choice)
    local_entries: int = 1024
    global_entries: int = 4096
    #: the 21264 splits its integer units into two clusters; a result
    #: consumed in the other cluster pays one extra bypass cycle
    cluster_penalty: int = 1
    clustered: bool = True


@dataclass
class BaselineStats:
    cycles: int = 0
    instructions: int = 0
    branches: int = 0
    mispredicts: int = 0
    l1d_hits: int = 0
    l1d_misses: int = 0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    # -- JSON round trip (simlab cache records, harness --json) ---------
    def to_dict(self) -> Dict[str, int]:
        return dataclass_to_dict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, int]) -> "BaselineStats":
        return dataclass_from_dict(cls, data)


class _Tournament:
    """21264-style local/global/choice direction predictor."""

    def __init__(self, config: BaselineConfig):
        # counters start weakly-taken: backward loop branches predict
        # correctly from the first encounter, as a warm predictor would
        self.local_hist = [0] * config.local_entries
        self.local_pht = [2] * config.local_entries
        self.global_pht = [2] * config.global_entries
        self.choice = [1] * config.global_entries
        self.ghist = 0
        self.n_local = config.local_entries
        self.n_global = config.global_entries

    def predict(self, pc: int) -> bool:
        lh = self.local_hist[pc % self.n_local]
        local = self.local_pht[(pc ^ lh) % self.n_local] >= 2
        glob = self.global_pht[(pc ^ self.ghist) % self.n_global] >= 2
        use_global = self.choice[(pc ^ self.ghist) % self.n_global] >= 2
        return glob if use_global else local

    def update(self, pc: int, taken: bool) -> None:
        lh = self.local_hist[pc % self.n_local]
        li = (pc ^ lh) % self.n_local
        gi = (pc ^ self.ghist) % self.n_global
        local_ok = (self.local_pht[li] >= 2) == taken
        global_ok = (self.global_pht[gi] >= 2) == taken
        if local_ok != global_ok:
            self.choice[gi] = min(3, self.choice[gi] + 1) if global_ok \
                else max(0, self.choice[gi] - 1)
        self.local_pht[li] = min(3, self.local_pht[li] + 1) if taken \
            else max(0, self.local_pht[li] - 1)
        self.global_pht[gi] = min(3, self.global_pht[gi] + 1) if taken \
            else max(0, self.global_pht[gi] - 1)
        self.local_hist[pc % self.n_local] = ((lh << 1) | taken) & 0x3FF
        self.ghist = ((self.ghist << 1) | taken) & 0xFFF


class _SlotTable:
    """Earliest-cycle-with-free-slot finder for a W-wide resource.

    The issue-side tables (int/fp/mem) see arbitrary ``earliest``
    requests — operand readiness moves backwards between neighbouring
    instructions — so they keep the sparse per-cycle dict.  Fetch and
    commit request monotonically non-decreasing cycles and use the
    counter-pair fast path (:meth:`reserve_mono`): once the cursor moves
    past a cycle, that cycle is either full or can never be requested
    again, so a (cycle, used) pair replaces the dict probe loop.
    """

    def __init__(self, width: int):
        self.width = width
        self.used: Dict[int, int] = {}
        self._cur = -1
        self._n = 0

    def reserve(self, earliest: int) -> int:
        t = earliest
        used = self.used
        while used.get(t, 0) >= self.width:
            t += 1
        used[t] = used.get(t, 0) + 1
        return t

    def reserve_mono(self, earliest: int) -> int:
        if earliest > self._cur:
            self._cur = earliest
            self._n = 1
        elif self._n >= self.width:
            self._cur += 1
            self._n = 1
        else:
            self._n += 1
        return self._cur


class OooCore:
    """Replay a resolved SRISC stream through the timing constraints."""

    def __init__(self, config: BaselineConfig = None):
        self.config = config or BaselineConfig()

    def run(self, program: SriscProgram,
            functional: FunctionalResult = None) -> BaselineStats:
        cfg = self.config
        if functional is None:
            functional = run_functional(program)
        stream = functional.stream
        stats = BaselineStats(instructions=len(stream))
        bpred = _Tournament(cfg)
        cache = CacheBank(cfg.l1d_kb * 1024, cfg.l1d_assoc, cfg.line_bytes)

        int_slots = _SlotTable(cfg.int_alus)
        fp_slots = _SlotTable(cfg.fp_units)
        mem_slots = _SlotTable(cfg.mem_ports)
        commit_slots = _SlotTable(cfg.commit_width)
        fetch_slots = _SlotTable(cfg.fetch_width)

        # per-static-instruction wakeup descriptors, indexed by the
        # static instruction index the stream already carries: operand
        # registers, the functional-unit class, and the fixed latency,
        # so the replay loop does no string compares or property calls
        K_LD, K_ST, K_FP, K_INT = 0, 1, 2, 3
        descs = []
        for inst in program.insts:
            op = inst.op
            ra = inst.ra if inst.ra >= 0 else -1
            rb = inst.rb if inst.rb is not None and inst.rb >= 0 else -1
            if op == "ld":
                kind, latency = K_LD, 0
            elif op == "st":
                kind, latency = K_ST, 1
            elif inst.is_fp:
                kind = K_FP
                latency = cfg.fp_div_latency if op == "fdiv" \
                    else cfg.fp_latency
            else:
                kind = K_INT
                if op == "mul":
                    latency = cfg.int_mul_latency
                elif op in ("div", "rem"):
                    latency = cfg.int_div_latency
                else:
                    latency = 1
            ctl = 1 if op in ("bz", "bnz") else (2 if op == "jmp" else 0)
            descs.append((kind, latency, ra, rb, inst.rd, inst.size, ctl))

        reg_ready = [0] * 64
        reg_cluster = [0] * 64           # which cluster produced the value
        store_visible: Dict[int, int] = {}   # 8-byte granule -> data time
        commit_t: List[int] = []
        fetch_floor = 0

        clustered = cfg.clustered
        cluster_penalty = cfg.cluster_penalty
        frontend_depth = cfg.frontend_depth
        rob_entries = cfg.rob_entries
        l1_hit = cfg.l1_hit_cycles
        l1_miss = cfg.l1_hit_cycles + cfg.l2_hit_cycles
        reserve_fetch = fetch_slots.reserve_mono
        reserve_commit = commit_slots.reserve_mono
        reserve_int = int_slots.reserve
        reserve_fp = fp_slots.reserve
        reserve_mem = mem_slots.reserve
        sv_get = store_visible.get
        prev_commit = 0

        for i, rec in enumerate(stream):
            kind, latency, ra, rb, rd, size, ctl = descs[rec.index]
            fetch = reserve_fetch(fetch_floor)
            ready = fetch + frontend_depth
            if i >= rob_entries:
                rob_gate = commit_t[i - rob_entries]
                if rob_gate > ready:
                    ready = rob_gate

            # 21264-style clustering: integer instructions steer to one of
            # two clusters; consuming a value produced by the other
            # cluster costs an extra bypass cycle
            cluster = i & 1
            if ra >= 0:
                t = reg_ready[ra]
                if clustered and t > 0 and reg_cluster[ra] != cluster:
                    t += cluster_penalty
                if t > ready:
                    ready = t
            if rb >= 0:
                t = reg_ready[rb]
                if clustered and t > 0 and reg_cluster[rb] != cluster:
                    t += cluster_penalty
                if t > ready:
                    ready = t

            if kind == K_INT:
                wb = reserve_int(ready) + latency
            elif kind == K_LD:
                address = rec.address
                for g in range(address >> 3, (address + size - 1 >> 3) + 1):
                    t = sv_get(g, 0)
                    if t > ready:
                        ready = t
                issue = reserve_mem(ready)
                if cache.lookup(address):
                    stats.l1d_hits += 1
                    wb = issue + l1_hit
                else:
                    stats.l1d_misses += 1
                    wb = issue + l1_miss
                    cache.fill(address)
            elif kind == K_ST:
                address = rec.address
                wb = reserve_mem(ready) + 1
                cache.fill(address)
                for g in range(address >> 3, (address + size - 1 >> 3) + 1):
                    store_visible[g] = wb
            else:
                wb = reserve_fp(ready) + latency

            if rd >= 0:
                reg_ready[rd] = wb
                reg_cluster[rd] = cluster

            # control flow: redirects and mispredicts gate later fetch
            if ctl:
                if ctl == 1:
                    stats.branches += 1
                    predicted = bpred.predict(rec.index)
                    bpred.update(rec.index, rec.taken)
                    if predicted != rec.taken:
                        stats.mispredicts += 1
                        t = wb + cfg.mispredict_penalty
                        if t > fetch_floor:
                            fetch_floor = t
                    elif rec.taken:
                        t = fetch + cfg.taken_bubble
                        if t > fetch_floor:
                            fetch_floor = t
                else:
                    t = fetch + cfg.taken_bubble
                    if t > fetch_floor:
                        fetch_floor = t

            prev_commit = reserve_commit(
                wb if wb > prev_commit else prev_commit)
            commit_t.append(prev_commit)

        stats.cycles = (commit_t[-1] + 1) if commit_t else 0
        return stats


def _granules(address: int, size: int):
    return range(address >> 3, (address + size - 1 >> 3) + 1)


def run_baseline(program: SriscProgram, config: BaselineConfig = None):
    """Convenience: functional + timing in one call.

    Returns (FunctionalResult, BaselineStats).
    """
    functional = run_functional(program)
    stats = OooCore(config).run(program, functional)
    return functional, stats

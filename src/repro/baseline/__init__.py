"""The conventional-uniprocessor comparison point (Section 5.4).

The paper compares TRIPS against a 467MHz Alpha 21264 running Gem-compiled
code, measured on sim-alpha with a perfect L2 to normalize the memory
system.  We reproduce the *role* of that baseline: a structurally-faithful
4-wide out-of-order core (21264-style tournament predictor, 80-entry ROB,
two L1D ports, 64KB L1D) executing a sequential RISC ISA ("SRISC") lowered
from the same TIR workloads.

Speedups are computed the paper's way: ratio of cycle counts for the same
workload, with both machines given a perfect L2.
"""

from .srisc import SInst, SriscProgram, run_functional
from .ooo import BaselineConfig, BaselineStats, OooCore

__all__ = ["SInst", "SriscProgram", "run_functional", "BaselineConfig",
           "BaselineStats", "OooCore"]

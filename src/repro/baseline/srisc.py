"""SRISC: the sequential RISC ISA the baseline core executes.

A deliberately conventional load/store ISA — 64 registers, three-operand
ALU ops (register or immediate second source), sized loads/stores, compare
ops producing 0/1, conditional branches on a register, and ``halt``.
Operator semantics are the shared 64-bit ones from
:mod:`repro.tir.semantics`, so SRISC runs produce bit-identical results to
the interpreter and the TRIPS simulators.

:func:`run_functional` executes a program in order and returns both the
final architectural state and the *dynamic instruction stream* (with
resolved branch outcomes and memory addresses), which the timing model in
:mod:`repro.baseline.ooo` replays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..mem.backing import BackingStore
from ..tir import semantics
from ..tir.ir import MASK64, bits_to_int

NUM_REGS = 64

#: ALU operator vocabulary = the TIR binops plus unary forms.
UNARY_OPS = {"not", "neg", "itof", "ftoi", "mov"}
#: branch / control ops.
CONTROL_OPS = {"bz", "bnz", "jmp", "halt"}


class SriscError(RuntimeError):
    pass


@dataclass
class SInst:
    """One SRISC instruction.

    * ALU: ``op rd, ra, rb``  or  ``op rd, ra, #imm`` (rb None)
    * ``li rd, #imm``  — load a 64-bit literal
    * ``ld<size> rd, [ra + #imm]`` (``signed`` picks sign extension)
    * ``st<size> rb -> [ra + #imm]``
    * ``bz/bnz ra, label`` / ``jmp label`` / ``halt``
    """

    op: str
    rd: int = -1
    ra: int = -1
    rb: Optional[int] = None
    imm: int = 0
    size: int = 0
    signed: bool = False
    label: Optional[str] = None

    @property
    def is_load(self) -> bool:
        return self.op == "ld"

    @property
    def is_store(self) -> bool:
        return self.op == "st"

    @property
    def is_branch(self) -> bool:
        return self.op in CONTROL_OPS

    @property
    def is_fp(self) -> bool:
        return self.op.startswith("f") or self.op in ("itof", "ftoi")

    def __str__(self) -> str:
        if self.op == "li":
            return f"li r{self.rd}, #{self.imm}"
        if self.op == "ld":
            return f"ld{self.size} r{self.rd}, [r{self.ra}+{self.imm}]"
        if self.op == "st":
            return f"st{self.size} r{self.rb} -> [r{self.ra}+{self.imm}]"
        if self.op in ("bz", "bnz"):
            return f"{self.op} r{self.ra}, {self.label}"
        if self.op == "jmp":
            return f"jmp {self.label}"
        if self.op == "halt":
            return "halt"
        src = f"r{self.rb}" if self.rb is not None else f"#{self.imm}"
        if self.op in UNARY_OPS:
            return f"{self.op} r{self.rd}, r{self.ra}"
        return f"{self.op} r{self.rd}, r{self.ra}, {src}"


@dataclass
class SriscProgram:
    insts: List[SInst] = field(default_factory=list)
    labels: Dict[str, int] = field(default_factory=dict)
    var_regs: Dict[str, int] = field(default_factory=dict)
    array_addrs: Dict[str, int] = field(default_factory=dict)
    data: Dict[int, bytes] = field(default_factory=dict)
    initial_regs: Dict[int, int] = field(default_factory=dict)

    def resolve(self) -> None:
        """Turn label references into instruction indices (imm field)."""
        for inst in self.insts:
            if inst.label is not None:
                if inst.label not in self.labels:
                    raise SriscError(f"undefined label {inst.label!r}")
                inst.imm = self.labels[inst.label]


@dataclass
class DynInst:
    """One executed instruction, for the timing model's replay."""

    index: int                  # static instruction index
    inst: SInst
    address: int = -1           # loads/stores: effective address
    taken: bool = False         # branches: outcome
    next_index: int = -1        # architectural successor


@dataclass
class FunctionalResult:
    regs: List[int]
    memory: BackingStore
    stream: List[DynInst]
    dynamic_count: int


def run_functional(program: SriscProgram,
                   max_insts: int = 20_000_000,
                   record_stream: bool = True) -> FunctionalResult:
    """Execute in order; optionally record the dynamic stream."""
    program.resolve()
    regs = [0] * NUM_REGS
    for reg, value in program.initial_regs.items():
        regs[reg] = value & MASK64
    memory = BackingStore()
    for addr, payload in program.data.items():
        memory.write_bytes(addr, payload)
    stream: List[DynInst] = []
    pc = 0
    count = 0
    insts = program.insts
    while True:
        if count >= max_insts:
            raise SriscError(f"instruction budget {max_insts} exhausted")
        inst = insts[pc]
        count += 1
        rec = DynInst(index=pc, inst=inst) if record_stream else None
        next_pc = pc + 1
        op = inst.op
        if op == "halt":
            if rec is not None:
                rec.next_index = -1
                stream.append(rec)
            break
        if op == "li":
            regs[inst.rd] = inst.imm & MASK64
        elif op == "ld":
            address = (regs[inst.ra] + inst.imm) & MASK64
            raw = memory.read(address, inst.size)
            regs[inst.rd] = semantics.truncate_load(raw, inst.size,
                                                    inst.signed)
            if rec is not None:
                rec.address = address
        elif op == "st":
            address = (regs[inst.ra] + inst.imm) & MASK64
            memory.write(address, regs[inst.rb], inst.size)
            if rec is not None:
                rec.address = address
        elif op in ("bz", "bnz"):
            taken = (regs[inst.ra] == 0) == (op == "bz")
            if taken:
                next_pc = inst.imm
            if rec is not None:
                rec.taken = taken
        elif op == "jmp":
            next_pc = inst.imm
            if rec is not None:
                rec.taken = True
        elif op == "mov":
            regs[inst.rd] = regs[inst.ra]
        elif op in ("not", "neg", "itof", "ftoi"):
            regs[inst.rd] = semantics.unop(op, regs[inst.ra])
        else:
            b = regs[inst.rb] if inst.rb is not None else inst.imm & MASK64
            regs[inst.rd] = semantics.binop(op, regs[inst.ra], b)
        if rec is not None:
            rec.next_index = next_pc
            stream.append(rec)
        pc = next_pc
    return FunctionalResult(regs=regs, memory=memory, stream=stream,
                            dynamic_count=count)

"""The full TRIPS chip: two processor cores + the shared memory system.

The prototype chip carries two complete processors that "can communicate
through the secondary memory system, in which the On-Chip Network (OCN) is
embedded" (Section 3).  :class:`TripsChip` composes two
:class:`~repro.uarch.proc.TripsProcessor` cores over one
:class:`~repro.mem.sysmem.SecondaryMemory` and one backing store:
processor 0 owns OCN ports 0-3, processor 1 ports 4-7, and the chip's run
loop advances both cores and the OCN in lockstep.

Inter-processor communication happens exactly as on the silicon: through
memory (stores become visible at block commit; there is no inter-core
forwarding path) or through programmed DMA transfers between physical
regions.  Programs for the two cores must occupy disjoint address ranges
(the chip has a single physical address space); shared data is simply
data both programs address.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .isa import Program
from .mem.backing import BackingStore
from .mem.sysmem import SecondaryMemory, SysMemConfig
from .serialize import dataclass_from_dict, dataclass_to_dict
from .uarch.config import TripsConfig
from .uarch.proc import ProcStats, TripsProcessor


class ChipError(RuntimeError):
    pass


@dataclass
class ChipStats:
    cycles: int = 0
    per_core: List[ProcStats] = field(default_factory=list)
    ocn_requests: int = 0
    dram_accesses: int = 0

    # -- JSON round trip (simlab cache records, harness --json) ---------
    def to_dict(self) -> Dict:
        data = dataclass_to_dict(self)
        data["per_core"] = [stats.to_dict() for stats in self.per_core]
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "ChipStats":
        data = dict(data)
        data["per_core"] = [ProcStats.from_dict(stats)
                            for stats in data.get("per_core", [])]
        return dataclass_from_dict(cls, data)


class TripsChip:
    """Two cores, one memory system."""

    def __init__(self, program0: Program, program1: Optional[Program] = None,
                 config: Optional[TripsConfig] = None,
                 memory_mode: str = "shared_l2",
                 max_cycles: int = 5_000_000,
                 telemetry=None):
        config = config or TripsConfig(perfect_l2=False)
        if config.perfect_l2:
            config = config.with_overrides(perfect_l2=False)
        self.memory = BackingStore()
        self.sysmem = SecondaryMemory(
            SysMemConfig(mode=memory_mode, dram_cycles=config.dram_cycles,
                         active_set=config.fast_path,
                         express=config.fast_path
                         and config.express_routing),
            backing=self.memory)
        self.max_cycles = max_cycles

        self._check_disjoint(program0, program1)
        self.cores: List[TripsProcessor] = []
        for index, program in enumerate([program0, program1]):
            if program is None:
                continue
            self.cores.append(TripsProcessor(
                program, config=config, memory=self.memory,
                sysmem=self.sysmem, sysmem_port_base=4 * index,
                telemetry=telemetry))
        self.cycle = 0

    @staticmethod
    def _check_disjoint(program0: Program,
                        program1: Optional[Program]) -> None:
        if program1 is None:
            return

        def spans(program):
            out = []
            for addr, blk in program.blocks.items():
                out.append((addr, addr + blk.size_bytes))
            return out

        for a0, e0 in spans(program0):
            for a1, e1 in spans(program1):
                if a0 < e1 and a1 < e0:
                    raise ChipError(
                        f"code regions overlap: {a0:#x}-{e0:#x} vs "
                        f"{a1:#x}-{e1:#x}; compile the second program at a "
                        "different base")

    # ------------------------------------------------------------------
    def run(self) -> ChipStats:
        """Run both cores to completion."""
        fast = all(core.config.fast_path for core in self.cores)
        while not all(core.halted for core in self.cores):
            if self.cycle >= self.max_cycles:
                raise ChipError(f"chip cycle budget {self.max_cycles} "
                                "exhausted")
            for core in self.cores:
                if not core.halted:
                    core.step()
            self.sysmem.step()
            for core in self.cores:
                core.poll_sysmem()
            self.cycle += 1
            if fast:
                self._try_fast_forward()
        for core in self.cores:
            core.finalize_stats()
        return ChipStats(
            cycles=self.cycle,
            per_core=[core.stats for core in self.cores],
            ocn_requests=self.sysmem.stats["requests"],
            dram_accesses=self.sysmem.stats["dram_accesses"])

    def _try_fast_forward(self) -> None:
        """Skip cycles in which provably no core and no OCN work occurs.

        The chip may only jump when *every* live core is quiescent and
        the shared memory system is drained; the target is the earliest
        moment any of them can act (event heap, prediction latency, bank
        or DRAM completion).  Cores and the OCN advance in lockstep, so
        one assignment per clock domain suffices; halted cores keep their
        final cycle count, exactly as under per-cycle stepping.
        """
        if all(core.halted for core in self.cores):
            return      # the run loop is about to exit; nothing to skip
        t = self.cycle
        times = []
        for core in self.cores:
            if core.halted:
                continue
            work = core.next_work_t()
            if work is not None:
                if work <= t:
                    return
                times.append(work)
        mem = self.sysmem.next_work_t()
        if mem is not None:
            if mem <= t:
                return
            times.append(mem)
        target = min(min(times) if times else self.max_cycles,
                     self.max_cycles)
        if target <= t:
            return
        for core in self.cores:
            if not core.halted:
                if core.tel is not None:
                    core.tel.account_skip(core.cycle, target)
                core.cycle = target
                core.opn.fast_forward(target)
        self.sysmem.fast_forward(target)
        self.cycle = target

    def dma_copy(self, src: int, dst: int, nbytes: int) -> int:
        """Programmed DMA between physical regions (an OCN client)."""
        return self.sysmem.dma_copy(src, dst, nbytes)

"""Top-level compilation pipeline: TIR program -> TRIPS program.

Pipeline: structured lowering to a CFG (level-dependent transforms), global
liveness, per-CFG-block dataflow construction with constraint-driven
splitting (a CFG block that exceeds the 128-instruction / 32-memory-op /
8-per-bank limits is cut at a statement boundary and chained with a jump),
materialization (DCE, fanout, scheduling), and linking via
:class:`repro.isa.ProgramBuilder`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..isa import BlockError, Program, ProgramBuilder
from ..tir.ir import Assign, Stmt, Store, TirProgram, int_to_bits
from ..tir.semantics import truncate_load
from .cfg import (
    CfgBlock,
    CompileError,
    CondJump,
    Halt,
    Jump,
    PredRegion,
    liveness,
    lower_to_cfg,
    stmt_uses_defs,
)
from .dag import BlockDag, _SplitNeeded
from .emit import materialize

MAX_SCALARS = 120


@dataclass
class CompiledProgram:
    """A compiled workload plus the mapping metadata the harness needs."""

    program: Program
    var_regs: Dict[str, int]
    array_addrs: Dict[str, int]
    level: str
    tir: TirProgram

    def extract_outputs(self, regs: Sequence[int], memory) -> tuple:
        """Observable outputs in :meth:`InterpResult.output_signature` form.

        ``regs`` is the final architectural register file, ``memory`` any
        object with ``read(address, size) -> int`` (both simulators and the
        backing store qualify).
        """
        parts = []
        for name in self.tir.outputs:
            if name in self.tir.arrays:
                arr = self.tir.arrays[name]
                base = self.array_addrs[name]
                values = tuple(
                    truncate_load(
                        memory.read(base + i * arr.elem_size, arr.elem_size),
                        arr.elem_size, arr.signed)
                    for i in range(len(arr.data)))
                parts.append((name, values))
            else:
                parts.append((name, regs[self.var_regs[name]]))
        return tuple(parts)


# ----------------------------------------------------------------------
def compile_tir(tir: TirProgram, level: str = "tcc",
                base: int = 0x1000, data_base: int = 0x100000) -> CompiledProgram:
    """Compile ``tir`` into a runnable TRIPS :class:`Program`."""
    tir.validate()
    cfg = lower_to_cfg(tir, level)

    var_names = _collect_variables(cfg, tir)
    if len(var_names) > MAX_SCALARS:
        raise CompileError(
            f"{len(var_names)} scalars exceed the register budget")
    var_regs = {name: i for i, name in enumerate(var_names)}

    builder = ProgramBuilder(base=base, data_base=data_base)
    # Arrays are staggered across the cache-line-interleaved DTs: giving
    # consecutive arrays different line-alignment classes keeps a[i],
    # b[i], c[i] of a streaming kernel on different data tiles (bank-
    # conflict padding; without it all three streams serialize on one
    # DT's single LSQ port).
    array_addrs = {}
    for index, (name, arr) in enumerate(tir.arrays.items()):
        pad = bytes((index % 4) * 64)
        addr = builder.add_data(pad + arr.encode(), align=256)
        array_addrs[name] = addr + len(pad)

    exit_live = {name for name in tir.outputs if name not in tir.arrays}
    live = liveness(cfg, exit_live)

    for cfg_block in cfg.blocks:
        _form_blocks(cfg_block, live[cfg_block.label], var_regs,
                     array_addrs, tir, builder)

    program = builder.finish()
    program.entry = program.labels[cfg.entry.label]
    for name, init in tir.scalars.items():
        program.initial_regs[var_regs[name]] = int_to_bits(init)
    return CompiledProgram(program=program, var_regs=var_regs,
                           array_addrs=array_addrs, level=level, tir=tir)


def _collect_variables(cfg, tir: TirProgram) -> List[str]:
    """Every scalar the CFG mentions, in deterministic first-seen order."""
    seen: Dict[str, None] = dict.fromkeys(tir.scalars)
    from .cfg import _expr_uses
    for block in cfg.blocks:
        for stmt in block.stmts:
            uses, defs = stmt_uses_defs(stmt)
            for name in sorted(uses) + sorted(defs):
                seen.setdefault(name)
        if isinstance(block.term, CondJump):
            acc: Set[str] = set()
            _expr_uses(block.term.cond, acc)
            for name in sorted(acc):
                seen.setdefault(name)
    return list(seen)


# ----------------------------------------------------------------------
def _form_blocks(cfg_block: CfgBlock, live_pair, var_regs, array_addrs,
                 tir: TirProgram, builder: ProgramBuilder) -> None:
    """Translate one CFG block into one or more TRIPS blocks."""
    _, live_out = live_pair
    stmts = cfg_block.stmts
    suffix_uses = _suffix_uses(stmts, cfg_block)

    def fresh_dag() -> BlockDag:
        return BlockDag(var_regs, array_addrs, tir.arrays)

    label = cfg_block.label
    part = 0
    dag = fresh_dag()
    index = 0
    while index < len(stmts):
        stmt = stmts[index]
        snap = dag.snapshot()
        ok = True
        try:
            _add_stmt(dag, stmt)
            pending = sorted(dag.dirty & (live_out | suffix_uses[index + 1]))
            if not dag.fits(pending):
                ok = False
        except _SplitNeeded:
            ok = False
        if ok:
            index += 1
            continue
        dag.rollback(snap)
        if snap.n_nodes == 0 and not dag.dirty:
            raise CompileError(
                f"{label}: a single statement exceeds block limits")
        cont = f"{label}__p{part}"
        part += 1
        _close(dag, var_regs, live_out | suffix_uses[index], Jump(cont))
        builder.append(materialize(dag, label), label=label)
        label = cont
        dag = fresh_dag()

    # Terminator; if it doesn't fit, it gets a block of its own.
    snap = dag.snapshot()
    try:
        _close(dag, var_regs, live_out, cfg_block.term)
        block = materialize(dag, label)
    except (_SplitNeeded, CompileError, BlockError):
        dag.rollback(snap)
        dag.writes.clear()
        dag.branches.clear()
        cont = f"{label}__p{part}"
        _close(dag, var_regs, live_out | suffix_uses[len(stmts)], Jump(cont))
        builder.append(materialize(dag, label), label=label)
        label = cont
        dag = fresh_dag()
        _close(dag, var_regs, live_out, cfg_block.term)
        block = materialize(dag, label)
    builder.append(block, label=label)


def _suffix_uses(stmts: Sequence[Stmt], cfg_block: CfgBlock) -> List[Set[str]]:
    """suffix_uses[i] = scalars used by stmts[i:] or the terminator."""
    base: Set[str] = set()
    if isinstance(cfg_block.term, CondJump):
        from .cfg import _expr_uses
        _expr_uses(cfg_block.term.cond, base)
    out = [set(base)]
    for stmt in reversed(stmts):
        uses, _ = stmt_uses_defs(stmt)
        out.append(out[-1] | uses)
    out.reverse()
    return out


def _add_stmt(dag: BlockDag, stmt: Stmt) -> None:
    if isinstance(stmt, Assign):
        dag.set_var(stmt.var, dag.expr(stmt.expr))
    elif isinstance(stmt, Store):
        dag.store(stmt.array, stmt.index, stmt.value)
    elif isinstance(stmt, PredRegion):
        _add_pred_region(dag, stmt)
    else:
        raise CompileError(f"unexpected statement {stmt!r}")


def _add_pred_region(dag: BlockDag, region: PredRegion) -> None:
    """If-converted region: Figure 5a's predication/null-token pattern."""
    cond = dag.as_pred(dag.expr(region.cond))

    def run_arm(stmts, polarity: bool) -> Dict[str, object]:
        before = dict(dag.var_values)
        before_dirty = set(dag.dirty)
        for stmt in stmts:
            if isinstance(stmt, Assign):
                dag.set_var(stmt.var, dag.expr(stmt.expr))
            elif isinstance(stmt, Store):
                dag.store(stmt.array, stmt.index, stmt.value,
                          pred=(cond, polarity))
            else:  # pragma: no cover - the if-converter guarantees this
                raise CompileError("non-simple statement in PredRegion")
        changed = {name: node for name, node in dag.var_values.items()
                   if before.get(name) is not node}
        dag.var_values = before
        dag.dirty = before_dirty
        return changed

    then_vals = run_arm(region.then_body, True)
    else_vals = run_arm(region.else_body, False)

    for name in sorted(set(then_vals) | set(else_vals)):
        old = dag.var_values.get(name)
        tval = then_vals.get(name)
        fval = else_vals.get(name)
        if tval is None:
            tval = old if old is not None else dag.read_var(name)
        if fval is None:
            fval = old if old is not None else dag.read_var(name)
        dag.set_var(name, dag.phi(cond, tval, fval))


def _close(dag: BlockDag, var_regs, write_vars: Set[str], term) -> None:
    """Attach register writes and the terminator to a finished dag."""
    for name in sorted(dag.dirty & write_vars):
        dag.add_write(var_regs[name], dag.var_values[name])
    if isinstance(term, Jump):
        dag.branch_jump(term.target)
    elif isinstance(term, CondJump):
        dag.branch_cond(dag.as_pred(dag.expr(term.cond)),
                        term.if_true, term.if_false)
    elif isinstance(term, Halt):
        dag.branch_halt()
    else:
        raise CompileError(f"unknown terminator {term!r}")

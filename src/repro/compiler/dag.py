"""Per-TRIPS-block dataflow graph construction and materialization.

One :class:`BlockDag` accumulates the dataflow graph of a TRIPS block while
linear statements are fed in: expression trees become value nodes (with
structural CSE and immediate folding), scalar live-ins become read nodes on
demand, constants become ``movi``/``movih`` chains, if-converted regions
become predicated-mov merges and null-token store operands (the Figure 5a
pattern), and the terminator becomes one or two (predicated) branches.

The builder supports snapshot/rollback so the block former can split a
basic block when it would exceed an ISA constraint (128 instructions,
32 memory operations, 8 reads/writes per register bank).

Materialization performs dead-code elimination from the sinks, expands
fanout (``mov`` trees) for producers with more consumers than their target
fields allow, compacts LSIDs, schedules instructions onto the ET grid, and
emits a validated :class:`repro.isa.TripsBlock`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..isa import (
    Instruction,
    MAX_BODY_INSTS,
    MAX_MEM_OPS,
    OpClass,
    Opcode,
    OperandKind,
    ReadInstruction,
    SLOTS_PER_BANK,
    Target,
    TripsBlock,
    WriteInstruction,
    reg_bank,
)
from ..isa.encoding import IMM_I_BITS
from ..tir import semantics
from ..tir.ir import MASK64, bits_to_int, int_to_bits
from .cfg import CompileError

# --- TIR operator -> TRIPS opcode tables --------------------------------
GOP = {
    "add": Opcode.ADD, "sub": Opcode.SUB, "mul": Opcode.MUL,
    "div": Opcode.DIVS, "and": Opcode.AND, "or": Opcode.OR,
    "xor": Opcode.XOR, "shl": Opcode.SLL, "shr": Opcode.SRL,
    "sra": Opcode.SRA,
    "eq": Opcode.TEQ, "ne": Opcode.TNE, "lt": Opcode.TLT,
    "le": Opcode.TLE, "gt": Opcode.TGT, "ge": Opcode.TGE,
    "ltu": Opcode.TLTU, "geu": Opcode.TGEU,
    "fadd": Opcode.FADD, "fsub": Opcode.FSUB, "fmul": Opcode.FMUL,
    "fdiv": Opcode.FDIV,
    "feq": Opcode.FEQ, "fne": Opcode.FNE, "flt": Opcode.FLT,
    "fle": Opcode.FLE, "fgt": Opcode.FGT, "fge": Opcode.FGE,
}
#: FP-class opcodes whose result is nonetheless a 0/1 boolean.
_BOOL_FP_OPS = frozenset({Opcode.FEQ, Opcode.FNE, Opcode.FLT,
                          Opcode.FLE, Opcode.FGT, Opcode.FGE})

IOP = {
    "add": Opcode.ADDI, "sub": Opcode.SUBI, "mul": Opcode.MULI,
    "and": Opcode.ANDI, "or": Opcode.ORI, "xor": Opcode.XORI,
    "shl": Opcode.SLLI, "shr": Opcode.SRLI, "sra": Opcode.SRAI,
    "eq": Opcode.TEQI, "ne": Opcode.TNEI, "lt": Opcode.TLTI,
    "ge": Opcode.TGEI, "gt": Opcode.TGTI, "le": Opcode.TLEI,
}
UOP = {"not": Opcode.NOT, "itof": Opcode.ITOF, "ftoi": Opcode.FTOI}
COMMUTATIVE = {"add", "mul", "and", "or", "xor", "eq", "ne"}
#: comparison flipped when its operands are swapped.
FLIP_CMP = {"lt": "gt", "gt": "lt", "le": "ge", "ge": "le",
            "ltu": None, "geu": None}

LOAD_OPC = {"i64": Opcode.LD, "u64": Opcode.LD, "f64": Opcode.LD,
            "i32": Opcode.LW, "u32": Opcode.LWU,
            "i16": Opcode.LH, "u16": Opcode.LHU,
            "i8": Opcode.LB, "u8": Opcode.LBU}
STORE_OPC = {1: Opcode.SB, 2: Opcode.SH, 4: Opcode.SW, 8: Opcode.SD}


def _fits_imm(value: int) -> bool:
    signed = bits_to_int(value)
    return -(1 << (IMM_I_BITS - 1)) <= signed < (1 << (IMM_I_BITS - 1))


def _fits_const16(value: int) -> bool:
    signed = bits_to_int(value)
    return -32768 <= signed < 32768


# ----------------------------------------------------------------------
class DNode:
    """One node of the block dataflow graph."""

    __slots__ = ("uid", "kind", "opcode", "inputs", "pred", "imm", "const",
                 "lsid", "reg", "label", "exit_no", "bits", "slot", "depth")

    def __init__(self, uid: int, kind: str, opcode: Optional[Opcode] = None,
                 inputs: Tuple = (), pred=None, imm: int = 0, const: int = 0,
                 lsid: int = -1, reg: int = -1, label: Optional[str] = None,
                 exit_no: int = 0, bits: Optional[int] = None):
        self.uid = uid
        self.kind = kind          # op | const | read | merge | branch
        self.opcode = opcode
        self.inputs = tuple(inputs)
        self.pred = pred          # (DNode, bool) or None
        self.imm = imm
        self.const = const
        self.lsid = lsid
        self.reg = reg
        self.label = label
        self.exit_no = exit_no
        self.bits = bits          # known constant value, for folding
        self.slot = -1            # assigned at scheduling
        self.depth = 0

    @property
    def is_body(self) -> bool:
        return self.kind in ("op", "const", "branch")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        name = self.opcode.mnemonic if self.opcode else self.kind
        return f"<D{self.uid} {name}>"


def target_capacity(node: DNode) -> int:
    """How many consumers this producer can feed without fanout movs."""
    if node.kind == "read":
        return 2
    if node.opcode is None:
        return 0
    from ..isa.opcodes import Format
    return {Format.G: 2, Format.I: 1, Format.L: 1,
            Format.S: 0, Format.B: 1, Format.C: 1}[node.opcode.format]


# ----------------------------------------------------------------------
@dataclass
class _Snapshot:
    n_nodes: int
    var_values: Dict[str, DNode]
    dirty: Set[str]
    const_cache: Dict[int, DNode]
    cse: Dict[Tuple, DNode]
    read_cache: Dict[str, DNode]
    next_lsid: int


class BlockDag:
    """Accumulates one TRIPS block's dataflow graph."""

    #: reserve for the terminator: cond (maybe) + two branches + one mov.
    BRANCH_RESERVE = 4

    def __init__(self, var_regs: Dict[str, int], array_addrs: Dict[str, int],
                 arrays):
        self.var_regs = var_regs
        self.array_addrs = array_addrs
        self.arrays = arrays
        self.nodes: List[DNode] = []
        self.var_values: Dict[str, DNode] = {}
        self.dirty: Set[str] = set()
        self.const_cache: Dict[int, DNode] = {}
        self.cse: Dict[Tuple, DNode] = {}
        self.read_cache: Dict[str, DNode] = {}
        self.next_lsid = 0
        self._uid = 0
        self.branches: List[DNode] = []
        self.writes: List[Tuple[int, DNode]] = []   # (reg, value)

    # -- snapshot / rollback ------------------------------------------
    def snapshot(self) -> _Snapshot:
        return _Snapshot(len(self.nodes), dict(self.var_values),
                         set(self.dirty), dict(self.const_cache),
                         dict(self.cse), dict(self.read_cache),
                         self.next_lsid)

    def rollback(self, snap: _Snapshot) -> None:
        del self.nodes[snap.n_nodes:]
        self.var_values = snap.var_values
        self.dirty = snap.dirty
        self.const_cache = snap.const_cache
        self.cse = snap.cse
        self.read_cache = snap.read_cache
        self.next_lsid = snap.next_lsid

    # -- node creation --------------------------------------------------
    def _new(self, **kwargs) -> DNode:
        self._uid += 1
        node = DNode(self._uid, **kwargs)
        self.nodes.append(node)
        return node

    def const(self, bits: int) -> DNode:
        """A node producing the 64-bit pattern ``bits`` (movi/movih chain)."""
        bits &= MASK64
        cached = self.const_cache.get(bits)
        if cached is not None:
            return cached
        if _fits_const16(bits):
            node = self._new(kind="const", opcode=Opcode.MOVI,
                             const=bits_to_int(bits), bits=bits)
        else:
            top = bits >> 16
            if top >> 47:                      # sign-extend from bit 47
                top |= ((1 << 16) - 1) << 48
            prev = self.const(top)
            chunk = bits & 0xFFFF
            if chunk >= 0x8000:   # C-format constants are signed; the ALU
                chunk -= 0x10000  # masks back to the low 16 bits
            node = self._new(kind="const", opcode=Opcode.MOVIH,
                             inputs=(prev,), const=chunk, bits=bits)
        self.const_cache[bits] = node
        return node

    def read_var(self, name: str) -> DNode:
        """Current value of a scalar: local def, or a register read."""
        node = self.var_values.get(name)
        if node is not None:
            return node
        cached = self.read_cache.get(name)
        if cached is None:
            reg = self.var_regs[name]
            cached = self._new(kind="read", reg=reg)
            self.read_cache[name] = cached
        self.var_values[name] = cached
        return cached

    def set_var(self, name: str, node: DNode) -> None:
        self.var_values[name] = node
        self.dirty.add(name)

    # -- expression lowering --------------------------------------------
    def expr(self, e) -> DNode:
        from ..tir.ir import BinOp, Const, Load, UnOp, Var
        if isinstance(e, Const):
            return self.const(e.bits)
        if isinstance(e, Var):
            return self.read_var(e.name)
        if isinstance(e, Load):
            return self._load(e.array, e.index)
        if isinstance(e, BinOp):
            return self._binop(e.op, e.a, e.b)
        if isinstance(e, UnOp):
            return self._unop(e.op, e.a)
        raise CompileError(f"cannot lower expression {e!r}")

    def _binop(self, op: str, ea, eb) -> DNode:
        if op == "rem":           # a - div(a, b) * b
            from ..tir.ir import BinOp
            return self._binop("sub", ea,
                               BinOp("mul", BinOp("div", ea, eb), eb))
        a = self.expr(ea)
        b = self.expr(eb)
        if a.bits is not None and b.bits is not None:
            return self.const(semantics.binop(op, a.bits, b.bits))
        # Prefer the immediate form: constant on the right, or swappable.
        if a.bits is not None and b.bits is None:
            if op in COMMUTATIVE:
                a, b = b, a
            elif op in FLIP_CMP and FLIP_CMP[op]:
                a, b = b, a
                op = FLIP_CMP[op]
        if b.bits is not None and op in IOP and _fits_imm(b.bits):
            return self._cse_op(IOP[op], (a,), imm=bits_to_int(b.bits))
        return self._cse_op(GOP[op], (a, b))

    def as_pred(self, node: DNode) -> DNode:
        """``node`` normalized for use as a predicate or branch condition.

        TIR conditions mean "value != 0", but hardware predication tests
        only bit 0 of the arriving token (``uarch/functional.py``), so a
        raw value like ``~1`` would take the wrong arm.  Values already
        known to be 0/1 — test-class and float-compare results, constants
        — pass through; anything else gets a ``tnei #0``.
        """
        if node.bits is not None:
            return self.const(1 if node.bits & MASK64 else 0)
        if node.opcode is not None:
            info = node.opcode.value
            if info.opclass is OpClass.TEST or \
                    node.opcode in _BOOL_FP_OPS:
                return node
        return self._cse_op(Opcode.TNEI, (node,), imm=0)

    def _unop(self, op: str, ea) -> DNode:
        a = self.expr(ea)
        if a.bits is not None:
            return self.const(semantics.unop(op, a.bits))
        if op == "neg":
            return self._cse_op(Opcode.SUB, (self.const(0), a))
        return self._cse_op(UOP[op], (a,))

    def _cse_op(self, opcode: Opcode, inputs: Tuple[DNode, ...],
                imm: int = 0) -> DNode:
        key = (opcode, tuple(n.uid for n in inputs), imm)
        cached = self.cse.get(key)
        if cached is not None:
            return cached
        node = self._new(kind="op", opcode=opcode, inputs=inputs, imm=imm)
        self.cse[key] = node
        return node

    # -- memory -----------------------------------------------------------
    def _address(self, array: str, index) -> Tuple[DNode, int]:
        """(address node, folded immediate) for ``array[index]``.

        Constant index offsets fold into the load/store's 9-bit signed
        immediate — ``a[i+k]`` for all k of an unrolled body shares one
        scaled-base computation (classic strength reduction; essential for
        the streaming kernels to reach the fetch-bandwidth bound).
        """
        from ..tir.ir import BinOp, Const
        from ..isa.encoding import IMM_LS_BITS
        arr = self.arrays[array]
        lim = 1 << (IMM_LS_BITS - 1)
        if isinstance(index, BinOp) and index.op in ("add", "sub"):
            if index.op == "add":
                variants = [(index.a, index.b, 1), (index.b, index.a, 1)]
            else:
                variants = [(index.a, index.b, -1)]
            for rest, const_part, sign in variants:
                if isinstance(const_part, Const):
                    off = sign * bits_to_int(const_part.bits) * arr.elem_size
                    if -lim <= off < lim:
                        node, imm0 = self._address(array, rest)
                        if -lim <= imm0 + off < lim:
                            return node, imm0 + off
        base = self.array_addrs[array]
        idx = self.expr(index)
        if idx.bits is not None:
            return self.const(base + bits_to_int(idx.bits) * arr.elem_size), 0
        shift = arr.elem_size.bit_length() - 1
        scaled = idx if shift == 0 else self._cse_op(
            Opcode.SLLI, (idx,), imm=shift)
        return self._cse_op(Opcode.ADD, (self.const(base), scaled)), 0

    def _load(self, array: str, index) -> DNode:
        addr, imm = self._address(array, index)
        arr = self.arrays[array]
        opcode = LOAD_OPC[arr.dtype]
        lsid = self._alloc_lsid()
        # Loads are NOT CSE'd: intervening stores could change the answer;
        # the LSQ would disambiguate, the compiler stays conservative.
        return self._new(kind="op", opcode=opcode, inputs=(addr,),
                         imm=imm, lsid=lsid)

    def store(self, array: str, index, value,
              pred: Optional[Tuple[DNode, bool]] = None) -> None:
        """Emit a store.  If ``pred`` is given, the store's operands are
        routed through predicated movs and an opposite-polarity ``null``,
        so the store itself always fires (Section 4.2's nullification)."""
        addr, imm = self._address(array, index)
        data = self.expr(value)
        arr = self.arrays[array]
        opcode = STORE_OPC[arr.elem_size]
        if pred is not None:
            cond, polarity = pred
            mov_a = self._new(kind="op", opcode=Opcode.MOV, inputs=(addr,),
                              pred=(cond, polarity))
            mov_d = self._new(kind="op", opcode=Opcode.MOV, inputs=(data,),
                              pred=(cond, polarity))
            null = self._new(kind="op", opcode=Opcode.NULL,
                             pred=(cond, not polarity))
            addr = self._merge2(mov_a, null)
            data = self._merge2(mov_d, null)
        lsid = self._alloc_lsid()
        self._new(kind="op", opcode=opcode, inputs=(addr, data),
                  imm=imm, lsid=lsid)

    def _alloc_lsid(self) -> int:
        lsid = self.next_lsid
        if lsid >= MAX_MEM_OPS:
            raise _SplitNeeded("out of LSIDs")
        self.next_lsid += 1
        return lsid

    # -- merges (phi) ------------------------------------------------------
    def _merge2(self, a: DNode, b: DNode) -> DNode:
        return self._new(kind="merge", inputs=(a, b))

    def phi(self, cond: DNode, tval: DNode, fval: DNode) -> DNode:
        """Value that is ``tval`` when cond is 1, else ``fval``."""
        if tval is fval:
            return tval
        if cond.bits is not None:    # constant condition: fold the merge
            return tval if cond.bits & 1 else fval
        mov_t = self._new(kind="op", opcode=Opcode.MOV, inputs=(tval,),
                          pred=(cond, True))
        mov_f = self._new(kind="op", opcode=Opcode.MOV, inputs=(fval,),
                          pred=(cond, False))
        return self._merge2(mov_t, mov_f)

    # -- terminators ------------------------------------------------------
    def branch_jump(self, label: str) -> None:
        node = self._new(kind="branch", opcode=Opcode.BRO, label=label,
                         exit_no=len(self.branches))
        self.branches.append(node)

    def branch_halt(self) -> None:
        node = self._new(kind="branch", opcode=Opcode.HALT,
                         exit_no=len(self.branches))
        self.branches.append(node)

    def branch_cond(self, cond: DNode, if_true: str, if_false: str) -> None:
        t = self._new(kind="branch", opcode=Opcode.BRO, label=if_true,
                      pred=(cond, True), exit_no=len(self.branches))
        self.branches.append(t)
        f = self._new(kind="branch", opcode=Opcode.BRO, label=if_false,
                      pred=(cond, False), exit_no=len(self.branches))
        self.branches.append(f)

    def add_write(self, reg: int, node: DNode) -> None:
        self.writes.append((reg, node))

    # -- size estimation ---------------------------------------------------
    def estimate(self, pending_writes: Sequence[str],
                 include_branch_reserve: bool = True) -> Dict[str, int]:
        """Estimated resource usage if the block were closed now.

        ``pending_writes`` are variables that would get write instructions.
        Estimation is conservative (pre-DCE).
        """
        consumers: Dict[int, int] = {}

        def feed(producer: DNode) -> None:
            for real in _resolve(producer):
                consumers[real.uid] = consumers.get(real.uid, 0) + 1

        for node in self.nodes:
            if node.kind == "merge":
                continue
            for inp in node.inputs:
                feed(inp)
            if node.pred is not None:
                feed(node.pred[0])
        for name in pending_writes:
            node = self.var_values.get(name)
            if node is not None:
                feed(node)

        body = 0
        reads_by_bank = [0, 0, 0, 0]
        for node in self.nodes:
            if node.kind == "merge":
                continue
            if node.kind == "read":
                reads_by_bank[reg_bank(node.reg)] += 1
            else:
                body += 1
            extra = consumers.get(node.uid, 0) - target_capacity(node)
            if extra > 0:
                body += extra
        if include_branch_reserve:
            body += self.BRANCH_RESERVE
        writes_by_bank = [0, 0, 0, 0]
        for name in pending_writes:
            writes_by_bank[reg_bank(self.var_regs[name])] += 1
        return {
            "body": body,
            "mem": self.next_lsid,
            "max_reads": max(reads_by_bank),
            "max_writes": max(writes_by_bank),
        }

    def fits(self, pending_writes: Sequence[str]) -> bool:
        est = self.estimate(pending_writes)
        return (est["body"] <= MAX_BODY_INSTS
                and est["mem"] <= MAX_MEM_OPS
                and est["max_reads"] <= SLOTS_PER_BANK
                and est["max_writes"] <= SLOTS_PER_BANK)


class _SplitNeeded(Exception):
    """Internal: the current statement cannot fit; the caller must split."""


def _resolve(node: DNode) -> List[DNode]:
    """Transparent view through merge nodes to real producers."""
    if node.kind != "merge":
        return [node]
    out: List[DNode] = []
    for inp in node.inputs:
        out.extend(_resolve(inp))
    return out

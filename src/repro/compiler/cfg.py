"""Structured TIR -> control-flow graph of linear blocks.

The CFG is the compiler's mid-level form.  Each :class:`CfgBlock` holds a
list of linear statements (``Assign``/``Store``/``PredRegion``) and exactly
one terminator.  Level-dependent transforms happen here:

* **tcc**: plain structured lowering — loops become head-test + body +
  back-jump, ``If`` becomes diamond control flow.
* **hand**: ``If`` whose arms are simple becomes a :class:`PredRegion`
  (if-conversion / hyperblock formation), loops are rotated (guard block +
  body block ending in a predicated back-branch), ``For.unroll`` hints are
  honoured, and single-predecessor jump chains are merged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..tir.ir import (
    Assign,
    BinOp,
    Const,
    Expr,
    For,
    If,
    Load,
    Stmt,
    Store,
    TirError,
    TirProgram,
    UnOp,
    V,
    Var,
    While,
    bits_to_int,
)


class CompileError(ValueError):
    """The compiler cannot translate this program."""


@dataclass
class PredRegion(Stmt):
    """An if-converted region: both arms are predicated onto one block.

    Arms may contain only ``Assign`` and ``Store`` statements (the
    if-converter guarantees this).
    """

    cond: Expr
    then_body: List[Stmt]
    else_body: List[Stmt]


# --- terminators -------------------------------------------------------
@dataclass
class Jump:
    target: str


@dataclass
class CondJump:
    cond: Expr
    if_true: str
    if_false: str


@dataclass
class Halt:
    pass


Terminator = Union[Jump, CondJump, Halt]


@dataclass
class CfgBlock:
    label: str
    stmts: List[Stmt] = field(default_factory=list)
    term: Terminator = field(default_factory=Halt)


@dataclass
class Cfg:
    """An ordered CFG; the first block is the entry."""

    blocks: List[CfgBlock] = field(default_factory=list)

    @property
    def entry(self) -> CfgBlock:
        return self.blocks[0]

    def by_label(self) -> Dict[str, CfgBlock]:
        return {b.label: b for b in self.blocks}

    def successors(self, block: CfgBlock) -> List[str]:
        if isinstance(block.term, Jump):
            return [block.term.target]
        if isinstance(block.term, CondJump):
            return [block.term.if_true, block.term.if_false]
        return []


# ----------------------------------------------------------------------
class _Lowerer:
    def __init__(self, name: str, level: str):
        self.level = level
        self.prefix = name
        self.counter = 0
        self.cfg = Cfg()

    def fresh(self, hint: str) -> str:
        self.counter += 1
        return f"{self.prefix}_{hint}{self.counter}"

    def new_block(self, hint: str) -> CfgBlock:
        block = CfgBlock(self.fresh(hint))
        self.cfg.blocks.append(block)
        return block

    # ------------------------------------------------------------------
    def lower(self, body: Sequence[Stmt]) -> Cfg:
        entry = CfgBlock(f"{self.prefix}_entry")
        self.cfg.blocks.append(entry)
        last = self._lower_stmts(body, entry)
        last.term = Halt()
        return self.cfg

    def _lower_stmts(self, stmts: Sequence[Stmt], current: CfgBlock) -> CfgBlock:
        for stmt in stmts:
            if isinstance(stmt, (Assign, Store)):
                current.stmts.append(stmt)
            elif isinstance(stmt, If):
                current = self._lower_if(stmt, current)
            elif isinstance(stmt, For):
                current = self._lower_for(stmt, current)
            elif isinstance(stmt, While):
                current = self._lower_while(stmt, current)
            else:
                raise CompileError(f"cannot lower {stmt!r}")
        return current

    # ------------------------------------------------------------------
    @property
    def _optimized(self) -> bool:
        """Loop rotation / unrolling / merging apply at these levels."""
        return self.level in ("hand", "baseline")

    def _lower_if(self, stmt: If, current: CfgBlock) -> CfgBlock:
        if self.level == "hand" and _simple_arms(stmt.then_body) \
                and _simple_arms(stmt.else_body) \
                and _ifconv_cost(stmt.then_body,
                                 stmt.else_body) <= IFCONV_COST_LIMIT:
            current.stmts.append(
                PredRegion(stmt.cond, list(stmt.then_body),
                           list(stmt.else_body)))
            return current
        then_blk = self.new_block("then")
        else_blk = self.new_block("else")
        join_blk = self.new_block("join")
        current.term = CondJump(stmt.cond, then_blk.label, else_blk.label)
        then_end = self._lower_stmts(stmt.then_body, then_blk)
        then_end.term = Jump(join_blk.label)
        else_end = self._lower_stmts(stmt.else_body, else_blk)
        else_end.term = Jump(join_blk.label)
        return join_blk

    # ------------------------------------------------------------------
    def _lower_for(self, stmt: For, current: CfgBlock) -> CfgBlock:
        # Evaluate the bounds once.  The stop bound lives in a temporary
        # unless it is a constant (cheap to rematerialize).
        current.stmts.append(Assign(stmt.var, stmt.start))
        if isinstance(stmt.stop, Const):
            stop_expr: Expr = stmt.stop
        else:
            stop_name = self.fresh("stop_")
            current.stmts.append(Assign(stop_name, stmt.stop))
            stop_expr = V(stop_name)
        test = BinOp("lt" if stmt.step > 0 else "gt", V(stmt.var), stop_expr)

        unroll = stmt.unroll if self._optimized else 1
        if unroll > 1 and not self._unroll_is_safe(stmt, unroll):
            unroll = 1
        step_stmt = Assign(stmt.var, V(stmt.var) + stmt.step)
        iteration = list(stmt.body) + [step_stmt]

        # Full unroll: trip count equals the unroll hint -> the loop
        # disappears into straight-line code with constant induction values
        # (they then fold into load/store immediates).
        if unroll > 1 and self._trip_count(stmt) == unroll \
                and stmt.var not in _assigned_vars(stmt.body):
            start = bits_to_int(stmt.start.bits)
            tail = current
            for k in range(unroll):
                value = Const(start + k * stmt.step)
                copies = [_subst_stmt(s, stmt.var, value)
                          for s in stmt.body]
                tail = self._lower_stmts(copies, tail)
            tail.stmts.append(Assign(stmt.var, stmt.stop))
            return tail

        if self._optimized:
            # Rotated loop: guard, then a body block that ends with a
            # predicated back-branch — each iteration is one block.
            body_blk = self.new_block("loop")
            exit_blk = self.new_block("done")
            current.term = CondJump(test, body_blk.label, exit_blk.label)
            if unroll > 1 and stmt.var not in _assigned_vars(stmt.body):
                # Copy k of the body sees (var + k*step) directly instead
                # of a serial chain of increments — the induction variable
                # stops being a cross-copy dependence.
                tail = body_blk
                for k in range(unroll):
                    if k == 0:
                        copy = list(stmt.body)
                    else:
                        copy = [_subst_stmt(s, stmt.var,
                                            V(stmt.var) + k * stmt.step)
                                for s in stmt.body]
                    tail = self._lower_stmts(copy, tail)
                tail = self._lower_stmts(
                    [Assign(stmt.var, V(stmt.var) + unroll * stmt.step)],
                    tail)
            else:
                tail = body_blk
                for _ in range(unroll):
                    tail = self._lower_stmts(iteration, tail)
            tail.term = CondJump(test, body_blk.label, exit_blk.label)
            return exit_blk

        head_blk = self.new_block("head")
        body_blk = self.new_block("body")
        exit_blk = self.new_block("done")
        current.term = Jump(head_blk.label)
        head_blk.term = CondJump(test, body_blk.label, exit_blk.label)
        tail = self._lower_stmts(iteration, body_blk)
        tail.term = Jump(head_blk.label)
        return exit_blk

    @staticmethod
    def _trip_count(stmt: For) -> Optional[int]:
        """Static trip count, or None when the bounds are dynamic."""
        if not (isinstance(stmt.start, Const) and isinstance(stmt.stop, Const)):
            return None
        start = bits_to_int(stmt.start.bits)
        stop = bits_to_int(stmt.stop.bits)
        span = stop - start if stmt.step > 0 else start - stop
        if span <= 0:
            return 0
        trips, rem = divmod(span, abs(stmt.step))
        return trips if rem == 0 else None

    @classmethod
    def _unroll_is_safe(cls, stmt: For, unroll: int) -> bool:
        """Unrolling is honoured only for provably divisible trip counts."""
        trips = cls._trip_count(stmt)
        return trips is not None and trips > 0 and trips % unroll == 0

    # ------------------------------------------------------------------
    def _lower_while(self, stmt: While, current: CfgBlock) -> CfgBlock:
        if self._optimized:
            body_blk = self.new_block("wloop")
            exit_blk = self.new_block("wdone")
            current.term = CondJump(stmt.cond, body_blk.label, exit_blk.label)
            tail = self._lower_stmts(stmt.body, body_blk)
            tail.term = CondJump(stmt.cond, body_blk.label, exit_blk.label)
            return exit_blk
        head_blk = self.new_block("whead")
        body_blk = self.new_block("wbody")
        exit_blk = self.new_block("wdone")
        current.term = Jump(head_blk.label)
        head_blk.term = CondJump(stmt.cond, body_blk.label, exit_blk.label)
        tail = self._lower_stmts(stmt.body, body_blk)
        tail.term = Jump(head_blk.label)
        return exit_blk


def _simple_arms(stmts: Sequence[Stmt]) -> bool:
    return all(isinstance(s, (Assign, Store)) for s in stmts)


#: if-conversion budget, in (over-)estimated body instructions.  A
#: PredRegion is a single unsplittable statement in block formation, so
#: a converted region that overflows the 128-instruction block is a hard
#: compile error; regions costlier than this lower as a branch diamond
#: instead.  (Large arms are also where predication stops paying off —
#: both paths' instructions occupy window slots.)
IFCONV_COST_LIMIT = 64


def _expr_cost(e: Expr) -> int:
    """Conservative instruction count for one expression tree."""
    if isinstance(e, Const):
        value = bits_to_int(e.bits) if not e.is_float else e.bits
        return 1 if -(1 << 15) <= value < (1 << 15) else 3
    if isinstance(e, Var):
        return 0
    if isinstance(e, Load):
        return 2 + _expr_cost(e.index)
    if isinstance(e, BinOp):
        # rem decomposes into sub+mul+div in the dag
        return (3 if e.op == "rem" else 1) + _expr_cost(e.a) + _expr_cost(e.b)
    if isinstance(e, UnOp):
        return 1 + _expr_cost(e.a)
    return 1


def _ifconv_cost(then_body: Sequence[Stmt], else_body: Sequence[Stmt]) -> int:
    """Estimated body instructions an if-converted region would emit."""
    total = 0
    for arm in (then_body, else_body):
        for s in arm:
            if isinstance(s, Assign):
                total += _expr_cost(s.expr) + 2      # phi mov pair
            else:                                    # Store
                total += _expr_cost(s.index) + _expr_cost(s.value) + 4
    return total


# ----------------------------------------------------------------------
# Expression / statement substitution (used by the unroller)
# ----------------------------------------------------------------------
def _subst_expr(expr: Expr, var: str, replacement: Expr) -> Expr:
    if isinstance(expr, Var):
        return replacement if expr.name == var else expr
    if isinstance(expr, BinOp):
        return BinOp(expr.op, _subst_expr(expr.a, var, replacement),
                     _subst_expr(expr.b, var, replacement))
    if isinstance(expr, UnOp):
        return UnOp(expr.op, _subst_expr(expr.a, var, replacement))
    if isinstance(expr, Load):
        return Load(expr.array, _subst_expr(expr.index, var, replacement))
    return expr


def _subst_stmt(stmt: Stmt, var: str, replacement: Expr) -> Stmt:
    if isinstance(stmt, Assign):
        return Assign(stmt.var, _subst_expr(stmt.expr, var, replacement))
    if isinstance(stmt, Store):
        return Store(stmt.array, _subst_expr(stmt.index, var, replacement),
                     _subst_expr(stmt.value, var, replacement))
    if isinstance(stmt, If):
        return If(_subst_expr(stmt.cond, var, replacement),
                  [_subst_stmt(s, var, replacement) for s in stmt.then_body],
                  [_subst_stmt(s, var, replacement) for s in stmt.else_body])
    if isinstance(stmt, For):
        if stmt.var == var:   # shadowing: the inner loop redefines it
            return stmt
        return For(stmt.var, _subst_expr(stmt.start, var, replacement),
                   _subst_expr(stmt.stop, var, replacement), stmt.step,
                   [_subst_stmt(s, var, replacement) for s in stmt.body],
                   unroll=stmt.unroll)
    if isinstance(stmt, While):
        return While(_subst_expr(stmt.cond, var, replacement),
                     [_subst_stmt(s, var, replacement) for s in stmt.body])
    raise CompileError(f"cannot substitute into {stmt!r}")


def _assigned_vars(stmts: Sequence[Stmt]) -> Set[str]:
    out: Set[str] = set()
    for stmt in stmts:
        _, defs = stmt_uses_defs(stmt) if isinstance(
            stmt, (Assign, Store, PredRegion)) else (set(), set())
        out |= defs
        if isinstance(stmt, If):
            out |= _assigned_vars(stmt.then_body)
            out |= _assigned_vars(stmt.else_body)
        elif isinstance(stmt, (For, While)):
            out |= _assigned_vars(stmt.body)
            if isinstance(stmt, For):
                out.add(stmt.var)
    return out


# ----------------------------------------------------------------------
def lower_to_cfg(program: TirProgram, level: str) -> Cfg:
    """Lower ``program.body`` at the given level and clean the result."""
    if level not in ("tcc", "hand", "baseline"):
        raise CompileError(f"unknown level {level!r}")
    cfg = _Lowerer(program.name, level).lower(program.body)
    _prune_unreachable(cfg)
    if level in ("hand", "baseline"):
        _merge_chains(cfg)
        _prune_unreachable(cfg)
    return cfg


def _prune_unreachable(cfg: Cfg) -> None:
    by_label = cfg.by_label()
    reachable: Set[str] = set()
    stack = [cfg.entry.label]
    while stack:
        label = stack.pop()
        if label in reachable:
            continue
        reachable.add(label)
        stack.extend(cfg.successors(by_label[label]))
    cfg.blocks = [b for b in cfg.blocks if b.label in reachable]


#: soft cap on merged-block size; real limits are enforced by the block
#: former, which splits as needed, but merging beyond this only splits again.
_MERGE_STMT_LIMIT = 48


def _merge_chains(cfg: Cfg) -> None:
    """Fold ``A -> Jump(B)`` into A when B has no other predecessors."""
    changed = True
    while changed:
        changed = False
        by_label = cfg.by_label()
        pred_count: Dict[str, int] = {b.label: 0 for b in cfg.blocks}
        for block in cfg.blocks:
            for succ in cfg.successors(block):
                pred_count[succ] += 1
        for block in cfg.blocks:
            if not isinstance(block.term, Jump):
                continue
            target = block.term.target
            victim = by_label.get(target)
            if victim is None or victim is block:
                continue
            if pred_count[target] != 1 or victim is cfg.entry:
                continue
            if len(block.stmts) + len(victim.stmts) > _MERGE_STMT_LIMIT:
                continue
            block.stmts.extend(victim.stmts)
            block.term = victim.term
            cfg.blocks.remove(victim)
            changed = True
            break


# ----------------------------------------------------------------------
# Liveness
# ----------------------------------------------------------------------
def _expr_uses(expr: Expr, acc: Set[str]) -> None:
    if isinstance(expr, Var):
        acc.add(expr.name)
    elif isinstance(expr, BinOp):
        _expr_uses(expr.a, acc)
        _expr_uses(expr.b, acc)
    elif isinstance(expr, UnOp):
        _expr_uses(expr.a, acc)
    elif isinstance(expr, Load):
        _expr_uses(expr.index, acc)


def stmt_uses_defs(stmt: Stmt) -> Tuple[Set[str], Set[str]]:
    """(used, defined) scalar names for one linear statement.

    A :class:`PredRegion` assignment made in only one arm counts as both a
    use (the merge needs the old value) and a def.
    """
    uses: Set[str] = set()
    defs: Set[str] = set()
    if isinstance(stmt, Assign):
        _expr_uses(stmt.expr, uses)
        defs.add(stmt.var)
    elif isinstance(stmt, Store):
        _expr_uses(stmt.index, uses)
        _expr_uses(stmt.value, uses)
    elif isinstance(stmt, PredRegion):
        _expr_uses(stmt.cond, uses)
        then_defs: Set[str] = set()
        else_defs: Set[str] = set()
        for arm, arm_defs in ((stmt.then_body, then_defs),
                              (stmt.else_body, else_defs)):
            local: Set[str] = set()
            for s in arm:
                u, d = stmt_uses_defs(s)
                uses |= (u - local)   # arm-local def-before-use stays local
                local |= d
                arm_defs |= d
        one_sided = then_defs ^ else_defs
        uses |= one_sided
        defs |= then_defs | else_defs
    else:
        raise CompileError(f"not a linear statement: {stmt!r}")
    return uses, defs


def block_uses_defs(block: CfgBlock) -> Tuple[Set[str], Set[str]]:
    """Upward-exposed uses and defs of one CFG block."""
    uses: Set[str] = set()
    defs: Set[str] = set()
    for stmt in block.stmts:
        u, d = stmt_uses_defs(stmt)
        uses |= (u - defs)
        defs |= d
    if isinstance(block.term, CondJump):
        term_uses: Set[str] = set()
        _expr_uses(block.term.cond, term_uses)
        uses |= (term_uses - defs)
    return uses, defs


def liveness(cfg: Cfg, exit_live: Set[str]) -> Dict[str, Tuple[Set[str], Set[str]]]:
    """Per-block (live_in, live_out); ``exit_live`` flows into Halt blocks."""
    by_label = cfg.by_label()
    ud = {b.label: block_uses_defs(b) for b in cfg.blocks}
    live_in: Dict[str, Set[str]] = {b.label: set() for b in cfg.blocks}
    live_out: Dict[str, Set[str]] = {b.label: set() for b in cfg.blocks}
    changed = True
    while changed:
        changed = False
        for block in reversed(cfg.blocks):
            out: Set[str] = set()
            if isinstance(block.term, Halt):
                out |= exit_live
            for succ in cfg.successors(block):
                out |= live_in[succ]
            uses, defs = ud[block.label]
            new_in = uses | (out - defs)
            if out != live_out[block.label] or new_in != live_in[block.label]:
                live_out[block.label] = out
                live_in[block.label] = new_in
                changed = True
    return {label: (live_in[label], live_out[label]) for label in live_in}

"""The TRIPS block compiler: TIR -> TRIPS programs.

Two optimization levels reproduce the paper's code-quality axis
(Section 5.4):

* ``"tcc"`` — the TRIPS C compiler as of the paper: correct but naive.
  One basic block per TRIPS block, no if-conversion, no unrolling, no
  loop rotation.  Blocks come out small, so block overheads dominate.
* ``"hand"`` — the hand-optimized level: if-converted predicated regions
  (hyperblocks), rotated loops whose bodies are single blocks with a
  predicated back-branch, unrolling honoured via the ``For.unroll`` hint,
  and aggressive merging of straight-line block chains.

Public API::

    from repro.compiler import compile_tir
    compiled = compile_tir(tir_program, level="hand")
    compiled.program          # repro.isa.Program, runnable on the sims
    compiled.var_regs         # scalar name -> architectural register
    compiled.array_addrs     # array name -> data-segment address
"""

from .lower import CompiledProgram, CompileError, compile_tir

__all__ = ["CompiledProgram", "CompileError", "compile_tir"]

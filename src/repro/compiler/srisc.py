"""TIR -> SRISC lowering for the baseline core.

Reuses the CFG pipeline at the ``"baseline"`` level (rotated loops,
unrolling, block merging — a high-quality conventional compiler, like the
paper's Gem — but no predication: SRISC branches instead).  Expression
trees evaluate through a small temporary-register pool; named scalars get
dedicated registers, exactly mirroring the TRIPS compiler's assignment so
cross-checking final register values is trivial.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..baseline.srisc import NUM_REGS, SInst, SriscProgram
from ..tir.ir import (
    Assign,
    BinOp,
    Const,
    Load,
    Store,
    TirProgram,
    UnOp,
    Var,
    bits_to_int,
)
from .cfg import CompileError, CondJump, Halt, Jump, lower_to_cfg, stmt_uses_defs

#: registers reserved for expression temporaries and pinned address bases.
NUM_TEMPS = 12
NUM_PINNED = 6
MAX_VARS = NUM_REGS - NUM_TEMPS - NUM_PINNED

#: dtype -> (size, signed) for loads.
_LOAD_INFO = {"i8": (1, True), "u8": (1, False), "i16": (2, True),
              "u16": (2, False), "i32": (4, True), "u32": (4, False),
              "i64": (8, True), "u64": (8, False), "f64": (8, False)}

#: binops with a usable immediate form (fits the walked constant anyway —
#: SRISC immediates are full-width, being a simulator-level ISA).
_IMMABLE = {"add", "sub", "mul", "and", "or", "xor", "shl", "shr", "sra",
            "eq", "ne", "lt", "le", "gt", "ge", "ltu", "geu", "div", "rem"}


class _Emitter:
    def __init__(self, tir: TirProgram, var_regs: Dict[str, int],
                 array_addrs: Dict[str, int]):
        self.tir = tir
        self.var_regs = var_regs
        self.array_addrs = array_addrs
        self.out: List[SInst] = []
        self.temp_base = MAX_VARS
        self.temps_used = 0
        # address CSE (a good conventional compiler keeps scaled bases in
        # registers): structural-key -> pinned register, versioned so any
        # reassignment of an involved variable invalidates the entry
        self.var_version: Dict[str, int] = {}
        self.addr_cache: Dict[tuple, int] = {}
        self.pinned_used = 0

    def new_block(self) -> None:
        """Reset block-scoped state at a control-flow boundary."""
        self.addr_cache.clear()
        self.pinned_used = 0

    def _expr_key(self, e):
        """Structural key of a pure expression, versioned by variables."""
        if isinstance(e, Const):
            return ("c", e.bits)
        if isinstance(e, Var):
            return ("v", e.name, self.var_version.get(e.name, 0))
        if isinstance(e, BinOp):
            ka, kb = self._expr_key(e.a), self._expr_key(e.b)
            # an uncacheable subexpression poisons the whole key — two
            # different loads must not collapse to one cache entry
            return None if ka is None or kb is None else ("b", e.op, ka, kb)
        if isinstance(e, UnOp):
            ka = self._expr_key(e.a)
            return None if ka is None else ("u", e.op, ka)
        return None      # loads etc. are not cacheable

    # -- temp pool -------------------------------------------------------
    def _alloc(self) -> int:
        if self.temps_used >= NUM_TEMPS:
            raise CompileError("expression too deep for the temp pool")
        reg = self.temp_base + self.temps_used
        self.temps_used += 1
        return reg

    def _release_to(self, mark: int) -> None:
        self.temps_used = mark

    # -- expressions ------------------------------------------------------
    def expr(self, e, dest: Optional[int] = None) -> int:
        """Emit code leaving the value in a register; returns that register."""
        if isinstance(e, Const):
            reg = dest if dest is not None else self._alloc()
            self.out.append(SInst("li", rd=reg, imm=e.bits))
            return reg
        if isinstance(e, Var):
            src = self.var_regs[e.name]
            if dest is not None and dest != src:
                self.out.append(SInst("mov", rd=dest, ra=src))
                return dest
            return src
        if isinstance(e, Load):
            return self._load(e, dest)
        if isinstance(e, UnOp):
            mark = self.temps_used
            ra = self.expr(e.a)
            self._release_to(mark)
            reg = dest if dest is not None else self._alloc()
            self.out.append(SInst(e.op, rd=reg, ra=ra))
            return reg
        if isinstance(e, BinOp):
            return self._binop(e, dest)
        raise CompileError(f"cannot lower {e!r}")

    def _binop(self, e: BinOp, dest: Optional[int]) -> int:
        mark = self.temps_used
        if isinstance(e.b, Const) and e.op in _IMMABLE:
            ra = self.expr(e.a)
            self._release_to(mark)
            reg = dest if dest is not None else self._alloc()
            self.out.append(SInst(e.op, rd=reg, ra=ra,
                                  imm=bits_to_int(e.b.bits)))
            return reg
        ra = self.expr(e.a)
        rb = self.expr(e.b)
        self._release_to(mark)
        reg = dest if dest is not None else self._alloc()
        self.out.append(SInst(e.op, rd=reg, ra=ra, rb=rb))
        return reg

    def _address(self, array: str, index) -> (int, int):
        """(address register, immediate offset) for array[index].

        Constant index offsets fold into the load/store immediate, the
        same strength reduction the TRIPS compiler performs.
        """
        arr = self.tir.arrays[array]
        base = self.array_addrs[array]
        if isinstance(index, Const):
            reg = self._alloc()
            self.out.append(SInst("li", rd=reg,
                                  imm=base + bits_to_int(index.bits)
                                  * arr.elem_size))
            return reg, 0
        if isinstance(index, BinOp) and index.op in ("add", "sub"):
            variants = [(index.a, index.b, 1), (index.b, index.a, 1)] \
                if index.op == "add" else [(index.a, index.b, -1)]
            for rest, const_part, sign in variants:
                if isinstance(const_part, Const):
                    off = sign * bits_to_int(const_part.bits) * arr.elem_size
                    ra, imm0 = self._address(array, rest)
                    return ra, imm0 + off
        key = self._expr_key(index)
        cache_key = (array, key) if key is not None else None
        if cache_key is not None and cache_key in self.addr_cache:
            return self.addr_cache[cache_key], 0
        mark = self.temps_used
        idx = self.expr(index)
        self._release_to(mark)
        pin = cache_key is not None and self.pinned_used < NUM_PINNED
        if pin:
            scaled = MAX_VARS + NUM_TEMPS + self.pinned_used
            self.pinned_used += 1
        else:
            scaled = self._alloc()
        shift = arr.elem_size.bit_length() - 1
        if shift:
            self.out.append(SInst("shl", rd=scaled, ra=idx, imm=shift))
        else:
            self.out.append(SInst("mov", rd=scaled, ra=idx))
        self.out.append(SInst("add", rd=scaled, ra=scaled, imm=base))
        if pin:
            self.addr_cache[cache_key] = scaled
        return scaled, 0

    def _load(self, e: Load, dest: Optional[int]) -> int:
        mark = self.temps_used
        ra, imm = self._address(e.array, e.index)
        self._release_to(mark)
        arr = self.tir.arrays[e.array]
        size, signed = _LOAD_INFO[arr.dtype]
        reg = dest if dest is not None else self._alloc()
        self.out.append(SInst("ld", rd=reg, ra=ra, imm=imm, size=size,
                              signed=signed))
        return reg

    # -- statements ---------------------------------------------------------
    def stmt(self, s) -> None:
        mark = self.temps_used
        if isinstance(s, Assign):
            self.expr(s.expr, dest=self.var_regs.setdefault(
                s.var, self._fresh_var(s.var)))
            self.var_version[s.var] = self.var_version.get(s.var, 0) + 1
        elif isinstance(s, Store):
            arr = self.tir.arrays[s.array]
            value = self.expr(s.value)
            ra, imm = self._address(s.array, s.index)
            self.out.append(SInst("st", ra=ra, rb=value, imm=imm,
                                  size=arr.elem_size))
        else:
            raise CompileError(f"unexpected statement {s!r}")
        self._release_to(mark)

    def _fresh_var(self, name: str) -> int:
        reg = len(self.var_regs)
        if reg >= MAX_VARS:
            raise CompileError("too many scalars for SRISC registers")
        return reg


def compile_srisc(tir: TirProgram, data_base: int = 0x100000) -> SriscProgram:
    """Compile a TIR program to SRISC for the baseline core."""
    tir.validate()
    cfg = lower_to_cfg(tir, "baseline")

    var_regs: Dict[str, int] = {}
    for name in tir.scalars:
        var_regs[name] = len(var_regs)
    for block in cfg.blocks:
        for stmt in block.stmts:
            uses, defs = stmt_uses_defs(stmt)
            for name in sorted(uses) + sorted(defs):
                var_regs.setdefault(name, len(var_regs))
        if isinstance(block.term, CondJump):
            from .cfg import _expr_uses
            acc: Set[str] = set()
            _expr_uses(block.term.cond, acc)
            for name in sorted(acc):
                var_regs.setdefault(name, len(var_regs))
    if len(var_regs) > MAX_VARS:
        raise CompileError(f"{len(var_regs)} scalars exceed SRISC registers")

    program = SriscProgram(var_regs=var_regs)
    next_data = data_base
    for name, arr in tir.arrays.items():
        align = max(8, arr.elem_size)
        next_data = -(-next_data // align) * align
        program.array_addrs[name] = next_data
        program.data[next_data] = arr.encode()
        next_data += arr.nbytes

    emitter = _Emitter(tir, var_regs, program.array_addrs)
    for block in cfg.blocks:
        program.labels[block.label] = len(emitter.out)
        emitter.new_block()
        for stmt in block.stmts:
            emitter.stmt(stmt)
        term = block.term
        if isinstance(term, Jump):
            emitter.out.append(SInst("jmp", label=term.target))
        elif isinstance(term, CondJump):
            mark = emitter.temps_used
            cond = emitter.expr(term.cond)
            emitter._release_to(mark)
            emitter.out.append(SInst("bnz", ra=cond, label=term.if_true))
            emitter.out.append(SInst("jmp", label=term.if_false))
        elif isinstance(term, Halt):
            emitter.out.append(SInst("halt"))
        else:
            raise CompileError(f"unknown terminator {term!r}")

    program.insts = emitter.out
    for name, init in tir.scalars.items():
        program.initial_regs[var_regs[name]] = init
    program.resolve()
    return program

"""Spatial instruction scheduler: map block instructions onto the ET grid.

TRIPS performance hinges on placement (Section 5.4 attributes up to 34% of
the critical path to OPN hops), so the compiler must put producers next to
consumers.  This is a greedy SPS-style list scheduler:

* process instructions in dataflow topological order, critical-path first,
* for each, score all execution tiles with free reservation stations by
  the OPN hop distance from already-placed producers plus affinity terms
  for where the result must ultimately travel (register tiles for write
  targets, the global tile for branches, the data-tile column for memory
  operations), plus a light load-balancing penalty,
* assign the best tile; the reservation-station index then fixes the body
  slot (slot = station*16 + tile).

Coordinates use the 5x5 OPN grid of Figure 3: GT at (0,0), RTs across the
top row, DTs down the left column, ETs in the 4x4 interior.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..isa import reg_bank
from .cfg import CompileError

NUM_ETS = 16
STATIONS_PER_ET = 8

GT_POS = (0, 0)


def rt_pos(bank: int) -> Tuple[int, int]:
    return (0, 1 + bank)


def et_pos(et: int) -> Tuple[int, int]:
    return (1 + et // 4, 1 + et % 4)


def dist(a: Tuple[int, int], b: Tuple[int, int]) -> int:
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


class Scheduler:
    """Greedy placement of one block's body nodes."""

    #: relative weight of tile fullness vs. hop distance.
    OCCUPANCY_WEIGHT = 0.3
    #: weight of sink affinity (writes/branches/memory) vs. producer hops.
    SINK_WEIGHT = 0.7

    def __init__(self) -> None:
        self.station_count = [0] * NUM_ETS

    def place(self, nodes: Sequence, producers_of, sinks_of) -> Dict[int, int]:
        """Assign a body slot to every node; returns uid -> slot.

        ``producers_of(node)`` yields (position or None) for each data/pred
        producer (None if that producer is itself unplaced or positionless).
        ``sinks_of(node)`` yields grid positions the result must reach.
        """
        order = self._topo_order(nodes)
        slots: Dict[int, int] = {}
        positions: Dict[int, Tuple[int, int]] = {}
        for node in order:
            best_et = None
            best_cost = None
            prod_positions = [p for p in producers_of(node, positions)
                              if p is not None]
            sink_positions = list(sinks_of(node))
            for et in range(NUM_ETS):
                if self.station_count[et] >= STATIONS_PER_ET:
                    continue
                pos = et_pos(et)
                cost = float(sum(dist(p, pos) for p in prod_positions))
                cost += self.SINK_WEIGHT * sum(
                    dist(pos, s) for s in sink_positions)
                cost += self.OCCUPANCY_WEIGHT * self.station_count[et]
                if best_cost is None or cost < best_cost:
                    best_cost = cost
                    best_et = et
            if best_et is None:
                raise CompileError("block exceeds 128 reservation stations")
            station = self.station_count[best_et]
            self.station_count[best_et] += 1
            slot = station * NUM_ETS + best_et
            slots[node.uid] = slot
            positions[node.uid] = et_pos(best_et)
        return slots

    @staticmethod
    def _topo_order(nodes: Sequence) -> List:
        """Topological order by depth, critical (tallest) subtrees first."""
        node_ids = {n.uid for n in nodes}
        depth: Dict[int, int] = {}

        def compute_depth(node) -> int:
            if node.uid in depth:
                return depth[node.uid]
            depth[node.uid] = 0  # breaks cycles defensively; DAG expected
            parents = [p for p in node.inputs]
            if node.pred is not None:
                parents.append(node.pred[0])
            d = 0
            for parent in parents:
                for real in _expand(parent):
                    if real.uid in node_ids:
                        d = max(d, compute_depth(real) + 1)
            depth[node.uid] = d
            return d

        for node in nodes:
            compute_depth(node)
        # Height (distance to furthest consumer) approximated by reverse
        # accumulation over the same edges.
        height: Dict[int, int] = {n.uid: 0 for n in nodes}
        for node in sorted(nodes, key=lambda n: -depth[n.uid]):
            parents = [p for p in node.inputs]
            if node.pred is not None:
                parents.append(node.pred[0])
            for parent in parents:
                for real in _expand(parent):
                    if real.uid in height:
                        height[real.uid] = max(height[real.uid],
                                               height[node.uid] + 1)
        return sorted(nodes, key=lambda n: (depth[n.uid], -height[n.uid],
                                            n.uid))


def _expand(node):
    if node.kind != "merge":
        return (node,)
    out = []
    for inp in node.inputs:
        out.extend(_expand(inp))
    return out

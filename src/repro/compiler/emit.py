"""Materialize a :class:`BlockDag` into a validated :class:`TripsBlock`.

Steps: dead-code elimination from the block's sinks, fanout-tree expansion
(balanced ``mov`` trees wherever a producer has more consumers than its
target fields), LSID compaction, spatial scheduling, header slot
assignment, and instruction emission.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..isa import (
    Instruction,
    Opcode,
    OperandKind,
    ReadInstruction,
    Target,
    TripsBlock,
    WriteInstruction,
    reg_bank,
)
from .cfg import CompileError
from .dag import BlockDag, DNode, _resolve, target_capacity
from .schedule import GT_POS, Scheduler, dist, et_pos, rt_pos

#: endpoint ports for data/pred operands.
_PORT_KIND = {0: OperandKind.LEFT, 1: OperandKind.RIGHT,
              "P": OperandKind.PRED}


def materialize(dag: BlockDag, name: str) -> TripsBlock:
    """Emit the accumulated dataflow graph as one TRIPS block."""
    live = _mark_live(dag)
    endpoints, write_slots, write_regs = _collect_endpoints(dag, live)
    clones = _clone_hot_producers(dag, live, endpoints)
    extra_movs = _expand_fanout(dag, live, endpoints)
    body_nodes = [n for n in dag.nodes
                  if n.uid in live and n.is_body] + clones + extra_movs
    _compact_lsids(body_nodes)
    read_nodes = [n for n in dag.nodes if n.uid in live and n.kind == "read"]
    read_slots = _assign_read_slots(read_nodes)
    slots = _schedule(body_nodes, read_slots, endpoints, write_regs)

    block = TripsBlock(name=name)
    for node in read_nodes:
        targets = _targets_for(node, endpoints, slots, write_slots)
        block.reads[read_slots[node.uid]] = ReadInstruction(node.reg, targets)
    for wslot, reg in write_regs.items():
        block.writes[wslot] = WriteInstruction(reg)
    for node in body_nodes:
        block.body[slots[node.uid]] = _emit(node, endpoints, slots,
                                            write_slots)
    block.validate()
    return block


# ----------------------------------------------------------------------
def _mark_live(dag: BlockDag) -> Set[int]:
    """DCE: everything reachable from stores, branches and write values."""
    live: Set[int] = set()
    stack: List[DNode] = []
    for node in dag.nodes:
        if node.kind == "branch":
            stack.append(node)
        elif node.opcode is not None and node.opcode.is_store:
            stack.append(node)
    for _, value in dag.writes:
        stack.append(value)
    while stack:
        node = stack.pop()
        if node.kind == "merge":
            stack.extend(node.inputs)
            continue
        if node.uid in live:
            continue
        live.add(node.uid)
        stack.extend(node.inputs)
        if node.pred is not None:
            stack.append(node.pred[0])
    return live


Endpoint = Tuple  # (consumer DNode, port) or ("W", write_slot)


def _collect_endpoints(dag: BlockDag, live: Set[int]):
    """Producer uid -> consumer endpoints; write slot assignments."""
    endpoints: Dict[int, List[Endpoint]] = {}

    def feed(producer: DNode, endpoint: Endpoint) -> None:
        for real in _resolve(producer):
            if real.uid in live:
                endpoints.setdefault(real.uid, []).append(endpoint)

    for node in dag.nodes:
        if node.uid not in live or node.kind == "merge":
            continue
        for port, inp in enumerate(node.inputs):
            feed(inp, (node, port))
        if node.pred is not None:
            feed(node.pred[0], (node, "P"))

    # Write slots, grouped by bank: slot = bank*8 + index within bank.
    write_slots: Dict[int, int] = {}   # reg -> slot
    write_regs: Dict[int, int] = {}    # slot -> reg
    per_bank = [0, 0, 0, 0]
    for reg, value in dag.writes:
        bank = reg_bank(reg)
        if per_bank[bank] >= 8:
            raise CompileError(f"more than 8 register writes in bank {bank}")
        slot = bank * 8 + per_bank[bank]
        per_bank[bank] += 1
        write_slots[reg] = slot
        write_regs[slot] = reg
        feed(value, ("W", slot))
    return endpoints, write_slots, write_regs


def _clone_hot_producers(dag: BlockDag, live: Set[int],
                         endpoints: Dict[int, List[Endpoint]]) -> List[DNode]:
    """Replicate cheap over-fanout producers instead of building mov trees.

    A shared address computation feeding eight loads would otherwise pay a
    three-deep mov tree on the critical path; duplicating the 1-cycle op
    costs the same instruction count but distributes in parallel — what
    the paper's hand coders did ("replicating and fanning out operand
    values", Section 5.4).  Cloning cascades: a clone's inputs gain
    consumers and may clone in turn; a budget keeps the block within its
    128 instructions (overflow falls back to mov trees).
    """
    def clonable(node: DNode) -> bool:
        return (node.kind in ("op", "const")
                and node.opcode is not None
                and not node.opcode.is_memory
                and not node.opcode.is_branch
                and node.opcode.opclass.value != "null"
                and node.pred is None
                and node.opcode.latency <= 1)

    body_count = sum(1 for n in dag.nodes if n.uid in live and n.is_body)
    # worst-case mov trees the expander may still add afterwards
    tree_estimate = sum(
        max(0, len(endpoints.get(n.uid, ())) - target_capacity(n))
        for n in dag.nodes if n.uid in live and n.kind != "merge")
    budget = 112 - body_count - tree_estimate
    clones: List[DNode] = []
    worklist = [n for n in dag.nodes if n.uid in live]
    while worklist:
        node = worklist.pop()
        if not clonable(node):
            continue
        eps = endpoints.get(node.uid, [])
        cap = target_capacity(node)
        need = -(-len(eps) // cap) - 1 if len(eps) > cap else 0
        if need <= 0 or need > budget:
            continue
        budget -= need
        groups = [eps[i::need + 1] for i in range(need + 1)]
        endpoints[node.uid] = groups[0]
        for g in groups[1:]:
            dag._uid += 1
            clone = DNode(dag._uid, node.kind, opcode=node.opcode,
                          inputs=node.inputs, imm=node.imm,
                          const=node.const, bits=node.bits)
            endpoints[clone.uid] = g
            live.add(clone.uid)
            clones.append(clone)
            for port, inp in enumerate(node.inputs):
                for real in _resolve(inp):
                    if real.uid in live:
                        endpoints.setdefault(real.uid, []).append(
                            (clone, port))
                        worklist.append(real)
    return clones


def _expand_fanout(dag: BlockDag, live: Set[int],
                   endpoints: Dict[int, List[Endpoint]]) -> List[DNode]:
    """Insert mov trees where consumers exceed target capacity.

    Trees are *criticality-skewed*: consumers that gate block outputs
    (write slots, chains that feed writes, branches) stay shallow while
    cold consumers absorb the tree depth — the loop-carried register chain
    between blocks must not pay fanout latency (Section 5.4 charges fanout
    as overhead precisely because hand coders minimize it on the critical
    path).
    """
    heights = _heights(dag, live)

    def criticality(ep: Endpoint) -> int:
        if ep[0] == "W":
            return 1000                      # a block output itself
        consumer, _ = ep
        score = heights.get(consumer.uid, 0)
        if any(e[0] == "W" for e in endpoints.get(consumer.uid, ())):
            score += 40                      # feeds an output directly
        if consumer.kind == "branch":
            score += 10
        return score

    extra: List[DNode] = []

    def new_mov(producer: DNode, fed: List[Endpoint]) -> Endpoint:
        dag._uid += 1
        mov = DNode(dag._uid, "op", opcode=Opcode.MOV, inputs=(producer,))
        endpoints[mov.uid] = fed
        extra.append(mov)
        live.add(mov.uid)
        return (mov, 0)

    for node in list(dag.nodes):
        if node.uid not in live or node.kind == "merge":
            continue
        eps = endpoints.get(node.uid, [])
        cap = target_capacity(node)
        if len(eps) > cap:
            # hottest consumers keep direct target slots; the remainder
            # hangs off a balanced mov tree in the last slot
            eps = sorted(eps, key=criticality, reverse=True)
            direct, rest = eps[:max(cap - 1, 0)], eps[max(cap - 1, 0):]
            while len(rest) > 1:
                level: List[Endpoint] = []
                for i in range(0, len(rest) - 1, 2):
                    level.append(new_mov(node, [rest[i], rest[i + 1]]))
                if len(rest) % 2:
                    level.append(rest[-1])
                rest = level
            eps = direct + rest
        endpoints[node.uid] = eps
    return extra


def _heights(dag: BlockDag, live: Set[int]) -> Dict[int, int]:
    """Longest-path height (to any sink) per live node."""
    heights: Dict[int, int] = {}
    consumers: Dict[int, List[DNode]] = {}
    for node in dag.nodes:
        if node.uid not in live or node.kind == "merge":
            continue
        parents = list(node.inputs)
        if node.pred is not None:
            parents.append(node.pred[0])
        for parent in parents:
            for real in _resolve(parent):
                consumers.setdefault(real.uid, []).append(node)

    def height_fast(node: DNode) -> int:
        if node.uid in heights:
            return heights[node.uid]
        heights[node.uid] = 0
        h = 0
        for consumer in consumers.get(node.uid, ()):
            h = max(h, height_fast(consumer) + 1)
        heights[node.uid] = h
        return h

    for node in dag.nodes:
        if node.uid in live and node.kind != "merge":
            height_fast(node)
    return heights


def _compact_lsids(body_nodes: Sequence[DNode]) -> None:
    mem = sorted((n for n in body_nodes if n.lsid >= 0),
                 key=lambda n: n.lsid)
    for new_lsid, node in enumerate(mem):
        node.lsid = new_lsid


def _assign_read_slots(read_nodes: Sequence[DNode]) -> Dict[int, int]:
    per_bank = [0, 0, 0, 0]
    slots: Dict[int, int] = {}
    for node in sorted(read_nodes, key=lambda n: n.reg):
        bank = reg_bank(node.reg)
        if per_bank[bank] >= 8:
            raise CompileError(f"more than 8 register reads in bank {bank}")
        slots[node.uid] = bank * 8 + per_bank[bank]
        per_bank[bank] += 1
    return slots


def _schedule(body_nodes: Sequence[DNode], read_slots: Dict[int, int],
              endpoints: Dict[int, List[Endpoint]],
              write_regs: Dict[int, int]) -> Dict[int, int]:
    read_positions = {uid: rt_pos(slot // 8)
                      for uid, slot in read_slots.items()}

    def producers_of(node: DNode, placed_positions):
        parents = list(node.inputs)
        if node.pred is not None:
            parents.append(node.pred[0])
        out = []
        for parent in parents:
            for real in _resolve(parent):
                if real.uid in placed_positions:
                    out.append(placed_positions[real.uid])
                elif real.uid in read_positions:
                    out.append(read_positions[real.uid])
        return out

    def sinks_of(node: DNode):
        sinks = []
        if node.kind == "branch":
            sinks.append(GT_POS)
        if node.opcode is not None and node.opcode.is_memory:
            # memory requests travel west to the DT column
            sinks.append((2, 0))
        for endpoint in endpoints.get(node.uid, ()):
            if endpoint[0] == "W":
                sinks.append(rt_pos(endpoint[1] // 8))
        return sinks

    return Scheduler().place(body_nodes, producers_of, sinks_of)


def _targets_for(node: DNode, endpoints, slots, write_slots) -> List[Target]:
    targets = []
    for endpoint in endpoints.get(node.uid, ()):
        if endpoint[0] == "W":
            targets.append(Target(endpoint[1], OperandKind.WRITE))
        else:
            consumer, port = endpoint
            targets.append(Target(slots[consumer.uid], _PORT_KIND[port]))
    return targets


def _emit(node: DNode, endpoints, slots, write_slots) -> Instruction:
    targets = _targets_for(node, endpoints, slots, write_slots)
    pred = None if node.pred is None else node.pred[1]
    kwargs = {}
    if node.opcode is None:
        raise CompileError(f"cannot emit node kind {node.kind}")
    from ..isa.opcodes import Format
    fmt = node.opcode.format
    if fmt is Format.I:
        kwargs["imm"] = node.imm
    elif fmt in (Format.L, Format.S):
        kwargs["imm"] = node.imm
        kwargs["lsid"] = node.lsid
    elif fmt is Format.C:
        kwargs["const"] = node.const
        pred = None
    elif fmt is Format.B:
        kwargs["exit_no"] = node.exit_no
    inst = Instruction(node.opcode, pred=pred, targets=targets, **kwargs)
    if node.label is not None:
        inst.label = node.label
    return inst

"""simlab command line.

Usage::

    python -m repro.simlab sweep [workload ...] [--workers N] [--json]
                                 [--no-cache] [--cache-dir DIR]
                                 [--no-performance] [--quiet]
    python -m repro.simlab status [--cache-dir DIR]
    python -m repro.simlab clear  [--cache-dir DIR] [--stale]
    python -m repro.simlab watch  [--once] [--interval S]
                                  [--cache-dir DIR] [--events FILE]
    python -m repro.simlab metrics [--prom | --json] [--cache-dir DIR]
                                   [--events FILE]

``sweep`` runs the full Table 3 experiment set (critical-path overheads
plus TRIPS-vs-baseline performance) through the parallel executor with
the content-addressed cache on by default: the first invocation
simulates, every subsequent identical invocation is pure cache hits.
Cached sweeps also append a job-lifecycle event log next to the cache
(``events.jsonl``), which the two observability commands read:
``watch`` is the live terminal dashboard (``--once`` renders a single
frame for CI), ``metrics`` replays the log into the fleet registry and
exposes it in Prometheus text format (``--prom``, the default) or as a
JSON snapshot (``--json``), both with source/host provenance.
``status`` inspects the cache; ``clear`` empties it (``--stale`` keeps
records produced by the current source tree and drops the rest).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from ..harness.tables import render_table, table3_rows
from ..metrics import FleetMetrics, default_events_path
from ..workloads import workload_names
from .cache import DEFAULT_CACHE_DIR, ResultCache
from .spec import code_fingerprint


def _add_cache_dir(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        metavar="DIR",
                        help=f"cache directory (default: "
                             f"{DEFAULT_CACHE_DIR})")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.simlab",
        description="Parallel, cached experiment engine for the "
                    "reproduction's sweeps.")
    sub = parser.add_subparsers(dest="command", required=True)

    sweep = sub.add_parser("sweep", help="run the Table 3 experiment set")
    sweep.add_argument("workloads", nargs="*", default=None,
                       help="subset of benchmarks (default: all 21)")
    sweep.add_argument("--workers", type=int, default=None, metavar="N",
                       help="worker processes (default: one per CPU; "
                            "0 = serial in-process)")
    sweep.add_argument("--json", action="store_true",
                       help="emit rows as JSON instead of a text table")
    sweep.add_argument("--no-cache", action="store_true",
                       help="always re-simulate; do not touch the cache")
    sweep.add_argument("--no-performance", action="store_true",
                       help="critical-path overheads only (skip the "
                            "baseline comparisons)")
    sweep.add_argument("--quiet", action="store_true",
                       help="suppress per-job progress lines")
    _add_cache_dir(sweep)

    status = sub.add_parser("status", help="inspect the result cache")
    _add_cache_dir(status)

    clear = sub.add_parser("clear", help="delete cached results")
    clear.add_argument("--stale", action="store_true",
                       help="only drop records from older source trees")
    _add_cache_dir(clear)

    watch = sub.add_parser(
        "watch", help="live dashboard over the sweep event log")
    watch.add_argument("--once", action="store_true",
                       help="render a single frame and exit (CI mode)")
    watch.add_argument("--interval", type=float, default=2.0, metavar="S",
                       help="redraw period in seconds (default 2)")
    watch.add_argument("--events", default=None, metavar="FILE",
                       help="event log path (default: "
                            "<cache-dir>/events.jsonl)")
    _add_cache_dir(watch)

    metrics = sub.add_parser(
        "metrics", help="expose fleet metrics from the event log")
    fmt = metrics.add_mutually_exclusive_group()
    fmt.add_argument("--prom", action="store_true",
                     help="Prometheus text format (default)")
    fmt.add_argument("--json", action="store_true",
                     help="JSON snapshot instead of Prometheus text")
    metrics.add_argument("--events", default=None, metavar="FILE",
                         help="event log path (default: "
                              "<cache-dir>/events.jsonl)")
    _add_cache_dir(metrics)

    args = parser.parse_args(argv)
    if args.command == "sweep":
        return _sweep(args)
    if args.command == "status":
        return _status(args)
    if args.command == "watch":
        return _watch(args)
    if args.command == "metrics":
        return _metrics(args)
    return _clear(args)


def _sweep(args) -> int:
    unknown = [name for name in (args.workloads or [])
               if name not in workload_names()]
    if unknown:
        print(f"error: unknown workload(s) {', '.join(unknown)}; "
              f"see 'python -m repro.harness list'", file=sys.stderr)
        return 2
    metrics = None
    if not args.no_cache:
        metrics = FleetMetrics.for_cache_dir(args.cache_dir)
    cache = None if args.no_cache \
        else ResultCache(args.cache_dir, metrics=metrics)
    log = None if args.quiet else \
        (lambda message: print(message, file=sys.stderr))
    start = time.perf_counter()
    rows = table3_rows(args.workloads or None,
                       include_performance=not args.no_performance,
                       workers=args.workers, cache=cache, log=log,
                       metrics=metrics)
    elapsed = time.perf_counter() - start
    if args.json:
        print(json.dumps(rows, indent=2))
    else:
        print(render_table(rows, "Table 3: overheads and performance"))
    if cache is not None:
        counts = metrics.counts()
        faults = ""
        if counts["retries"] or counts["failed"]:
            faults = (f", {counts['retries']} retried "
                      f"({counts['timeouts']} timeout, "
                      f"{counts['crashes']} crash), "
                      f"{counts['failed']} failed")
        print(f"[simlab] {cache.hits + cache.misses} jobs: "
              f"{cache.hits} hits, {cache.misses} misses{faults} in "
              f"{elapsed:.1f}s (cache: {cache.root})", file=sys.stderr)
    else:
        print(f"[simlab] sweep finished in {elapsed:.1f}s (cache off)",
              file=sys.stderr)
    return 0


def _human_bytes(n: int) -> str:
    for unit in ("bytes", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n} bytes" if unit == "bytes" \
                else f"{n:.1f} {unit}"
        n /= 1024
    return f"{n:.1f} GiB"


def _human_age(created, now: float) -> str:
    if created is None:
        return "?"
    seconds = max(0.0, now - created)
    if seconds < 120:
        return f"{seconds:.0f}s"
    if seconds < 7200:
        return f"{seconds / 60:.0f}m"
    if seconds < 172800:
        return f"{seconds / 3600:.1f}h"
    return f"{seconds / 86400:.1f}d"


def _status(args) -> int:
    cache = ResultCache(args.cache_dir)
    summary = cache.summary()
    current = code_fingerprint()
    stale = sum(count for fp, count in summary["fingerprints"].items()
                if fp != current)
    now = time.time()
    print(f"cache dir:    {summary['dir']}")
    print(f"entries:      {summary['entries']} "
          f"({summary['bytes']} bytes, "
          f"{_human_bytes(summary['bytes'])})")
    print(f"fingerprint:  {current} (current source tree)")
    print(f"stale:        {stale} entries from other source versions")
    if summary["entries"]:
        print(f"age:          oldest "
              f"{_human_age(summary['oldest_created'], now)}, newest "
              f"{_human_age(summary['newest_created'], now)}")
        by_suite = " · ".join(
            f"{suite} {count}" for suite, count
            in sorted(summary["suites"].items(),
                      key=lambda item: (-item[1], item[0])))
        by_kind = " · ".join(
            f"{kind} {count}" for kind, count
            in sorted(summary["kinds"].items(),
                      key=lambda item: (-item[1], item[0])))
        print(f"by suite:     {by_suite}")
        print(f"by kind:      {by_kind}")
    events = default_events_path(args.cache_dir)
    if events.exists():
        print(f"event log:    {events} ({events.stat().st_size} bytes; "
              f"see 'simlab watch' / 'simlab metrics')")
    return 0


def _events_path(args):
    from pathlib import Path
    if args.events is not None:
        return Path(args.events)
    return default_events_path(args.cache_dir)


def _watch(args) -> int:
    from ..metrics.watch import watch
    return watch(_events_path(args), interval=args.interval,
                 once=args.once)


def _metrics(args) -> int:
    from ..metrics import MetricsRegistry
    from ..metrics.events import read_events, replay_into
    from ..metrics.expo import render_json, render_prometheus
    registry = MetricsRegistry()
    path = _events_path(args)
    replay_into(registry, read_events(path))
    summary = ResultCache(args.cache_dir).summary()
    registry.gauge("simlab_cache_entries",
                   "result records in the cache").set(summary["entries"])
    registry.gauge("simlab_cache_bytes",
                   "bytes held by the result cache").set(summary["bytes"])
    if args.json:
        print(json.dumps(render_json(registry), indent=2))
    else:
        sys.stdout.write(render_prometheus(registry))
    return 0


def _clear(args) -> int:
    cache = ResultCache(args.cache_dir)
    removed = cache.clear(
        stale_fingerprint=code_fingerprint() if args.stale else None)
    print(f"removed {removed} cached result(s) from {cache.root}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

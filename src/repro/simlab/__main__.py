"""simlab command line.

Usage::

    python -m repro.simlab sweep [workload ...] [--workers N] [--json]
                                 [--no-cache] [--cache-dir DIR]
                                 [--no-performance] [--quiet]
    python -m repro.simlab status [--cache-dir DIR]
    python -m repro.simlab clear  [--cache-dir DIR] [--stale]

``sweep`` runs the full Table 3 experiment set (critical-path overheads
plus TRIPS-vs-baseline performance) through the parallel executor with
the content-addressed cache on by default: the first invocation
simulates, every subsequent identical invocation is pure cache hits.
``status`` inspects the cache; ``clear`` empties it (``--stale`` keeps
records produced by the current source tree and drops the rest).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from ..harness.tables import render_table, table3_rows
from ..workloads import workload_names
from .cache import DEFAULT_CACHE_DIR, ResultCache
from .spec import code_fingerprint


def _add_cache_dir(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        metavar="DIR",
                        help=f"cache directory (default: "
                             f"{DEFAULT_CACHE_DIR})")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.simlab",
        description="Parallel, cached experiment engine for the "
                    "reproduction's sweeps.")
    sub = parser.add_subparsers(dest="command", required=True)

    sweep = sub.add_parser("sweep", help="run the Table 3 experiment set")
    sweep.add_argument("workloads", nargs="*", default=None,
                       help="subset of benchmarks (default: all 21)")
    sweep.add_argument("--workers", type=int, default=None, metavar="N",
                       help="worker processes (default: one per CPU; "
                            "0 = serial in-process)")
    sweep.add_argument("--json", action="store_true",
                       help="emit rows as JSON instead of a text table")
    sweep.add_argument("--no-cache", action="store_true",
                       help="always re-simulate; do not touch the cache")
    sweep.add_argument("--no-performance", action="store_true",
                       help="critical-path overheads only (skip the "
                            "baseline comparisons)")
    sweep.add_argument("--quiet", action="store_true",
                       help="suppress per-job progress lines")
    _add_cache_dir(sweep)

    status = sub.add_parser("status", help="inspect the result cache")
    _add_cache_dir(status)

    clear = sub.add_parser("clear", help="delete cached results")
    clear.add_argument("--stale", action="store_true",
                       help="only drop records from older source trees")
    _add_cache_dir(clear)

    args = parser.parse_args(argv)
    if args.command == "sweep":
        return _sweep(args)
    if args.command == "status":
        return _status(args)
    return _clear(args)


def _sweep(args) -> int:
    unknown = [name for name in (args.workloads or [])
               if name not in workload_names()]
    if unknown:
        print(f"error: unknown workload(s) {', '.join(unknown)}; "
              f"see 'python -m repro.harness list'", file=sys.stderr)
        return 2
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    log = None if args.quiet else \
        (lambda message: print(message, file=sys.stderr))
    start = time.perf_counter()
    rows = table3_rows(args.workloads or None,
                       include_performance=not args.no_performance,
                       workers=args.workers, cache=cache, log=log)
    elapsed = time.perf_counter() - start
    if args.json:
        print(json.dumps(rows, indent=2))
    else:
        print(render_table(rows, "Table 3: overheads and performance"))
    if cache is not None:
        print(f"[simlab] {cache.hits + cache.misses} jobs: "
              f"{cache.hits} hits, {cache.misses} misses in "
              f"{elapsed:.1f}s (cache: {cache.root})", file=sys.stderr)
    else:
        print(f"[simlab] sweep finished in {elapsed:.1f}s (cache off)",
              file=sys.stderr)
    return 0


def _status(args) -> int:
    cache = ResultCache(args.cache_dir)
    summary = cache.summary()
    current = code_fingerprint()
    stale = sum(count for fp, count in summary["fingerprints"].items()
                if fp != current)
    print(f"cache dir:    {summary['dir']}")
    print(f"entries:      {summary['entries']} "
          f"({summary['bytes']} bytes)")
    print(f"fingerprint:  {current} (current source tree)")
    print(f"stale:        {stale} entries from other source versions")
    return 0


def _clear(args) -> int:
    cache = ResultCache(args.cache_dir)
    removed = cache.clear(
        stale_fingerprint=code_fingerprint() if args.stale else None)
    print(f"removed {removed} cached result(s) from {cache.root}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""simlab: a parallel, cached experiment engine for the repro's sweeps.

Every paper artifact (Table 3, the Section 5.2 traffic studies, the
ablations) is a *sweep* — many independent (workload, code level, config)
simulations.  simlab gives all of them one engine:

* :class:`RunSpec` — a content-hashed job description (workload, level,
  full config, code fingerprint).
* :func:`run_specs` — a process-pool scheduler with per-job timeout,
  retry-once-on-crash, and deterministic, spec-ordered results
  (``workers=0`` is a serial in-process fallback with identical output).
* :class:`ResultCache` — JSON records under ``.simlab-cache/`` keyed by
  spec hash; repeated sweeps are pure cache hits, and any source change
  invalidates every key via the code fingerprint.
* ``python -m repro.simlab sweep|status|clear`` — the CLI.

Environment knobs (read by the benchmark sweeps through
:func:`workers_from_env` / :func:`cache_from_env`): ``SIMLAB_WORKERS``
(int; 0 = serial, the default) and ``SIMLAB_CACHE`` (cache directory;
unset = no caching).
"""

from __future__ import annotations

import os
from typing import Optional

from .cache import DEFAULT_CACHE_DIR, ResultCache
from .executor import (
    SimlabError,
    execute_spec,
    resolve_workers,
    run_specs,
)
from .spec import RunSpec, code_fingerprint

__all__ = [
    "DEFAULT_CACHE_DIR", "ResultCache", "RunSpec", "SimlabError",
    "cache_from_env", "code_fingerprint", "execute_spec",
    "resolve_workers", "run_specs", "workers_from_env",
]


def workers_from_env(default: int = 0) -> int:
    """``SIMLAB_WORKERS`` as an int (0 = serial, the tier-1 default)."""
    try:
        return int(os.environ.get("SIMLAB_WORKERS", default))
    except ValueError:
        return default


def cache_from_env() -> Optional[ResultCache]:
    """A cache rooted at ``SIMLAB_CACHE``, or None when unset/empty."""
    root = os.environ.get("SIMLAB_CACHE", "")
    return ResultCache(root) if root else None

"""Content-addressed result cache.

One JSON file per completed job under ``.simlab-cache/``, named by the
spec's content hash.  Records are self-describing — they embed the full
spec (config, fingerprint) alongside the result — so ``status`` and
``clear --stale`` can reason about the cache without re-deriving keys,
and a record is never *wrong*, only unreachable (a code or config change
changes the key).

Writes are atomic (temp file + ``os.replace``) so parallel workers and
concurrent sweeps sharing one cache directory never expose a torn record;
a corrupt or truncated file degrades to a cache miss.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple

#: bump when the record layout changes; old-schema records become misses.
SCHEMA = 1

#: default cache location, relative to the invoking directory.
DEFAULT_CACHE_DIR = ".simlab-cache"


class ResultCache:
    """Keyed JSON records with hit/miss accounting.

    ``metrics`` (optional, a :class:`~repro.metrics.events.FleetMetrics`)
    mirrors the hit/miss/put-bytes tallies into the fleet registry;
    every site is guarded by ``if self.metrics is not None`` so the
    default cache is untouched by the observability layer.
    """

    def __init__(self, root: os.PathLike = DEFAULT_CACHE_DIR,
                 metrics=None):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.metrics = metrics

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    # -- lookup ----------------------------------------------------------
    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The full record for ``key``, or None (counted as a miss)."""
        try:
            record = json.loads(self._path(key).read_text())
        except (OSError, ValueError):
            record = None
        if not isinstance(record, dict) or record.get("schema") != SCHEMA \
                or "result" not in record:
            self.misses += 1
            if self.metrics is not None:
                self.metrics.cache_misses.inc()
            return None
        self.hits += 1
        if self.metrics is not None:
            self.metrics.cache_hits.inc()
        return record

    def put(self, key: str, record: Dict[str, Any]) -> None:
        """Atomically persist ``record`` (annotated with the schema)."""
        self.root.mkdir(parents=True, exist_ok=True)
        record = dict(record, schema=SCHEMA)
        tmp = self.root / f".{key}.{os.getpid()}.tmp"
        # Key order is preserved, NOT sorted: result dicts round-trip in
        # insertion order, so cached table rows render column-identical
        # to freshly simulated ones.
        blob = json.dumps(record)
        tmp.write_text(blob)
        os.replace(tmp, self._path(key))
        if self.metrics is not None:
            self.metrics.cache_put_bytes.inc(len(blob))

    # -- maintenance -----------------------------------------------------
    def records(self) -> Iterator[Tuple[Path, Dict[str, Any]]]:
        """All readable records, in deterministic (filename) order."""
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("*.json")):
            try:
                record = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            if isinstance(record, dict):
                yield path, record

    def clear(self, stale_fingerprint: Optional[str] = None) -> int:
        """Delete records; returns the count removed.

        With ``stale_fingerprint`` set, only records whose spec fingerprint
        differs from it (i.e. results from an older simulator) are removed.
        """
        removed = 0
        for path, record in list(self.records()):
            if stale_fingerprint is not None:
                spec = record.get("spec", {})
                if spec.get("fingerprint") == stale_fingerprint:
                    continue
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def summary(self) -> Dict[str, Any]:
        """The census behind ``simlab status``: entry count, byte size,
        fingerprints, per-suite/per-kind breakdown, entry-age range."""
        entries = 0
        size = 0
        fingerprints: Dict[str, int] = {}
        suites: Dict[str, int] = {}
        kinds: Dict[str, int] = {}
        oldest: Optional[float] = None
        newest: Optional[float] = None
        suite_of = _workload_suites()
        for path, record in self.records():
            entries += 1
            size += path.stat().st_size
            spec = record.get("spec", {})
            fp = spec.get("fingerprint", "?")
            fingerprints[fp] = fingerprints.get(fp, 0) + 1
            kind = spec.get("kind", "?")
            kinds[kind] = kinds.get(kind, 0) + 1
            suite = suite_of.get(spec.get("workload"), "other")
            suites[suite] = suites.get(suite, 0) + 1
            created = record.get("created")
            if isinstance(created, (int, float)):
                oldest = created if oldest is None else min(oldest,
                                                            created)
                newest = created if newest is None else max(newest,
                                                            created)
        return {"dir": str(self.root), "entries": entries, "bytes": size,
                "fingerprints": fingerprints, "suites": suites,
                "kinds": kinds, "oldest_created": oldest,
                "newest_created": newest}


def _workload_suites() -> Dict[str, str]:
    """workload name -> suite, for the status census (lazy import: the
    registry pulls in every workload module)."""
    from ..workloads.registry import SUITES
    return {name: suite for suite, names in SUITES.items()
            for name in names}

"""The simlab job model.

A :class:`RunSpec` deterministically captures *everything* that decides a
simulation's outcome: the experiment kind, workload name, code level, the
full resolved configuration (every :class:`~repro.uarch.config.TripsConfig`
or :class:`~repro.baseline.ooo.BaselineConfig` field, defaults included,
so a changed default never aliases an old record), and a fingerprint of
the simulator's own source code.  Its :attr:`RunSpec.key` is a stable
content hash over all of that — the cache key, and the reason a repeated
sweep is pure cache hits while any code or config change re-simulates.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Any, Dict, Optional

from ..baseline.ooo import BaselineConfig
from ..uarch.config import PredictorConfig, TripsConfig

#: experiment kinds execute_spec understands.  ``selftest`` exists for the
#: executor's own crash/retry/timeout tests and never touches a simulator.
#: ``fuzz`` is one differential-fuzzing shard (a seed range plus oracle
#: options, see :mod:`repro.fuzz`).
KINDS = ("trips", "baseline", "compare", "selftest", "fuzz")


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Hash of every ``.py`` file in the ``repro`` package.

    Cached results are only valid for the exact simulator that produced
    them; baking this into every spec's key makes cache invalidation on
    code change automatic (stale records are simply never looked up again
    — ``python -m repro.simlab clear --stale`` reclaims the disk).
    """
    root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


def trips_config_to_dict(config: Optional[TripsConfig]) -> Dict[str, Any]:
    """Full resolved field dict (nested predictor included)."""
    return asdict(config if config is not None else TripsConfig())


def trips_config_from_dict(data: Dict[str, Any]) -> TripsConfig:
    data = dict(data)
    predictor = data.pop("predictor", None)
    return TripsConfig(
        predictor=PredictorConfig(**predictor) if predictor
        else PredictorConfig(),
        **data)


def baseline_config_to_dict(
        config: Optional[BaselineConfig]) -> Dict[str, Any]:
    return asdict(config if config is not None else BaselineConfig())


def baseline_config_from_dict(data: Dict[str, Any]) -> BaselineConfig:
    return BaselineConfig(**data)


def _freeze_sampling(sampling) -> Optional[tuple]:
    """Normalize a SamplingConfig / dict / tuple-of-pairs / None to the
    hashable sorted-tuple form RunSpec stores."""
    if sampling is None:
        return None
    if hasattr(sampling, "to_dict"):
        sampling = sampling.to_dict()
    return tuple(sorted(dict(sampling).items()))


@dataclass(frozen=True)
class RunSpec:
    """One independent simulation job.

    Build specs through the :meth:`trips` / :meth:`baseline` /
    :meth:`compare` constructors — they resolve the config to its full
    field dict and normalize the fields the kind doesn't use, so two specs
    describing the same experiment always hash identically.
    """

    kind: str
    workload: str
    level: str = ""                 # trips only: "hand" | "tcc"
    trace: bool = False             # trips only: collect a critpath trace
    telemetry: bool = False         # trips only: cache a telemetry summary
    hand: bool = False              # compare only: include the hand level
    size: int = 1                   # trips only: workload size multiplier
    config: Dict[str, Any] = field(default_factory=dict)
    #: trips only: a SamplingConfig dict switches the job to sampled +
    #: checkpointed simulation (see :mod:`repro.sampling`); ``None`` is
    #: ordinary full simulation.  Stored as a plain tuple-of-pairs so the
    #: frozen dataclass stays hashable; read it back with
    #: :meth:`sampling_config`.
    sampling: Any = None
    fingerprint: str = ""

    # -- constructors ----------------------------------------------------
    @classmethod
    def trips(cls, workload: str, level: str = "hand",
              config: Optional[TripsConfig] = None, trace: bool = False,
              telemetry: bool = False, size: int = 1,
              sampling: Optional["SamplingConfig"] = None,
              fingerprint: Optional[str] = None) -> "RunSpec":
        """``sampling`` may be a
        :class:`~repro.sampling.SamplingConfig` (or its dict form);
        ``size`` scales the workload through
        :func:`~repro.workloads.get_workload`."""
        return cls(kind="trips", workload=workload, level=level,
                   trace=trace, telemetry=telemetry, size=int(size),
                   sampling=_freeze_sampling(sampling),
                   config=trips_config_to_dict(config),
                   fingerprint=fingerprint if fingerprint is not None
                   else code_fingerprint())

    def sampling_config(self) -> Optional["SamplingConfig"]:
        """The job's sampling geometry, or ``None`` for full simulation."""
        if self.sampling is None:
            return None
        from ..sampling import SamplingConfig
        return SamplingConfig.from_dict(dict(self.sampling))

    @classmethod
    def baseline(cls, workload: str,
                 config: Optional[BaselineConfig] = None,
                 fingerprint: Optional[str] = None) -> "RunSpec":
        return cls(kind="baseline", workload=workload,
                   config=baseline_config_to_dict(config),
                   fingerprint=fingerprint if fingerprint is not None
                   else code_fingerprint())

    @classmethod
    def compare(cls, workload: str, hand: bool = True,
                config: Optional[TripsConfig] = None,
                fingerprint: Optional[str] = None) -> "RunSpec":
        return cls(kind="compare", workload=workload, hand=hand,
                   config=trips_config_to_dict(config),
                   fingerprint=fingerprint if fingerprint is not None
                   else code_fingerprint())

    @classmethod
    def fuzz(cls, start: int, count: int,
             gen: Optional[Dict[str, Any]] = None,
             checks: Optional[tuple] = None,
             telemetry_every: int = 4, nuca_every: int = 8,
             fingerprint: Optional[str] = None) -> "RunSpec":
        """One differential-fuzzing shard over seeds [start, start+count).

        The seed range, generator shape, check selection, and sampling
        periods all live in ``config`` and therefore in :attr:`key`, so a
        cached shard result can never be served for a different campaign
        — and the code fingerprint covers :mod:`repro.fuzz` itself.
        """
        from ..fuzz.oracle import ALL_CHECKS
        config: Dict[str, Any] = {
            "start": int(start), "count": int(count),
            "gen": dict(gen or {}),
            "checks": list(checks if checks is not None else ALL_CHECKS),
            "telemetry_every": int(telemetry_every),
            "nuca_every": int(nuca_every),
        }
        return cls(kind="fuzz",
                   workload=f"seeds[{start}:{start + count}]",
                   config=config,
                   fingerprint=fingerprint if fingerprint is not None
                   else code_fingerprint())

    @classmethod
    def selftest(cls, payload: str) -> "RunSpec":
        """Executor-test probe; ``payload`` is ``mode[:arg]`` (see
        :func:`~repro.simlab.executor.execute_spec`)."""
        return cls(kind="selftest", workload=payload,
                   fingerprint=code_fingerprint())

    # -- identity --------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "workload": self.workload,
                "level": self.level, "trace": self.trace,
                "telemetry": self.telemetry, "hand": self.hand,
                "size": self.size,
                "sampling": None if self.sampling is None
                else dict(self.sampling),
                "config": self.config, "fingerprint": self.fingerprint}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunSpec":
        return cls(kind=data["kind"], workload=data["workload"],
                   level=data.get("level", ""),
                   trace=bool(data.get("trace", False)),
                   telemetry=bool(data.get("telemetry", False)),
                   hand=bool(data.get("hand", False)),
                   size=int(data.get("size", 1)),
                   sampling=_freeze_sampling(data.get("sampling")),
                   config=dict(data.get("config", {})),
                   fingerprint=data.get("fingerprint", ""))

    @property
    def key(self) -> str:
        """Stable content hash — the cache filename."""
        blob = json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()[:24]

    @property
    def label(self) -> str:
        """Short human-readable job name for progress lines."""
        if self.kind == "trips":
            return f"trips:{self.workload}" + \
                (f"x{self.size}" if self.size != 1 else "") + \
                f"@{self.level}" + \
                (" +trace" if self.trace else "") + \
                (" +tel" if self.telemetry else "") + \
                (" +sampled" if self.sampling is not None else "")
        if self.kind == "compare":
            return f"compare:{self.workload}" + ("" if self.hand
                                                 else " (no hand)")
        return f"{self.kind}:{self.workload}"

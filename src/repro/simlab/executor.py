"""The simlab executor: fan RunSpecs out across worker processes.

Scheduling contract (the part the paper-reproduction sweeps rely on):

* **Deterministic results.** Every job is a pure function of its spec, so
  ``run_specs(specs, workers=N)`` returns byte-identical results for any
  ``N`` — results come back *in spec order* regardless of completion
  order, and ``workers=0`` runs everything serially in-process (the
  tier-1 default: no pools, no cache, exactly the old harness behaviour).
* **Caching.** With a :class:`~repro.simlab.cache.ResultCache`, each spec
  is looked up by content hash before simulating and persisted after, so
  a repeated sweep is pure cache hits.
* **Fault tolerance.** Each job gets one retry: a worker crash
  (``BrokenProcessPool``), a per-job timeout, or an in-job exception
  resubmits the job once; a second failure raises :class:`SimlabError`.
  A timeout or crash replaces the whole pool (terminating any hung
  worker) and resubmits the jobs that had not finished — their results
  are unaffected, only their wall-clock is.
* **Observability, off by default.** With a
  :class:`~repro.metrics.events.FleetMetrics` passed as ``metrics=``,
  every lifecycle transition increments fleet counters and appends to
  the JSONL event log (workers emit their own ``start``/``finish``
  lines, so ``simlab watch`` sees true per-worker occupancy).  Every
  site is guarded by ``if metrics is not None``; with the default
  ``metrics=None`` the executor behaves — and its results are —
  byte-identical to the uninstrumented code path.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence

from .cache import ResultCache
from .spec import (
    RunSpec,
    baseline_config_from_dict,
    trips_config_from_dict,
)

Logger = Callable[[str], None]


class SimlabError(RuntimeError):
    """A job failed twice, or a spec is malformed."""


# ----------------------------------------------------------------------
# Job execution (runs inside worker processes; must stay picklable-by-
# reference, so everything here is module level).

def execute_spec(spec: RunSpec) -> Dict[str, Any]:
    """Run one job and return its JSON-serializable result dict."""
    # Imported lazily: repro.harness imports repro.simlab for the sweep
    # plumbing, so a module-level import here would be circular.
    from ..harness.runner import (
        compare_workload,
        run_baseline_workload,
        run_trips_workload,
    )

    if spec.kind == "trips" and spec.sampling is not None:
        from ..sampling import run_sampled_workload
        run = run_sampled_workload(
            spec.workload, level=spec.level,
            config=trips_config_from_dict(spec.config),
            sampling=spec.sampling_config(), telemetry=spec.telemetry,
            size=spec.size)
        result = {"kind": "trips", "name": run.name, "level": run.level,
                  "sampled": run.sampled.to_dict(),
                  "fallback_blocks": run.fallback_blocks}
        if spec.telemetry:
            result["telemetry_windows"] = run.telemetry_windows
        return result

    if spec.kind == "trips":
        run = run_trips_workload(spec.workload, level=spec.level,
                                 config=trips_config_from_dict(spec.config),
                                 trace=spec.trace,
                                 telemetry=spec.telemetry, size=spec.size)
        result = {"kind": "trips", "name": run.name, "level": run.level,
                  "stats": run.stats.to_dict()}
        if spec.trace:
            from ..analysis import analyze_critical_path
            result["critpath"] = analyze_critical_path(run.proc.trace).row()
        if spec.telemetry:
            # the compact summary — not the raw event stream — is what
            # the cache record carries (JSON-round-trippable by design)
            result["telemetry"] = run.proc.tel.summary().to_dict()
        return result

    if spec.kind == "baseline":
        run = run_baseline_workload(
            spec.workload, config=baseline_config_from_dict(spec.config))
        return {"kind": "baseline", "name": run.name,
                "stats": run.stats.to_dict()}

    if spec.kind == "compare":
        cmp = compare_workload(spec.workload,
                               config=trips_config_from_dict(spec.config),
                               hand=spec.hand)
        return {"kind": "compare", **cmp.to_dict()}

    if spec.kind == "fuzz":
        from ..fuzz.oracle import run_shard
        return {"kind": "fuzz", **run_shard(spec.config)}

    if spec.kind == "selftest":
        return _selftest(spec.workload)

    raise SimlabError(f"unknown spec kind {spec.kind!r}")


def _selftest(payload: str) -> Dict[str, Any]:
    """Deterministic fault-injection probes for the executor's own tests.

    ``mode[:arg]``: ``ok`` / ``echo:x`` succeed; ``fail-always`` raises;
    ``fail-once:path`` raises (``crash-once:path`` kills the process,
    ``hang-once:path`` sleeps forever) until the flag file exists.
    """
    mode, _, arg = payload.partition(":")
    if mode == "ok":
        return {"kind": "selftest", "ok": True}
    if mode == "echo":
        return {"kind": "selftest", "ok": True, "value": arg}
    if mode == "fail-always":
        raise RuntimeError("simlab selftest: deliberate persistent failure")
    if mode in ("fail-once", "crash-once", "hang-once"):
        flag = Path(arg)
        if flag.exists():
            return {"kind": "selftest", "ok": True, "retried": True}
        flag.write_text("simlab selftest first attempt\n")
        if mode == "crash-once":
            os._exit(13)
        if mode == "hang-once":
            time.sleep(3600)
        raise RuntimeError("simlab selftest: deliberate one-shot failure")
    raise SimlabError(f"unknown selftest mode {mode!r}")


def _execute_payload(payload: Dict[str, Any],
                     events_path: Optional[str] = None,
                     key: str = "") -> Dict[str, Any]:
    """Worker entry point: spec dict in, timed result envelope out.

    ``events_path`` (set only when the sweep carries metrics) makes the
    worker append its own ``start``/``finish`` lifecycle events — the
    parent only learns of completion when it collects the future, which
    may be long after the fact.  A failed attempt emits no ``finish``;
    the parent's ``retry``/``fail`` events cover it.
    """
    events = None
    if events_path is not None:
        from ..metrics.events import EventLog
        events = EventLog(events_path)
        events.emit("start", key=key)
    start = time.perf_counter()
    result = execute_spec(RunSpec.from_dict(payload))
    elapsed = round(time.perf_counter() - start, 4)
    if events is not None:
        events.emit("finish", key=key, elapsed_s=elapsed)
    return {"result": result, "elapsed_s": elapsed}


# ----------------------------------------------------------------------
def resolve_workers(workers: Optional[int]) -> int:
    """None -> one worker per CPU; ints pass through (0 = serial)."""
    if workers is None:
        return os.cpu_count() or 1
    return workers


def run_specs(specs: Sequence[RunSpec], workers: int = 0,
              cache: Optional[ResultCache] = None,
              timeout: Optional[float] = None,
              log: Optional[Logger] = None,
              metrics=None) -> List[Dict[str, Any]]:
    """Run every spec, returning result dicts aligned with ``specs``.

    ``workers=0`` executes serially in-process; ``workers=N`` fans out
    over N processes; ``workers=None`` uses one per CPU.  ``timeout`` is
    the per-job wait budget once collection reaches that job (parallel
    mode only — a serial job runs to completion).  ``metrics`` is an
    optional :class:`~repro.metrics.events.FleetMetrics`; results are
    identical with or without it.
    """
    log = log or (lambda message: None)
    workers = resolve_workers(workers)
    total = len(specs)
    results: List[Optional[Dict[str, Any]]] = [None] * total
    start_t = time.perf_counter()
    if metrics is not None:
        metrics.workers.set(max(1, workers))
        metrics.emit("sweep_begin", jobs=total, workers=workers)

    pending: List[int] = []
    for i, spec in enumerate(specs):
        record = cache.get(spec.key) if cache is not None else None
        if record is not None:
            results[i] = record["result"]
            log(f"[simlab] {i + 1}/{total} hit   {spec.label}")
            if metrics is not None:
                metrics.jobs.inc(outcome="cache_hit")
                metrics.emit("cache_hit", key=spec.key, label=spec.label)
        else:
            pending.append(i)
            if metrics is not None:
                metrics.emit("submit", key=spec.key, label=spec.label,
                             kind=spec.kind)
    if metrics is not None:
        metrics.queue_depth.set(len(pending))

    try:
        if not pending:
            return results
        if workers <= 0:
            _run_serial(specs, pending, results, cache, log, total,
                        metrics)
        else:
            _run_parallel(specs, pending, results, workers, timeout,
                          cache, log, total, metrics)
        return results
    finally:
        if metrics is not None:
            counts = metrics.counts()
            metrics.queue_depth.set(0)
            metrics.emit(
                "sweep_end", jobs=total, done=counts["done"],
                cache_hits=counts["cache_hits"],
                retries=counts["retries"], failed=counts["failed"],
                elapsed_s=round(time.perf_counter() - start_t, 4))


def _record(spec: RunSpec, envelope: Dict[str, Any],
            results: List[Optional[Dict[str, Any]]], index: int,
            cache: Optional[ResultCache], log: Logger, total: int,
            metrics=None, remaining: int = 0) -> None:
    results[index] = envelope["result"]
    if cache is not None:
        cache.put(spec.key, {"spec": spec.to_dict(),
                             "result": envelope["result"],
                             "elapsed_s": envelope["elapsed_s"],
                             "created": time.time()})
    if metrics is not None:
        metrics.jobs.inc(outcome="done")
        metrics.job_seconds.observe(envelope["elapsed_s"])
        metrics.queue_depth.set(remaining)
    log(f"[simlab] {index + 1}/{total} done  {spec.label} "
        f"({envelope['elapsed_s']:.2f}s)")


def _retry(metrics, spec: RunSpec, cause: str) -> None:
    if metrics is not None:
        metrics.retries.inc(cause=cause)
        metrics.emit("retry", key=spec.key, cause=cause)


def _fail(metrics, spec: RunSpec, exc: BaseException) -> None:
    if metrics is not None:
        metrics.jobs.inc(outcome="failed")
        metrics.emit("fail", key=spec.key, error=repr(exc))


def _run_serial(specs: Sequence[RunSpec], pending: Sequence[int],
                results: List[Optional[Dict[str, Any]]],
                cache: Optional[ResultCache], log: Logger,
                total: int, metrics=None) -> None:
    events_path = metrics.events_path if metrics is not None else None
    for n, i in enumerate(pending):
        payload = specs[i].to_dict()
        try:
            envelope = _execute_payload(payload, events_path,
                                        specs[i].key)
        except Exception as first:
            log(f"[simlab] {i + 1}/{total} retry {specs[i].label} "
                f"({first!r})")
            _retry(metrics, specs[i], "exception")
            try:
                envelope = _execute_payload(payload, events_path,
                                            specs[i].key)
            except Exception as second:
                _fail(metrics, specs[i], second)
                raise SimlabError(
                    f"{specs[i].label}: failed after retry "
                    f"({second!r})") from second
        _record(specs[i], envelope, results, i, cache, log, total,
                metrics, remaining=len(pending) - n - 1)


def _replace_pool(pool: ProcessPoolExecutor,
                  workers: int) -> ProcessPoolExecutor:
    """Terminate a broken/hung pool and stand up a fresh one."""
    for process in list(getattr(pool, "_processes", {}).values()):
        try:
            process.terminate()
        except OSError:
            pass
    pool.shutdown(wait=False, cancel_futures=True)
    return ProcessPoolExecutor(max_workers=workers)


def _run_parallel(specs: Sequence[RunSpec], pending: List[int],
                  results: List[Optional[Dict[str, Any]]], workers: int,
                  timeout: Optional[float], cache: Optional[ResultCache],
                  log: Logger, total: int, metrics=None) -> None:
    payloads = {i: specs[i].to_dict() for i in pending}
    events_path = metrics.events_path if metrics is not None else None
    pool = ProcessPoolExecutor(max_workers=workers)

    def submit(pool, i):
        if metrics is not None:
            metrics.emit("queued", key=specs[i].key)
        return pool.submit(_execute_payload, payloads[i], events_path,
                           specs[i].key)

    try:
        futures = {i: submit(pool, i) for i in pending}
        retried = set()
        position = 0
        # Collect strictly in submission order: determinism costs nothing
        # (every job must finish anyway) and keeps results aligned.
        while position < len(pending):
            i = pending[position]
            try:
                envelope = futures[i].result(timeout=timeout)
            except (FutureTimeoutError, BrokenProcessPool) as exc:
                # The pool itself is unusable (hung worker or crashed
                # process): rebuild it and resubmit every unfinished job.
                # Only the job being collected spends its retry; the
                # others are victims and keep their budget.
                cause = "timeout" if isinstance(exc, FutureTimeoutError) \
                    else "crash"
                if i in retried:
                    _fail(metrics, specs[i], exc)
                    raise SimlabError(f"{specs[i].label}: failed after "
                                      f"retry ({exc!r})") from exc
                retried.add(i)
                log(f"[simlab] {i + 1}/{total} retry {specs[i].label} "
                    f"({type(exc).__name__})")
                _retry(metrics, specs[i], cause)
                pool = _replace_pool(pool, workers)
                for j in pending[position:]:
                    if j == i or not futures[j].done():
                        futures[j] = submit(pool, j)
                continue
            except Exception as exc:
                if i in retried:
                    _fail(metrics, specs[i], exc)
                    raise SimlabError(f"{specs[i].label}: failed after "
                                      f"retry ({exc!r})") from exc
                retried.add(i)
                log(f"[simlab] {i + 1}/{total} retry {specs[i].label} "
                    f"({exc!r})")
                _retry(metrics, specs[i], "exception")
                futures[i] = submit(pool, i)
                continue
            _record(specs[i], envelope, results, i, cache, log, total,
                    metrics, remaining=len(pending) - position - 1)
            position += 1
    finally:
        pool.shutdown(wait=False, cancel_futures=True)

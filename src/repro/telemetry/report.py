"""Terminal rendering of a :class:`TelemetrySummary`.

``python -m repro.harness inspect <workload>`` prints this report: the
per-tile utilization heatmap laid out like the die (Figure 4 — GT and
RTs on the top row, each DT heading its ET row), the stall-attribution
table, block lifecycle averages, and micronet/memory occupancy.
"""

from __future__ import annotations

from typing import Dict, List

from .recorder import BUSY, IDLE, STALL_STATES, TelemetrySummary

#: utilization glyphs, one per eighth
_BLOCKS = "▁▂▃▄▅▆▇█"

#: die layout (Figure 4): grid[row][col] -> tile name
_LAYOUT = [["GT", "R0", "R1", "R2", "R3"]] + [
    [f"D{r}"] + [f"E{4 * r + c}" for c in range(4)] for r in range(4)]


def _busy_fraction(summary: TelemetrySummary, name: str) -> float:
    totals = summary.tiles.get(name, {})
    if not summary.cycles:
        return 0.0
    return totals.get(BUSY, 0) / summary.cycles


def _cell(summary: TelemetrySummary, name: str) -> str:
    frac = _busy_fraction(summary, name)
    glyph = _BLOCKS[min(len(_BLOCKS) - 1, int(frac * len(_BLOCKS)))]
    return f"{name:>3s} {glyph} {100 * frac:5.1f}%"

def _fmt_count(n: int) -> str:
    return f"{n:,}"


def render_report(summary: TelemetrySummary, title: str = "") -> str:
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"cycles: {_fmt_count(summary.cycles)}   "
                 f"blocks committed: {summary.blocks.get('committed', 0)}   "
                 f"flushed: {summary.blocks.get('flushed', 0)}")
    ff = summary.fast_forward
    if ff.get("cycles"):
        lines.append(f"fast-forwarded: {_fmt_count(ff['cycles'])} idle "
                     f"cycles in {ff['stretches']} stretches "
                     f"(accounted in the tile totals below)")
    # -- heatmap --------------------------------------------------------
    lines.append("")
    lines.append("Tile utilization (busy %, die layout):")
    for row in _LAYOUT:
        lines.append("  " + "   ".join(_cell(summary, name)
                                       for name in row))
    # -- stall attribution ---------------------------------------------
    n_tiles = len(summary.tiles)
    total = summary.cycles * n_tiles
    lines.append("")
    lines.append(f"Stall attribution (tile-cycles over {n_tiles} tiles):")
    rows = [(BUSY, summary.busy_cycles)]
    rows += [(state, summary.stall_totals.get(state, 0))
             for state in STALL_STATES]
    rows.append((IDLE, summary.idle_cycles))
    for state, cycles in rows:
        share = 100 * cycles / total if total else 0.0
        lines.append(f"  {state:<21s} {cycles:>12,}   {share:5.1f}%")
    # -- block lifecycle ------------------------------------------------
    if summary.block_phases:
        phases = summary.block_phases
        lines.append("")
        lines.append("Committed-block lifecycle (mean cycles):")
        lines.append(
            f"  fetch→dispatch {phases['fetch_to_dispatch']:.1f}   "
            f"execute {phases['execute']:.1f}   "
            f"complete→commit {phases['complete_to_commit']:.1f}   "
            f"commit→ack {phases['commit_to_ack']:.1f}   "
            f"lifetime {phases['lifetime']:.1f}")
    # -- micronets ------------------------------------------------------
    for label, net in (("OPN", summary.opn), ("OCN", summary.ocn)):
        if not net:
            continue
        lines.append("")
        lines.append(
            f"{label}: {_fmt_count(net['total_link_flits'])} link-flits, "
            f"peak link utilization "
            f"{100 * net['peak_link_utilization']:.1f}%, "
            f"peak queue depth {net['peak_queue_depth']}")
        top = sorted(net["links"].items(), key=lambda kv: -kv[1])[:5]
        if top:
            lines.append("  busiest links: " + ", ".join(
                f"{link} ({_fmt_count(flits)})" for link, flits in top))
    # -- memory ---------------------------------------------------------
    if summary.dram:
        dram = summary.dram
        lines.append("")
        lines.append(
            f"NUCA: {_fmt_count(dram['bank_accesses'])} bank accesses, "
            f"{_fmt_count(dram['dram_accesses'])} DRAM accesses, "
            f"in-flight avg {dram['avg_inflight']:.2f} / "
            f"peak {dram['peak_inflight']}")
    return "\n".join(lines)

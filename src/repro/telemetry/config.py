"""Telemetry configuration: which probe families record, and how much.

The default-constructed config enables everything; the simulator-facing
contract is that a ``None`` telemetry object (the default everywhere)
means *no probes run at all* — each site is a single
``if self.tel is not None`` test, so the disabled cost is one pointer
compare per site, not a call into a no-op recorder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..serialize import dataclass_from_dict, dataclass_to_dict


@dataclass(frozen=True)
class TelemetryConfig:
    """What the recorder keeps while a run executes.

    ``spans``/``tiles``/``mesh``/``sysmem`` gate the four probe families
    (block lifecycle spans, per-tile cycle accounting, micronet link and
    queue-depth telemetry, NUCA/DRAM occupancy).  ``max_spans`` bounds
    the retained block-span ring on long runs (0 = keep every block);
    finished spans beyond the bound are dropped oldest-first, while the
    per-tile and network accounting — O(transitions), not O(blocks) —
    is always complete.
    """

    spans: bool = True
    tiles: bool = True
    mesh: bool = True
    sysmem: bool = True
    max_spans: int = 0

    def to_dict(self) -> Dict:
        return dataclass_to_dict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "TelemetryConfig":
        return dataclass_from_dict(cls, data)

"""The telemetry recorder: per-tile cycle accounting, block spans,
micronet utilization, and memory-system occupancy.

Cycle accounting works by classification, not sampling: at the end of
every *stepped* cycle the recorder asks each tile for its state that
cycle (:meth:`~repro.uarch.tiles.ExecTile.tel_state` and friends), and
when the fast-path engine fast-forwards over a provably-quiescent
stretch, :meth:`TelemetryRecorder.account_skip` charges the whole
stretch in one run-length entry using the tile's quiescent-state
classifier.  Stepped plus skipped intervals tile the run exactly, so
for every tile::

    busy + sum(stalls) + idle == ProcStats.cycles

The stall taxonomy (Section 5.2's "where the cycles go" argument):

``waiting_operand``
    a reservation station holds a dispatched instruction that still
    misses an operand (ETs), or a register read is buffered against an
    in-flight write of an older block (RTs).
``opn_backpressure``
    the tile has a result/request packet it could not inject into the
    operand network (outbox non-empty after a drain attempt).
``gdn_backlog``
    the GT withheld a fetch because the dispatch pipe is serialized
    behind earlier blocks' GDN streams.
``lsq_full``
    a DT's load/store queue has no free entry.
``cache_miss``
    a DT is waiting on an L1 miss (L2/NUCA/DRAM fill in flight).
``dependence_deferral``
    a DT holds back a load the dependence predictor flagged until all
    prior stores arrive (Section 3.5).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..serialize import dataclass_from_dict, dataclass_to_dict
from .config import TelemetryConfig

# ----------------------------------------------------------------------
# tile-state taxonomy
# ----------------------------------------------------------------------
BUSY = "busy"
IDLE = "idle"
WAITING_OPERAND = "waiting_operand"
OPN_BACKPRESSURE = "opn_backpressure"
GDN_BACKLOG = "gdn_backlog"
LSQ_FULL = "lsq_full"
CACHE_MISS = "cache_miss"
DEP_DEFERRAL = "dependence_deferral"

#: every stall category, in report order
STALL_STATES = (WAITING_OPERAND, OPN_BACKPRESSURE, GDN_BACKLOG,
                LSQ_FULL, CACHE_MISS, DEP_DEFERRAL)
#: every state a tile-cycle can be charged to
STATES = (BUSY,) + STALL_STATES + (IDLE,)


class _Timeline:
    """Run-length-encoded state series for one tile: [state, start, end)."""

    __slots__ = ("runs",)

    def __init__(self):
        self.runs: List[List] = []

    def add(self, state: str, t0: int, t1: int) -> None:
        runs = self.runs
        if runs:
            last = runs[-1]
            if last[2] == t0 and last[0] == state:
                last[2] = t1
                return
        runs.append([state, t0, t1])

    def totals(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for state, t0, t1 in self.runs:
            out[state] = out.get(state, 0) + (t1 - t0)
        return out

    def covered(self) -> int:
        return sum(t1 - t0 for _, t0, t1 in self.runs)


# ----------------------------------------------------------------------
# block lifecycle spans
# ----------------------------------------------------------------------
@dataclass
class BlockSpan:
    """One block's trip through the fetch→...→ack protocol."""

    uid: int
    addr: int
    seq: int
    frame: int
    fetch_t: int
    dispatch_start: int
    dispatch_done_t: int = -1
    completed_t: int = -1
    commit_t: int = -1
    ack_t: int = -1
    outcome: str = "inflight"      # committed | flushed | inflight
    flush_reason: str = ""
    flush_t: int = -1

    def end_t(self) -> int:
        """Last cycle this block occupied its frame (best known)."""
        if self.ack_t >= 0:
            return self.ack_t
        if self.flush_t >= 0:
            return self.flush_t
        return max(self.fetch_t, self.dispatch_done_t, self.completed_t,
                   self.commit_t)


# ----------------------------------------------------------------------
# micronet telemetry (shared by the OPN and the OCN)
# ----------------------------------------------------------------------
class MeshTelemetry:
    """Per-link flit counts and per-router queue-depth series.

    Attached to a :class:`~repro.uarch.mesh.WormholeMesh` via its
    ``telemetry`` attribute; the mesh reports every move (one flit-count
    per traversed link) and every occupancy change.
    """

    __slots__ = ("name", "nodes", "link_flits", "depth", "peak_depth")

    def __init__(self, name: str):
        self.name = name
        self.nodes = 0                      # router count, set at attach
        #: (node, direction) -> flits moved over that output link
        self.link_flits: Dict[Tuple[Tuple[int, int], str], int] = {}
        #: node -> [(cycle, queued packets)] — appended on change only
        self.depth: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        self.peak_depth = 0

    def note_link(self, node, direction: str, flits: int) -> None:
        key = (node, direction)
        self.link_flits[key] = self.link_flits.get(key, 0) + flits

    def note_depth(self, node, cycle: int, depth: int) -> None:
        series = self.depth.get(node)
        if series is None:
            series = self.depth[node] = []
        if series and series[-1][0] == cycle:
            series[-1] = (cycle, depth)
        elif not series or series[-1][1] != depth:
            series.append((cycle, depth))
        if depth > self.peak_depth:
            self.peak_depth = depth

    def depth_histogram(self, cycles: int) -> Dict[str, int]:
        """Time-weighted router-cycles at each queue depth."""
        hist: Dict[int, int] = {}
        for series in self.depth.values():
            prev_c, prev_d = 0, 0
            for c, d in series:
                c = min(c, cycles)
                if c > prev_c and prev_d > 0:
                    hist[prev_d] = hist.get(prev_d, 0) + (c - prev_c)
                prev_c, prev_d = c, d
            if prev_d > 0 and cycles > prev_c:
                hist[prev_d] = hist.get(prev_d, 0) + (cycles - prev_c)
        out = {str(d): n for d, n in sorted(hist.items())}
        busy = sum(hist.values())
        total = self.nodes * cycles
        if total > busy:
            out = {"0": total - busy, **out}
        return out

    def summarize(self, cycles: int) -> Dict:
        links = {f"{node[0]},{node[1]}:{direction}": flits
                 for (node, direction), flits
                 in sorted(self.link_flits.items())}
        total_flits = sum(links.values())
        peak_link = max(links.values(), default=0)
        return {
            "links": links,
            "total_link_flits": total_flits,
            "peak_link_flits": peak_link,
            "peak_link_utilization": round(peak_link / cycles, 4)
            if cycles else 0.0,
            "queue_depth_hist": self.depth_histogram(cycles),
            "peak_queue_depth": self.peak_depth,
        }


class SysMemTelemetry:
    """NUCA/DRAM occupancy: in-flight bank/DRAM requests over time."""

    __slots__ = ("series", "last", "peak", "mt_accesses", "dram_accesses")

    def __init__(self):
        self.series: List[Tuple[int, int]] = []   # (cycle, in flight)
        self.last = 0
        self.peak = 0
        self.mt_accesses: Dict[int, int] = {}
        self.dram_accesses = 0

    def note_inflight(self, cycle: int, count: int) -> None:
        if count == self.last:
            return
        series = self.series
        if series and series[-1][0] == cycle:
            series[-1] = (cycle, count)
        else:
            series.append((cycle, count))
        self.last = count
        if count > self.peak:
            self.peak = count

    def note_mt(self, index: int, dram: bool) -> None:
        self.mt_accesses[index] = self.mt_accesses.get(index, 0) + 1
        if dram:
            self.dram_accesses += 1

    def summarize(self, cycles: int) -> Dict:
        integral = 0
        prev_c, prev_d = 0, 0
        for c, d in self.series:
            c = min(c, cycles)
            integral += prev_d * (c - prev_c)
            prev_c, prev_d = c, d
        if cycles > prev_c:
            integral += prev_d * (cycles - prev_c)
        return {
            "bank_accesses": sum(self.mt_accesses.values()),
            "dram_accesses": self.dram_accesses,
            "avg_inflight": round(integral / cycles, 4) if cycles else 0.0,
            "peak_inflight": self.peak,
            "mt_accesses": {str(i): n for i, n
                            in sorted(self.mt_accesses.items())},
        }


# ----------------------------------------------------------------------
# the summary record (what simlab caches)
# ----------------------------------------------------------------------
@dataclass
class TelemetrySummary:
    """Compact, JSON-round-trippable digest of one telemetry run.

    This — not the raw event stream — is what simlab caches alongside
    ``ProcStats``; every field is built from JSON-native types (string
    keys, ints/floats/lists) so ``to_dict`` survives a JSON round trip
    byte-identically.
    """

    cycles: int = 0
    #: tile name -> {state -> cycles}; states sum to ``cycles`` per tile
    tiles: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: stall category -> tile-cycles summed over all tiles
    stall_totals: Dict[str, int] = field(default_factory=dict)
    busy_cycles: int = 0
    idle_cycles: int = 0
    blocks: Dict[str, int] = field(default_factory=dict)
    #: mean per-phase latency of committed blocks (cycles)
    block_phases: Dict[str, float] = field(default_factory=dict)
    opn: Dict = field(default_factory=dict)
    ocn: Dict = field(default_factory=dict)
    dram: Dict = field(default_factory=dict)
    fast_forward: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict:
        return dataclass_to_dict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "TelemetrySummary":
        return dataclass_from_dict(cls, data)


# ----------------------------------------------------------------------
# the recorder
# ----------------------------------------------------------------------
class TelemetryRecorder:
    """Collects all probe events of one :class:`TripsProcessor` run.

    Created and attached by the processor when it is constructed with a
    telemetry config; tiles reach it as ``proc.tel``.  On the two-core
    chip each core carries its own recorder; the shared memory system's
    OCN/DRAM probes attach to whichever recorder claims them first
    (core 0's, in construction order).
    """

    def __init__(self, config: Optional[TelemetryConfig] = None):
        self.config = config or TelemetryConfig()
        self.proc = None
        self.timelines: Dict[str, _Timeline] = {}
        self._tile_runs: List[Tuple[object, _Timeline]] = []
        self._gt_tl = _Timeline()
        self.block_spans: Dict[int, BlockSpan] = {}
        self._finished: deque = deque()
        self.skips: List[Tuple[int, int]] = []
        self.opn = MeshTelemetry("OPN")
        self.ocn = MeshTelemetry("OCN")
        self.mem = SysMemTelemetry()
        self._owns_ocn = False
        self._owns_mem = False

    # -- wiring ---------------------------------------------------------
    def attach(self, proc) -> None:
        self.proc = proc
        names_tiles = [(f"E{i}", et) for i, et in enumerate(proc.ets)]
        names_tiles += [(f"R{b}", rt) for b, rt in enumerate(proc.rts)]
        names_tiles += [(f"D{d}", dt) for d, dt in enumerate(proc.dts)]
        self.timelines = {"GT": self._gt_tl}
        self._tile_runs = []
        for name, tile in names_tiles:
            tl = _Timeline()
            self.timelines[name] = tl
            self._tile_runs.append((tile, tl))
        if self.config.mesh:
            proc.opn.telemetry = self.opn
            self.opn.nodes = proc.opn.rows * proc.opn.cols
        if proc.sysmem is not None:
            if self.config.mesh and proc.sysmem.ocn.telemetry is None:
                proc.sysmem.ocn.telemetry = self.ocn
                self.ocn.nodes = (proc.sysmem.ocn.rows
                                  * proc.sysmem.ocn.cols)
                self._owns_ocn = True
            if self.config.sysmem and proc.sysmem.telemetry is None:
                proc.sysmem.telemetry = self.mem
                self._owns_mem = True

    # -- per-cycle tile accounting --------------------------------------
    def record_cycle(self, t: int) -> None:
        """Classify every tile's state for stepped cycle ``t``."""
        if not self.config.tiles:
            return
        t1 = t + 1
        for tile, tl in self._tile_runs:
            tl.add(tile.tel_state(t), t, t1)
        self._gt_tl.add(self.proc.tel_gt_state(t), t, t1)

    def account_skip(self, t0: int, t1: int) -> None:
        """Charge a fast-forwarded stretch ``[t0, t1)`` — quiescent by
        construction, so each tile is idle or in a passive wait state."""
        if t1 <= t0:
            return
        self.skips.append((t0, t1))
        if not self.config.tiles:
            return
        for tile, tl in self._tile_runs:
            tile.tel_account(tl, t0, t1)
        self._gt_tl.add(IDLE, t0, t1)

    # -- block lifecycle -------------------------------------------------
    def block_fetched(self, uid: int, addr: int, seq: int, frame: int,
                      t: int, dispatch_start: int) -> None:
        if not self.config.spans:
            return
        self.block_spans[uid] = BlockSpan(
            uid=uid, addr=addr, seq=seq, frame=frame, fetch_t=t,
            dispatch_start=dispatch_start)

    def block_dispatch_done(self, uid: int, t: int) -> None:
        span = self.block_spans.get(uid)
        if span is not None:
            span.dispatch_done_t = t

    def block_completed(self, uid: int, t: int) -> None:
        span = self.block_spans.get(uid)
        if span is not None:
            span.completed_t = t

    def block_committed(self, uid: int, commit_t: int, ack_t: int) -> None:
        span = self.block_spans.get(uid)
        if span is not None:
            span.commit_t = commit_t
            span.ack_t = ack_t
            span.outcome = "committed"
            self._note_finished(uid)

    def block_flushed(self, uid: int, reason: str, t: int) -> None:
        span = self.block_spans.get(uid)
        if span is not None:
            span.outcome = "flushed"
            span.flush_reason = reason
            span.flush_t = t
            self._note_finished(uid)

    def _note_finished(self, uid: int) -> None:
        limit = self.config.max_spans
        if not limit:
            return
        self._finished.append(uid)
        if len(self._finished) > limit:
            self.block_spans.pop(self._finished.popleft(), None)

    # -- summary ---------------------------------------------------------
    def summary(self) -> TelemetrySummary:
        cycles = self.proc.cycle if self.proc is not None else 0
        tiles = {name: dict(sorted(tl.totals().items()))
                 for name, tl in self.timelines.items()}
        stall_totals = {state: 0 for state in STALL_STATES}
        busy = idle = 0
        for totals in tiles.values():
            for state, n in totals.items():
                if state == BUSY:
                    busy += n
                elif state == IDLE:
                    idle += n
                else:
                    stall_totals[state] += n
        committed = [s for s in self.block_spans.values()
                     if s.outcome == "committed"]
        flushed = [s for s in self.block_spans.values()
                   if s.outcome == "flushed"]
        blocks = {"committed": len(committed), "flushed": len(flushed)}
        for span in flushed:
            key = f"flushed_{span.flush_reason}"
            blocks[key] = blocks.get(key, 0) + 1
        phases = {}
        full = [s for s in committed
                if s.dispatch_done_t >= 0 and s.completed_t >= 0
                and s.commit_t >= 0 and s.ack_t >= 0]
        if full:
            n = len(full)
            phases = {
                "fetch_to_dispatch": round(sum(
                    s.dispatch_done_t - s.fetch_t for s in full) / n, 2),
                "execute": round(sum(
                    max(0, s.completed_t - s.dispatch_done_t)
                    for s in full) / n, 2),
                "complete_to_commit": round(sum(
                    max(0, s.commit_t - s.completed_t)
                    for s in full) / n, 2),
                "commit_to_ack": round(sum(
                    s.ack_t - s.commit_t for s in full) / n, 2),
                "lifetime": round(sum(
                    s.ack_t - s.fetch_t for s in full) / n, 2),
            }
        return TelemetrySummary(
            cycles=cycles,
            tiles=tiles,
            stall_totals=stall_totals,
            busy_cycles=busy,
            idle_cycles=idle,
            blocks=blocks,
            block_phases=phases,
            opn=self.opn.summarize(cycles) if self.config.mesh else {},
            ocn=self.ocn.summarize(cycles) if self._owns_ocn else {},
            dram=self.mem.summarize(cycles) if self._owns_mem else {},
            fast_forward={
                "stretches": len(self.skips),
                "cycles": sum(t1 - t0 for t0, t1 in self.skips),
            })

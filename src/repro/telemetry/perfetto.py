"""Chrome/Perfetto trace-event-JSON export of one telemetry run.

Produces the classic trace-event format (``{"traceEvents": [...]}``)
that both ``chrome://tracing`` and https://ui.perfetto.dev load
directly.  Timebase: **1 simulated cycle = 1 microsecond** (the format's
``ts``/``dur`` unit), so the UI's time axis reads directly in cycles.

Track layout:

* pid 1 ("TRIPS core") — one thread per tile (GT, R0-R3, D0-D3,
  E0-E15) carrying that tile's busy/stall state spans (idle is the gap
  between spans); one thread per block-window frame (0-7) carrying
  block lifecycle spans (a parent span per block with dispatch /
  execute / commit-wait / commit child phases); one "engine" thread
  marking fast-forwarded idle stretches.
* pid 2 ("OPN") — a counter track per router with its queue depth.
* pid 3 ("memory") — OCN router queue depths and the NUCA/DRAM
  in-flight request counter (NUCA runs only).
* pid 4 ("windows") — the run chopped into ~100 equal cycle windows,
  each carrying three counter samples: blocks committed and blocks
  flushed per window (block throughput over time) and the average
  number of busy tiles (instantaneous parallelism).  These are the
  coarse "shape of the run" tracks — zoom here first, then drill into
  the per-tile spans.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .recorder import BUSY, IDLE, TelemetryRecorder

_PID_CORE = 1
_PID_OPN = 2
_PID_MEM = 3
_PID_WINDOWS = 4

#: target number of counter samples per run for the windowed tracks
_WINDOW_TARGET = 100

_TID_GT = 0
_TID_RT = 1          # R0..R3 -> 1..4
_TID_DT = 5          # D0..D3 -> 5..8
_TID_ET = 9          # E0..E15 -> 9..24
_TID_FRAME = 32      # frame f -> 32+f
_TID_ENGINE = 48


def _tile_tid(name: str) -> int:
    if name == "GT":
        return _TID_GT
    kind, index = name[0], int(name[1:])
    return {"R": _TID_RT, "D": _TID_DT, "E": _TID_ET}[kind] + index


def _meta(name: str, pid: int, tid: int = 0, kind: str = "thread_name"
          ) -> Dict:
    return {"ph": "M", "name": kind, "pid": pid, "tid": tid,
            "args": {"name": name}}


def _span(name: str, cat: str, ts: int, dur: int, pid: int, tid: int,
          args: Optional[Dict] = None) -> Dict:
    event = {"ph": "X", "name": name, "cat": cat, "ts": ts,
             "dur": max(0, dur), "pid": pid, "tid": tid}
    if args:
        event["args"] = args
    return event


def _counter(name: str, ts: int, value: float, pid: int,
             series: str = "value") -> Dict:
    return {"ph": "C", "name": name, "ts": ts, "pid": pid, "tid": 0,
            "args": {series: value}}


def _window_counters(recorder: TelemetryRecorder) -> List[Dict]:
    """pid-4 windowed ProcStats time series (see module docstring).

    The window width is ``ceil(cycles / _WINDOW_TARGET)`` cycles, so
    short runs get one sample per cycle and long runs stay ~100 samples
    per track regardless of length.
    """
    cycles = recorder.proc.cycle if recorder.proc is not None else 0
    if cycles <= 0:
        return []
    window = max(1, -(-cycles // _WINDOW_TARGET))
    n = -(-cycles // window)
    committed = [0] * n
    flushed = [0] * n
    for span in recorder.block_spans.values():
        if span.outcome == "committed" and span.commit_t >= 0:
            committed[min(span.commit_t // window, n - 1)] += 1
        elif span.outcome == "flushed" and span.flush_t >= 0:
            flushed[min(span.flush_t // window, n - 1)] += 1
    busy = [0] * n              # busy tile-cycles per window
    for timeline in recorder.timelines.values():
        for state, t0, t1 in timeline.runs:
            if state != BUSY:
                continue
            for w in range(t0 // window, min((t1 - 1) // window, n - 1) + 1):
                overlap = min(t1, (w + 1) * window) - max(t0, w * window)
                busy[w] += overlap
    events = [_meta("windows", _PID_WINDOWS, kind="process_name")]
    for i in range(n):
        ts = i * window
        width = min(window, cycles - ts)    # last window may be short
        events.append(_counter("blocks committed / window", ts,
                               committed[i], _PID_WINDOWS, series="blocks"))
        events.append(_counter("blocks flushed / window", ts,
                               flushed[i], _PID_WINDOWS, series="blocks"))
        events.append(_counter("busy tiles (avg)", ts,
                               round(busy[i] / width, 2), _PID_WINDOWS,
                               series="tiles"))
    return events


def build_trace(recorder: TelemetryRecorder) -> Dict:
    """The full trace-event document for one recorded run."""
    events: List[Dict] = [_meta("TRIPS core", _PID_CORE,
                                kind="process_name")]
    # -- tile state tracks ---------------------------------------------
    for name, timeline in recorder.timelines.items():
        tid = _tile_tid(name)
        events.append(_meta(name, _PID_CORE, tid))
        for state, t0, t1 in timeline.runs:
            if state != IDLE:
                events.append(_span(state, "tile", t0, t1 - t0,
                                    _PID_CORE, tid))
    # -- block lifecycle tracks (one per frame) ------------------------
    by_frame: Dict[int, List] = {}
    for span in recorder.block_spans.values():
        by_frame.setdefault(span.frame, []).append(span)
    for frame, spans in sorted(by_frame.items()):
        tid = _TID_FRAME + frame
        events.append(_meta(f"frame {frame}", _PID_CORE, tid))
        spans.sort(key=lambda s: s.fetch_t)
        for i, span in enumerate(spans):
            start = span.fetch_t
            end = max(span.end_t(), start + 1)
            if i + 1 < len(spans):
                # a violation flush frees the frame at a (small) future
                # time, so a refetch may reclaim it before the doomed
                # block's nominal end: clamp to keep frame spans disjoint
                end = min(end, spans[i + 1].fetch_t)
            label = f"block {span.addr:#x}" if span.outcome != "flushed" \
                else f"block {span.addr:#x} (flushed: {span.flush_reason})"
            events.append(_span(label, "block", start, end - start,
                                _PID_CORE, tid,
                                args={"uid": span.uid, "seq": span.seq,
                                      "outcome": span.outcome}))
            # phase boundaries are forced monotone (``cur``): a block can
            # e.g. complete before its last dead predicated instruction
            # finishes dispatching, and sibling spans must stay disjoint
            cur = start
            for phase, p0, p1 in (
                    ("dispatch", span.dispatch_start, span.dispatch_done_t),
                    ("execute", span.dispatch_done_t, span.completed_t),
                    ("commit-wait", span.completed_t, span.commit_t),
                    ("commit", span.commit_t, span.ack_t)):
                if p0 < 0 or p1 < 0:
                    continue
                p0, p1 = max(p0, cur), min(p1, end)
                if p1 > p0:
                    events.append(_span(phase, "block-phase", p0, p1 - p0,
                                        _PID_CORE, tid))
                    cur = p1
    # -- fast-forward track --------------------------------------------
    if recorder.skips:
        events.append(_meta("engine", _PID_CORE, _TID_ENGINE))
        for t0, t1 in recorder.skips:
            events.append(_span("fast-forward (idle)", "engine",
                                t0, t1 - t0, _PID_CORE, _TID_ENGINE))
    # -- router queue-depth counters -----------------------------------
    for mesh, pid, label in ((recorder.opn, _PID_OPN, "OPN"),
                             (recorder.ocn, _PID_MEM, "memory")):
        if not mesh.depth:
            continue
        events.append(_meta(label, pid, kind="process_name"))
        for node, series in sorted(mesh.depth.items()):
            name = f"{mesh.name} q {node[0]},{node[1]}"
            for cycle, depth in series:
                events.append(_counter(name, cycle, depth, pid,
                                       series="depth"))
    # -- NUCA/DRAM occupancy counter -----------------------------------
    if recorder.mem.series:
        if not recorder.ocn.depth:
            events.append(_meta("memory", _PID_MEM, kind="process_name"))
        for cycle, count in recorder.mem.series:
            events.append(_counter("NUCA in-flight", cycle, count,
                                   _PID_MEM, series="requests"))
    # -- windowed ProcStats time series ---------------------------------
    events.extend(_window_counters(recorder))
    return {"traceEvents": events}


def export_perfetto(recorder: TelemetryRecorder, path: str) -> Dict:
    """Write the trace to ``path``; returns the document."""
    doc = build_trace(recorder)
    with open(path, "w") as fh:
        json.dump(doc, fh)
        fh.write("\n")
    return doc

"""Schema/structure validation of exported Perfetto trace-event JSON.

Used by the telemetry-smoke CI job and the telemetry tests: a trace
must be loadable, every event must carry the fields its phase requires,
and the duration spans of each (pid, tid) track must nest monotonically
— any two spans are either disjoint or one strictly contains the other,
which is what the Perfetto UI assumes when it assigns rows.

Run it directly::

    python -m repro.telemetry.check out.json
"""

from __future__ import annotations

import json
import sys
from typing import Dict, List

_PHASES = {"X", "C", "M"}
_REQUIRED = {"X": ("name", "ts", "dur", "pid", "tid"),
             "C": ("name", "ts", "pid", "args"),
             "M": ("name", "pid", "args")}


def check_trace(doc: Dict) -> List[str]:
    """Structural errors in a trace-event document ([] = clean)."""
    errors: List[str] = []
    events = doc.get("traceEvents") if isinstance(doc, dict) else None
    if not isinstance(events, list):
        return ["top level must be an object with a traceEvents list"]
    if not events:
        errors.append("traceEvents is empty")
    tracks: Dict[tuple, List] = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            errors.append(f"event {i}: not an object")
            continue
        ph = event.get("ph")
        if ph not in _PHASES:
            errors.append(f"event {i}: unknown phase {ph!r}")
            continue
        missing = [key for key in _REQUIRED[ph] if key not in event]
        if missing:
            errors.append(f"event {i} ({ph}): missing {missing}")
            continue
        if ph != "M" and (not isinstance(event["ts"], int)
                          or event["ts"] < 0):
            errors.append(f"event {i}: bad ts {event.get('ts')!r}")
        if ph == "X":
            if not isinstance(event["dur"], int) or event["dur"] < 0:
                errors.append(f"event {i}: bad dur {event['dur']!r}")
            else:
                tracks.setdefault((event["pid"], event["tid"]), []).append(
                    (event["ts"], event["ts"] + event["dur"],
                     event["name"]))
    for (pid, tid), spans in sorted(tracks.items()):
        errors.extend(_check_nesting(pid, tid, spans))
    return errors


def _check_nesting(pid, tid, spans) -> List[str]:
    """Spans on one track must be disjoint or properly contained."""
    errors = []
    spans.sort(key=lambda s: (s[0], -s[1]))
    stack: List = []       # enclosing spans, innermost last
    for ts, end, name in spans:
        while stack and ts >= stack[-1][0]:
            stack.pop()
        if stack and end > stack[-1][0]:
            outer_end, outer_name = stack[-1]
            errors.append(
                f"track pid={pid} tid={tid}: span {name!r} "
                f"[{ts}, {end}) overlaps {outer_name!r} ending at "
                f"{outer_end}")
            continue
        stack.append((end, name))
    return errors


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.telemetry.check <trace.json>",
              file=sys.stderr)
        return 2
    try:
        with open(argv[0]) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"{argv[0]}: unreadable: {exc}", file=sys.stderr)
        return 1
    errors = check_trace(doc)
    for error in errors:
        print(f"{argv[0]}: {error}", file=sys.stderr)
    if errors:
        return 1
    n = len(doc["traceEvents"])
    print(f"{argv[0]}: OK ({n} events)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

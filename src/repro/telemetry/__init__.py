"""repro.telemetry: the zero-overhead-when-off observability layer.

The simulator's end-of-run aggregates (``ProcStats``) answer *how many*
cycles a run took; this package answers *where they went* — the question
Sections 4-5 of the paper are about.  When a
:class:`~repro.telemetry.config.TelemetryConfig` is passed to
:class:`~repro.uarch.proc.TripsProcessor` (or through
``run_trips_workload(..., telemetry=...)``), a
:class:`~repro.telemetry.recorder.TelemetryRecorder` rides along and
records:

* **block lifecycle spans** — fetch → dispatch → execute → commit → ack
  per block, with the flush cause for squashed blocks,
* **per-tile cycle accounting** — every cycle of every tile classified
  as busy, one of six stall categories (waiting-operand,
  OPN-backpressure, GDN-backlog, LSQ-full, cache-miss,
  dependence-deferral), or idle; the categories sum exactly to
  ``ProcStats.cycles``, including cycles the fast-path engine
  fast-forwarded over (accounted as idle/waiting spans, never lost),
* **micronet utilization** — per-router, per-link flit counts and
  queue-depth histograms for the OPN (and the OCN when the NUCA memory
  system is modelled),
* **NUCA/DRAM occupancy** — in-flight request counts over time and
  per-MT access totals.

Every probe site in the core is guarded by a single
``if self.tel is not None`` (or the tile-side ``proc.tel``), so a run
without telemetry executes exactly the instruction stream it always did —
the PR-3 fast path and the checked-in ``BENCH_engine.json`` numbers are
unaffected.

Sinks: :mod:`repro.telemetry.perfetto` exports Chrome/Perfetto
trace-event JSON (``chrome://tracing`` or https://ui.perfetto.dev),
:mod:`repro.telemetry.report` renders the terminal utilization heatmap
and stall-attribution table behind ``python -m repro.harness inspect``,
and :class:`~repro.telemetry.recorder.TelemetrySummary` is the compact,
JSON-round-trippable record that simlab caches alongside ``ProcStats``.
"""

from .config import TelemetryConfig
from .recorder import TelemetryRecorder, TelemetrySummary

__all__ = ["TelemetryConfig", "TelemetryRecorder", "TelemetrySummary"]

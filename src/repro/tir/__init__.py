"""TIR — the tiny imperative IR used as the paper's C/Fortran stand-in.

The paper's benchmarks are C programs compiled by the TRIPS toolchain.  We
have no C frontend, so workloads are written in TIR: a small structured IR
with 64-bit integer and IEEE-double arithmetic, named scalars, named arrays,
counted and conditional loops, and if/else.  Three consumers share it:

* :mod:`repro.tir.interp` — the reference interpreter (golden outputs),
* :mod:`repro.compiler` — lowers TIR to TRIPS blocks (tcc / hand levels),
* :mod:`repro.compiler.srisc` — lowers TIR to the baseline's RISC code.

All integer arithmetic is 64-bit two's-complement; floats are IEEE doubles
carried as 64-bit patterns, so all three consumers produce bit-identical
architectural results.
"""

from .ir import (
    Array,
    Assign,
    BinOp,
    Const,
    Expr,
    F,
    For,
    If,
    Load,
    Stmt,
    Store,
    TirError,
    TirProgram,
    UnOp,
    V,
    Var,
    While,
    bits_to_float,
    bits_to_int,
    float_to_bits,
    int_to_bits,
)
from .interp import InterpResult, interpret

__all__ = [
    "Array", "Assign", "BinOp", "Const", "Expr", "F", "For", "If", "Load",
    "Stmt", "Store", "TirError", "TirProgram", "UnOp", "V", "Var", "While",
    "bits_to_float", "bits_to_int", "float_to_bits", "int_to_bits",
    "InterpResult", "interpret",
]

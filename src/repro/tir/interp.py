"""Reference interpreter for TIR programs.

Produces the golden architectural outputs every simulator run is checked
against, plus simple dynamic statistics (operation counts) used for sanity
checks on the compilers' instruction counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from . import semantics
from .ir import (
    Array,
    Assign,
    BinOp,
    Const,
    Expr,
    For,
    If,
    Load,
    Stmt,
    Store,
    TirError,
    TirProgram,
    UnOp,
    Var,
    While,
    bits_to_int,
    float_to_bits,
    int_to_bits,
)

#: fuse against runaway While loops in buggy workloads.
MAX_DYNAMIC_STATEMENTS = 50_000_000


@dataclass
class InterpResult:
    """Golden outputs of one interpretation."""

    scalars: Dict[str, int]                 # final 64-bit patterns
    arrays: Dict[str, List[int]]            # final element patterns
    op_counts: Dict[str, int] = field(default_factory=dict)
    dynamic_statements: int = 0

    def output_signature(self, outputs: Sequence[str]) -> tuple:
        """Hashable digest of the observable outputs, for comparisons."""
        parts = []
        for name in outputs:
            if name in self.arrays:
                parts.append((name, tuple(self.arrays[name])))
            else:
                parts.append((name, self.scalars[name]))
        return tuple(parts)


class _Memory:
    """Per-array element storage as 64-bit patterns, truncated on store."""

    def __init__(self, arrays: Dict[str, Array]):
        self.arrays = arrays
        self.values: Dict[str, List[int]] = {}
        for name, arr in arrays.items():
            elems = []
            for v in arr.data:
                bits = float_to_bits(v) if arr.dtype == "f64" and \
                    isinstance(v, float) else int_to_bits(int(v))
                elems.append(semantics.truncate_load(bits, arr.elem_size,
                                                     arr.signed))
            self.values[name] = elems

    def load(self, array: str, index: int) -> int:
        arr = self.arrays[array]
        elems = self.values[array]
        if not 0 <= index < len(elems):
            raise TirError(f"{array}[{index}] out of bounds (len {len(elems)})")
        return elems[index]

    def store(self, array: str, index: int, bits: int) -> None:
        arr = self.arrays[array]
        elems = self.values[array]
        if not 0 <= index < len(elems):
            raise TirError(f"{array}[{index}] out of bounds (len {len(elems)})")
        elems[index] = semantics.truncate_load(bits, arr.elem_size, arr.signed)


def interpret(program: TirProgram) -> InterpResult:
    """Run ``program`` to completion and return its golden outputs."""
    program.validate()
    memory = _Memory(program.arrays)
    scalars: Dict[str, int] = {k: int_to_bits(v)
                               for k, v in program.scalars.items()}
    op_counts: Dict[str, int] = {}
    counter = {"stmts": 0}

    def ev(expr: Expr) -> int:
        if isinstance(expr, Const):
            return expr.bits
        if isinstance(expr, Var):
            try:
                return scalars[expr.name]
            except KeyError:
                raise TirError(f"read of unassigned variable {expr.name!r}") \
                    from None
        if isinstance(expr, Load):
            index = bits_to_int(ev(expr.index))
            op_counts["load"] = op_counts.get("load", 0) + 1
            return memory.load(expr.array, index)
        if isinstance(expr, BinOp):
            op_counts[expr.op] = op_counts.get(expr.op, 0) + 1
            return semantics.binop(expr.op, ev(expr.a), ev(expr.b))
        if isinstance(expr, UnOp):
            op_counts[expr.op] = op_counts.get(expr.op, 0) + 1
            return semantics.unop(expr.op, ev(expr.a))
        raise TirError(f"cannot evaluate {expr!r}")

    def run(stmts: Sequence[Stmt]) -> None:
        for stmt in stmts:
            counter["stmts"] += 1
            if counter["stmts"] > MAX_DYNAMIC_STATEMENTS:
                raise TirError("dynamic statement budget exceeded")
            if isinstance(stmt, Assign):
                scalars[stmt.var] = ev(stmt.expr)
            elif isinstance(stmt, Store):
                index = bits_to_int(ev(stmt.index))
                op_counts["store"] = op_counts.get("store", 0) + 1
                memory.store(stmt.array, index, ev(stmt.value))
            elif isinstance(stmt, For):
                start = bits_to_int(ev(stmt.start))
                stop = bits_to_int(ev(stmt.stop))
                i = start
                while (i < stop) if stmt.step > 0 else (i > stop):
                    scalars[stmt.var] = int_to_bits(i)
                    run(stmt.body)
                    i = bits_to_int(scalars[stmt.var]) + stmt.step
                scalars[stmt.var] = int_to_bits(i)
            elif isinstance(stmt, While):
                while ev(stmt.cond) != 0:
                    counter["stmts"] += 1
                    run(stmt.body)
            elif isinstance(stmt, If):
                run(stmt.then_body if ev(stmt.cond) != 0 else stmt.else_body)
            else:
                raise TirError(f"cannot execute {stmt!r}")

    run(program.body)
    return InterpResult(scalars=scalars, arrays=memory.values,
                        op_counts=op_counts,
                        dynamic_statements=counter["stmts"])

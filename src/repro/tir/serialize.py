"""Exact JSON codec for TIR programs.

The fuzzing corpus (``tests/fuzz/corpus/``) checks generated programs into
the repository and replays them in CI, so the round trip must be *exact*:
``program_from_dict(program_to_dict(p))`` reproduces every 64-bit constant
bit for bit.  Floats are therefore stored as their IEEE-754 bit patterns
(``f64`` array elements included), never as decimal text.
"""

from __future__ import annotations

from typing import Any, Dict, List

from .ir import (
    Array,
    Assign,
    BinOp,
    Const,
    Expr,
    For,
    If,
    Load,
    Stmt,
    Store,
    TirError,
    TirProgram,
    UnOp,
    Var,
    While,
    bits_to_float,
    float_to_bits,
)


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
def expr_to_dict(expr: Expr) -> Dict[str, Any]:
    if isinstance(expr, Const):
        out: Dict[str, Any] = {"k": "const", "bits": expr.bits}
        if expr.is_float:
            out["float"] = True
        return out
    if isinstance(expr, Var):
        return {"k": "var", "name": expr.name}
    if isinstance(expr, Load):
        return {"k": "load", "array": expr.array,
                "index": expr_to_dict(expr.index)}
    if isinstance(expr, BinOp):
        return {"k": "bin", "op": expr.op,
                "a": expr_to_dict(expr.a), "b": expr_to_dict(expr.b)}
    if isinstance(expr, UnOp):
        return {"k": "un", "op": expr.op, "a": expr_to_dict(expr.a)}
    raise TirError(f"cannot serialize expression {expr!r}")


def expr_from_dict(data: Dict[str, Any]) -> Expr:
    kind = data["k"]
    if kind == "const":
        return Const(data["bits"], is_float=bool(data.get("float", False)))
    if kind == "var":
        return Var(data["name"])
    if kind == "load":
        return Load(data["array"], expr_from_dict(data["index"]))
    if kind == "bin":
        return BinOp(data["op"], expr_from_dict(data["a"]),
                     expr_from_dict(data["b"]))
    if kind == "un":
        return UnOp(data["op"], expr_from_dict(data["a"]))
    raise TirError(f"unknown expression kind {kind!r}")


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
def stmt_to_dict(stmt: Stmt) -> Dict[str, Any]:
    if isinstance(stmt, Assign):
        return {"k": "assign", "var": stmt.var,
                "expr": expr_to_dict(stmt.expr)}
    if isinstance(stmt, Store):
        return {"k": "store", "array": stmt.array,
                "index": expr_to_dict(stmt.index),
                "value": expr_to_dict(stmt.value)}
    if isinstance(stmt, For):
        return {"k": "for", "var": stmt.var,
                "start": expr_to_dict(stmt.start),
                "stop": expr_to_dict(stmt.stop),
                "step": stmt.step, "unroll": stmt.unroll,
                "body": [stmt_to_dict(s) for s in stmt.body]}
    if isinstance(stmt, If):
        return {"k": "if", "cond": expr_to_dict(stmt.cond),
                "then": [stmt_to_dict(s) for s in stmt.then_body],
                "else": [stmt_to_dict(s) for s in stmt.else_body]}
    if isinstance(stmt, While):
        return {"k": "while", "cond": expr_to_dict(stmt.cond),
                "body": [stmt_to_dict(s) for s in stmt.body]}
    raise TirError(f"cannot serialize statement {stmt!r}")


def stmt_from_dict(data: Dict[str, Any]) -> Stmt:
    kind = data["k"]
    if kind == "assign":
        return Assign(data["var"], expr_from_dict(data["expr"]))
    if kind == "store":
        return Store(data["array"], expr_from_dict(data["index"]),
                     expr_from_dict(data["value"]))
    if kind == "for":
        return For(data["var"], expr_from_dict(data["start"]),
                   expr_from_dict(data["stop"]), data["step"],
                   [stmt_from_dict(s) for s in data["body"]],
                   unroll=data.get("unroll", 1))
    if kind == "if":
        return If(expr_from_dict(data["cond"]),
                  [stmt_from_dict(s) for s in data["then"]],
                  [stmt_from_dict(s) for s in data.get("else", [])])
    if kind == "while":
        return While(expr_from_dict(data["cond"]),
                     [stmt_from_dict(s) for s in data["body"]])
    raise TirError(f"unknown statement kind {kind!r}")


# ----------------------------------------------------------------------
# Programs
# ----------------------------------------------------------------------
def array_to_dict(arr: Array) -> Dict[str, Any]:
    if arr.dtype == "f64":
        data = [float_to_bits(v) if isinstance(v, float) else int(v)
                for v in arr.data]
    else:
        data = [int(v) for v in arr.data]
    return {"dtype": arr.dtype, "data": data}


def array_from_dict(data: Dict[str, Any]) -> Array:
    dtype = data["dtype"]
    if dtype == "f64":
        return Array(dtype, [bits_to_float(v) for v in data["data"]])
    return Array(dtype, list(data["data"]))


def program_to_dict(prog: TirProgram) -> Dict[str, Any]:
    return {
        "name": prog.name,
        "arrays": {name: array_to_dict(arr)
                   for name, arr in prog.arrays.items()},
        "scalars": dict(prog.scalars),
        "body": [stmt_to_dict(s) for s in prog.body],
        "outputs": list(prog.outputs),
    }


def program_from_dict(data: Dict[str, Any]) -> TirProgram:
    return TirProgram(
        name=data["name"],
        arrays={name: array_from_dict(arr)
                for name, arr in data["arrays"].items()},
        scalars=dict(data["scalars"]),
        body=[stmt_from_dict(s) for s in data["body"]],
        outputs=list(data["outputs"]),
    )

"""TIR node definitions and 64-bit value helpers."""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

MASK64 = (1 << 64) - 1


class TirError(ValueError):
    """Malformed TIR."""


# ----------------------------------------------------------------------
# 64-bit value helpers: every TIR value is a 64-bit pattern (unsigned int).
# ----------------------------------------------------------------------
def int_to_bits(value: int) -> int:
    """Two's-complement encode a Python int into a 64-bit pattern."""
    return value & MASK64


def bits_to_int(bits: int) -> int:
    """Decode a 64-bit pattern as a signed integer."""
    bits &= MASK64
    return bits - (1 << 64) if bits >> 63 else bits


def float_to_bits(value: float) -> int:
    """IEEE-754 double -> 64-bit pattern."""
    return struct.unpack("<Q", struct.pack("<d", value))[0]


def bits_to_float(bits: int) -> float:
    """64-bit pattern -> IEEE-754 double."""
    return struct.unpack("<d", struct.pack("<Q", bits & MASK64))[0]


#: dtype name -> element size in bytes.
DTYPE_SIZE = {"i8": 1, "u8": 1, "i16": 2, "u16": 2, "i32": 4, "u32": 4,
              "i64": 8, "u64": 8, "f64": 8}
SIGNED_DTYPES = {"i8", "i16", "i32", "i64"}


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
#: binary operators: TIR op name -> python-level signed semantics are
#: defined in interp.py; this set is the authoritative vocabulary.
BINOPS = {
    "add", "sub", "mul", "div", "rem",
    "and", "or", "xor", "shl", "shr", "sra",
    "eq", "ne", "lt", "le", "gt", "ge", "ltu", "geu",
    "fadd", "fsub", "fmul", "fdiv",
    "flt", "fle", "fgt", "fge", "feq", "fne",
}
UNOPS = {"not", "neg", "itof", "ftoi"}


class Expr:
    """Base of all expressions, with operator-overloaded sugar."""

    def __add__(self, other):  return BinOp("add", self, _wrap(other))
    def __radd__(self, other): return BinOp("add", _wrap(other), self)
    def __sub__(self, other):  return BinOp("sub", self, _wrap(other))
    def __rsub__(self, other): return BinOp("sub", _wrap(other), self)
    def __mul__(self, other):  return BinOp("mul", self, _wrap(other))
    def __rmul__(self, other): return BinOp("mul", _wrap(other), self)
    def __and__(self, other):  return BinOp("and", self, _wrap(other))
    def __or__(self, other):   return BinOp("or", self, _wrap(other))
    def __xor__(self, other):  return BinOp("xor", self, _wrap(other))
    def __lshift__(self, other): return BinOp("shl", self, _wrap(other))
    def __rshift__(self, other): return BinOp("sra", self, _wrap(other))

    # Comparisons intentionally do NOT overload ==/< to keep hashability;
    # use the named helpers below.
    def eq(self, other):  return BinOp("eq", self, _wrap(other))
    def ne(self, other):  return BinOp("ne", self, _wrap(other))
    def lt(self, other):  return BinOp("lt", self, _wrap(other))
    def le(self, other):  return BinOp("le", self, _wrap(other))
    def gt(self, other):  return BinOp("gt", self, _wrap(other))
    def ge(self, other):  return BinOp("ge", self, _wrap(other))


def _wrap(value) -> "Expr":
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        raise TirError("use 0/1 integers, not bools")
    if isinstance(value, int):
        return Const(value)
    if isinstance(value, float):
        return Const(float_to_bits(value), is_float=True)
    raise TirError(f"cannot use {value!r} as an expression")


@dataclass(frozen=True)
class Const(Expr):
    """A 64-bit constant.  ``bits`` is the raw pattern."""

    bits: int
    is_float: bool = False

    def __post_init__(self):
        object.__setattr__(self, "bits", int_to_bits(self.bits))


def F(value: float) -> Const:
    """Float constant helper: ``F(0.5)``."""
    return Const(float_to_bits(value), is_float=True)


@dataclass(frozen=True)
class Var(Expr):
    """A named scalar variable."""

    name: str


def V(name: str) -> Var:
    """Shorthand for :class:`Var`."""
    return Var(name)


@dataclass(frozen=True)
class Load(Expr):
    """``array[index]``, index in elements; dtype from the declaration."""

    array: str
    index: Expr


@dataclass(frozen=True)
class BinOp(Expr):
    op: str
    a: Expr
    b: Expr

    def __post_init__(self):
        if self.op not in BINOPS:
            raise TirError(f"unknown binop {self.op!r}")


@dataclass(frozen=True)
class UnOp(Expr):
    op: str
    a: Expr

    def __post_init__(self):
        if self.op not in UNOPS:
            raise TirError(f"unknown unop {self.op!r}")


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
class Stmt:
    """Base of all statements."""


@dataclass
class Assign(Stmt):
    var: str
    expr: Expr


@dataclass
class Store(Stmt):
    """``array[index] = value``, index in elements."""

    array: str
    index: Expr
    value: Expr


@dataclass
class For(Stmt):
    """Counted loop: ``for var in range(start, stop, step)``.

    ``start``/``stop`` are evaluated once at entry.  ``step`` is a nonzero
    literal.  ``unroll`` is a hand-optimization hint honoured only at the
    "hand" compilation level (the trip count must divide evenly).
    """

    var: str
    start: Union[Expr, int]
    stop: Union[Expr, int]
    step: int
    body: List[Stmt]
    unroll: int = 1

    def __post_init__(self):
        self.start = _wrap(self.start)
        self.stop = _wrap(self.stop)
        if self.step == 0:
            raise TirError("zero loop step")
        if self.unroll < 1:
            raise TirError("unroll factor must be >= 1")


@dataclass
class While(Stmt):
    """``while cond != 0``."""

    cond: Expr
    body: List[Stmt]


@dataclass
class If(Stmt):
    cond: Expr
    then_body: List[Stmt]
    else_body: List[Stmt] = field(default_factory=list)


# ----------------------------------------------------------------------
# Programs
# ----------------------------------------------------------------------
@dataclass
class Array:
    """A named memory region of typed elements.

    ``data`` holds initial element values: raw int patterns for integer
    dtypes, Python floats for ``f64``.
    """

    dtype: str
    data: List[Union[int, float]]

    def __post_init__(self):
        if self.dtype not in DTYPE_SIZE:
            raise TirError(f"unknown dtype {self.dtype!r}")

    @property
    def elem_size(self) -> int:
        return DTYPE_SIZE[self.dtype]

    @property
    def signed(self) -> bool:
        return self.dtype in SIGNED_DTYPES

    @property
    def nbytes(self) -> int:
        return len(self.data) * self.elem_size

    def encode(self) -> bytes:
        """Initial contents as little-endian bytes."""
        out = bytearray()
        for value in self.data:
            bits = float_to_bits(value) if self.dtype == "f64" and \
                isinstance(value, float) else int_to_bits(int(value))
            out += (bits & ((1 << (8 * self.elem_size)) - 1)).to_bytes(
                self.elem_size, "little")
        return bytes(out)


@dataclass
class TirProgram:
    """A complete workload: declarations + body + observable outputs."""

    name: str
    arrays: Dict[str, Array] = field(default_factory=dict)
    scalars: Dict[str, int] = field(default_factory=dict)
    body: List[Stmt] = field(default_factory=list)
    outputs: List[str] = field(default_factory=list)

    def validate(self) -> None:
        names = set(self.arrays) | set(self.scalars)
        if len(names) != len(self.arrays) + len(self.scalars):
            raise TirError("array and scalar namespaces collide")
        for out in self.outputs:
            if out not in names:
                raise TirError(f"output {out!r} undeclared")
        _check_stmts(self.body, self, dict(self.scalars))

    def all_variables(self) -> List[str]:
        """Every scalar name mentioned anywhere, in first-seen order."""
        seen: Dict[str, None] = dict.fromkeys(self.scalars)
        def walk_expr(e: Expr) -> None:
            if isinstance(e, Var):
                seen.setdefault(e.name)
            elif isinstance(e, BinOp):
                walk_expr(e.a); walk_expr(e.b)
            elif isinstance(e, UnOp):
                walk_expr(e.a)
            elif isinstance(e, Load):
                walk_expr(e.index)
        def walk(stmts: Sequence[Stmt]) -> None:
            for s in stmts:
                if isinstance(s, Assign):
                    walk_expr(s.expr); seen.setdefault(s.var)
                elif isinstance(s, Store):
                    walk_expr(s.index); walk_expr(s.value)
                elif isinstance(s, For):
                    walk_expr(s.start); walk_expr(s.stop)
                    seen.setdefault(s.var); walk(s.body)
                elif isinstance(s, While):
                    walk_expr(s.cond); walk(s.body)
                elif isinstance(s, If):
                    walk_expr(s.cond); walk(s.then_body); walk(s.else_body)
        walk(self.body)
        return list(seen)


def _check_stmts(stmts: Sequence[Stmt], prog: TirProgram, defined: Dict) -> None:
    def check_expr(e: Expr) -> None:
        if isinstance(e, Load):
            if e.array not in prog.arrays:
                raise TirError(f"load from undeclared array {e.array!r}")
            check_expr(e.index)
        elif isinstance(e, BinOp):
            check_expr(e.a); check_expr(e.b)
        elif isinstance(e, UnOp):
            check_expr(e.a)
        elif isinstance(e, Var):
            if e.name not in defined:
                raise TirError(f"use of undefined variable {e.name!r}")
        elif not isinstance(e, Const):
            raise TirError(f"not an expression: {e!r}")

    for s in stmts:
        if isinstance(s, Assign):
            check_expr(s.expr)
            defined[s.var] = None
        elif isinstance(s, Store):
            if s.array not in prog.arrays:
                raise TirError(f"store to undeclared array {s.array!r}")
            check_expr(s.index); check_expr(s.value)
        elif isinstance(s, For):
            check_expr(s.start); check_expr(s.stop)
            defined[s.var] = None
            _check_stmts(s.body, prog, defined)
        elif isinstance(s, While):
            check_expr(s.cond)
            _check_stmts(s.body, prog, defined)
        elif isinstance(s, If):
            check_expr(s.cond)
            # both arms see the same incoming scope; defs in one arm are
            # visible after (conservative: we merge)
            _check_stmts(s.then_body, prog, defined)
            _check_stmts(s.else_body, prog, defined)
        else:
            raise TirError(f"not a statement: {s!r}")

"""Single source of truth for operator semantics on 64-bit patterns.

Shared by the TIR interpreter, the TRIPS execution tiles and the baseline
core's ALU so that all three produce bit-identical results.

Conventions:

* integers are 64-bit two's complement; arithmetic wraps,
* shift amounts are taken mod 64,
* signed division truncates toward zero; division by zero yields 0 and
  remainder by zero yields the dividend (a defined, testable behaviour in
  place of a fault, since the workload suite never divides by zero),
* comparisons produce 0 or 1,
* ``f*`` operators reinterpret patterns as IEEE doubles.
"""

from __future__ import annotations

import math

from .ir import MASK64, TirError, bits_to_float, bits_to_int, float_to_bits, int_to_bits


def _fdiv(x: float, y: float) -> float:
    if y == 0.0:
        # IEEE-754: 0/0 and nan/0 are nan; x/±0 is ±inf with the sign of
        # x*y, so the *sign* of a zero divisor matters (1.0/-0.0 == -inf).
        if x != x or x == 0.0:
            return float("nan")
        return math.copysign(float("inf"), x) * math.copysign(1.0, y)
    return x / y


def _sdiv(a: int, b: int) -> int:
    if b == 0:
        return 0
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _srem(a: int, b: int) -> int:
    if b == 0:
        return a
    return a - _sdiv(a, b) * b


_INT_BIN = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
}

_CMP = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
}

_FCMP = {
    "feq": lambda a, b: a == b,
    "fne": lambda a, b: a != b,
    "flt": lambda a, b: a < b,
    "fle": lambda a, b: a <= b,
    "fgt": lambda a, b: a > b,
    "fge": lambda a, b: a >= b,
}

_FBIN = {
    "fadd": lambda a, b: a + b,
    "fsub": lambda a, b: a - b,
    "fmul": lambda a, b: a * b,
    "fdiv": _fdiv,
}


def binop(op: str, a: int, b: int) -> int:
    """Apply binary operator ``op`` to two 64-bit patterns."""
    a &= MASK64
    b &= MASK64
    if op in _INT_BIN:
        return _INT_BIN[op](a, b) & MASK64
    if op in _CMP:
        return 1 if _CMP[op](bits_to_int(a), bits_to_int(b)) else 0
    if op == "ltu":
        return 1 if a < b else 0
    if op == "geu":
        return 1 if a >= b else 0
    if op == "shl":
        return (a << (b & 63)) & MASK64
    if op == "shr":
        return a >> (b & 63)
    if op == "sra":
        return int_to_bits(bits_to_int(a) >> (b & 63))
    if op == "div":
        return int_to_bits(_sdiv(bits_to_int(a), bits_to_int(b)))
    if op == "rem":
        return int_to_bits(_srem(bits_to_int(a), bits_to_int(b)))
    if op in _FBIN:
        return float_to_bits(_FBIN[op](bits_to_float(a), bits_to_float(b)))
    if op in _FCMP:
        return 1 if _FCMP[op](bits_to_float(a), bits_to_float(b)) else 0
    raise TirError(f"unknown binop {op!r}")


def unop(op: str, a: int) -> int:
    """Apply unary operator ``op`` to a 64-bit pattern."""
    a &= MASK64
    if op == "not":
        return a ^ MASK64
    if op == "neg":
        return (-a) & MASK64
    if op == "itof":
        return float_to_bits(float(bits_to_int(a)))
    if op == "ftoi":
        f = bits_to_float(a)
        if f != f or f in (float("inf"), float("-inf")):
            return 0
        return int_to_bits(int(f))
    raise TirError(f"unknown unop {op!r}")


def truncate_load(bits: int, size: int, signed: bool) -> int:
    """Model a ``size``-byte load of the low bytes of ``bits``."""
    mask = (1 << (8 * size)) - 1
    value = bits & mask
    if signed and value >> (8 * size - 1):
        value -= 1 << (8 * size)
    return int_to_bits(value)

"""CLI: ``python -m repro.fuzz run|minimize|corpus``.

``run`` drives a seeded campaign, sharded through the simlab executor
(serial by default; ``--workers N`` fans shards over processes, and
``--cache`` reuses simlab's result cache so a repeated campaign on
unchanged code is pure hits).  ``minimize`` re-generates one seed,
shrinks the first failing check to a minimal reproducer, and can save it
as a corpus entry.  ``corpus`` lists or replays the checked-in
regression corpus.

Exit status: 0 when every check passed (or every corpus entry replayed
clean), 1 otherwise — suitable for CI gating.
"""

from __future__ import annotations

import argparse
import json
import sys

from .corpus import CORPUS_DIR, load_corpus, replay_all, save_entry
from .gen import GenConfig, generate
from .minimize import minimize
from .oracle import ALL_CHECKS, Divergence, run_case, run_shard


def _parse_checks(text: str):
    checks = tuple(c.strip() for c in text.split(",") if c.strip())
    for c in checks:
        if c not in ALL_CHECKS:
            raise argparse.ArgumentTypeError(
                f"unknown check {c!r} (choose from {', '.join(ALL_CHECKS)})")
    return checks


def _cmd_run(args) -> int:
    from ..simlab.executor import run_specs
    from ..simlab.spec import RunSpec

    shard_size = max(1, min(args.shard_size, args.n))
    specs = []
    start = args.seed
    remaining = args.n
    while remaining > 0:
        count = min(shard_size, remaining)
        specs.append(RunSpec.fuzz(
            start, count, checks=args.checks,
            telemetry_every=args.telemetry_every,
            nuca_every=args.nuca_every))
        start += count
        remaining -= count

    cache = None
    if args.cache:
        from ..simlab.cache import ResultCache
        cache = ResultCache(args.cache_dir) if args.cache_dir \
            else ResultCache()

    log = (lambda m: print(m, file=sys.stderr)) if args.verbose \
        else (lambda m: None)
    results = run_specs(specs, workers=args.workers, cache=cache, log=log)

    divergences = []
    cases = 0
    for result in results:
        if result is None:
            print("error: a shard failed to produce a result",
                  file=sys.stderr)
            return 1
        cases += result["count"]
        divergences.extend(
            Divergence.from_dict(d) for d in result["divergences"])

    if args.json:
        print(json.dumps({
            "seed": args.seed, "n": args.n, "cases": cases,
            "divergences": [d.to_dict() for d in divergences]}, indent=1))
    else:
        for d in divergences:
            print(f"DIVERGENCE {d.program} [{d.stage}] {d.detail}")
        print(f"{cases} programs checked "
              f"({', '.join(args.checks)}): "
              f"{len(divergences)} divergence(s)")
    if divergences and not args.json:
        print("triage: python -m repro.fuzz minimize --seed <seed-hex>",
              file=sys.stderr)
    return 1 if divergences else 0


def _cmd_minimize(args) -> int:
    prog = generate(args.seed, GenConfig())
    found = run_case(prog, checks=args.checks, nuca=args.nuca,
                     telemetry=args.telemetry)
    if not found:
        print(f"seed {args.seed}: no divergence to minimize", file=sys.stderr)
        return 1
    first = found[0]
    print(f"minimizing: [{first.stage}] {first.detail[:120]}",
          file=sys.stderr)

    # The divergence reproduces when the same stage family still fails.
    stage_family = first.stage.split(":")[0]

    def still_fails(candidate) -> bool:
        ds = run_case(candidate, checks=(stage_family,), nuca=args.nuca,
                      telemetry=args.telemetry)
        return bool(ds)

    small = minimize(prog, still_fails)
    from ..tir.serialize import program_to_dict
    print(json.dumps(program_to_dict(small), indent=1))
    if args.save:
        path = save_entry(
            args.save, small,
            reason=f"seed {args.seed}: [{first.stage}] {first.detail[:200]}",
            checks=(stage_family,), nuca=args.nuca, telemetry=args.telemetry)
        print(f"saved corpus entry: {path}", file=sys.stderr)
    return 0


def _cmd_corpus(args) -> int:
    corpus = load_corpus(args.dir)
    if args.action == "list":
        if not corpus:
            print(f"(corpus empty: {args.dir or CORPUS_DIR})")
            return 0
        for name, entry in corpus.items():
            checks = ",".join(entry.get("checks", []))
            print(f"{name:40s} [{checks}] {entry.get('reason', '')[:90]}")
        return 0
    # replay
    failures = 0
    for name, divergences in replay_all(args.dir).items():
        if divergences:
            failures += 1
            for d in divergences:
                print(f"REGRESSION {name} [{d.stage}] {d.detail}")
        else:
            print(f"ok {name}")
    print(f"{len(corpus)} corpus entries, {failures} regression(s)")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="differential fuzzing farm (see README: Fuzzing)")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a seeded campaign")
    run.add_argument("--seed", type=int, default=0,
                     help="first generator seed (default 0)")
    run.add_argument("--n", type=int, default=200,
                     help="number of programs (default 200)")
    run.add_argument("--checks", type=_parse_checks,
                     default=ALL_CHECKS, metavar="arch,engines,asm",
                     help="comma-separated check families (default: all)")
    run.add_argument("--shard-size", type=int, default=25,
                     help="seeds per simlab shard (default 25)")
    run.add_argument("--workers", type=int, default=0,
                     help="shard worker processes (0 = serial in-process)")
    run.add_argument("--telemetry-every", type=int, default=4, metavar="K",
                     help="run the telemetry engine variant on every Kth "
                          "seed (0 disables; default 4)")
    run.add_argument("--nuca-every", type=int, default=8, metavar="K",
                     help="run the NUCA engine variant on every Kth seed "
                          "(0 disables; default 8)")
    run.add_argument("--cache", action="store_true",
                     help="reuse the simlab result cache for shards")
    run.add_argument("--cache-dir", default=None,
                     help="simlab cache directory (with --cache)")
    run.add_argument("--json", action="store_true",
                     help="machine-readable report on stdout")
    run.add_argument("--verbose", action="store_true",
                     help="shard progress on stderr")
    run.set_defaults(func=_cmd_run)

    mini = sub.add_parser("minimize",
                          help="minimize one seed's divergence")
    mini.add_argument("--seed", type=int, required=True)
    mini.add_argument("--checks", type=_parse_checks, default=ALL_CHECKS)
    mini.add_argument("--nuca", action="store_true")
    mini.add_argument("--telemetry", action="store_true")
    mini.add_argument("--save", metavar="NAME", default=None,
                      help="save the minimized program as a corpus entry")
    mini.set_defaults(func=_cmd_minimize)

    corpus = sub.add_parser("corpus",
                            help="list or replay the regression corpus")
    corpus.add_argument("action", choices=("list", "replay"))
    corpus.add_argument("--dir", default=None,
                        help=f"corpus directory (default {CORPUS_DIR})")
    corpus.set_defaults(func=_cmd_corpus)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

"""The checked-in regression corpus (``tests/fuzz/corpus/``).

Every divergence the fuzzing farm ever finds ends its life here: a
minimized program plus the oracle checks it once failed, stored as exact
JSON (:mod:`repro.tir.serialize`).  Tier-1 replays the whole corpus on
every run — the entries are *fixed* bugs, so replay asserts zero
divergences; a reappearing divergence is a regression of the original
fix, caught immediately and attributed by the entry's ``reason``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

from ..tir import TirProgram
from ..tir.serialize import program_from_dict, program_to_dict
from .oracle import ALL_CHECKS, Divergence, run_case

#: repo-relative default location (resolved against this file, so it
#: works from any working directory).
CORPUS_DIR = Path(__file__).resolve().parents[3] / "tests" / "fuzz" / "corpus"


def entry_to_dict(prog: TirProgram, reason: str,
                  checks=ALL_CHECKS, nuca: bool = False,
                  telemetry: bool = False) -> Dict:
    return {
        "reason": reason,
        "checks": list(checks),
        "nuca": bool(nuca),
        "telemetry": bool(telemetry),
        "program": program_to_dict(prog),
    }


def save_entry(name: str, prog: TirProgram, reason: str,
               checks=ALL_CHECKS, nuca: bool = False,
               telemetry: bool = False,
               corpus_dir: Optional[Path] = None) -> Path:
    """Write one corpus entry; returns the file path."""
    corpus_dir = Path(corpus_dir) if corpus_dir else CORPUS_DIR
    corpus_dir.mkdir(parents=True, exist_ok=True)
    path = corpus_dir / f"{name}.json"
    entry = entry_to_dict(prog, reason, checks=checks, nuca=nuca,
                          telemetry=telemetry)
    path.write_text(json.dumps(entry, indent=1, sort_keys=True) + "\n")
    return path


def load_corpus(corpus_dir: Optional[Path] = None) -> Dict[str, Dict]:
    """name -> entry dict for every ``*.json`` in the corpus, sorted."""
    corpus_dir = Path(corpus_dir) if corpus_dir else CORPUS_DIR
    out: Dict[str, Dict] = {}
    if not corpus_dir.is_dir():
        return out
    for path in sorted(corpus_dir.glob("*.json")):
        out[path.stem] = json.loads(path.read_text())
    return out


def replay_entry(name: str, entry: Dict) -> List[Divergence]:
    """Re-run an entry's checks; an empty list means the fix still holds."""
    prog = program_from_dict(entry["program"])
    prog.name = name            # report divergences under the corpus name
    prog.validate()
    return run_case(prog,
                    checks=tuple(entry.get("checks", ALL_CHECKS)),
                    nuca=bool(entry.get("nuca", False)),
                    telemetry=bool(entry.get("telemetry", False)))


def replay_all(corpus_dir: Optional[Path] = None) \
        -> Dict[str, List[Divergence]]:
    """name -> divergences for every corpus entry (empty lists = healthy)."""
    return {name: replay_entry(name, entry)
            for name, entry in load_corpus(corpus_dir).items()}

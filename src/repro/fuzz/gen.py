"""Seeded, deterministic random TIR program generator.

Every program drawn from :func:`generate` is valid by construction:

* it passes ``TirProgram.validate()``,
* every loop terminates (``For`` trip counts are literal; ``While``
  loops run on a dedicated down-counter the body cannot touch), so the
  fuel-less reference interpreter is safe to run on it,
* every array index is masked to the (power-of-two) array length, so no
  access can leave its region,
* it stays far inside the compiler's block-shape envelope (≤128 body
  instructions, ≤32 LSIDs per block — the compiler splits oversized
  regions itself, and the generator's statement budget keeps single
  statements small enough to split).

The same ``(seed, GenConfig)`` pair always produces the identical
program — byte-identical under :func:`repro.tir.serialize.program_to_dict`
— which is what makes corpus entries and simlab cache keys meaningful.

Operator coverage is deliberately nasty: div/rem (including by zero and
INT64_MIN / −1), unmasked shift amounts, the full float menu (±0.0,
±inf, NaN, doubles beyond 2⁶³) and int↔float conversions, drawn from the
single-source-of-truth semantics in :mod:`repro.tir.semantics`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random
from typing import List, Optional

from ..tir import (
    Array,
    Assign,
    BinOp,
    Const,
    Expr,
    For,
    If,
    Load,
    Stmt,
    Store,
    TirProgram,
    UnOp,
    V,
    While,
    float_to_bits,
)

INT64_MIN = -(1 << 63)
INT64_MAX = (1 << 63) - 1

#: interesting integer constants, weighted into the random draw.
SPECIAL_INTS = [0, 1, -1, 2, -2, 7, 63, 64, 65, 127, 255,
                INT64_MIN, INT64_MAX, INT64_MIN + 1, 1 << 62, -(1 << 31)]

#: interesting doubles (as Python floats).
SPECIAL_FLOATS = [0.0, -0.0, 1.0, -1.0, 0.5, -2.25, 1.5e300, -1.5e300,
                  float("inf"), float("-inf"), float("nan"),
                  9.3e18,            # > 2**63: ftoi saturation territory
                  4503599627370497.0]

INT_BINOPS = ["add", "sub", "mul", "div", "rem",
              "and", "or", "xor", "shl", "shr", "sra",
              "eq", "ne", "lt", "le", "gt", "ge", "ltu", "geu"]
FLOAT_BINOPS = ["fadd", "fsub", "fmul", "fdiv"]
FCMP_OPS = ["flt", "fle", "fgt", "fge", "feq", "fne"]

INT_DTYPES = ["i8", "u8", "i16", "u16", "i32", "u32", "i64", "u64"]


@dataclass(frozen=True)
class GenConfig:
    """Shape knobs for :func:`generate`.  Frozen so it can key caches."""

    max_top_stmts: int = 6        # statements in the program body
    max_block_stmts: int = 3      # statements per nested body
    max_expr_depth: int = 3
    max_loop_depth: int = 2
    max_trip: int = 4             # loop trip counts stay tiny
    array_lens: tuple = (8, 16)   # powers of two only (index masking)
    p_float: float = 0.30         # chance a statement works on floats
    p_nested: float = 0.45        # chance a statement is a loop/branch

    def to_dict(self) -> dict:
        return {"max_top_stmts": self.max_top_stmts,
                "max_block_stmts": self.max_block_stmts,
                "max_expr_depth": self.max_expr_depth,
                "max_loop_depth": self.max_loop_depth,
                "max_trip": self.max_trip,
                "array_lens": list(self.array_lens),
                "p_float": self.p_float,
                "p_nested": self.p_nested}

    @classmethod
    def from_dict(cls, data: dict) -> "GenConfig":
        data = dict(data)
        if "array_lens" in data:
            data["array_lens"] = tuple(data["array_lens"])
        return cls(**data)


class _Gen:
    def __init__(self, rng: Random, config: GenConfig):
        self.rng = rng
        self.config = config
        self.int_arrays: List[str] = []
        self.float_arrays: List[str] = []
        self.int_vars: List[str] = []
        self.float_vars: List[str] = []
        self.loop_vars: List[str] = []   # in-scope loop counters (ints)
        self.array_lens = {}
        self.counter_id = 0

    # ---------------- leaves -------------------------------------------
    def int_const(self) -> Const:
        r = self.rng
        if r.random() < 0.5:
            return Const(r.choice(SPECIAL_INTS))
        if r.random() < 0.5:
            return Const(r.randint(-100, 100))
        return Const(r.getrandbits(64))

    def float_const(self) -> Const:
        r = self.rng
        if r.random() < 0.6:
            value = r.choice(SPECIAL_FLOATS)
        else:
            value = r.uniform(-1e6, 1e6)
        return Const(float_to_bits(value), is_float=True)

    def index(self, array: str, depth: int) -> Expr:
        """An index provably inside ``array``: ``expr & (len - 1)``."""
        mask = self.array_lens[array] - 1
        if depth <= 0 or self.rng.random() < 0.4:
            return Const(self.rng.randint(0, mask))
        return BinOp("and", self.int_expr(depth - 1), Const(mask))

    # ---------------- expressions --------------------------------------
    def int_expr(self, depth: int) -> Expr:
        r = self.rng
        if depth <= 0:
            roll = r.random()
            pool = self.int_vars + self.loop_vars
            if roll < 0.4 and pool:
                return V(r.choice(pool))
            if roll < 0.6 and self.int_arrays:
                arr = r.choice(self.int_arrays)
                return Load(arr, self.index(arr, 0))
            return self.int_const()
        roll = r.random()
        if roll < 0.55:
            return BinOp(r.choice(INT_BINOPS),
                         self.int_expr(depth - 1), self.int_expr(depth - 1))
        if roll < 0.65:
            return UnOp(r.choice(["not", "neg"]), self.int_expr(depth - 1))
        if roll < 0.75 and (self.float_vars or self.float_arrays):
            return UnOp("ftoi", self.float_expr(depth - 1))
        if roll < 0.85 and (self.float_vars or self.float_arrays):
            return BinOp(r.choice(FCMP_OPS),
                         self.float_expr(depth - 1),
                         self.float_expr(depth - 1))
        if roll < 0.92 and self.int_arrays:
            arr = r.choice(self.int_arrays)
            return Load(arr, self.index(arr, depth - 1))
        return self.int_expr(0)

    def float_expr(self, depth: int) -> Expr:
        r = self.rng
        if depth <= 0:
            roll = r.random()
            if roll < 0.4 and self.float_vars:
                return V(r.choice(self.float_vars))
            if roll < 0.6 and self.float_arrays:
                arr = r.choice(self.float_arrays)
                return Load(arr, self.index(arr, 0))
            return self.float_const()
        roll = r.random()
        if roll < 0.55:
            return BinOp(r.choice(FLOAT_BINOPS),
                         self.float_expr(depth - 1),
                         self.float_expr(depth - 1))
        if roll < 0.7:
            return UnOp("itof", self.int_expr(depth - 1))
        if roll < 0.85 and self.float_arrays:
            arr = r.choice(self.float_arrays)
            return Load(arr, self.index(arr, depth - 1))
        return self.float_expr(0)

    # ---------------- statements ----------------------------------------
    def simple_stmt(self, depth: int) -> Stmt:
        r = self.rng
        use_float = r.random() < self.config.p_float and (
            self.float_vars or self.float_arrays)
        edepth = r.randint(1, self.config.max_expr_depth)
        if use_float:
            if r.random() < 0.5 and self.float_arrays:
                arr = r.choice(self.float_arrays)
                return Store(arr, self.index(arr, 1), self.float_expr(edepth))
            if self.float_vars:
                return Assign(r.choice(self.float_vars),
                              self.float_expr(edepth))
        if r.random() < 0.35 and self.int_arrays:
            arr = r.choice(self.int_arrays)
            return Store(arr, self.index(arr, 1), self.int_expr(edepth))
        return Assign(r.choice(self.int_vars), self.int_expr(edepth))

    def stmt(self, loop_depth: int) -> Stmt:
        r = self.rng
        if loop_depth < self.config.max_loop_depth and \
                r.random() < self.config.p_nested:
            kind = r.random()
            if kind < 0.45:
                return self.for_stmt(loop_depth)
            if kind < 0.65:
                return self.while_stmt(loop_depth)
            return self.if_stmt(loop_depth)
        return self.simple_stmt(loop_depth)

    def body(self, loop_depth: int, max_stmts: Optional[int] = None) \
            -> List[Stmt]:
        n = self.rng.randint(1, max_stmts or self.config.max_block_stmts)
        return [self.stmt(loop_depth) for _ in range(n)]

    def for_stmt(self, loop_depth: int) -> For:
        r = self.rng
        var = f"i{loop_depth}_{self.counter_id}"
        self.counter_id += 1
        trip = r.randint(1, self.config.max_trip)
        step = r.choice([1, 1, 2, -1])
        start = r.randint(-3, 3)
        stop = start + trip * step
        self.loop_vars.append(var)
        try:
            body = self.body(loop_depth + 1)
        finally:
            self.loop_vars.pop()
        return For(var, Const(start), Const(stop), step, body)

    def while_stmt(self, loop_depth: int) -> List[Stmt]:
        # A While that provably terminates: its own down-counter, drawn
        # from a namespace the statement generator never assigns to.
        r = self.rng
        ctr = f"w{self.counter_id}"
        self.counter_id += 1
        trip = r.randint(1, self.config.max_trip)
        body = self.body(loop_depth + 1)
        body.append(Assign(ctr, BinOp("sub", V(ctr), Const(1))))
        return _Seq([Assign(ctr, Const(trip)),
                     While(BinOp("gt", V(ctr), Const(0)), body)])

    def if_stmt(self, loop_depth: int) -> If:
        r = self.rng
        cond = self.int_expr(r.randint(1, 2))
        then_body = self.body(loop_depth + 1)
        else_body = self.body(loop_depth + 1) if r.random() < 0.6 else []
        return If(cond, then_body, else_body)


class _Seq(Stmt):
    """Internal marker: a statement that expands to a sequence."""

    def __init__(self, stmts: List[Stmt]):
        self.stmts = stmts


def _flatten(stmts: List[Stmt]) -> List[Stmt]:
    out: List[Stmt] = []
    for s in stmts:
        if isinstance(s, _Seq):
            out.extend(_flatten(s.stmts))
        else:
            if isinstance(s, For) or isinstance(s, While):
                s.body = _flatten(s.body)
            elif isinstance(s, If):
                s.then_body = _flatten(s.then_body)
                s.else_body = _flatten(s.else_body)
            out.append(s)
    return out


def generate(seed: int, config: GenConfig = GenConfig()) -> TirProgram:
    """The deterministic program for ``(seed, config)``."""
    rng = Random(seed)
    g = _Gen(rng, config)

    arrays = {}
    n_int_arrays = rng.randint(1, 2)
    for i in range(n_int_arrays):
        name = f"a{i}"
        dtype = rng.choice(INT_DTYPES)
        length = rng.choice(config.array_lens)
        data = [rng.choice(SPECIAL_INTS) if rng.random() < 0.4
                else rng.randint(-128, 127) for _ in range(length)]
        arrays[name] = Array(dtype, data)
        g.int_arrays.append(name)
        g.array_lens[name] = length
    if rng.random() < 0.6:
        length = rng.choice(config.array_lens)
        data = [rng.choice(SPECIAL_FLOATS) if rng.random() < 0.5
                else rng.uniform(-100.0, 100.0) for _ in range(length)]
        arrays["fa"] = Array("f64", data)
        g.float_arrays.append("fa")
        g.array_lens["fa"] = length

    scalars = {}
    for i in range(rng.randint(2, 4)):
        name = f"v{i}"
        scalars[name] = rng.choice(SPECIAL_INTS) if rng.random() < 0.4 \
            else rng.randint(-64, 64)
        g.int_vars.append(name)
    if g.float_arrays or rng.random() < 0.4:
        for i in range(rng.randint(1, 2)):
            name = f"f{i}"
            value = rng.choice(SPECIAL_FLOATS) if rng.random() < 0.5 \
                else rng.uniform(-50.0, 50.0)
            scalars[name] = float_to_bits(value)
            g.float_vars.append(name)

    body = _flatten([g.stmt(0)
                     for _ in range(rng.randint(2, config.max_top_stmts))])

    prog = TirProgram(
        name=f"fuzz_{seed:08x}",
        arrays=arrays,
        scalars=scalars,
        body=body,
        outputs=sorted(arrays) + sorted(scalars),
    )
    prog.validate()
    return prog

"""Automatic failure minimization for divergent TIR programs.

Given a program and a predicate ("does the divergence still reproduce?"),
:func:`minimize` shrinks the program while keeping the predicate true.
The passes — in deterministic order, iterated to a fixpoint — are:

* **delete-stmt**: remove one statement at a time, at every nesting level,
* **hoist**: replace a ``For``/``While``/``If`` with its (then-)body,
* **simplify-expr**: replace an expression node with one of its operands
  or with ``Const(0)`` / ``Const(1)``,
* **constant-shrink**: move constants toward zero (halving, masking off
  high bits) while the failure persists,
* **drop-decls**: delete arrays/scalars/outputs the body no longer
  mentions.

Every candidate is revalidated (``TirProgram.validate``) before the
predicate runs, and candidates are built through the exact JSON codec so
the input program is never mutated.  The whole procedure is a pure
function of (program, predicate): same input, byte-identical minimized
output — which the determinism test in ``tests/fuzz`` locks in.
"""

from __future__ import annotations

import json
from typing import Callable, List, Optional

from ..tir import (
    Assign,
    BinOp,
    Const,
    For,
    If,
    Load,
    Store,
    TirError,
    TirProgram,
    UnOp,
    Var,
    While,
)
from ..tir.serialize import program_from_dict, program_to_dict

Predicate = Callable[[TirProgram], bool]


def _clone(prog: TirProgram) -> TirProgram:
    return program_from_dict(program_to_dict(prog))


def _canon(prog: TirProgram) -> str:
    return json.dumps(program_to_dict(prog), sort_keys=True)


def _still_fails(candidate: TirProgram, predicate: Predicate) -> bool:
    try:
        candidate.validate()
    except TirError:
        return False
    try:
        return bool(predicate(candidate))
    except Exception:
        # A predicate that crashes on the candidate is treated as "does
        # not reproduce": the minimizer only chases the original failure.
        return False


# ----------------------------------------------------------------------
# statement-level passes
# ----------------------------------------------------------------------
def _bodies(prog: TirProgram):
    """Every statement list in the program, discovered depth-first."""
    out = [prog.body]
    stack = list(prog.body)
    while stack:
        s = stack.pop(0)
        if isinstance(s, (For, While)):
            out.append(s.body)
            stack.extend(s.body)
        elif isinstance(s, If):
            out.append(s.then_body)
            out.append(s.else_body)
            stack.extend(s.then_body)
            stack.extend(s.else_body)
    return out


def _try_delete_stmts(prog: TirProgram, predicate: Predicate) \
        -> Optional[TirProgram]:
    for body_idx, body in enumerate(_bodies(prog)):
        for stmt_idx in range(len(body)):
            candidate = _clone(prog)
            _bodies(candidate)[body_idx].pop(stmt_idx)
            if _still_fails(candidate, predicate):
                return candidate
    return None


def _try_hoist(prog: TirProgram, predicate: Predicate) \
        -> Optional[TirProgram]:
    for body_idx, body in enumerate(_bodies(prog)):
        for stmt_idx, stmt in enumerate(body):
            if isinstance(stmt, If):
                options = ("then_body", "else_body")
            elif isinstance(stmt, (For, While)):
                options = ("body",)
            else:
                continue
            for attr in options:
                candidate = _clone(prog)
                cbody = _bodies(candidate)[body_idx]
                cbody[stmt_idx:stmt_idx + 1] = getattr(cbody[stmt_idx], attr)
                if _still_fails(candidate, predicate):
                    return candidate
    return None


# ----------------------------------------------------------------------
# expression-level passes
# ----------------------------------------------------------------------
def _expr_slots(stmt):
    """(getter, setter) pairs for every direct expression slot of a stmt."""
    slots = []
    if isinstance(stmt, Assign):
        slots.append((lambda s=stmt: s.expr,
                      lambda e, s=stmt: setattr(s, "expr", e)))
    elif isinstance(stmt, Store):
        slots.append((lambda s=stmt: s.index,
                      lambda e, s=stmt: setattr(s, "index", e)))
        slots.append((lambda s=stmt: s.value,
                      lambda e, s=stmt: setattr(s, "value", e)))
    elif isinstance(stmt, For):
        slots.append((lambda s=stmt: s.start,
                      lambda e, s=stmt: setattr(s, "start", e)))
        slots.append((lambda s=stmt: s.stop,
                      lambda e, s=stmt: setattr(s, "stop", e)))
    elif isinstance(stmt, (While, If)):
        slots.append((lambda s=stmt: s.cond,
                      lambda e, s=stmt: setattr(s, "cond", e)))
    return slots


def _all_stmts(prog: TirProgram):
    out = []
    for body in _bodies(prog):
        out.extend(body)
    return out


def _subexpr_paths(expr, path=()):
    """Every path to a node in ``expr`` (path = tuple of field names)."""
    out = [path]
    if isinstance(expr, BinOp):
        out.extend(_subexpr_paths(expr.a, path + ("a",)))
        out.extend(_subexpr_paths(expr.b, path + ("b",)))
    elif isinstance(expr, UnOp):
        out.extend(_subexpr_paths(expr.a, path + ("a",)))
    elif isinstance(expr, Load):
        out.extend(_subexpr_paths(expr.index, path + ("index",)))
    return out


def _get_at(expr, path):
    for name in path:
        expr = getattr(expr, name)
    return expr


def _replace_at(expr, path, replacement):
    """A copy of ``expr`` with the node at ``path`` swapped out."""
    if not path:
        return replacement
    head, rest = path[0], path[1:]
    child = _replace_at(getattr(expr, head), rest, replacement)
    if isinstance(expr, BinOp):
        return BinOp(expr.op, child if head == "a" else expr.a,
                     child if head == "b" else expr.b)
    if isinstance(expr, UnOp):
        return UnOp(expr.op, child)
    if isinstance(expr, Load):
        return Load(expr.array, child)
    raise TirError(f"cannot replace inside {expr!r}")


def _expr_candidates(node):
    """Smaller expressions to try in place of ``node``."""
    out = []
    if isinstance(node, BinOp):
        out.extend([node.a, node.b])
    elif isinstance(node, (UnOp, Load)):
        out.append(node.a if isinstance(node, UnOp) else node.index)
    if not isinstance(node, Const) or node.bits not in (0, 1):
        out.extend([Const(0), Const(1)])
    return out


def _try_simplify_exprs(prog: TirProgram, predicate: Predicate) \
        -> Optional[TirProgram]:
    stmts = _all_stmts(prog)
    for stmt_idx, stmt in enumerate(stmts):
        for slot_idx, (get, _set) in enumerate(_expr_slots(stmt)):
            for path in _subexpr_paths(get()):
                node = _get_at(get(), path)
                for replacement in _expr_candidates(node):
                    candidate = _clone(prog)
                    cstmt = _all_stmts(candidate)[stmt_idx]
                    cget, cset = _expr_slots(cstmt)[slot_idx]
                    cset(_replace_at(cget(), path, replacement))
                    if _still_fails(candidate, predicate):
                        return candidate
    return None


def _shrunk_consts(bits: int) -> List[int]:
    """Candidate smaller values for a 64-bit constant, nearest-zero first."""
    out = []
    for cand in (0, 1, bits >> 32, bits & 0xFFFFFFFF, bits >> 1,
                 bits & 0xFF, bits & 0xFFFF):
        if cand != bits and cand not in out:
            out.append(cand)
    return out


def _try_shrink_consts(prog: TirProgram, predicate: Predicate) \
        -> Optional[TirProgram]:
    stmts = _all_stmts(prog)
    for stmt_idx, stmt in enumerate(stmts):
        for slot_idx, (get, _set) in enumerate(_expr_slots(stmt)):
            for path in _subexpr_paths(get()):
                node = _get_at(get(), path)
                if not isinstance(node, Const):
                    continue
                for cand in _shrunk_consts(node.bits):
                    candidate = _clone(prog)
                    cstmt = _all_stmts(candidate)[stmt_idx]
                    cget, cset = _expr_slots(cstmt)[slot_idx]
                    cset(_replace_at(cget(), path,
                                     Const(cand, is_float=node.is_float)))
                    if _still_fails(candidate, predicate):
                        return candidate
    # scalar initial values shrink the same way
    for name in sorted(prog.scalars):
        for cand in _shrunk_consts(prog.scalars[name] & ((1 << 64) - 1)):
            candidate = _clone(prog)
            candidate.scalars[name] = cand
            if _still_fails(candidate, predicate):
                return candidate
    # array initial elements
    for name in sorted(prog.arrays):
        arr = prog.arrays[name]
        if arr.dtype == "f64":
            continue
        for i, value in enumerate(arr.data):
            if value == 0:
                continue
            candidate = _clone(prog)
            candidate.arrays[name].data[i] = 0
            if _still_fails(candidate, predicate):
                return candidate
    return None


def _try_drop_decls(prog: TirProgram, predicate: Predicate) \
        -> Optional[TirProgram]:
    used = set(prog.all_variables())
    for body in _bodies(prog):
        for stmt in body:
            for get, _set in _expr_slots(stmt):
                for path in _subexpr_paths(get()):
                    node = _get_at(get(), path)
                    if isinstance(node, Load):
                        used.add(node.array)
            if isinstance(stmt, Store):
                used.add(stmt.array)
    for name in sorted(set(prog.arrays) | set(prog.scalars)):
        if name in used and name in prog.outputs:
            # try dropping just the output observation
            candidate = _clone(prog)
            candidate.outputs = [o for o in candidate.outputs if o != name]
            if _still_fails(candidate, predicate):
                return candidate
        if name not in used:
            candidate = _clone(prog)
            candidate.arrays.pop(name, None)
            candidate.scalars.pop(name, None)
            candidate.outputs = [o for o in candidate.outputs if o != name]
            if _still_fails(candidate, predicate):
                return candidate
    return None


_PASSES = (_try_delete_stmts, _try_hoist, _try_simplify_exprs,
           _try_shrink_consts, _try_drop_decls)


def minimize(prog: TirProgram, predicate: Predicate,
             max_rounds: int = 200) -> TirProgram:
    """The smallest failing program reachable from ``prog``.

    ``predicate(candidate)`` must return True while the failure of
    interest still reproduces.  ``prog`` itself must satisfy it.
    """
    if not _still_fails(prog, predicate):
        raise ValueError("input program does not satisfy the predicate")
    current = _clone(prog)
    for _ in range(max_rounds):
        for pass_fn in _PASSES:
            smaller = pass_fn(current, predicate)
            if smaller is not None:
                current = smaller
                break
        else:
            break       # no pass made progress: fixpoint
    return current

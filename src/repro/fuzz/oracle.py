"""The differential oracle: one program, every independent execution path.

Three check families, each exercising a different seam of the stack:

* ``arch`` — architectural outputs.  The TIR interpreter is golden; the
  block-atomic functional simulator (both compile levels), the SRISC/OOO
  baseline, and the cycle-level TRIPS simulator must match it bit for bit.
* ``engines`` — ProcStats equivalence.  The three cycle-engine tiers
  (full-scan, active-set, wheel+express) must produce byte-identical
  statistics, optionally with telemetry enabled and/or the NUCA memory
  system (``perfect_l2=False``).
* ``asm`` — the assembler↔disassembler text round trip must reproduce
  the program's memory image exactly.

Any exception raised by a stage (compile error, simulator deadlock) is
itself a divergence — those are precisely the crashes fuzzing exists to
find.  Results are plain dicts so shards can ship them through simlab.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass
from typing import Dict, List, Optional

from .gen import GenConfig, generate

#: check families in canonical order.
ALL_CHECKS = ("arch", "engines", "asm")

#: the three cycle-engine tiers under test (overrides on TripsConfig).
ENGINE_TIERS = {
    "full-scan": {"fast_path": False},
    "active-set": {"fast_path": True, "express_routing": False,
                   "event_wheel": False},
    "wheel+express": {"fast_path": True, "express_routing": True,
                      "event_wheel": True},
}


@dataclass
class Divergence:
    """One disagreement between two execution paths."""

    program: str          # program name (``fuzz_<seed>`` or corpus name)
    stage: str            # e.g. "arch:hand", "engines:active-set+nuca"
    detail: str           # human-readable description

    def to_dict(self) -> Dict[str, str]:
        return {"program": self.program, "stage": self.stage,
                "detail": self.detail}

    @classmethod
    def from_dict(cls, data: Dict[str, str]) -> "Divergence":
        return cls(program=data["program"], stage=data["stage"],
                   detail=data["detail"])


def _crash(program, stage, exc) -> Divergence:
    tb = traceback.format_exception_only(type(exc), exc)[-1].strip()
    return Divergence(program, stage, f"raised: {tb}")


# ----------------------------------------------------------------------
# arch: architectural outputs vs the interpreter
# ----------------------------------------------------------------------
def _baseline_outputs(prog):
    from ..baseline.ooo import run_baseline
    from ..compiler.srisc import compile_srisc
    from ..tir.semantics import truncate_load

    sp = compile_srisc(prog)
    functional, _ = run_baseline(sp)
    parts = []
    for out in prog.outputs:
        if out in prog.arrays:
            arr = prog.arrays[out]
            base = sp.array_addrs[out]
            parts.append((out, tuple(
                truncate_load(
                    functional.memory.read(base + i * arr.elem_size,
                                           arr.elem_size),
                    arr.elem_size, arr.signed)
                for i in range(len(arr.data)))))
        else:
            parts.append((out, functional.regs[sp.var_regs[out]]))
    return tuple(parts)


def check_arch(prog) -> List[Divergence]:
    """Interpreter vs tcc/hand functional sims vs baseline vs cycle sim."""
    from ..compiler import compile_tir
    from ..tir import interpret
    from ..uarch import FunctionalSim
    from ..uarch.proc import TripsProcessor

    out: List[Divergence] = []
    golden = interpret(prog).output_signature(prog.outputs)

    compiled = {}
    for level in ("tcc", "hand"):
        stage = f"arch:{level}"
        try:
            compiled[level] = compile_tir(prog, level=level)
        except Exception as exc:
            out.append(_crash(prog.name, stage + ":compile", exc))
            continue
        try:
            sim = FunctionalSim(compiled[level].program)
            sim.run()
            got = compiled[level].extract_outputs(sim.regs, sim.memory)
        except Exception as exc:
            out.append(_crash(prog.name, stage, exc))
            continue
        if got != golden:
            out.append(Divergence(prog.name, stage,
                                  f"functional sim: {got!r} != {golden!r}"))

    try:
        base = _baseline_outputs(prog)
        if base != golden:
            out.append(Divergence(prog.name, "arch:baseline",
                                  f"baseline: {base!r} != {golden!r}"))
    except Exception as exc:
        out.append(_crash(prog.name, "arch:baseline", exc))

    if "hand" in compiled:
        try:
            proc = TripsProcessor(compiled["hand"].program)
            proc.run()
            got = compiled["hand"].extract_outputs(proc.regs, proc.memory)
            if got != golden:
                out.append(Divergence(prog.name, "arch:cycle",
                                      f"cycle sim: {got!r} != {golden!r}"))
        except Exception as exc:
            out.append(_crash(prog.name, "arch:cycle", exc))
    return out


# ----------------------------------------------------------------------
# engines: ProcStats across the three cycle-engine tiers
# ----------------------------------------------------------------------
def _stats_diff(a: dict, b: dict, prefix: str = "") -> List[str]:
    """Paths where two stats dicts disagree (bounded, deterministic)."""
    diffs = []
    for key in sorted(set(a) | set(b)):
        pa, pb = a.get(key), b.get(key)
        path = f"{prefix}{key}"
        if isinstance(pa, dict) and isinstance(pb, dict):
            diffs.extend(_stats_diff(pa, pb, path + "."))
        elif pa != pb:
            diffs.append(f"{path}: {pa!r} != {pb!r}")
        if len(diffs) >= 8:
            break
    return diffs[:8]


def check_engines(prog, nuca: bool = False,
                  telemetry: bool = False) -> List[Divergence]:
    """All three engine tiers must report identical ProcStats."""
    from ..compiler import compile_tir
    from ..uarch.config import TripsConfig
    from ..uarch.proc import TripsProcessor

    suffix = ("+nuca" if nuca else "") + ("+telemetry" if telemetry else "")
    out: List[Divergence] = []
    try:
        program = compile_tir(prog, level="hand").program
    except Exception as exc:
        return [_crash(prog.name, "engines:compile", exc)]

    stats: Dict[str, dict] = {}
    for tier, overrides in ENGINE_TIERS.items():
        stage = f"engines:{tier}{suffix}"
        config = TripsConfig(**overrides)
        if nuca:
            config = config.with_overrides(perfect_l2=False)
        try:
            proc = TripsProcessor(program, config=config,
                                  telemetry=telemetry or None)
            stats[tier] = proc.run().to_dict()
        except Exception as exc:
            out.append(_crash(prog.name, stage, exc))

    if "full-scan" in stats:
        ref = stats["full-scan"]
        for tier in ("active-set", "wheel+express"):
            if tier not in stats:
                continue
            diffs = _stats_diff(ref, stats[tier])
            if diffs:
                out.append(Divergence(
                    prog.name, f"engines:{tier}{suffix}",
                    "stats diverge from full-scan: " + "; ".join(diffs)))
    return out


# ----------------------------------------------------------------------
# asm: text round trip
# ----------------------------------------------------------------------
def check_asm(prog) -> List[Divergence]:
    """disassemble → assemble must reproduce the exact memory image."""
    from ..asm import assemble, disassemble
    from ..compiler import compile_tir

    out: List[Divergence] = []
    for level in ("tcc", "hand"):
        stage = f"asm:{level}"
        try:
            original = compile_tir(prog, level=level).program
            again = assemble(disassemble(original))
        except Exception as exc:
            out.append(_crash(prog.name, stage, exc))
            continue
        img_a, img_b = original.memory_image(), again.memory_image()
        if img_a != img_b:
            bad = sorted(k for k in set(img_a) | set(img_b)
                         if img_a.get(k) != img_b.get(k))
            out.append(Divergence(
                prog.name, stage,
                f"memory image differs at {[hex(k) for k in bad[:4]]}"))
        elif again.entry != original.entry:
            out.append(Divergence(
                prog.name, stage,
                f"entry {again.entry:#x} != {original.entry:#x}"))
        elif again.initial_regs != original.initial_regs:
            out.append(Divergence(prog.name, stage, "initial_regs differ"))
    return out


# ----------------------------------------------------------------------
# case / shard drivers
# ----------------------------------------------------------------------
def run_case(prog, checks=ALL_CHECKS, nuca: bool = False,
             telemetry: bool = False) -> List[Divergence]:
    """All requested checks on one program."""
    out: List[Divergence] = []
    if "arch" in checks:
        out.extend(check_arch(prog))
    if "engines" in checks:
        out.extend(check_engines(prog, nuca=nuca, telemetry=telemetry))
    if "asm" in checks:
        out.extend(check_asm(prog))
    return out


def run_shard(config: dict) -> dict:
    """Driver for one campaign shard; ``config`` is a plain-JSON dict.

    Keys: ``start`` (first seed), ``count``, optional ``gen`` (GenConfig
    fields), ``checks``, ``telemetry_every``, ``nuca_every`` (period, 0
    disables; the heavier engine variants are sampled, not run on every
    seed, to keep campaign throughput useful — the sampling period is
    part of the simlab cache key).
    """
    start = int(config["start"])
    count = int(config["count"])
    gen_config = GenConfig.from_dict(config.get("gen", {}))
    checks = tuple(config.get("checks", ALL_CHECKS))
    telemetry_every = int(config.get("telemetry_every", 4))
    nuca_every = int(config.get("nuca_every", 8))

    divergences: List[Divergence] = []
    for seed in range(start, start + count):
        prog = generate(seed, gen_config)
        telemetry = telemetry_every > 0 and seed % telemetry_every == 0
        nuca = nuca_every > 0 and seed % nuca_every == 0
        divergences.extend(run_case(prog, checks=checks, nuca=nuca,
                                    telemetry=telemetry))
    return {
        "start": start,
        "count": count,
        "divergences": [d.to_dict() for d in divergences],
    }

"""repro.fuzz — a differential fuzzing farm for the whole stack.

Three pieces:

* :mod:`repro.fuzz.gen` — a seeded, deterministic random TIR program
  generator constrained to valid TRIPS block shapes,
* :mod:`repro.fuzz.oracle` — the differential oracle that runs each
  program through every independent execution path (interpreter, both
  compile levels, the SRISC/OOO baseline, the cycle-level simulator, and
  the three cycle-engine tiers ± telemetry ± NUCA) and flags divergences,
* :mod:`repro.fuzz.minimize` / :mod:`repro.fuzz.corpus` — automatic
  failure minimization and the checked-in regression corpus replayed by
  tier-1 (``tests/fuzz/corpus/``).

``python -m repro.fuzz run|minimize|corpus`` is the CLI; long campaigns
shard through :mod:`repro.simlab` (``RunSpec.fuzz``).
"""

from .gen import GenConfig, generate
from .oracle import Divergence, run_case, run_shard

__all__ = ["GenConfig", "generate", "Divergence", "run_case", "run_shard"]

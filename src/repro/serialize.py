"""JSON round-tripping helpers for the stats dataclasses.

The simlab result cache and the harness ``--json`` mode both need the
stats objects (:class:`~repro.uarch.proc.ProcStats`,
:class:`~repro.baseline.ooo.BaselineStats`,
:class:`~repro.harness.runner.Comparison`,
:class:`~repro.chip.ChipStats`) to survive a trip through ``json.dumps``
and back.  All of them are flat dataclasses of scalars (ChipStats nests a
list of ProcStats and handles that field itself), so two tiny generic
helpers cover everything:

* :func:`dataclass_to_dict` — field name -> value, shallow.
* :func:`dataclass_from_dict` — rebuild from a dict, ignoring unknown
  keys (forward compatibility: an old cache record deserializes against
  a newer dataclass, missing fields keep their defaults).
"""

from __future__ import annotations

from dataclasses import fields, is_dataclass
from typing import Any, Dict, Type, TypeVar

T = TypeVar("T")


def dataclass_to_dict(obj: Any) -> Dict[str, Any]:
    """Shallow field-name -> value dict of a dataclass instance."""
    if not is_dataclass(obj):
        raise TypeError(f"not a dataclass instance: {obj!r}")
    return {f.name: getattr(obj, f.name) for f in fields(obj)}


def dataclass_from_dict(cls: Type[T], data: Dict[str, Any]) -> T:
    """Rebuild ``cls`` from ``data``, ignoring keys ``cls`` doesn't have.

    Missing fields fall back to the dataclass defaults, so records written
    by older code still load after new stats counters are added.
    """
    if not is_dataclass(cls):
        raise TypeError(f"not a dataclass: {cls!r}")
    known = {f.name for f in fields(cls) if f.init}
    return cls(**{k: v for k, v in data.items() if k in known})

"""tsim-proc: the cycle-level model of one TRIPS processor core.

Organization: the operand network is a cycle-stepped 5x5 wormhole mesh
(:mod:`repro.uarch.mesh`); ETs/RTs/DTs are explicit tile objects
(:mod:`repro.uarch.tiles`); the GT — fetch pipeline, next-block predictor,
block window, completion/flush/commit sequencing — lives here.

Control-network timing convention: the GDN/GCN/GSN/GRN/DSN links connect
nearest neighbours and move one hop per cycle with no contention (the paper
measures their occupancy as insignificant, Section 5.2), so their latencies
are *computed analytically* — e.g. the register-write completion signal
daisy-chains across the RTs toward the GT, so it lands at
``max_b(bank_done[b] + hops(b))`` — rather than stepped link by link.  The
operand and dispatch traffic, where contention matters, is modelled
packet by packet.

Protocol timeline per block (Sections 4.1-4.4):

* **fetch**: predict (3) + tag (1) + hit/miss (1), then 8 pipelined GDN
  dispatch commands; each IT streams 4 instructions/cycle east across its
  row, one hop per cycle.  Peak: a new block every 8 cycles.
* **execute**: dataflow; operands hop the OPN at one cycle per hop with a
  local bypass for same-ET consumers.
* **flush**: GCN wave with a block mask; we apply state changes eagerly and
  drop in-flight packets of flushed blocks by uid (the wave's predictable
  latency guarantees dispatch can never pass it, which eager application
  preserves).
* **commit**: completion (GSN daisy-chains + DSN store counting + one
  branch at the GT), pipelined GCN commit commands, commit acknowledgment
  back over the GSN, then deallocation and refetch into the freed frame.
"""

from __future__ import annotations

import heapq
import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..isa import (
    EXIT_ADDRESS,
    NUM_ARCH_REGS,
    OpClass,
    Program,
    TripsBlock,
)
from ..mem.backing import BackingStore
from ..serialize import dataclass_from_dict, dataclass_to_dict
from ..telemetry import recorder as _tel
from ..telemetry.config import TelemetryConfig
from ..telemetry.recorder import TelemetryRecorder
from .caches import CacheBank
from .config import PROTOTYPE, TripsConfig
from .mesh import Packet, WormholeMesh
from .predictor import BT_BRANCH, NextBlockPredictor, Prediction
from .tiles import BranchMsg, DataTile, ExecTile, MemRequest, OperandMsg, RegTile
from .trace import BlockEvent, Trace


class ProcError(RuntimeError):
    """Deadlock, budget exhaustion, or an internal invariant failure."""


# ----------------------------------------------------------------------
class DecodedBlock:
    """Pre-decoded block: dispatch schedule and lookup tables."""

    def __init__(self, block: TripsBlock, addr: int):
        self.block = block
        self.addr = addr
        self.fallthrough = addr + block.size_bytes
        self.store_mask = block.store_mask
        self.store_lsids = frozenset(
            l for l in range(32) if (self.store_mask >> l) & 1)
        self.write_reg_by_slot = {s: w.reg for s, w in block.writes.items()}
        self.write_regs_by_bank = [[] for _ in range(4)]
        for slot, w in sorted(block.writes.items()):
            self.write_regs_by_bank[slot // 8].append(w.reg)
        self.reads_by_slot = sorted(block.reads.items())
        # body instructions grouped by ET row for GDN streaming
        self.rows: List[List[Tuple[int, object]]] = [[] for _ in range(4)]
        for slot, inst in sorted(block.body.items()):
            et = slot % 16
            self.rows[et // 4].append((slot, inst))
        # GDN occupancy: each IT streams 4 instructions/cycle, so the
        # dispatch pipe is busy for as long as the fullest IT streams
        # (8 cycles for a maximal 128-instruction block)
        header_words = max([s + 1 for s, _ in self.reads_by_slot]
                           + [s + 1 for s in block.writes] + [0])
        fullest = max([header_words] + [len(r) for r in self.rows])
        self.dispatch_cycles = max(2, -(-fullest // 4))


#: id(Program) -> {addr -> DecodedBlock}; evicted when the Program dies
_DECODE_CACHE: Dict[int, Dict[int, "DecodedBlock"]] = {}


def _decode_cache_for(program) -> Dict[int, "DecodedBlock"]:
    key = id(program)
    cache = _DECODE_CACHE.get(key)
    if cache is None:
        cache = _DECODE_CACHE[key] = {}
        # the finalizer fires before the id can be reused, so stale
        # entries can never alias a new Program
        weakref.finalize(program, _DECODE_CACHE.pop, key, None)
    return cache


@dataclass
class BlockInst:
    """One in-flight block."""

    uid: int
    seq: int
    addr: int
    frame: int
    decoded: DecodedBlock
    fetch_t: int
    dispatch_start: int
    dispatch_done: int = -1
    # prediction made for this block's successor
    pred_for_next: Optional[Prediction] = None
    pred_ready_t: int = -1
    lhist_at_predict: int = 0
    resolved_next: Optional[int] = None
    branch_exit: int = -1
    branch_btype: int = BT_BRANCH
    branch_t: int = -1
    branch_key: Optional[Tuple] = None
    # completion tracking
    rt_reports: Dict[int, Tuple[int, Optional[Tuple]]] = field(
        default_factory=dict)                  # bank -> (t, producer key)
    regs_done_t: int = -1
    regs_done_key: Optional[Tuple] = None
    stores_seen: Set[int] = field(default_factory=set)
    last_store_arrival: Optional[Tuple[int, int]] = None
    stores_done_t: int = -1
    stores_done_key: Optional[Tuple] = None
    completed_t: int = -1
    commit_sent_t: int = -1
    ack_t: int = -1
    fired: int = 0
    reads_count: int = 0


@dataclass
class ProcStats:
    cycles: int = 0
    blocks_committed: int = 0
    blocks_flushed: int = 0
    blocks_fetched: int = 0
    insts_committed: int = 0
    reads_committed: int = 0
    flushes_mispredict: int = 0
    flushes_violation: int = 0
    icache_miss_blocks: int = 0
    deferred_loads: int = 0
    lsq_peak: int = 0
    # per-micronetwork message counts (Section 5.2's occupancy argument)
    gdn_messages: int = 0       # dispatched header words + instructions
    gcn_messages: int = 0       # commit + flush commands
    gsn_messages: int = 0       # completion reports + commit acks
    grn_messages: int = 0       # I-cache refill commands
    dsn_messages: int = 0       # store-arrival broadcasts between DTs
    opn_messages: int = 0       # operand/memory/branch packets

    @property
    def ipc(self) -> float:
        return self.insts_committed / self.cycles if self.cycles else 0.0

    def network_traffic(self) -> Dict[str, int]:
        """Estimated bit volume per micronetwork (messages x link bits)."""
        bits = {"GDN": 205, "GCN": 13, "GSN": 6, "GRN": 36, "DSN": 72,
                "OPN": 141}
        counts = {"GDN": self.gdn_messages, "GCN": self.gcn_messages,
                  "GSN": self.gsn_messages, "GRN": self.grn_messages,
                  "DSN": self.dsn_messages, "OPN": self.opn_messages}
        return {net: counts[net] * bits[net] for net in bits}

    # -- JSON round trip (simlab cache records, harness --json) ---------
    def to_dict(self) -> Dict[str, int]:
        return dataclass_to_dict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, int]) -> "ProcStats":
        return dataclass_from_dict(cls, data)


# ----------------------------------------------------------------------
class TripsProcessor:
    """One 16-wide TRIPS core executing one single-threaded program."""

    GT_COORD = (0, 0)

    def __init__(self, program: Program, config: TripsConfig = PROTOTYPE,
                 trace: bool = False, memory: Optional[BackingStore] = None,
                 sysmem=None, sysmem_port_base: int = 0,
                 telemetry=None, checkpoint=None):
        """``memory``/``sysmem`` may be supplied externally to share them
        between the chip's two cores (see :class:`repro.chip.TripsChip`);
        ``sysmem_port_base`` selects which OCN ports this core's IT/DT
        pairs own (0 for processor 0, 4 for processor 1).  ``trace`` may
        be a pre-built :class:`Trace` (e.g. one with a ``max_blocks``
        retention bound) instead of a bool.  ``telemetry`` enables the
        :mod:`repro.telemetry` probe layer: pass ``True`` or a
        :class:`~repro.telemetry.config.TelemetryConfig`; when left
        ``None`` every probe site reduces to one pointer compare.
        ``checkpoint`` resumes from a
        :class:`~repro.sampling.checkpoint.ArchCheckpoint` instead of the
        program entry: registers, memory and warm predictor/cache state
        are overwritten and the first fetch targets the checkpoint PC."""
        program.validate()
        self.program = program
        self.config = config
        self.cycle = 0
        self.memory = memory if memory is not None else BackingStore()
        self.memory.load_image(program.memory_image())
        self.regs: List[int] = [0] * NUM_ARCH_REGS
        for reg, value in program.initial_regs.items():
            self.regs[reg] = value & (2**64 - 1)

        self._fast = config.fast_path
        self._wheel = config.fast_path and config.event_wheel
        self.opn = WormholeMesh(5, 5, queue_depth=config.opn_router_depth,
                                lanes=config.opn_links_per_hop,
                                active_set=config.fast_path,
                                express=config.fast_path
                                and config.express_routing)
        # detailed NUCA secondary memory (only stepped when L2 is modelled)
        self.sysmem_port_base = sysmem_port_base
        self._owns_sysmem = sysmem is None
        if sysmem is not None:
            self.sysmem = sysmem
        elif config.perfect_l2:
            self.sysmem = None
        else:
            from ..mem.sysmem import SecondaryMemory, SysMemConfig
            self.sysmem = SecondaryMemory(
                SysMemConfig(dram_cycles=config.dram_cycles,
                             active_set=config.fast_path,
                             express=config.fast_path
                             and config.express_routing),
                backing=self.memory)
        self.ets = [ExecTile(self, i) for i in range(16)]
        self.rts = [RegTile(self, b) for b in range(4)]
        self.dts = [DataTile(self, d) for d in range(4)]
        # coord -> (visit rank, tile kind, tile) in the fixed ET -> RT ->
        # DT -> GT drain order; lets _deliver_packets dispatch straight
        # from the pending set instead of 25 membership probes
        self._deliver_map: Dict[Tuple[int, int], Tuple[int, int, object]] = {}
        for rank, et in enumerate(self.ets):
            self._deliver_map[et.coord] = (rank, 0, et)
        for rank, rt in enumerate(self.rts):
            self._deliver_map[rt.coord] = (16 + rank, 1, rt)
        for rank, dt in enumerate(self.dts):
            self._deliver_map[dt.coord] = (20 + rank, 2, dt)
        self._deliver_map[self.GT_COORD] = (24, 3, None)
        self.icache = [CacheBank(config.l1i_bank_kb * 1024, config.l1i_assoc,
                                 128) for _ in range(5)]
        self.predictor = NextBlockPredictor(config.predictor)

        # per-Program decode cache, shared across processor instances:
        # DecodedBlock is immutable once built (it is already reused by
        # every BlockInst of a run), so re-simulating the same program —
        # the bench harness, the fast-path equivalence tests — skips the
        # decode warmup entirely
        self._decoded: Dict[int, DecodedBlock] = _decode_cache_for(program)
        # timed-event calendar: per-cycle buckets (insertion order == the
        # old (cycle, seq) heap order) plus a heap of distinct due times —
        # an append per event instead of a tuple heap-push
        self._ev_buckets: Dict[int, List[object]] = {}
        self._ev_times: List[int] = []
        self.trace: Optional[Trace] = trace if isinstance(trace, Trace) \
            else (Trace() if trace else None)

        # block window
        self.window: List[BlockInst] = []       # ordered by seq
        self.window_by_uid: Dict[int, BlockInst] = {}
        self.window_by_seq: Dict[int, BlockInst] = {}
        self.live_uids: Set[int] = set()
        self.free_frames = set(range(config.max_blocks_in_flight))
        self.next_uid = 0
        self.next_seq = 0
        self.store_arrivals: Dict[Tuple[int, int], Tuple[int, int]] = {}
        self.committed_seqs: Set[int] = set()

        self.dispatch_pipe_free = 0
        self.frame_freed: Dict[int, Tuple[int, Optional[int]]] = {}
        self.halted = False
        self.halt_uid = -1
        self.stats = ProcStats()
        # bootstrap: first fetch has no prediction; its address is the entry
        self._pending_fetch_addr: Optional[int] = program.entry
        self._pending_fetch_cause: Tuple = ("init",)

        # telemetry (None = every probe site is a single pointer compare)
        self.tel: Optional[TelemetryRecorder] = None
        self._tel_fetch_t = -1
        self._tel_commit_t = -1
        self._tel_gdn_blocked_t = -1
        if telemetry:
            tel_config = telemetry if isinstance(telemetry, TelemetryConfig) \
                else TelemetryConfig()
            self.tel = TelemetryRecorder(tel_config)
            self.tel.attach(self)

        if checkpoint is not None:
            checkpoint.apply(self)

    # ------------------------------------------------------------------
    # coordinates / helpers used by the tiles
    # ------------------------------------------------------------------
    def et_coord(self, et: int) -> Tuple[int, int]:
        return (1 + et // 4, 1 + et % 4)

    def rt_coord(self, bank: int) -> Tuple[int, int]:
        return (0, 1 + bank)

    def dt_coord_for(self, address: int) -> Tuple[int, int]:
        return (1 + self.dt_index(address), 0)

    def dt_index(self, address: int) -> int:
        return (address >> 6) % 4

    def l2_latency(self, address: int) -> int:
        return self.config.l2_hit_cycles     # detailed NUCA path: repro.mem

    def schedule(self, at_cycle: int, fn) -> None:
        floor = self.cycle + 1
        if at_cycle < floor:
            at_cycle = floor
        bucket = self._ev_buckets.get(at_cycle)
        if bucket is None:
            self._ev_buckets[at_cycle] = [fn]
            heapq.heappush(self._ev_times, at_cycle)
        else:
            bucket.append(fn)

    def older_blocks(self, seq: int):
        """In-flight blocks older than ``seq``, youngest first."""
        for block in reversed(self.window):
            if block.seq < seq:
                yield block

    def decoded_at(self, addr: int) -> DecodedBlock:
        decoded = self._decoded.get(addr)
        if decoded is None:
            decoded = DecodedBlock(self.program.block_at(addr), addr)
            self._decoded[addr] = decoded
        return decoded

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self, until_blocks: Optional[int] = None) -> ProcStats:
        """Run to HALT, or — for the sampling driver — until
        ``stats.blocks_committed`` reaches ``until_blocks`` (the partial
        stats returned are a consistent commit-boundary reading; call
        again to continue)."""
        cfg = self.config
        fast = cfg.fast_path
        while not self.halted:
            if until_blocks is not None \
                    and self.stats.blocks_committed >= until_blocks:
                break
            if self.cycle >= cfg.max_cycles:
                raise ProcError(
                    f"cycle budget {cfg.max_cycles} exhausted "
                    f"(pc window: {[hex(b.addr) for b in self.window]})")
            self.step()
            # cheap pre-gate: with operands in router queues the core can
            # never be quiescent, so skip the full next_work_t() scan.
            # Under the event wheel an express packet in reserved flight
            # is a timed event, not per-cycle work, so only queued
            # packets and pending pickups block the jump.
            if fast and not self.halted:
                if self._wheel:
                    if self.opn.quiet():
                        self._try_fast_forward()
                elif self.opn.is_idle():
                    self._try_fast_forward()
        return self.finalize_stats()

    # ------------------------------------------------------------------
    # fast path: idle-cycle fast-forward
    # ------------------------------------------------------------------
    def next_work_t(self) -> Optional[int]:
        """Earliest cycle >= ``self.cycle`` at which this core can do work.

        Returns ``self.cycle`` when any component is busy right now, a
        future cycle when all activity is pinned to known times (event
        heap, predictor latency, block completion, sysmem), or None when
        no work can ever arise without external input (deadlock — the run
        loop then burns straight to the cycle budget, exactly as the slow
        path would).  The estimate may be early (waking to a no-op cycle
        is harmless) but is never late: every skipped cycle is provably a
        no-op for all tiles, both networks and the GT.
        """
        t = self.cycle
        wheel = self._wheel
        if wheel:
            # per-component calendar: express packets in reserved flight
            # wake the mesh at their arrival cycle, deferred loads at the
            # cycle their gating stores are all within DSN reach
            opn_t = self.opn.next_event_t()
            if opn_t is not None and opn_t <= t:
                return t
        else:
            opn_t = None
            if not self.opn.is_idle():
                return t
        for et in self.ets:
            if et.candidates or et.outbox:       # inlined is_idle()
                return t
        for rt in self.rts:
            if rt.read_requests or rt.outbox:    # inlined is_idle()
                return t
        times = []
        if opn_t is not None:
            times.append(opn_t)
        if wheel:
            for dt in self.dts:
                work = dt.next_work_t(t)
                if work is not None:
                    if work <= t:
                        return t
                    times.append(work)
        else:
            for dt in self.dts:
                if dt.requests or dt.deferred or dt.outbox:  # is_idle()
                    return t
        if self._ev_times:
            times.append(self._ev_times[0])
        gt = self._gt_next_work_t(t)
        if gt is not None:
            times.append(gt)
        if self.sysmem is not None and self._owns_sysmem:
            mem = self.sysmem.next_work_t()
            if mem is not None:
                times.append(mem)
        if not times:
            return None
        return max(t, min(times))

    def _gt_next_work_t(self, t: int) -> Optional[int]:
        """Earliest cycle the GT could commit or fetch, barring new events.

        Mirrors the time-dependent gates of :meth:`_try_commit` (a block
        commits once ``t`` reaches its ``completed_t``) and
        :meth:`_try_fetch` (prediction latency and the GDN-backlog
        window), whose inputs only change through timed events or packet
        deliveries — both absent during a skipped stretch.
        """
        times = []
        # pipelined commit: the first block without a commit command sent
        # gates all younger ones
        for block in self.window:
            if block.commit_sent_t >= 0:
                continue
            if block.completed_t >= 0:
                times.append(block.completed_t)
            break
        if self.free_frames:
            addr_t = None
            if self._pending_fetch_addr is not None:
                addr_t = t
            elif self.window:
                tail = self.window[-1]
                if tail.resolved_next is not None:
                    if tail.resolved_next != EXIT_ADDRESS:
                        addr_t = t
                elif tail.pred_for_next is not None:
                    target = tail.pred_for_next.target
                    unresolved = sum(1 for b in self.window
                                     if b.resolved_next is None)
                    if target != EXIT_ADDRESS \
                            and target in self.program.blocks \
                            and unresolved <= self.config.speculative_blocks:
                        addr_t = max(t, tail.pred_ready_t)
            if addr_t is not None:
                backlog_clear = self.dispatch_pipe_free \
                    - self.config.predict_cycles - 2
                times.append(max(addr_t, backlog_clear))
        if not times:
            return None
        return max(t, min(times))

    def _try_fast_forward(self) -> None:
        """Jump ``cycle`` over a provably-idle stretch in one assignment.

        The skipped cycles still count: stats read ``self.cycle``, so a
        10,000-cycle DRAM wait reports 10,000 cycles whether they were
        stepped or skipped.
        """
        t = self.cycle
        times = self._ev_times
        if times and times[0] <= t:
            return      # a timed event is due this very cycle: no skip
        target = self.next_work_t()
        if target is None:
            target = self.config.max_cycles
        else:
            target = min(target, self.config.max_cycles)
        if target <= t:
            return
        if self.tel is not None:
            # skipped cycles are quiescent by construction: account them
            # as idle (or passive-wait) spans so tile totals still sum
            # to the cycle count
            self.tel.account_skip(t, target)
        self.cycle = target
        self.opn.fast_forward(target)
        if self.sysmem is not None and self._owns_sysmem:
            self.sysmem.fast_forward(target)

    def finalize_stats(self) -> ProcStats:
        """Fold end-of-run tile state into the stats record."""
        self.stats.cycles = self.cycle
        self.stats.opn_messages = self.opn.stats.injected
        self.stats.lsq_peak = max(
            (dt.lsq.peak_occupancy for dt in self.dts), default=0)
        self.stats.deferred_loads = sum(dt.deferred_count
                                        for dt in self.dts)
        return self.stats

    def step(self) -> None:
        t = self.cycle
        # phase A: timed events (completions, dispatch arrivals, commits).
        # An executing event can only schedule at cycle+1 or later, so the
        # bucket under iteration is never appended to mid-drain.
        times = self._ev_times
        if times and times[0] <= t:
            buckets = self._ev_buckets
            heappop = heapq.heappop
            while times and times[0] <= t:
                for fn in buckets.pop(heappop(times)):
                    fn()
        # phase B: operand network deliveries
        if not self._fast or self.opn.delivery_pending:
            self._deliver_packets(t)
        # phase C: tile work (fast path: skip tiles with provably nothing
        # to do this cycle — their tick() is a no-op by inspection)
        if self._fast:
            for rt in self.rts:
                if rt.read_requests or rt.outbox:
                    rt.tick(t)
            for et in self.ets:
                if et.candidates or et.outbox:
                    et.tick(t)
            for dt in self.dts:
                if dt.requests or dt.deferred or dt.outbox:
                    dt.tick(t)
        else:
            for rt in self.rts:
                rt.tick(t)
            for et in self.ets:
                et.tick(t)
            for dt in self.dts:
                dt.tick(t)
        self._try_fetch(t)
        self._try_commit(t)
        # phase D: network advance (OPN, and the OCN when owned)
        self.opn.step()
        if self.sysmem is not None:
            if self._owns_sysmem:
                self.sysmem.step()
            self.poll_sysmem()
        if self.tel is not None:
            self.tel.record_cycle(t)
        self.cycle += 1

    def poll_sysmem(self) -> None:
        """Collect OCN responses for this core's ports."""
        if not self.sysmem.has_responses():
            return
        for dt in self.dts:
            for fn in self.sysmem.take_responses(
                    self.sysmem_port_base + dt.index):
                fn()

    def _deliver_packets(self, t: int) -> None:
        if self._fast:
            # Dispatch straight from the pending set (rather than 25
            # membership probes) — sorting by the precomputed rank keeps
            # the ET -> RT -> DT -> GT visit order the same as always.
            pending = self.opn.delivery_pending
            if not pending:
                return
            take = self.opn.take_delivered
            dmap = self._deliver_map
            if len(pending) == 1:
                visits = (dmap[next(iter(pending))],)
            else:
                visits = sorted(dmap[coord] for coord in pending)
            for _rank, kind, tile in visits:
                if kind == 0:
                    for pkt in take(tile.coord):
                        tile.deliver_operand(pkt.payload, t, pkt.hops,
                                             pkt.qcycles)
                elif kind == 1:
                    for pkt in take(tile.coord):
                        tile.deliver_write(pkt.payload, t)
                elif kind == 2:
                    for pkt in take(tile.coord):
                        tile.deliver_request(pkt.payload, pkt.hops,
                                             pkt.qcycles, t)
                else:
                    for pkt in take(self.GT_COORD):
                        self._on_branch(pkt.payload, t)
            return
        # escape hatch: the original engine's unconditional coordinate scan
        for et in self.ets:
            for pkt in self.opn.take_delivered(et.coord):
                msg = pkt.payload
                et.deliver_operand(msg, t, pkt.hops, pkt.queue_cycles)
        for rt in self.rts:
            for pkt in self.opn.take_delivered(rt.coord):
                rt.deliver_write(pkt.payload, t)
        for dt in self.dts:
            for pkt in self.opn.take_delivered(dt.coord):
                dt.deliver_request(pkt.payload, pkt.hops, pkt.queue_cycles, t)
        for pkt in self.opn.take_delivered(self.GT_COORD):
            self._on_branch(pkt.payload, t)

    # ------------------------------------------------------------------
    # GT: fetch
    # ------------------------------------------------------------------
    def tel_gt_state(self, t: int) -> str:
        """Telemetry classification of the GT for stepped cycle ``t``."""
        if self._tel_fetch_t == t or self._tel_commit_t == t:
            return _tel.BUSY
        if self._tel_gdn_blocked_t == t:
            return _tel.GDN_BACKLOG
        return _tel.IDLE

    def _next_fetch_target(self, t: int) -> Optional[Tuple[int, Tuple]]:
        """(address, trace-cause) of the next block to fetch, if known.

        The cause tuple's last element is the cycle the address became
        known, which the critical-path walker compares against frame
        availability to decide whether fetch was prediction-bound (IFetch)
        or window-bound (Block Commit).
        """
        if self._pending_fetch_addr is not None:
            return self._pending_fetch_addr, self._pending_fetch_cause
        if not self.window:
            return None
        tail = self.window[-1]
        if tail.resolved_next is not None:
            if tail.resolved_next == EXIT_ADDRESS:
                return None
            return tail.resolved_next, ("resolved", tail.uid, tail.branch_t)
        if tail.pred_for_next is not None and t >= tail.pred_ready_t:
            target = tail.pred_for_next.target
            if target == EXIT_ADDRESS:
                return None                     # predicted program end
            unresolved = sum(1 for b in self.window
                             if b.resolved_next is None)
            if unresolved > self.config.speculative_blocks:
                return None                     # speculation depth limit
            return target, ("pred", tail.uid, tail.pred_ready_t)
        return None

    def _try_fetch(self, t: int) -> None:
        if not self.free_frames:
            return
        # Don't claim a window slot while the dispatch pipe is backlogged:
        # a frame parked behind the GDN does no work and just shrinks the
        # effective in-flight window.
        if self.dispatch_pipe_free > t + self.config.predict_cycles + 2:
            if self.tel is not None:
                self._tel_gdn_blocked_t = t
            return
        nxt = self._next_fetch_target(t)
        if nxt is None:
            return
        addr, cause = nxt
        if addr not in self.program.blocks:
            # A wild predicted target: treat as unpredictable; wait for
            # branch resolution (hardware would fetch garbage and flush).
            if cause[0] == "pred":
                return
            raise ProcError(f"fetch from invalid address {addr:#x}")
        decoded = self.decoded_at(addr)
        frame = min(self.free_frames)
        self.free_frames.discard(frame)
        self._pending_fetch_addr = None
        # was this fetch waiting on the frame (window full -> commit-bound)
        # or on the address (prediction / resolution -> fetch-bound)?
        # pop: each freed-frame record is consulted exactly once, by the
        # fetch that reclaims the frame, so the dict stays bounded by the
        # number of currently-free frames instead of accumulating forever
        frame_info = self.frame_freed.pop(frame, None)
        addr_known_t = cause[-1] if isinstance(cause[-1], int) else 0
        if frame_info is not None and frame_info[0] > addr_known_t:
            cause = ("frame", frame_info[1], frame_info[0])

        uid = self.next_uid
        self.next_uid += 1
        seq = self.next_seq
        self.next_seq += 1

        # I-cache: every chunk's IT bank must hold its line.
        miss_its = [k for k in range(1 + decoded.block.num_body_chunks)
                    if not self.icache[k].lookup(addr)]
        dispatch_start = max(t + 5, self.dispatch_pipe_free)
        if miss_its:
            self.stats.icache_miss_blocks += 1
            self.stats.grn_messages += len(miss_its)
            fill_done = 0
            for k in miss_its:
                # GRN broadcast (1 + k hops) + line fetch + GSN chain north
                fill = t + 1 + k + self.config.l2_hit_cycles
                self.icache[k].fill(addr)
                fill_done = max(fill_done, fill + k + 1)
            dispatch_start = max(dispatch_start, fill_done)
        self.dispatch_pipe_free = dispatch_start + min(
            self.config.dispatch_commands, decoded.dispatch_cycles)

        block = BlockInst(uid=uid, seq=seq, addr=addr, frame=frame,
                          decoded=decoded, fetch_t=t,
                          dispatch_start=dispatch_start)
        self.window.append(block)
        self.window_by_uid[uid] = block
        self.window_by_seq[seq] = block
        self.live_uids.add(uid)
        self.stats.blocks_fetched += 1

        # prediction for this block's successor overlaps its dispatch
        bi = (addr >> 7)
        block.lhist_at_predict = self.predictor.lht[
            bi % self.predictor.n_lht]
        block.pred_for_next = self.predictor.predict(addr,
                                                     decoded.fallthrough)
        block.pred_ready_t = t + self.config.predict_cycles

        self._schedule_dispatch(block)
        if self.trace is not None:
            self.trace.blocks[uid] = BlockEvent(
                uid=uid, addr=addr, seq=seq, cause=cause, fetch_t=t)
        if self.tel is not None:
            self._tel_fetch_t = t
            self.tel.block_fetched(uid, addr, seq, frame, t, dispatch_start)

    def _schedule_dispatch(self, block: BlockInst) -> None:
        """GDN streaming: header words to RTs, body rows to ETs."""
        t_d = block.dispatch_start
        last = t_d
        decoded = block.decoded
        # header: IT0's command at t_d+1; 4 words/cycle; word j covers
        # read slot j and write slot j; bank b sits 2+b hops east.
        for bank in range(4):
            decl_t = t_d + 2 + bank
            regs = decoded.write_regs_by_bank[bank]
            self.schedule(decl_t, lambda b=bank, u=block.uid, r=regs,
                          tt=decl_t: self.rts[b].declare_writes(u, r, tt))
            last = max(last, decl_t)
        self.stats.gdn_messages += (len(decoded.reads_by_slot)
                                    + len(decoded.block.body) + 4)
        for slot, read in decoded.reads_by_slot:
            arrive = t_d + 2 + slot // 4 + (slot // 8) + 2
            self.schedule(arrive, lambda s=slot, rd=read, u=block.uid,
                          tt=arrive: self.rts[s // 8].dispatch_read(
                              u, s, rd, tt))
            block.reads_count += 1
            last = max(last, arrive)
        # body rows: IT (k+1) gets its command at t_d + 2 + k; then 4
        # instructions per cycle, each one hop east per column.
        for row in range(4):
            base = t_d + 2 + (row + 1)
            for n, (slot, inst) in enumerate(decoded.rows[row]):
                et = slot % 16
                col = et % 4
                arrive = base + 1 + n // 4 + (col + 1)
                self.schedule(arrive, lambda s=slot, i=inst, u=block.uid,
                              q=block.seq, e=et, tt=arrive:
                              self.ets[e].dispatch_inst(u, q, s, i, tt))
                last = max(last, arrive)
        block.dispatch_done = last
        self.schedule(last, lambda b=block: self._dispatch_done(b))

    def _dispatch_done(self, block: BlockInst) -> None:
        if block.uid not in self.live_uids:
            return
        if self.trace is not None and block.uid in self.trace.blocks:
            self.trace.blocks[block.uid].dispatch_done_t = self.cycle
        if self.tel is not None:
            self.tel.block_dispatch_done(block.uid, self.cycle)
        # blocks with no stores: the DTs learn the (empty) store mask from
        # the dispatched header and can signal store completion immediately
        self._check_stores_done(block)

    # ------------------------------------------------------------------
    # GT: completion detection (protocol phase 1)
    # ------------------------------------------------------------------
    def rt_reports_writes_done(self, bank: int, block_uid: int, t: int,
                               producer_key=None) -> None:
        block = self.window_by_uid.get(block_uid)
        if block is None:
            return
        self.stats.gsn_messages += 1
        block.rt_reports[bank] = (t, producer_key)
        if len(block.rt_reports) == 4:
            # GSN daisy-chain toward the GT: bank b is b+1 hops out
            done_t, key = max(
                ((rt + b + 1, k) for b, (rt, k) in block.rt_reports.items()),
                key=lambda p: p[0])
            block.regs_done_t = done_t
            block.regs_done_key = key
            self._check_complete(block)

    def note_store_arrival(self, msg: MemRequest, src_dt: int, t: int) -> None:
        self.stats.dsn_messages += 3     # broadcast to the other three DTs
        self.store_arrivals[(msg.seq, msg.lsid)] = (t, src_dt)
        block = self.window_by_uid.get(msg.block_uid)
        if block is None:
            return
        block.stores_seen.add(msg.lsid)
        block.stores_done_key = msg.producer_key
        block.last_store_arrival = (t, src_dt)
        self._check_stores_done(block)

    def _check_stores_done(self, block: BlockInst) -> None:
        if block.stores_done_t >= 0:
            return
        if block.stores_seen >= block.decoded.store_lsids:
            if block.last_store_arrival is None:
                # no stores: DT0 signals once the dispatched mask is known
                block.stores_done_t = block.dispatch_start + 3 + 1
            else:
                t, src = block.last_store_arrival
                # DSN to DT0 (src hops) + GSN to the GT (1 hop)
                block.stores_done_t = t + src + 1
            self._check_complete(block)

    def _on_branch(self, msg: BranchMsg, t: int) -> None:
        block = self.window_by_uid.get(msg.block_uid)
        if block is None:
            return
        if block.resolved_next is not None:
            raise ProcError(f"block {block.addr:#x} fired two branches")
        block.resolved_next = msg.target
        block.branch_exit = msg.exit_no
        block.branch_btype = msg.btype
        block.branch_t = t
        block.branch_key = msg.producer_key
        # mispredict detection: did we fetch (or will we fetch) the wrong
        # successor?
        predicted = block.pred_for_next.target if block.pred_for_next else None
        younger = [b for b in self.window if b.seq > block.seq]
        if younger and younger[0].addr != msg.target:
            self._flush_after(block, msg.target, "mispredict", t)
        elif not younger and predicted is not None and predicted != msg.target:
            # prediction not yet consumed: repair history silently
            self.predictor.restore(block.pred_for_next.checkpoint)
            self.predictor.note_actual((block.addr >> 7), msg.exit_no)
        self._check_complete(block)

    def _check_complete(self, block: BlockInst) -> None:
        if block.completed_t >= 0 or block.uid not in self.live_uids:
            return
        if block.regs_done_t < 0 or block.stores_done_t < 0 \
                or block.branch_t < 0:
            return
        parts = [(block.regs_done_t, ("regs", block.regs_done_key)),
                 (block.stores_done_t, ("stores", block.stores_done_key)),
                 (block.branch_t, ("branch", block.branch_key))]
        block.completed_t, reason = max(parts, key=lambda p: p[0])
        block.completed_t = max(block.completed_t, self.cycle)
        if self.trace is not None and block.uid in self.trace.blocks:
            ev = self.trace.blocks[block.uid]
            ev.completed_t = block.completed_t
            ev.complete_reason = reason
        if self.tel is not None:
            self.tel.block_completed(block.uid, block.completed_t)

    # ------------------------------------------------------------------
    # GT: commit (protocol phases 2 and 3)
    # ------------------------------------------------------------------
    def _try_commit(self, t: int) -> None:
        # Pipelined commit (Section 4.4): a commit command may be sent for
        # a block as soon as commands for all older blocks have been sent —
        # the loop walks oldest-first and stops at the first non-committable.
        for block in self.window:
            if block.commit_sent_t >= 0:
                continue
            if block.completed_t < 0 or t < block.completed_t:
                break
            block.commit_sent_t = t
            self._send_commit(block, t)

    def _send_commit(self, block: BlockInst, t: int) -> None:
        self.stats.gcn_messages += 1
        self.stats.gsn_messages += 8     # per-tile commit acknowledgments
        # GCN wave: RT bank b at b+1 hops, DT d at d+1 hops.  Each tile
        # commits its architectural state (one write per port per cycle),
        # then the commit-completion daisy-chain returns over the GSN.
        rt_ack = 0
        for bank, rt in enumerate(self.rts):
            arrive = t + bank + 1
            done = rt.commit_block(block.uid, arrive)
            rt_ack = max(rt_ack, done + bank + 1)
        dt_ack = 0
        for d, dt in enumerate(self.dts):
            arrive = t + d + 1
            done = dt.commit_block(block.seq, arrive)
            dt_ack = max(dt_ack, done + d + 1)
        block.ack_t = max(rt_ack, dt_ack)
        # the commit command also flushes the block's leftover speculative
        # state in the ETs (un-issued predicated-path instructions)
        for et in self.ets:
            et.flush({block.uid})
        for lsid in block.decoded.store_lsids:
            self.store_arrivals.pop((block.seq, lsid), None)
        self.committed_seqs.add(block.seq)
        if self.trace is not None and block.uid in self.trace.blocks:
            ev = self.trace.blocks[block.uid]
            ev.commit_t = t
            ev.ack_t = block.ack_t
            ev.outcome = "committed"
        if self.tel is not None:
            self._tel_commit_t = t
            self.tel.block_committed(block.uid, t, block.ack_t)
        self.schedule(block.ack_t, lambda b=block: self._deallocate(b))

    def _deallocate(self, block: BlockInst) -> None:
        if block.uid not in self.live_uids:
            return
        self.live_uids.discard(block.uid)
        self.window_by_uid.pop(block.uid, None)
        self.window_by_seq.pop(block.seq, None)
        # deallocation is almost always of the window head; remove by
        # index instead of rebuilding the whole list
        window = self.window
        if window and window[0] is block:
            del window[0]
        else:
            for i, b in enumerate(window):  # rare out-of-order ack
                if b is block:
                    del window[i]
                    break
        # the seq is only consulted (prior_stores_arrived) while the block
        # is still in the window; dropping it here keeps the set bounded
        # by the in-flight window instead of growing for the whole run
        self.committed_seqs.discard(block.seq)
        self.free_frames.add(block.frame)
        self.frame_freed[block.frame] = (self.cycle, block.uid)
        for rt in self.rts:
            rt.deallocate(block.uid)
        self.stats.blocks_committed += 1
        self.stats.insts_committed += block.fired
        self.stats.reads_committed += block.reads_count
        if self.trace is not None:
            self.trace.note_deallocated(block.uid)
        # predictor training with the architectural outcome
        self.predictor.train(
            block.addr, block.branch_exit, block.resolved_next,
            block.branch_btype,
            block.pred_for_next.exit_no if block.pred_for_next else 0,
            block.pred_for_next.target if block.pred_for_next else 0,
            block.lhist_at_predict)
        if block.resolved_next == EXIT_ADDRESS:
            self.halted = True
            self.halt_uid = block.uid
            if self.trace is not None:
                self.trace.final_block_uid = block.uid
        elif not window and self._pending_fetch_addr is None \
                and block.resolved_next is not None:
            # The tail deallocated before its successor could be fetched
            # (possible when a flush serialized the GDN pipe just as the
            # last survivor committed): pin the resolved target or the PC
            # leaves the window with the block and fetch deadlocks.
            self._pending_fetch_addr = block.resolved_next
            self._pending_fetch_cause = ("resolved", block.uid,
                                         block.branch_t)

    # ------------------------------------------------------------------
    # flush protocol
    # ------------------------------------------------------------------
    def request_violation_flush(self, seq: int, dt_index: int, t: int) -> None:
        """A DT detected a load-ordering violation in block ``seq``."""
        victim = self.window_by_seq.get(seq)
        if victim is None:
            return
        self.stats.flushes_violation += 1
        # GSN notification from the DT to the GT costs dt_index+1 hops;
        # we apply eagerly and charge the latency on the refetch.
        self._flush_from(victim, victim.addr, "violation", t + dt_index + 1)

    def _flush_after(self, block: BlockInst, correct_target: int,
                     reason: str, t: int) -> None:
        """Flush every block younger than ``block``; refetch the target."""
        self.stats.flushes_mispredict += 1
        doomed = [b for b in self.window if b.seq > block.seq]
        self._do_flush(block, doomed, correct_target, reason, t)

    def _flush_from(self, victim: BlockInst, refetch: int, reason: str,
                    t: int) -> None:
        doomed = [b for b in self.window if b.seq >= victim.seq]
        older = self.window_by_seq.get(victim.seq - 1)
        # The victim's own address is only an authoritative refetch target
        # when nothing older survives (the victim was the non-speculative
        # head).  Otherwise the surviving tail's branch resolution decides:
        # the victim may have been a wrong-path block whose "address" must
        # not override the predecessor's eventual resolution.
        survivors = self.window and self.window[0].seq < victim.seq
        self._do_flush(older, doomed,
                       refetch if not survivors else None, reason, t)

    def _do_flush(self, keep_tail: Optional[BlockInst],
                  doomed: List[BlockInst], new_target: Optional[int],
                  reason: str, t: int) -> None:
        """Flush ``doomed``; ``new_target`` pins the next fetch address
        (None = let the surviving tail's prediction/resolution drive it)."""
        if not doomed and new_target == EXIT_ADDRESS:
            return
        self.stats.gcn_messages += 1     # the flush wave
        uids = {b.uid for b in doomed}
        seqs = {b.seq for b in doomed}
        # predictor repair: restore the oldest disturbed checkpoint, then
        # push the architecturally-correct exit of the resolving block
        restore_from = keep_tail if keep_tail is not None else None
        if restore_from is not None and restore_from.pred_for_next:
            self.predictor.restore(restore_from.pred_for_next.checkpoint)
            if restore_from.branch_exit >= 0:
                self.predictor.note_actual(restore_from.addr >> 7,
                                           restore_from.branch_exit)
        for block in doomed:
            self.live_uids.discard(block.uid)
            self.window_by_uid.pop(block.uid, None)
            self.window_by_seq.pop(block.seq, None)
            self.committed_seqs.discard(block.seq)
            self.free_frames.add(block.frame)
            self.frame_freed[block.frame] = (t, None)
            self.stats.blocks_flushed += 1
            if self.trace is not None and block.uid in self.trace.blocks:
                self.trace.blocks[block.uid].outcome = "flushed"
                self.trace.note_flushed(block.uid)
            if self.tel is not None:
                self.tel.block_flushed(block.uid, reason, t)
        if doomed:
            # the doomed set is always a seq-contiguous suffix of the
            # (seq-ordered) window: truncate in place
            del self.window[len(self.window) - len(doomed):]
        for et in self.ets:
            et.flush(uids)
        for rt in self.rts:
            rt.flush(uids)
        for dt in self.dts:
            dt.flush(uids, seqs)
        for key in [k for k in self.store_arrivals if k[0] in seqs]:
            del self.store_arrivals[key]
        resolver_key = keep_tail.branch_key if keep_tail is not None else None
        if new_target is None or new_target == EXIT_ADDRESS:
            self._pending_fetch_addr = None
        else:
            self._pending_fetch_addr = new_target
            self._pending_fetch_cause = (f"flush_{reason}", resolver_key, t)
        # the flush wave and refetch cannot overlap the doomed dispatches:
        # the GDN pipe is serialized behind the flush point
        self.dispatch_pipe_free = max(self.dispatch_pipe_free, t + 1)

    # ------------------------------------------------------------------
    # DT support: memory ordering
    # ------------------------------------------------------------------
    def prior_stores_arrived(self, key: Tuple[int, int], dt_index: int,
                             t: int) -> bool:
        """Have all program-order-earlier stores reached the LSQs, as
        visible from DT ``dt_index`` through the DSN?"""
        seq, lsid = key
        for block in self.window:
            if block.seq > seq:
                break
            if block.seq in self.committed_seqs:
                continue
            for s_lsid in block.decoded.store_lsids:
                if (block.seq, s_lsid) >= key:
                    continue
                arrival = self.store_arrivals.get((block.seq, s_lsid))
                if arrival is None:
                    return False
                arr_t, src = arrival
                if arr_t + abs(src - dt_index) > t:
                    return False
        return True

    def deferred_wake_t(self, key: Tuple[int, int],
                        dt_index: int) -> Optional[int]:
        """Earliest cycle :meth:`prior_stores_arrived` can become true for
        ``key`` at DT ``dt_index``, or None while a gating store has not
        yet arrived anywhere (its eventual delivery wakes the mesh, so the
        event wheel needs no estimate for it)."""
        seq, lsid = key
        wake = 0
        for block in self.window:
            if block.seq > seq:
                break
            if block.seq in self.committed_seqs:
                continue
            for s_lsid in block.decoded.store_lsids:
                if (block.seq, s_lsid) >= key:
                    continue
                arrival = self.store_arrivals.get((block.seq, s_lsid))
                if arrival is None:
                    return None
                arr_t, src = arrival
                need = arr_t + abs(src - dt_index)
                if need > wake:
                    wake = need
        return wake

    # ------------------------------------------------------------------
    def architectural_state(self) -> Tuple[List[int], BackingStore]:
        return self.regs, self.memory

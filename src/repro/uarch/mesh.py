"""Generic cycle-stepped wormhole-routed 2D mesh.

Used for the operand network (5x5, single-flit operand packets, Section 3)
and the on-chip network (4x10, multi-flit cache-line packets, Section 3.6).

Model: dimension-order (row-first) routing, per-input-port FIFOs of
configurable depth, round-robin output arbitration, and packet-granularity
wormhole approximation — a packet of F flits holds its output link for F
cycles (serialization), which captures wormhole bandwidth behaviour without
per-flit state.  Multiple virtual channels are modelled as additional,
independently-arbitrated input FIFOs, which removes head-of-line blocking
between traffic classes the way VCs do.

Every packet records its injection time, hop count and queueing delay so
the critical-path analyzer can split operand latency into the paper's
"OPN hops" and "OPN contention" categories.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

Coord = Tuple[int, int]   # (row, col)


@dataclass
class Packet:
    """One network packet (an operand, a control message, a cache line)."""

    src: Coord
    dest: Coord
    payload: object = None
    flits: int = 1
    vc: int = 0
    created: int = -1        # cycle handed to the network (or queued)
    injected: int = -1       # cycle accepted into the source router
    delivered: int = -1      # cycle ejected at the destination
    hops: int = 0

    @property
    def min_latency(self) -> int:
        return abs(self.src[0] - self.dest[0]) + abs(self.src[1] - self.dest[1])

    @property
    def queue_cycles(self) -> int:
        """Cycles lost to contention (beyond pure hop latency)."""
        if self.delivered < 0 or self.injected < 0:
            return 0
        return max(0, (self.delivered - self.injected) - self.min_latency)


class _Port:
    """One input FIFO (per VC) feeding a router."""

    __slots__ = ("queues", "depth")

    def __init__(self, vcs: int, depth: int):
        self.queues: List[Deque[Packet]] = [deque() for _ in range(vcs)]
        self.depth = depth

    def has_space(self, vc: int) -> bool:
        return len(self.queues[vc]) < self.depth

    def push(self, packet: Packet) -> None:
        self.queues[packet.vc].append(packet)


# port indices
_LOCAL, _NORTH, _SOUTH, _EAST, _WEST = range(5)
_NUM_PORTS = 5


@dataclass
class MeshStats:
    injected: int = 0
    delivered: int = 0
    total_hops: int = 0
    total_queue_cycles: int = 0
    link_busy_cycles: int = 0
    inject_stalls: int = 0


class WormholeMesh:
    """A rows x cols mesh of 5-ported routers."""

    def __init__(self, rows: int, cols: int, vcs: int = 1,
                 queue_depth: int = 2, lanes: int = 1,
                 route_order: str = "row_first"):
        if route_order not in ("row_first", "col_first"):
            raise ValueError(f"bad route order {route_order!r}")
        self.rows = rows
        self.cols = cols
        self.vcs = vcs
        self.lanes = lanes
        self.route_order = route_order
        self.cycle_count = 0
        # ports[node][port] -> _Port
        self.ports: Dict[Coord, List[_Port]] = {
            (r, c): [_Port(vcs, queue_depth) for _ in range(_NUM_PORTS)]
            for r in range(rows) for c in range(cols)}
        # output serialization: (node, out_port) -> busy-until cycle, per lane
        self._busy: Dict[Tuple[Coord, int], List[int]] = {}
        self._rr: Dict[Tuple[Coord, int], int] = {}
        self._delivery: Dict[Coord, List[Packet]] = {
            (r, c): [] for r in range(rows) for c in range(cols)}
        self.stats = MeshStats()

    # ------------------------------------------------------------------
    def inject(self, node: Coord, packet: Packet) -> bool:
        """Offer a packet to ``node``'s local input; False if it is full."""
        port = self.ports[node][_LOCAL]
        if not port.has_space(packet.vc):
            self.stats.inject_stalls += 1
            return False
        packet.injected = self.cycle_count
        if packet.created < 0:
            packet.created = self.cycle_count
        port.push(packet)
        self.stats.injected += 1
        return True

    def take_delivered(self, node: Coord) -> List[Packet]:
        """Packets ejected at ``node`` since the last call."""
        out = self._delivery[node]
        if out:
            self._delivery[node] = []
        return out

    # ------------------------------------------------------------------
    def _next_hop(self, at: Coord, dest: Coord) -> int:
        row, col = at
        if self.route_order == "row_first":
            if row != dest[0]:
                return _SOUTH if dest[0] > row else _NORTH
            if col != dest[1]:
                return _EAST if dest[1] > col else _WEST
        else:
            if col != dest[1]:
                return _EAST if dest[1] > col else _WEST
            if row != dest[0]:
                return _SOUTH if dest[0] > row else _NORTH
        return _LOCAL   # at destination: eject

    @staticmethod
    def _neighbor(node: Coord, out_port: int) -> Coord:
        row, col = node
        return {(_NORTH): (row - 1, col), _SOUTH: (row + 1, col),
                _EAST: (row, col + 1), _WEST: (row, col - 1)}[out_port]

    @staticmethod
    def _entry_port(out_port: int) -> int:
        """Which input port of the neighbour a move through ``out_port`` fills."""
        return {_NORTH: _SOUTH, _SOUTH: _NORTH,
                _EAST: _WEST, _WEST: _EAST}[out_port]

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the network one cycle."""
        now = self.cycle_count
        moves: List[Tuple[Deque[Packet], Packet, Coord, int]] = []
        granted_queues = set()
        for node, ports in self.ports.items():
            # Gather head packets per output request.
            requests: Dict[int, List[Deque[Packet]]] = {}
            for port in ports:
                for queue in port.queues:
                    if not queue:
                        continue
                    out = self._next_hop(node, queue[0].dest)
                    requests.setdefault(out, []).append(queue)
            for out, queues in requests.items():
                lanes = self._busy.setdefault((node, out), [0] * self.lanes)
                rr_key = (node, out)
                start = self._rr.get(rr_key, 0)
                granted = 0
                for lane_idx, busy_until in enumerate(lanes):
                    if busy_until > now or granted >= len(queues):
                        continue
                    # round-robin over requesting queues
                    for k in range(len(queues)):
                        queue = queues[(start + k) % len(queues)]
                        if not queue or id(queue) in granted_queues:
                            continue
                        packet = queue[0]
                        if self._next_hop(node, packet.dest) != out:
                            continue  # pragma: no cover - defensive
                        if out == _LOCAL:
                            moves.append((queue, packet, node, -1))
                        else:
                            neighbor = self._neighbor(node, out)
                            entry = self._entry_port(out)
                            if neighbor != packet.dest and \
                                    not self.ports[neighbor][entry].has_space(
                                        packet.vc):
                                continue
                            moves.append((queue, packet, neighbor, entry))
                        lanes[lane_idx] = now + packet.flits
                        self.stats.link_busy_cycles += packet.flits
                        self._rr[rr_key] = (start + k + 1) % len(queues)
                        granted_queues.add(id(queue))
                        granted += 1
                        break
        seen = set()
        for queue, packet, target, entry in moves:
            if id(packet) in seen:  # pragma: no cover - defensive
                continue
            seen.add(id(packet))
            queue.popleft()
            if entry >= 0:
                packet.hops += 1
            if entry < 0 or target == packet.dest:
                # Arrival at the destination router delivers in the same
                # cycle as the final hop: the control header launched one
                # cycle ahead (Section 3) already did wakeup, so ejection
                # adds no extra cycle.
                packet.delivered = now + 1
                self._delivery[target].append(packet)
                self.stats.delivered += 1
                self.stats.total_hops += packet.hops
                self.stats.total_queue_cycles += packet.queue_cycles
            else:
                self.ports[target][entry].push(packet)
        self.cycle_count += 1

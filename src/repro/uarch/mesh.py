"""Generic cycle-stepped wormhole-routed 2D mesh.

Used for the operand network (5x5, single-flit operand packets, Section 3)
and the on-chip network (4x10, multi-flit cache-line packets, Section 3.6).

Model: dimension-order (row-first) routing, per-input-port FIFOs of
configurable depth, round-robin output arbitration, and packet-granularity
wormhole approximation — a packet of F flits holds its output link for F
cycles (serialization), which captures wormhole bandwidth behaviour without
per-flit state.  Multiple virtual channels are modelled as additional,
independently-arbitrated input FIFOs, which removes head-of-line blocking
between traffic classes the way VCs do.

Every packet records its injection time, hop count and queueing delay so
the critical-path analyzer can split operand latency into the paper's
"OPN hops" and "OPN contention" categories.

Fast path: ``step()`` only visits *active* routers — those with at least
one occupied input queue — instead of scanning the whole grid, and all
routing decisions come from tables precomputed at construction time
(``(node, dest) -> out port`` and ``(node, out port) -> (neighbor, entry
port)``).  The arbitration, timing and delivery order are cycle-for-cycle
identical to a full scan: routers are visited in row-major coordinate
order, which is exactly the order the full scan used, and quiescent
routers contribute nothing to a scan by construction.
``tests/uarch/test_mesh_reference.py`` checks this against a full-scan
reference model under randomized traffic.

Express routing: dimension-order routing is deterministic, so a packet
injected into an otherwise-empty mesh wins every arbitration it meets and
its whole itinerary — which link it holds at which cycle, and when it
ejects — is known at injection time.  When ``express=True`` and no packet
is queued in any FIFO, :meth:`inject` therefore *schedules* the packet
instead of simulating it: it computes the grant sequence the hop-by-hop
engine would execute, checks every (node, out port, lane) window against
a time-indexed reservation table (plus the scalar busy-until residue of
past traffic), and on success records the reservations and queues the
delivery for its computed arrival cycle.  Any window conflict falls back
to the exact engine: every in-flight express packet is *materialized*
into the FIFO position it would occupy at that instant (executed grants
folded into the busy-until/round-robin state, unexecuted reservations
discarded) and normal wormhole arbitration takes over until the mesh
drains.  Because an accepted express schedule is precisely the grant
trace the deterministic arbiter would produce, delivery cycles, ordering,
stats and router state are cycle-for-cycle identical either way
(``tests/uarch/test_mesh_express.py``).  Express requires FIFO depth >= 2
(so a fluent single-packet chain can never be backpressured) and turns
itself off while a telemetry sink is attached (per-hop probes need real
hops).
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Set, Tuple

Coord = Tuple[int, int]   # (row, col)


@dataclass(slots=True)
class Packet:
    """One network packet (an operand, a control message, a cache line)."""

    src: Coord
    dest: Coord
    payload: object = None
    flits: int = 1
    vc: int = 0
    created: int = -1        # cycle handed to the network (or queued)
    injected: int = -1       # cycle accepted into the source router
    delivered: int = -1      # cycle ejected at the destination
    hops: int = 0
    qcycles: int = -1        # contention cycles, filled in at delivery

    @property
    def min_latency(self) -> int:
        return abs(self.src[0] - self.dest[0]) + abs(self.src[1] - self.dest[1])

    @property
    def queue_cycles(self) -> int:
        """Cycles lost to contention (beyond pure hop latency)."""
        if self.qcycles >= 0:
            return self.qcycles
        if self.delivered < 0 or self.injected < 0:
            return 0
        return max(0, (self.delivered - self.injected) - self.min_latency)


class _Port:
    """One input FIFO (per VC) feeding a router."""

    __slots__ = ("queues", "depth")

    def __init__(self, vcs: int, depth: int):
        self.queues: List[Deque[Packet]] = [deque() for _ in range(vcs)]
        self.depth = depth

    def has_space(self, vc: int) -> bool:
        return len(self.queues[vc]) < self.depth

    def push(self, packet: Packet) -> None:
        self.queues[packet.vc].append(packet)


class _Flight:
    """One express-routed packet in flight: its reserved grant schedule."""

    __slots__ = ("seq", "packet", "src", "vc", "start", "grants", "hops",
                 "arrival")

    def __init__(self, seq, packet, src, vc, start, grants, hops, arrival):
        self.seq = seq
        self.packet = packet
        self.src = src
        self.vc = vc
        self.start = start          # cycle the packet leaves the LOCAL FIFO
        self.grants = grants        # [(node, out port, grant cycle, lane)]
        self.hops = hops
        self.arrival = arrival      # delivery cycle at the destination


# port indices
_LOCAL, _NORTH, _SOUTH, _EAST, _WEST = range(5)
_NUM_PORTS = 5
#: input port of the neighbour that a move through each output port fills
_ENTRY = {_NORTH: _SOUTH, _SOUTH: _NORTH, _EAST: _WEST, _WEST: _EAST}


@dataclass
class MeshStats:
    injected: int = 0
    delivered: int = 0
    total_hops: int = 0
    total_queue_cycles: int = 0
    link_busy_cycles: int = 0
    inject_stalls: int = 0


class WormholeMesh:
    """A rows x cols mesh of 5-ported routers."""

    def __init__(self, rows: int, cols: int, vcs: int = 1,
                 queue_depth: int = 2, lanes: int = 1,
                 route_order: str = "row_first", active_set: bool = True,
                 express: bool = False):
        if route_order not in ("row_first", "col_first"):
            raise ValueError(f"bad route order {route_order!r}")
        self.rows = rows
        self.cols = cols
        self.vcs = vcs
        self.lanes = lanes
        self.route_order = route_order
        #: False = the escape-hatch engine: scan every router every cycle
        #: (the original algorithm), for timing cross-validation
        self.active_set = active_set
        self.cycle_count = 0
        coords = [(r, c) for r in range(rows) for c in range(cols)]
        self._coords = coords
        # ports[node][port] -> _Port
        self.ports: Dict[Coord, List[_Port]] = {
            node: [_Port(vcs, queue_depth) for _ in range(_NUM_PORTS)]
            for node in coords}
        # precomputed (node, dest) -> out port and
        # (node, out port) -> (neighbor, its entry port)
        self._route: Dict[Coord, Dict[Coord, int]] = {}
        self._hop: Dict[Coord, List[Optional[Tuple[Coord, int]]]] = {}
        for node in coords:
            self._route[node] = {dest: self._next_hop(node, dest)
                                 for dest in coords}
            hops: List[Optional[Tuple[Coord, int]]] = [None] * _NUM_PORTS
            for out in (_NORTH, _SOUTH, _EAST, _WEST):
                neighbor = self._neighbor(node, out)
                if 0 <= neighbor[0] < rows and 0 <= neighbor[1] < cols:
                    hops[out] = (neighbor, _ENTRY[out])
            self._hop[node] = hops
        # flat per-node queue aliases for the arbiter's hot loops (the
        # deque objects are created once and only ever mutated, so the
        # aliases stay valid): VC-0 queues for the single-VC fast path,
        # and all queues in port-major order for the general scan
        self._q0: Dict[Coord, Tuple[Deque[Packet], ...]] = {
            node: tuple(port.queues[0] for port in self.ports[node])
            for node in coords}
        self._qall: Dict[Coord, Tuple[Deque[Packet], ...]] = {
            node: tuple(q for port in self.ports[node] for q in port.queues)
            for node in coords}
        # output serialization: per node, per out port, busy-until per lane
        self._busy: Dict[Coord, List[List[int]]] = {
            node: [[0] * lanes for _ in range(_NUM_PORTS)] for node in coords}
        self._rr: Dict[Coord, List[int]] = {
            node: [0] * _NUM_PORTS for node in coords}
        self._delivery: Dict[Coord, List[Packet]] = {
            node: [] for node in coords}
        # one-lookup arbiter context: everything the per-node grant loop
        # needs, fetched with a single coord hash instead of five
        self._ctx: Dict[Coord, tuple] = {
            node: (self._q0[node], self._qall[node], self._route[node],
                   self._busy[node], self._rr[node], self._hop[node])
            for node in coords}
        #: single-VC single-lane meshes (the OPN) take a specialized
        #: arbitration loop on the fast path
        self._simple = vcs == 1 and lanes == 1
        self._depth = queue_depth
        #: nodes holding at least one queued packet (the active set) and
        #: their total queued-packet counts
        self._active: Set[Coord] = set()
        self._occupancy: Dict[Coord, int] = {node: 0 for node in coords}
        #: nodes with packets awaiting :meth:`take_delivered`
        self.delivery_pending: Set[Coord] = set()
        self.stats = MeshStats()
        #: optional :class:`repro.telemetry.recorder.MeshTelemetry` sink
        self.telemetry = None
        # -- express routing (see module docstring) --------------------
        #: depth >= 2 guarantees an uncontended chain is never blocked by
        #: a FIFO holding another express packet for its one-cycle stay
        self._express = express and queue_depth >= 2
        self._x_seq = 0
        #: seq -> _Flight, every scheduled-but-not-yet-delivered packet
        self._x_flights: Dict[int, _Flight] = {}
        #: (node, out port, lane) -> [(grant, grant+flits, flight seq)]
        self._x_res: Dict[Tuple[Coord, int, int],
                          List[Tuple[int, int, int]]] = {}
        #: delivery calendar: (arrival, penultimate row, col, flight seq);
        #: the penultimate node orders same-cycle same-dest deliveries the
        #: way the hop-by-hop move loop (row-major router visits) would
        self._x_arrivals: List[Tuple[int, int, int, int]] = []
        #: (node, vc) -> start cycle of the last express packet injected
        #: there (LOCAL FIFO ordering: one departure per cycle per queue)
        self._x_last: Dict[Tuple[Coord, int], int] = {}
        #: (src, dest) -> ((node, out port), ...) — the static Y-X path,
        #: built lazily; deterministic routing makes it reusable
        self._x_paths: Dict[Tuple[Coord, Coord],
                            Tuple[Tuple[Coord, int], ...]] = {}
        #: single-lane fast scheme: scheduled windows are folded into the
        #: ``_busy`` scalars (and round-robin pointers) eagerly — at
        #: schedule time, not delivery — and this map keeps each touched
        #: link's pre-schedule ``(busy, rr)`` pair so :meth:`_materialize`
        #: can rewind to executed-grants-only state.  A packet wanting a
        #: window *before* an already-scheduled one then looks blocked and
        #: falls back — a precision/speed trade that stays exact because
        #: the fallback path is exact.
        self._x_base: Dict[Tuple[Coord, int], Tuple[int, int]] = {}
        #: delivered-but-not-yet-folded flights: their windows live only
        #: in the eager scalars, so a materialization replays them after
        #: the rewind.  Cleared whenever the last flight lands (the eager
        #: scalars are then exactly the executed truth).
        self._x_done: List[_Flight] = []

    # ------------------------------------------------------------------
    def inject(self, node: Coord, packet: Packet) -> bool:
        """Offer a packet to ``node``'s local input; False if it is full."""
        if self._express and not self._active and self.telemetry is None:
            return self._inject_express(node, packet)
        return self._inject_queued(node, packet)

    def _inject_queued(self, node: Coord, packet: Packet) -> bool:
        port = self.ports[node][_LOCAL]
        if not port.has_space(packet.vc):
            self.stats.inject_stalls += 1
            return False
        packet.injected = self.cycle_count
        if packet.created < 0:
            packet.created = self.cycle_count
        port.queues[packet.vc].append(packet)
        self._occupancy[node] += 1
        self._active.add(node)
        self.stats.injected += 1
        if self.telemetry is not None:
            self.telemetry.note_depth(node, self.cycle_count,
                                      self._occupancy[node])
        return True

    def take_delivered(self, node: Coord) -> List[Packet]:
        """Packets ejected at ``node`` since the last call."""
        out = self._delivery[node]
        if out:
            self._delivery[node] = []
            self.delivery_pending.discard(node)
        return out

    def is_idle(self) -> bool:
        """True when no packet is queued, in flight or awaiting pickup.

        An idle mesh's ``step()`` is a pure cycle-count increment, which is
        what lets the processor fast-forward over quiescent stretches
        (busy output lanes only ever gate *queued* packets, so they carry
        no future effect once the mesh drains).
        """
        return not self._active and not self.delivery_pending \
            and not self._x_flights

    def quiet(self) -> bool:
        """No queued packet and nothing awaiting pickup (express packets
        may still be in flight — their arrivals are timed events, not
        per-cycle work)."""
        return not self._active and not self.delivery_pending

    def next_event_t(self) -> Optional[int]:
        """Earliest cycle at which this mesh does or delivers anything.

        ``cycle_count`` while any router holds a queued packet or a
        delivery awaits pickup, the earliest express arrival when packets
        are only in reserved flight, None when fully drained.  The
        event-wheel scheduler advances straight to this cycle."""
        if self._active or self.delivery_pending:
            return self.cycle_count
        if self._x_arrivals:
            return self._x_arrivals[0][0]
        return None

    def fast_forward(self, cycle: int) -> None:
        """Advance the clock over a stretch with no queued packets,
        releasing any express arrivals that fall due on the way."""
        self.cycle_count = cycle
        if self._x_arrivals:
            self._flush_express(cycle)

    # ------------------------------------------------------------------
    # express routing
    # ------------------------------------------------------------------
    def _inject_express(self, node: Coord, packet: Packet) -> bool:
        now = self.cycle_count
        vc = packet.vc
        key = (node, vc)
        # One departure per LOCAL queue per cycle (head-of-line order),
        # and the FIFO occupancy check: pending express starts for this
        # queue are the contiguous run [now, last] (a gap would need an
        # inject at a cycle past its predecessor's start, which resets the
        # run), so the scan over flights collapses to arithmetic.
        start = now
        prev = self._x_last.get(key, -1)
        if prev >= start:
            if prev - now + 1 >= self._depth:
                self.stats.inject_stalls += 1
                return False
            start = prev + 1
        # the grant sequence the hop-by-hop engine would execute: link k
        # of the static Y-X path is granted at cycle start+k (a d=0
        # packet takes one LOCAL eject grant instead)
        dest = packet.dest
        flits = packet.flits
        res = self._x_res
        busy_map = self._busy
        chosen: List[Tuple[Coord, int, int, int]] = []
        if node == dest:
            path = ((node, _LOCAL),)
            penult = node
        else:
            path = self._x_paths.get((node, dest))
            if path is None:
                route = self._route
                hop = self._hop
                steps = []
                cur = node
                while cur != dest:
                    out = route[cur][dest]
                    steps.append((cur, out))
                    cur = hop[cur][out][0]
                path = self._x_paths[(node, dest)] = tuple(steps)
            penult = path[-1][0]
        # window check: every grant must win its arbitration outright.
        # The lane the arbiter would pick is the first lane free at g as
        # seen through past grants only (scalar residue + reservations
        # covering g — future reservations have not happened yet at g);
        # a same-cycle reservation on any lane of the port, or any
        # reservation inside our serialization window on the chosen lane,
        # would perturb real arbitration, so it falls back.
        if self.lanes == 1:
            # eager-scalar scheme: the busy scalar already carries every
            # scheduled window, so one compare per hop decides, fused
            # with the commit (a mid-path conflict falls back, and the
            # materialization's rewind erases the partial writes); each
            # link's pre-schedule (busy, rr) pair is saved for that rewind
            base = self._x_base
            rr_map = self._rr
            g = start
            end = start + flits
            for cur, out in path:
                cell = busy_map[cur][out]
                if cell[0] > g:
                    return self._express_fallback(node, packet)
                bkey = (cur, out)
                if bkey not in base:
                    base[bkey] = (cell[0], rr_map[cur][out])
                cell[0] = end
                rr_map[cur][out] = 0
                g += 1
                end += 1
        else:
            nlanes = self.lanes
            g = start
            for cur, out in path:
                node_busy = busy_map[cur][out]
                lane_found = -1
                for lane in range(nlanes):
                    if node_busy[lane] > g:
                        continue
                    covered = False
                    for g2, end2, _s in res.get((cur, out, lane), ()):
                        if g2 <= g < end2:
                            covered = True
                            break
                    if not covered:
                        lane_found = lane
                        break
                if lane_found < 0:
                    return self._express_fallback(node, packet)
                g_end = g + flits
                for lane in range(nlanes):
                    for g2, _end2, _s in res.get((cur, out, lane), ()):
                        if g2 == g or (lane == lane_found
                                       and g < g2 < g_end):
                            return self._express_fallback(node, packet)
                chosen.append((cur, out, g, lane_found))
                g += 1
        # commit the schedule
        packet.injected = now
        if packet.created < 0:
            packet.created = now
        self.stats.injected += 1
        self._x_last[key] = start
        self._x_seq += 1
        seq = self._x_seq
        if node == dest:
            hops, arrival = 0, start + 1
        else:
            hops = len(path)
            arrival = start + hops
        # scalar mode stores the bare path in the grants slot (grant k is
        # derivably at cycle start+k, lane 0); the generic mode stores
        # explicit (node, out, grant, lane) tuples plus reservation-list
        # entries for the lane-aware conflict checks
        if self.lanes == 1:
            self._x_flights[seq] = _Flight(seq, packet, node, vc, start,
                                           path, hops, arrival)
        else:
            self._x_flights[seq] = _Flight(seq, packet, node, vc, start,
                                           chosen, hops, arrival)
            for cur, out, g, lane in chosen:
                res.setdefault((cur, out, lane), []).append(
                    (g, g + flits, seq))
        heapq.heappush(self._x_arrivals,
                       (arrival, penult[0], penult[1], seq))
        return True

    def _express_fallback(self, node: Coord, packet: Packet) -> bool:
        """A window conflict: reconstruct the exact engine's state and
        inject the packet through the normal FIFO path."""
        self._materialize(self.cycle_count)
        return self._inject_queued(node, packet)

    def _materialize(self, tau: int) -> None:
        """Convert every in-flight express packet into the FIFO position
        it would occupy at cycle ``tau`` under hop-by-hop simulation.

        Grants already executed (cycle < tau) become busy-until residue,
        round-robin resets and link-busy stats — exactly the state the
        hop-by-hop arbiter would have left.  Unexecuted reservations are
        discarded: those grants will now be re-arbitrated for real.
        """
        flights = sorted(self._x_flights.values(),
                         key=lambda fl: (fl.start, fl.seq))
        busy_map = self._busy
        rr_map = self._rr
        hop = self._hop
        ports = self.ports
        occupancy = self._occupancy
        active = self._active
        stats = self.stats
        scalar = self.lanes == 1
        if scalar:
            # rewind the eagerly-folded state to each link's pre-schedule
            # (busy, rr) pair, then re-apply the delivered flights and the
            # executed prefixes below, leaving exactly the hop-by-hop
            # engine's scalars
            for (cur, out), (b, r) in self._x_base.items():
                busy_map[cur][out][0] = b
                rr_map[cur][out] = r
            self._x_base.clear()
            for flight in self._x_done:
                flits = flight.packet.flits
                g = flight.start
                for cur, out in flight.grants:
                    end = g + flits
                    cell = busy_map[cur][out]
                    if cell[0] < end:
                        cell[0] = end
                    rr_map[cur][out] = 0
                    g += 1
                # link-busy stats were already counted at delivery
            self._x_done.clear()
        for flight in flights:
            packet = flight.packet
            flits = packet.flits
            grants = flight.grants
            done = tau - flight.start
            if done < 0 or flight.hops == 0:
                done = 0            # still (or forever) in the LOCAL FIFO
            elif done > len(grants):
                done = len(grants)
            if scalar:
                g = flight.start
                for cur, out in grants[:done]:
                    end = g + flits
                    cell = busy_map[cur][out]
                    if cell[0] < end:
                        cell[0] = end
                    rr_map[cur][out] = 0   # a lone grant resets round-robin
                    stats.link_busy_cycles += flits
                    g += 1
            else:
                for cur, out, _g, lane in grants[:done]:
                    end = _g + flits
                    lanes_busy = busy_map[cur][out]
                    if lanes_busy[lane] < end:
                        lanes_busy[lane] = end
                    rr_map[cur][out] = 0
                    stats.link_busy_cycles += flits
            packet.hops = done
            packet.delivered = -1
            packet.qcycles = -1
            if done == 0:
                entry_node, entry_port = flight.src, _LOCAL
            elif scalar:
                cur, out = grants[done - 1]
                entry_node = hop[cur][out][0]
                entry_port = _ENTRY[out]
            else:
                cur, out, _g, _lane = grants[done - 1]
                entry_node = hop[cur][out][0]
                entry_port = _ENTRY[out]
            ports[entry_node][entry_port].queues[flight.vc].append(packet)
            occupancy[entry_node] += 1
            active.add(entry_node)
        self._x_flights.clear()
        self._x_res.clear()
        self._x_arrivals.clear()

    def _flush_express(self, upto: int) -> None:
        """Deliver every express arrival due at or before ``upto``,
        folding its executed reservations into the scalar router state."""
        arrivals = self._x_arrivals
        flights = self._x_flights
        busy_map = self._busy
        rr_map = self._rr
        res = self._x_res
        stats = self.stats
        delivery = self._delivery
        pending = self.delivery_pending
        scalar = self.lanes == 1
        done = self._x_done
        while arrivals and arrivals[0][0] <= upto:
            arrival, _pr, _pc, seq = heapq.heappop(arrivals)
            flight = flights.pop(seq)
            packet = flight.packet
            flits = packet.flits
            if scalar:
                # the busy/rr scalars already carry these windows (folded
                # at schedule time); log the flight so a later
                # materialization can replay them after its rewind.  No
                # per-hop work here — a delivery is pure arithmetic.
                done.append(flight)
                stats.link_busy_cycles += flits * (flight.hops or 1)
            else:
                for cur, out, g, lane in flight.grants:
                    end = g + flits
                    lanes_busy = busy_map[cur][out]
                    if lanes_busy[lane] < end:
                        lanes_busy[lane] = end
                    rr_map[cur][out] = 0
                    stats.link_busy_cycles += flits
                    key = (cur, out, lane)
                    entries = res[key]
                    entries.remove((g, end, flight.seq))
                    if not entries:
                        del res[key]
            packet.delivered = arrival
            packet.hops = flight.hops
            qc = arrival - packet.injected - packet.min_latency
            packet.qcycles = qc if qc > 0 else 0
            dest = packet.dest
            delivery[dest].append(packet)
            pending.add(dest)
            stats.delivered += 1
            stats.total_hops += flight.hops
            stats.total_queue_cycles += packet.qcycles
        if scalar and not flights:
            # nothing left in flight: every eagerly-folded window has
            # executed, so the scalars are exact and the rewind/replay
            # logs can be dropped
            self._x_base.clear()
            done.clear()

    # ------------------------------------------------------------------
    def _next_hop(self, at: Coord, dest: Coord) -> int:
        row, col = at
        if self.route_order == "row_first":
            if row != dest[0]:
                return _SOUTH if dest[0] > row else _NORTH
            if col != dest[1]:
                return _EAST if dest[1] > col else _WEST
        else:
            if col != dest[1]:
                return _EAST if dest[1] > col else _WEST
            if row != dest[0]:
                return _SOUTH if dest[0] > row else _NORTH
        return _LOCAL   # at destination: eject

    @staticmethod
    def _neighbor(node: Coord, out_port: int) -> Coord:
        row, col = node
        return {(_NORTH): (row - 1, col), _SOUTH: (row + 1, col),
                _EAST: (row, col + 1), _WEST: (row, col - 1)}[out_port]

    @staticmethod
    def _entry_port(out_port: int) -> int:
        """Which input port of the neighbour a move through ``out_port`` fills."""
        return _ENTRY[out_port]

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the network one cycle (active routers only)."""
        now = self.cycle_count
        if self._x_arrivals:
            # express arrivals due by the end of this cycle become
            # deliveries, exactly when hop-by-hop simulation would post
            # them (delivered = grant cycle + 1)
            self._flush_express(now + 1)
        active = self._active
        if self.active_set:
            if not active:
                self.cycle_count = now + 1
                return
            # row-major visit order == the full scan's order (a one-node
            # set needs no sort)
            nodes = tuple(active) if len(active) == 1 else sorted(active)
        else:
            nodes = self._coords
        ports = self.ports
        stats = self.stats
        occupancy = self._occupancy
        moves: List[Tuple[Coord, Deque[Packet], Packet, Coord, int]] = []
        append_move = moves.append
        granted_queues: Set[int] = set()
        use_single = self.active_set
        use_simple = use_single and self._simple
        depth = self._depth
        ctx_map = self._ctx
        q0_map = self._q0
        lbc = 0                     # link_busy_cycles, folded in once below
        for node in nodes:
            q0s, qall, route, node_busy, node_rr, node_hop = ctx_map[node]
            if use_simple and occupancy[node] > 1:
                # Single-VC, single-lane router (the OPN): each queue
                # requests exactly one out port and each out port has one
                # lane, so no queue can be granted twice — the
                # granted_queues bookkeeping and the lane loop of the
                # general arbiter below provably never fire.
                reqs = [(route[q[0].dest], q) for q in q0s if q]
                if len(reqs) == 1:
                    # every packet sits in one input FIFO: a lone request,
                    # granted unless the link is busy or downstream full
                    # (rr := (rr + 0 + 1) % 1 == 0 on a grant)
                    out, queue = reqs[0]
                    busy = node_busy[out]
                    if busy[0] <= now:
                        packet = queue[0]
                        if out == _LOCAL:
                            append_move((node, queue, packet, node, -1))
                        else:
                            neighbor, entry = node_hop[out]
                            if neighbor != packet.dest and \
                                    len(q0_map[neighbor][entry]) >= depth:
                                continue
                            append_move((node, queue, packet, neighbor,
                                         entry))
                        busy[0] = now + packet.flits
                        lbc += packet.flits
                        node_rr[out] = 0
                    continue
                requests_s: Dict[int, List[Deque[Packet]]] = {}
                for out, queue in reqs:
                    bucket = requests_s.get(out)
                    if bucket is None:
                        requests_s[out] = [queue]
                    else:
                        bucket.append(queue)
                for out, queues in requests_s.items():
                    busy = node_busy[out]
                    if busy[0] > now:
                        continue
                    start = node_rr[out]
                    nq = len(queues)
                    for k in range(nq):
                        queue = queues[(start + k) % nq]
                        packet = queue[0]
                        if out == _LOCAL:
                            append_move((node, queue, packet, node, -1))
                        else:
                            neighbor, entry = node_hop[out]
                            if neighbor != packet.dest and \
                                    len(q0_map[neighbor][entry]) >= depth:
                                continue
                            append_move((node, queue, packet, neighbor,
                                         entry))
                        busy[0] = now + packet.flits
                        lbc += packet.flits
                        node_rr[out] = (start + k + 1) % nq
                        break
                continue
            if use_single and occupancy[node] == 1:
                # Lone packet at this router: the arbitration below reduces
                # to "grant the head packet the first free lane of its out
                # port, unless the downstream FIFO is full" — same result,
                # no request-dict construction.
                for queue in qall:
                    if queue:
                        break
                packet = queue[0]
                out = route[packet.dest]
                lanes = node_busy[out]
                for lane_idx, busy_until in enumerate(lanes):
                    if busy_until > now:
                        continue
                    if out == _LOCAL:
                        append_move((node, queue, packet, node, -1))
                    else:
                        neighbor, entry = node_hop[out]
                        if neighbor != packet.dest and \
                                not ports[neighbor][entry].has_space(
                                    packet.vc):
                            break       # blocked on every lane alike
                        append_move((node, queue, packet, neighbor, entry))
                    lanes[lane_idx] = now + packet.flits
                    lbc += packet.flits
                    node_rr[out] = 0   # == (rr + 1) % 1
                    break
                continue
            # Gather head packets per output request.
            requests: Dict[int, List[Deque[Packet]]] = {}
            for queue in qall:
                if queue:
                    out = route[queue[0].dest]
                    bucket = requests.get(out)
                    if bucket is None:
                        requests[out] = [queue]
                    else:
                        bucket.append(queue)
            for out, queues in requests.items():
                lanes = node_busy[out]
                start = node_rr[out]
                nq = len(queues)
                granted = 0
                for lane_idx, busy_until in enumerate(lanes):
                    if busy_until > now or granted >= nq:
                        continue
                    # round-robin over requesting queues
                    for k in range(nq):
                        queue = queues[(start + k) % nq]
                        if not queue or id(queue) in granted_queues:
                            continue
                        packet = queue[0]
                        if out == _LOCAL:
                            append_move((node, queue, packet, node, -1))
                        else:
                            neighbor, entry = node_hop[out]
                            if neighbor != packet.dest and \
                                    not ports[neighbor][entry].has_space(
                                        packet.vc):
                                continue
                            append_move((node, queue, packet, neighbor,
                                         entry))
                        lanes[lane_idx] = now + packet.flits
                        lbc += packet.flits
                        node_rr[out] = (start + k + 1) % nq
                        granted_queues.add(id(queue))
                        granted += 1
                        break
        stats.link_busy_cycles += lbc
        delivery = self._delivery
        delivery_pending = self.delivery_pending
        n_delivered = total_hops = total_qc = 0
        for node, queue, packet, target, entry in moves:
            queue.popleft()
            occupancy[node] -= 1
            if not occupancy[node]:
                active.discard(node)
            if entry >= 0:
                packet.hops += 1
            if entry < 0 or target == packet.dest:
                # Arrival at the destination router delivers in the same
                # cycle as the final hop: the control header launched one
                # cycle ahead (Section 3) already did wakeup, so ejection
                # adds no extra cycle.
                packet.delivered = now + 1
                src = packet.src
                dest = packet.dest
                qc = (now + 1 - packet.injected) \
                    - abs(src[0] - dest[0]) - abs(src[1] - dest[1])
                packet.qcycles = qc if qc > 0 else 0
                delivery[target].append(packet)
                delivery_pending.add(target)
                n_delivered += 1
                total_hops += packet.hops
                total_qc += packet.qcycles
            else:
                ports[target][entry].queues[packet.vc].append(packet)
                occupancy[target] += 1
                active.add(target)
        if n_delivered:
            stats.delivered += n_delivered
            stats.total_hops += total_hops
            stats.total_queue_cycles += total_qc
        tel = self.telemetry
        if tel is not None and moves:
            for node, _queue, packet, target, entry in moves:
                if entry < 0:
                    direction = "eject"
                else:
                    dr = target[0] - node[0]
                    direction = ("S" if dr > 0 else "N") if dr else \
                        ("E" if target[1] > node[1] else "W")
                tel.note_link(node, direction, packet.flits)
                tel.note_depth(node, now + 1, occupancy[node])
                if entry >= 0 and target != packet.dest:
                    tel.note_depth(target, now + 1, occupancy[target])
        self.cycle_count = now + 1

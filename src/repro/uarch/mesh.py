"""Generic cycle-stepped wormhole-routed 2D mesh.

Used for the operand network (5x5, single-flit operand packets, Section 3)
and the on-chip network (4x10, multi-flit cache-line packets, Section 3.6).

Model: dimension-order (row-first) routing, per-input-port FIFOs of
configurable depth, round-robin output arbitration, and packet-granularity
wormhole approximation — a packet of F flits holds its output link for F
cycles (serialization), which captures wormhole bandwidth behaviour without
per-flit state.  Multiple virtual channels are modelled as additional,
independently-arbitrated input FIFOs, which removes head-of-line blocking
between traffic classes the way VCs do.

Every packet records its injection time, hop count and queueing delay so
the critical-path analyzer can split operand latency into the paper's
"OPN hops" and "OPN contention" categories.

Fast path: ``step()`` only visits *active* routers — those with at least
one occupied input queue — instead of scanning the whole grid, and all
routing decisions come from tables precomputed at construction time
(``(node, dest) -> out port`` and ``(node, out port) -> (neighbor, entry
port)``).  The arbitration, timing and delivery order are cycle-for-cycle
identical to a full scan: routers are visited in row-major coordinate
order, which is exactly the order the full scan used, and quiescent
routers contribute nothing to a scan by construction.
``tests/uarch/test_mesh_reference.py`` checks this against a full-scan
reference model under randomized traffic.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Set, Tuple

Coord = Tuple[int, int]   # (row, col)


@dataclass(slots=True)
class Packet:
    """One network packet (an operand, a control message, a cache line)."""

    src: Coord
    dest: Coord
    payload: object = None
    flits: int = 1
    vc: int = 0
    created: int = -1        # cycle handed to the network (or queued)
    injected: int = -1       # cycle accepted into the source router
    delivered: int = -1      # cycle ejected at the destination
    hops: int = 0
    qcycles: int = -1        # contention cycles, filled in at delivery

    @property
    def min_latency(self) -> int:
        return abs(self.src[0] - self.dest[0]) + abs(self.src[1] - self.dest[1])

    @property
    def queue_cycles(self) -> int:
        """Cycles lost to contention (beyond pure hop latency)."""
        if self.qcycles >= 0:
            return self.qcycles
        if self.delivered < 0 or self.injected < 0:
            return 0
        return max(0, (self.delivered - self.injected) - self.min_latency)


class _Port:
    """One input FIFO (per VC) feeding a router."""

    __slots__ = ("queues", "depth")

    def __init__(self, vcs: int, depth: int):
        self.queues: List[Deque[Packet]] = [deque() for _ in range(vcs)]
        self.depth = depth

    def has_space(self, vc: int) -> bool:
        return len(self.queues[vc]) < self.depth

    def push(self, packet: Packet) -> None:
        self.queues[packet.vc].append(packet)


# port indices
_LOCAL, _NORTH, _SOUTH, _EAST, _WEST = range(5)
_NUM_PORTS = 5
#: input port of the neighbour that a move through each output port fills
_ENTRY = {_NORTH: _SOUTH, _SOUTH: _NORTH, _EAST: _WEST, _WEST: _EAST}


@dataclass
class MeshStats:
    injected: int = 0
    delivered: int = 0
    total_hops: int = 0
    total_queue_cycles: int = 0
    link_busy_cycles: int = 0
    inject_stalls: int = 0


class WormholeMesh:
    """A rows x cols mesh of 5-ported routers."""

    def __init__(self, rows: int, cols: int, vcs: int = 1,
                 queue_depth: int = 2, lanes: int = 1,
                 route_order: str = "row_first", active_set: bool = True):
        if route_order not in ("row_first", "col_first"):
            raise ValueError(f"bad route order {route_order!r}")
        self.rows = rows
        self.cols = cols
        self.vcs = vcs
        self.lanes = lanes
        self.route_order = route_order
        #: False = the escape-hatch engine: scan every router every cycle
        #: (the original algorithm), for timing cross-validation
        self.active_set = active_set
        self.cycle_count = 0
        coords = [(r, c) for r in range(rows) for c in range(cols)]
        self._coords = coords
        # ports[node][port] -> _Port
        self.ports: Dict[Coord, List[_Port]] = {
            node: [_Port(vcs, queue_depth) for _ in range(_NUM_PORTS)]
            for node in coords}
        # precomputed (node, dest) -> out port and
        # (node, out port) -> (neighbor, its entry port)
        self._route: Dict[Coord, Dict[Coord, int]] = {}
        self._hop: Dict[Coord, List[Optional[Tuple[Coord, int]]]] = {}
        for node in coords:
            self._route[node] = {dest: self._next_hop(node, dest)
                                 for dest in coords}
            hops: List[Optional[Tuple[Coord, int]]] = [None] * _NUM_PORTS
            for out in (_NORTH, _SOUTH, _EAST, _WEST):
                neighbor = self._neighbor(node, out)
                if 0 <= neighbor[0] < rows and 0 <= neighbor[1] < cols:
                    hops[out] = (neighbor, _ENTRY[out])
            self._hop[node] = hops
        # output serialization: per node, per out port, busy-until per lane
        self._busy: Dict[Coord, List[List[int]]] = {
            node: [[0] * lanes for _ in range(_NUM_PORTS)] for node in coords}
        self._rr: Dict[Coord, List[int]] = {
            node: [0] * _NUM_PORTS for node in coords}
        self._delivery: Dict[Coord, List[Packet]] = {
            node: [] for node in coords}
        #: single-VC single-lane meshes (the OPN) take a specialized
        #: arbitration loop on the fast path
        self._simple = vcs == 1 and lanes == 1
        self._depth = queue_depth
        #: nodes holding at least one queued packet (the active set) and
        #: their total queued-packet counts
        self._active: Set[Coord] = set()
        self._occupancy: Dict[Coord, int] = {node: 0 for node in coords}
        #: nodes with packets awaiting :meth:`take_delivered`
        self.delivery_pending: Set[Coord] = set()
        self.stats = MeshStats()
        #: optional :class:`repro.telemetry.recorder.MeshTelemetry` sink
        self.telemetry = None

    # ------------------------------------------------------------------
    def inject(self, node: Coord, packet: Packet) -> bool:
        """Offer a packet to ``node``'s local input; False if it is full."""
        port = self.ports[node][_LOCAL]
        if not port.has_space(packet.vc):
            self.stats.inject_stalls += 1
            return False
        packet.injected = self.cycle_count
        if packet.created < 0:
            packet.created = self.cycle_count
        port.queues[packet.vc].append(packet)
        self._occupancy[node] += 1
        self._active.add(node)
        self.stats.injected += 1
        if self.telemetry is not None:
            self.telemetry.note_depth(node, self.cycle_count,
                                      self._occupancy[node])
        return True

    def take_delivered(self, node: Coord) -> List[Packet]:
        """Packets ejected at ``node`` since the last call."""
        out = self._delivery[node]
        if out:
            self._delivery[node] = []
            self.delivery_pending.discard(node)
        return out

    def is_idle(self) -> bool:
        """True when no packet is queued or awaiting pickup anywhere.

        An idle mesh's ``step()`` is a pure cycle-count increment, which is
        what lets the processor fast-forward over quiescent stretches
        (busy output lanes only ever gate *queued* packets, so they carry
        no future effect once the mesh drains).
        """
        return not self._active and not self.delivery_pending

    # ------------------------------------------------------------------
    def _next_hop(self, at: Coord, dest: Coord) -> int:
        row, col = at
        if self.route_order == "row_first":
            if row != dest[0]:
                return _SOUTH if dest[0] > row else _NORTH
            if col != dest[1]:
                return _EAST if dest[1] > col else _WEST
        else:
            if col != dest[1]:
                return _EAST if dest[1] > col else _WEST
            if row != dest[0]:
                return _SOUTH if dest[0] > row else _NORTH
        return _LOCAL   # at destination: eject

    @staticmethod
    def _neighbor(node: Coord, out_port: int) -> Coord:
        row, col = node
        return {(_NORTH): (row - 1, col), _SOUTH: (row + 1, col),
                _EAST: (row, col + 1), _WEST: (row, col - 1)}[out_port]

    @staticmethod
    def _entry_port(out_port: int) -> int:
        """Which input port of the neighbour a move through ``out_port`` fills."""
        return _ENTRY[out_port]

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the network one cycle (active routers only)."""
        now = self.cycle_count
        active = self._active
        if self.active_set:
            if not active:
                self.cycle_count = now + 1
                return
            # row-major visit order == the full scan's order (a one-node
            # set needs no sort)
            nodes = tuple(active) if len(active) == 1 else sorted(active)
        else:
            nodes = self._coords
        ports = self.ports
        routes = self._route
        busy_map = self._busy
        rr_map = self._rr
        hop_map = self._hop
        stats = self.stats
        occupancy = self._occupancy
        moves: List[Tuple[Coord, Deque[Packet], Packet, Coord, int]] = []
        append_move = moves.append
        granted_queues: Set[int] = set()
        use_single = self.active_set
        use_simple = use_single and self._simple
        depth = self._depth
        for node in nodes:
            route = routes[node]
            if use_simple and occupancy[node] > 1:
                # Single-VC, single-lane router (the OPN): each queue
                # requests exactly one out port and each out port has one
                # lane, so no queue can be granted twice — the
                # granted_queues bookkeeping and the lane loop of the
                # general arbiter below provably never fire.
                requests_s: Dict[int, List[Deque[Packet]]] = {}
                for port in ports[node]:
                    queue = port.queues[0]
                    if queue:
                        out = route[queue[0].dest]
                        bucket = requests_s.get(out)
                        if bucket is None:
                            requests_s[out] = [queue]
                        else:
                            bucket.append(queue)
                node_busy = busy_map[node]
                node_rr = rr_map[node]
                node_hop = hop_map[node]
                for out, queues in requests_s.items():
                    busy = node_busy[out]
                    if busy[0] > now:
                        continue
                    start = node_rr[out]
                    nq = len(queues)
                    for k in range(nq):
                        queue = queues[(start + k) % nq]
                        packet = queue[0]
                        if out == _LOCAL:
                            append_move((node, queue, packet, node, -1))
                        else:
                            neighbor, entry = node_hop[out]
                            if neighbor != packet.dest and \
                                    len(ports[neighbor][entry].queues[0]) \
                                    >= depth:
                                continue
                            append_move((node, queue, packet, neighbor,
                                         entry))
                        busy[0] = now + packet.flits
                        stats.link_busy_cycles += packet.flits
                        node_rr[out] = (start + k + 1) % nq
                        break
                continue
            if use_single and occupancy[node] == 1:
                # Lone packet at this router: the arbitration below reduces
                # to "grant the head packet the first free lane of its out
                # port, unless the downstream FIFO is full" — same result,
                # no request-dict construction.
                for port in ports[node]:
                    for queue in port.queues:
                        if queue:
                            break
                    else:
                        continue
                    break
                packet = queue[0]
                out = route[packet.dest]
                lanes = busy_map[node][out]
                for lane_idx, busy_until in enumerate(lanes):
                    if busy_until > now:
                        continue
                    if out == _LOCAL:
                        append_move((node, queue, packet, node, -1))
                    else:
                        neighbor, entry = hop_map[node][out]
                        if neighbor != packet.dest and \
                                not ports[neighbor][entry].has_space(
                                    packet.vc):
                            break       # blocked on every lane alike
                        append_move((node, queue, packet, neighbor, entry))
                    lanes[lane_idx] = now + packet.flits
                    stats.link_busy_cycles += packet.flits
                    rr_map[node][out] = 0   # == (rr + 1) % 1
                    break
                continue
            # Gather head packets per output request.
            requests: Dict[int, List[Deque[Packet]]] = {}
            for port in ports[node]:
                for queue in port.queues:
                    if queue:
                        out = route[queue[0].dest]
                        bucket = requests.get(out)
                        if bucket is None:
                            requests[out] = [queue]
                        else:
                            bucket.append(queue)
            node_busy = busy_map[node]
            node_rr = rr_map[node]
            node_hop = hop_map[node]
            for out, queues in requests.items():
                lanes = node_busy[out]
                start = node_rr[out]
                nq = len(queues)
                granted = 0
                for lane_idx, busy_until in enumerate(lanes):
                    if busy_until > now or granted >= nq:
                        continue
                    # round-robin over requesting queues
                    for k in range(nq):
                        queue = queues[(start + k) % nq]
                        if not queue or id(queue) in granted_queues:
                            continue
                        packet = queue[0]
                        if out == _LOCAL:
                            append_move((node, queue, packet, node, -1))
                        else:
                            neighbor, entry = node_hop[out]
                            if neighbor != packet.dest and \
                                    not ports[neighbor][entry].has_space(
                                        packet.vc):
                                continue
                            append_move((node, queue, packet, neighbor,
                                         entry))
                        lanes[lane_idx] = now + packet.flits
                        stats.link_busy_cycles += packet.flits
                        node_rr[out] = (start + k + 1) % nq
                        granted_queues.add(id(queue))
                        granted += 1
                        break
        delivery = self._delivery
        delivery_pending = self.delivery_pending
        for node, queue, packet, target, entry in moves:
            queue.popleft()
            occupancy[node] -= 1
            if not occupancy[node]:
                active.discard(node)
            if entry >= 0:
                packet.hops += 1
            if entry < 0 or target == packet.dest:
                # Arrival at the destination router delivers in the same
                # cycle as the final hop: the control header launched one
                # cycle ahead (Section 3) already did wakeup, so ejection
                # adds no extra cycle.
                packet.delivered = now + 1
                src = packet.src
                dest = packet.dest
                qc = (now + 1 - packet.injected) \
                    - abs(src[0] - dest[0]) - abs(src[1] - dest[1])
                packet.qcycles = qc if qc > 0 else 0
                delivery[target].append(packet)
                delivery_pending.add(target)
                stats.delivered += 1
                stats.total_hops += packet.hops
                stats.total_queue_cycles += packet.qcycles
            else:
                ports[target][entry].queues[packet.vc].append(packet)
                occupancy[target] += 1
                active.add(target)
        tel = self.telemetry
        if tel is not None and moves:
            for node, _queue, packet, target, entry in moves:
                if entry < 0:
                    direction = "eject"
                else:
                    dr = target[0] - node[0]
                    direction = ("S" if dr > 0 else "N") if dr else \
                        ("E" if target[1] > node[1] else "W")
                tel.note_link(node, direction, packet.flits)
                tel.note_depth(node, now + 1, occupancy[node])
                if entry >= 0 and target != packet.dest:
                    tel.note_depth(target, now + 1, occupancy[target])
        self.cycle_count = now + 1

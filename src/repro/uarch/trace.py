"""Microarchitectural event trace for critical-path analysis.

When tracing is enabled, tsim-proc records one :class:`InstEvent` per
dynamic body instruction and one :class:`BlockEvent` per fetched block.
:mod:`repro.analysis.critpath` walks these records backwards from the final
commit, attributing every cycle of the program's critical path to the
paper's Table 3 categories (Fields et al.'s methodology, Section 5.4).

``release`` encodes *why* an instruction became ready when it did:

* ``("dispatch", t)`` — last requirement was the instruction's own arrival
  from the GDN (instruction distribution delay -> IFetch category),
* ``("operand", producer_key, send_t, hops, queue_cycles, arrive_t)`` —
  last operand came over the OPN (hops -> "OPN hops", queueing -> "OPN
  contention"),
* ``("local", producer_key, t)`` — last operand via the local bypass path,
* ``("regread", read_key, t)`` / ``("regfwd", producer_key, t)`` — value
  delivered by a register tile from the architectural file or forwarded
  from an older in-flight block's write queue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

Key = Tuple[int, object]   # (block uid, body slot | ("R", read slot))


@dataclass
class InstEvent:
    key: Key
    mnemonic: str
    et: int = -1
    dispatch_t: int = -1
    ready_t: int = -1
    issue_t: int = -1
    complete_t: int = -1
    release: Tuple = ("dispatch", -1)
    #: for loads: request-path OPN hops, queueing, DT-side wait (port
    #: serialization + dependence-predictor deferral), and cache latency
    mem_hops: int = 0
    mem_queue: int = 0
    mem_wait: int = 0
    mem_latency: int = 0


@dataclass
class BlockEvent:
    uid: int
    addr: int
    seq: int
    cause: Tuple = ("init",)
    fetch_t: int = -1
    dispatch_done_t: int = -1
    completed_t: int = -1
    complete_reason: Tuple = ("unknown",)
    commit_t: int = -1
    ack_t: int = -1
    outcome: str = "inflight"      # committed | flushed | inflight


@dataclass
class Trace:
    """All events of one tsim-proc run (enabled with ``trace=True``)."""

    insts: Dict[Key, InstEvent] = field(default_factory=dict)
    blocks: Dict[int, BlockEvent] = field(default_factory=dict)
    final_block_uid: int = -1

    def inst(self, key: Key, mnemonic: str = "?") -> InstEvent:
        event = self.insts.get(key)
        if event is None:
            event = InstEvent(key=key, mnemonic=mnemonic)
            self.insts[key] = event
        return event

    def committed_blocks(self) -> List[BlockEvent]:
        return sorted((b for b in self.blocks.values()
                       if b.outcome == "committed"), key=lambda b: b.seq)

"""Microarchitectural event trace for critical-path analysis.

When tracing is enabled, tsim-proc records one :class:`InstEvent` per
dynamic body instruction and one :class:`BlockEvent` per fetched block.
:mod:`repro.analysis.critpath` walks these records backwards from the final
commit, attributing every cycle of the program's critical path to the
paper's Table 3 categories (Fields et al.'s methodology, Section 5.4).

``release`` encodes *why* an instruction became ready when it did:

* ``("dispatch", t)`` — last requirement was the instruction's own arrival
  from the GDN (instruction distribution delay -> IFetch category),
* ``("operand", producer_key, send_t, hops, queue_cycles, arrive_t)`` —
  last operand came over the OPN (hops -> "OPN hops", queueing -> "OPN
  contention"),
* ``("local", producer_key, t)`` — last operand via the local bypass path,
* ``("regread", read_key, t)`` / ``("regfwd", producer_key, t)`` — value
  delivered by a register tile from the architectural file or forwarded
  from an older in-flight block's write queue.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set, Tuple

Key = Tuple[int, object]   # (block uid, body slot | ("R", read slot))

#: release kinds whose second element is a producer instruction key
_PRODUCER_RELEASES = ("operand", "local", "regfwd")


@dataclass
class InstEvent:
    key: Key
    mnemonic: str
    et: int = -1
    dispatch_t: int = -1
    ready_t: int = -1
    issue_t: int = -1
    complete_t: int = -1
    release: Tuple = ("dispatch", -1)
    #: for loads: request-path OPN hops, queueing, DT-side wait (port
    #: serialization + dependence-predictor deferral), and cache latency
    mem_hops: int = 0
    mem_queue: int = 0
    mem_wait: int = 0
    mem_latency: int = 0


@dataclass
class BlockEvent:
    uid: int
    addr: int
    seq: int
    cause: Tuple = ("init",)
    fetch_t: int = -1
    dispatch_done_t: int = -1
    completed_t: int = -1
    complete_reason: Tuple = ("unknown",)
    commit_t: int = -1
    ack_t: int = -1
    outcome: str = "inflight"      # committed | flushed | inflight


@dataclass
class Trace:
    """All events of one tsim-proc run (enabled with ``trace=True``).

    By default every event is kept for the whole run.  Long runs that
    only need the critical path can bound memory with ``max_blocks``:
    once that many blocks have deallocated beyond the retired ring, the
    oldest block's :class:`InstEvent` records are pruned down to the
    closure the critical-path walker can still reach (its
    ``complete_reason`` producer chain plus every instruction a younger
    block's release edge points into).  :class:`BlockEvent` records —
    small, and needed for the fetch-cause chain back to block 0 — are
    never pruned, so ``analyze_critical_path`` results are identical
    with pruning on or off.  ``max_blocks`` must be at least the
    in-flight window (8); smaller values are clamped.
    """

    insts: Dict[Key, InstEvent] = field(default_factory=dict)
    blocks: Dict[int, BlockEvent] = field(default_factory=dict)
    final_block_uid: int = -1
    max_blocks: Optional[int] = None
    # prune bookkeeping (only populated when max_blocks is set)
    _by_uid: Dict[int, List[Key]] = field(default_factory=dict, repr=False)
    _refs_into: Dict[int, Set[Key]] = field(default_factory=dict,
                                            repr=False)
    _retired: Deque[int] = field(default_factory=deque, repr=False)

    def inst(self, key: Key, mnemonic: str = "?") -> InstEvent:
        event = self.insts.get(key)
        if event is None:
            event = InstEvent(key=key, mnemonic=mnemonic)
            self.insts[key] = event
            if self.max_blocks is not None:
                self._by_uid.setdefault(key[0], []).append(key)
        return event

    def committed_blocks(self) -> List[BlockEvent]:
        return sorted((b for b in self.blocks.values()
                       if b.outcome == "committed"), key=lambda b: b.seq)

    # -- retention (``max_blocks``) -------------------------------------
    def note_flushed(self, uid: int) -> None:
        """A block was squashed: its instruction events are unreachable.

        Flushes remove a contiguous youngest suffix of the window, so a
        flushed block's consumers are flushed with it and no surviving
        release edge can point into it; the walker only reads a flushed
        block's *BlockEvent* (for the refetch cause), which is kept.
        """
        if self.max_blocks is None:
            return
        for key in self._by_uid.pop(uid, ()):
            self.insts.pop(key, None)
        self._refs_into.pop(uid, None)

    def note_deallocated(self, uid: int) -> None:
        """A block committed and left the window: queue it for pruning.

        At deallocation every event that will ever reference this
        block's instructions already exists (operand/local releases are
        intra-block; regfwd releases and flush-cause resolver keys point
        only at *older* in-window blocks), so the cross-block references
        out of this block are registered now and the block is pruned
        once it falls ``max_blocks`` deallocations behind.
        """
        if self.max_blocks is None:
            return
        insts = self.insts
        refs = self._refs_into
        for key in self._by_uid.get(uid, ()):
            release = insts[key].release
            if release[0] in _PRODUCER_RELEASES:
                producer = release[1]
                if isinstance(producer, tuple) and producer[0] != uid:
                    refs.setdefault(producer[0], set()).add(producer)
        block = self.blocks.get(uid)
        if block is not None and block.cause and \
                isinstance(block.cause[0], str) and \
                block.cause[0].startswith("flush"):
            resolver = block.cause[1]
            if isinstance(resolver, tuple):
                refs.setdefault(resolver[0], set()).add(resolver)
        self._retired.append(uid)
        limit = max(self.max_blocks, 8)
        while len(self._retired) > limit:
            self._prune(self._retired.popleft())

    def _prune(self, uid: int) -> None:
        """Drop the block's events except the walker-reachable closure."""
        insts = self.insts
        seeds = self._refs_into.pop(uid, set())
        block = self.blocks.get(uid)
        if block is not None and len(block.complete_reason) == 2:
            producer = block.complete_reason[1]
            if isinstance(producer, tuple):
                seeds.add(producer)
        keep: Set[Key] = set()
        stack = [key for key in seeds if key in insts]
        while stack:
            key = stack.pop()
            if key in keep:
                continue
            keep.add(key)
            release = insts[key].release
            if release[0] in _PRODUCER_RELEASES:
                producer = release[1]
                if isinstance(producer, tuple) and producer[0] == uid \
                        and producer in insts and producer not in keep:
                    stack.append(producer)
        for key in self._by_uid.pop(uid, ()):
            if key not in keep:
                del insts[key]

"""Load/store queue and memory dependence predictor (Section 3.5).

The prototype replicates a full 256-entry LSQ at every data tile; each DT's
copy receives the memory operations whose addresses interleave to it.
Program order across the window is the pair (block sequence number, LSID) —
block-atomic execution plus per-block LSIDs give a total order without
renaming.

Responsibilities modelled here:

* byte-granular store->load forwarding from older in-flight stores,
* ordering-violation detection when a store arrives after a younger,
  overlapping load has already executed (triggers a pipeline flush),
* block commit: draining a block's stores to the backing store in order,
* the 1024-entry bit-vector dependence predictor with its crude
  clear-every-10,000-blocks aging scheme.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

Key = Tuple[int, int]   # (block sequence number, LSID) = program order


@dataclass
class LsqEntry:
    key: Key
    is_store: bool
    address: Optional[int] = None    # None for nullified stores
    size: int = 0
    data: int = 0
    nullified: bool = False


class LoadStoreQueue:
    """One DT's LSQ copy."""

    def __init__(self, capacity: int = 256):
        self.capacity = capacity
        self.entries: Dict[Key, LsqEntry] = {}
        self.peak_occupancy = 0

    def is_full(self) -> bool:
        return len(self.entries) >= self.capacity

    # ------------------------------------------------------------------
    def insert_store(self, key: Key, address: Optional[int], size: int,
                     data: int, nullified: bool = False) -> List[Key]:
        """Insert an executed store; returns keys of violating loads.

        A violation is any *younger* executed load whose bytes overlap this
        store: it ran too early and read stale data (conservatively flagged
        even if the values happen to match, like the hardware).
        """
        if key in self.entries:
            raise ValueError(f"duplicate LSQ key {key}")
        entry = LsqEntry(key=key, is_store=True, address=address, size=size,
                         data=data, nullified=nullified)
        self.entries[key] = entry
        self.peak_occupancy = max(self.peak_occupancy, len(self.entries))
        if nullified or address is None:
            return []
        violators = []
        for other in self.entries.values():
            if other.is_store or other.key <= key or other.address is None:
                continue
            if _overlap(address, size, other.address, other.size):
                violators.append(other.key)
        return sorted(violators)

    def insert_load(self, key: Key, address: int, size: int) -> None:
        if key in self.entries:
            raise ValueError(f"duplicate LSQ key {key}")
        self.entries[key] = LsqEntry(key=key, is_store=False,
                                     address=address, size=size)
        self.peak_occupancy = max(self.peak_occupancy, len(self.entries))

    # ------------------------------------------------------------------
    def forward(self, key: Key, address: int, size: int,
                memory_bytes: bytes) -> int:
        """Load value: committed memory overlaid with older in-flight stores.

        ``memory_bytes`` is the committed state at ``address`` (length
        ``size``).  Older stores (lower key) apply in ascending program
        order, byte-granular — the answer the paper's LSQ CAM produces.
        """
        result = bytearray(memory_bytes)
        for skey in sorted(k for k, e in self.entries.items()
                           if e.is_store and k < key):
            entry = self.entries[skey]
            if entry.nullified or entry.address is None:
                continue
            lo = max(address, entry.address)
            hi = min(address + size, entry.address + entry.size)
            if lo >= hi:
                continue
            data = (entry.data & ((1 << (8 * entry.size)) - 1)).to_bytes(
                entry.size, "little")
            for b in range(lo, hi):
                result[b - address] = data[b - entry.address]
        return int.from_bytes(result, "little")

    # ------------------------------------------------------------------
    def flush_blocks(self, seqs: Set[int]) -> int:
        """Discard all entries of the flushed block sequence numbers."""
        doomed = [k for k in self.entries if k[0] in seqs]
        for k in doomed:
            del self.entries[k]
        return len(doomed)

    def commit_block(self, seq: int) -> List[LsqEntry]:
        """Remove and return the block's entries; stores in LSID order."""
        keys = sorted(k for k in self.entries if k[0] == seq)
        out = []
        for k in keys:
            entry = self.entries.pop(k)
            if entry.is_store and not entry.nullified:
                out.append(entry)
        return out

    def occupancy(self) -> int:
        return len(self.entries)

    def is_idle(self) -> bool:
        """True when the queue holds no in-flight entries.

        LSQ state is passive — entries only change on message arrival,
        commit, or flush — so a *non*-empty LSQ never blocks the fast
        path by itself; this hook exists for quiescence assertions and
        introspection (e.g. the fast-path tests).
        """
        return not self.entries


def _overlap(addr_a: int, size_a: int, addr_b: int, size_b: int) -> bool:
    return addr_a < addr_b + size_b and addr_b < addr_a + size_a


# ----------------------------------------------------------------------
class DependencePredictor:
    """1024-entry bit vector, memory-side (one per DT).

    A load whose address hashes to a set bit is held back until all prior
    stores have arrived.  Bits are set on ordering violations and — since
    entries cannot be cleared individually — the whole vector is flash-
    cleared every ``clear_interval`` committed blocks (Section 3.5).
    """

    def __init__(self, bits: int = 1024, clear_interval: int = 10_000,
                 enabled: bool = True):
        self.bits = bits
        self.clear_interval = clear_interval
        self.enabled = enabled
        self.vector = 0
        self.blocks_since_clear = 0
        self.violations_recorded = 0
        self.clears = 0

    def _index(self, address: int) -> int:
        return (address >> 3) % self.bits

    def predict_dependent(self, address: int) -> bool:
        if not self.enabled:
            return False
        return bool((self.vector >> self._index(address)) & 1)

    def record_violation(self, load_address: int) -> None:
        if not self.enabled:
            return
        self.vector |= 1 << self._index(load_address)
        self.violations_recorded += 1

    def on_block_commit(self) -> None:
        self.blocks_since_clear += 1
        if self.blocks_since_clear >= self.clear_interval:
            self.vector = 0
            self.blocks_since_clear = 0
            self.clears += 1

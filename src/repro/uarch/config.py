"""Configuration of the TRIPS prototype core (Sections 3 and 5).

Every parameter is taken from the paper where it gives one; the handful it
does not (e.g. OPN router buffer depth) are noted inline.  A single
:class:`TripsConfig` instance parameterizes the whole detailed model, which
is how the ablation benchmarks vary one knob at a time.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass
class PredictorConfig:
    """Next-block predictor budgets (Section 3.1), in bits."""

    local_bits: int = 9 * 1024        # local exit predictor
    global_bits: int = 16 * 1024      # gshare exit predictor
    choice_bits: int = 12 * 1024      # tournament chooser
    btb_bits: int = 20 * 1024         # branch target buffer
    ctb_bits: int = 6 * 1024          # call target buffer
    ras_bits: int = 7 * 1024          # return address stack
    btype_bits: int = 12 * 1024       # branch type predictor
    exit_history_len: int = 10        # 3-bit exits folded into history
    #: "static" disables all dynamic structures (ablation), "gshare"
    #: disables the tournament, "tournament" is the prototype.
    kind: str = "tournament"


@dataclass
class TripsConfig:
    """The prototype processor core."""

    # --- topology (fixed by the tile layout, Figure 2) -----------------
    et_rows: int = 4
    et_cols: int = 4
    num_rts: int = 4
    num_dts: int = 4
    num_its: int = 5

    # --- block window ----------------------------------------------------
    max_blocks_in_flight: int = 8     # 1 non-speculative + 7 speculative
    speculative_blocks: int = 7       # ablation: 0 disables speculation

    # --- fetch (Section 4.1) ---------------------------------------------
    predict_cycles: int = 3
    tag_access_cycles: int = 1
    hit_miss_cycles: int = 1
    dispatch_commands: int = 8        # pipelined GDN indices per block
    it_insts_per_cycle: int = 4       # each IT streams 4 insts/cycle east

    # --- execution ---------------------------------------------------------
    stations_per_et: int = 64         # 8 insts x 8 blocks
    #: operands one link can carry per cycle (the paper's future-work
    #: extension is "more operand network bandwidth": ablation knob).
    opn_links_per_hop: int = 1
    opn_router_depth: int = 2         # input FIFO depth (not in the paper)

    # --- caches -------------------------------------------------------------
    l1i_bank_kb: int = 16             # per IT, 2-way
    l1d_bank_kb: int = 8              # per DT, 2-way
    l1d_assoc: int = 2
    l1i_assoc: int = 2
    line_bytes: int = 64
    l1_hit_cycles: int = 2            # DT cache access
    dt_mshr_entries: int = 16
    dt_outstanding_lines: int = 4

    # --- LSQ / dependence prediction (Section 3.5) -------------------------
    lsq_entries: int = 256            # replicated at every DT
    dep_predictor_bits: int = 1024
    dep_clear_interval_blocks: int = 10_000
    dep_predictor_enabled: bool = True

    # --- secondary memory ----------------------------------------------------
    perfect_l2: bool = True           # the paper's evaluation configuration
    l2_hit_cycles: int = 12           # when modelling the NUCA array
    dram_cycles: int = 80

    # --- predictor -------------------------------------------------------------
    predictor: PredictorConfig = field(default_factory=PredictorConfig)

    # --- simulation --------------------------------------------------------------
    max_cycles: int = 30_000_000
    #: fast-path cycle engine: when the OPN is empty, every tile reports
    #: quiescent and no timed event is due, :meth:`TripsProcessor.run`
    #: advances the cycle counter directly to the next scheduled work
    #: instead of spinning one no-op cycle at a time.  Cycle-for-cycle
    #: identical stats either way (tests/uarch/test_fast_path.py); False
    #: is the escape hatch that forces the original step-every-cycle loop.
    fast_path: bool = True

    #: Express micronet routing: when a packet's full deterministic Y-X
    #: path is conflict-free, deliver it at its computed arrival time via
    #: a per-link reservation table instead of simulating every hop
    #: (``uarch/mesh.py``; falls back to hop-by-hop on any window
    #: conflict).  Cycle-for-cycle identical either way
    #: (tests/uarch/test_mesh_express.py); only active under
    #: ``fast_path``.
    express_routing: bool = True

    #: Event-wheel scheduling: advance the chip straight to the earliest
    #: per-component wakeup (tile, router, LSQ, bank, DRAM) instead of
    #: requiring full quiescence before a jump.  Composes with express
    #: routing (in-flight reserved packets are timed events, not per-cycle
    #: work).  Identical stats either way; only active under
    #: ``fast_path``.
    event_wheel: bool = True

    def with_overrides(self, **kwargs) -> "TripsConfig":
        """A copy with some fields replaced (ablation helper)."""
        return replace(self, **kwargs)

    @property
    def num_ets(self) -> int:
        return self.et_rows * self.et_cols

    @property
    def window_size(self) -> int:
        """In-flight instruction window (1,024 in the prototype)."""
        return self.max_blocks_in_flight * 128


#: the prototype's shipping configuration.
PROTOTYPE = TripsConfig()

"""The next-block predictor (Section 3.1).

TRIPS predicts *block exits*, not branch directions: each block ends in
exactly one fired branch carrying a 3-bit exit number, so the predictor
keeps exit histories instead of taken/not-taken bits.

* **Exit predictor** — a tournament of a local and a gshare predictor
  (like the Alpha 21264's direction predictor, but over 3-bit exits),
  budgeted at 9K/16K/12K bits for local/global/choice.
* **Target predictor** — a branch target buffer, a call target buffer, a
  return address stack and a branch *type* predictor that selects among
  them.  The type predictor is required by distributed fetch: the GT never
  sees branch instructions (they go straight from ITs to ETs), so even the
  kind of branch must be predicted.

Histories and the RAS are updated speculatively at predict time; the GT
checkpoints them per block and restores on a flush.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .config import PredictorConfig

#: branch type codes (the btype predictor's alphabet).
BT_BRANCH, BT_CALL, BT_RETURN = 0, 1, 2


def _pow2_entries(bits: int, entry_bits: int) -> int:
    entries = 1
    while entries * 2 * entry_bits <= bits:
        entries *= 2
    return entries


@dataclass
class Checkpoint:
    """Speculative predictor state snapshot, restored on flush."""

    ghist: int
    lhist_index: int
    lhist_value: int
    ras_top: int
    ras_slot: Optional[int] = None     # RAS slot overwritten by a call push
    ras_saved: int = 0                 # its pre-push contents


@dataclass
class Prediction:
    target: int
    exit_no: int
    checkpoint: Checkpoint


class _ExitTable:
    """Exit + 2-bit-hysteresis entries."""

    def __init__(self, entries: int):
        self.entries = entries
        self.exit = [0] * entries
        self.conf = [0] * entries

    def predict(self, index: int) -> int:
        return self.exit[index % self.entries]

    def update(self, index: int, actual: int) -> None:
        index %= self.entries
        if self.exit[index] == actual:
            self.conf[index] = min(3, self.conf[index] + 1)
        elif self.conf[index] > 0:
            self.conf[index] -= 1
        else:
            self.exit[index] = actual
            self.conf[index] = 1


class NextBlockPredictor:
    """Exit + target prediction for one thread."""

    RAS_ENTRIES = 16

    def __init__(self, config: Optional[PredictorConfig] = None):
        self.config = config or PredictorConfig()
        cfg = self.config
        # 5 bits per exit entry (3-bit exit + 2-bit hysteresis) -> entries.
        self.local = _ExitTable(_pow2_entries(cfg.local_bits, 5) or 1)
        self.gshare = _ExitTable(_pow2_entries(cfg.global_bits, 5) or 1)
        self.n_choice = _pow2_entries(cfg.choice_bits, 2) or 1
        self.choice = [1] * self.n_choice            # weakly prefer gshare
        self.n_lht = 512
        self.lht = [0] * self.n_lht                  # per-block exit history
        self.ghist = 0
        self.hist_mask = (1 << (3 * cfg.exit_history_len)) - 1

        self.n_btb = _pow2_entries(cfg.btb_bits, 32) or 1
        self.btb: List[int] = [0] * self.n_btb
        self.n_ctb = _pow2_entries(cfg.ctb_bits, 32) or 1
        self.ctb: List[int] = [0] * self.n_ctb
        self.n_btype = _pow2_entries(cfg.btype_bits, 2) or 1
        self.btype = [BT_BRANCH] * self.n_btype
        self.ras = [0] * self.RAS_ENTRIES
        self.ras_top = 0

        self.predictions = 0
        self.exit_mispredicts = 0
        self.target_mispredicts = 0

    # ------------------------------------------------------------------
    def _block_index(self, addr: int) -> int:
        return (addr >> 7) & 0x7FFFFFFF

    def _predict_exit(self, addr: int) -> int:
        if self.config.kind == "static":
            return 0
        bi = self._block_index(addr)
        lhist = self.lht[bi % self.n_lht]
        local_exit = self.local.predict((bi ^ (lhist * 7)))
        if self.config.kind == "gshare":
            return self.gshare.predict(bi ^ self.ghist)
        global_exit = self.gshare.predict(bi ^ self.ghist)
        use_global = self.choice[bi % self.n_choice] >= 2
        return global_exit if use_global else local_exit

    def predict(self, addr: int, fallthrough: int) -> Prediction:
        """Predict the next block address after ``addr``.

        ``fallthrough`` is the address of the next sequential block (used
        as the call link address and as the fallback target).
        """
        self.predictions += 1
        bi = self._block_index(addr)
        exit_no = self._predict_exit(addr)
        checkpoint = Checkpoint(
            ghist=self.ghist,
            lhist_index=bi % self.n_lht,
            lhist_value=self.lht[bi % self.n_lht],
            ras_top=self.ras_top,
        )
        # Speculative history update with the predicted exit.
        self._push_history(bi, exit_no)

        btype = self.btype[(bi ^ exit_no) % self.n_btype] \
            if self.config.kind != "static" else BT_BRANCH
        if btype == BT_RETURN:
            self.ras_top = (self.ras_top - 1) % self.RAS_ENTRIES
            target = self.ras[self.ras_top]
        elif btype == BT_CALL:
            target = self.ctb[bi % self.n_ctb] or fallthrough
            checkpoint.ras_slot = self.ras_top
            checkpoint.ras_saved = self.ras[self.ras_top]
            self.ras[self.ras_top] = fallthrough
            self.ras_top = (self.ras_top + 1) % self.RAS_ENTRIES
        else:
            target = self.btb[(bi ^ exit_no) % self.n_btb] or fallthrough
        return Prediction(target=target or fallthrough, exit_no=exit_no,
                          checkpoint=checkpoint)

    def _push_history(self, bi: int, exit_no: int) -> None:
        self.ghist = ((self.ghist << 3) | exit_no) & self.hist_mask
        idx = bi % self.n_lht
        self.lht[idx] = ((self.lht[idx] << 3) | exit_no) & self.hist_mask

    def note_actual(self, bi: int, exit_no: int) -> None:
        """Re-push the architecturally-correct exit after a checkpoint
        restore (mispredict repair)."""
        self._push_history(bi, exit_no)

    # ------------------------------------------------------------------
    def restore(self, checkpoint: Checkpoint) -> None:
        """Undo speculative history/RAS updates after a flush."""
        self.ghist = checkpoint.ghist
        self.lht[checkpoint.lhist_index] = checkpoint.lhist_value
        if checkpoint.ras_slot is not None:
            self.ras[checkpoint.ras_slot] = checkpoint.ras_saved
        self.ras_top = checkpoint.ras_top

    def train(self, addr: int, actual_exit: int, actual_target: int,
              btype: int, predicted_exit: int, predicted_target: int,
              lhist_at_predict: int) -> None:
        """Commit-time update with the architecturally-resolved outcome."""
        if self.config.kind == "static":
            return
        bi = self._block_index(addr)
        local_index = bi ^ (lhist_at_predict * 7)
        global_index = bi ^ self._ghist_at(bi)
        local_was = self.local.predict(local_index)
        global_was = self.gshare.predict(global_index)
        self.local.update(local_index, actual_exit)
        self.gshare.update(global_index, actual_exit)
        if (local_was == actual_exit) != (global_was == actual_exit):
            ci = bi % self.n_choice
            if global_was == actual_exit:
                self.choice[ci] = min(3, self.choice[ci] + 1)
            else:
                self.choice[ci] = max(0, self.choice[ci] - 1)
        self.btype[(bi ^ actual_exit) % self.n_btype] = btype
        if btype == BT_CALL:
            self.ctb[bi % self.n_ctb] = actual_target
        elif btype == BT_BRANCH:
            self.btb[(bi ^ actual_exit) % self.n_btb] = actual_target
        if predicted_exit != actual_exit:
            self.exit_mispredicts += 1
        if predicted_target != actual_target:
            self.target_mispredicts += 1

    def warm_update(self, addr: int, fallthrough: int, actual_target: int,
                    actual_exit: int, actual_btype: int) -> None:
        """One block's worth of functional warming, allocation-free.

        Produces exactly the state a serialized
        ``predict -> (restore + note_actual on target mispredict) ->
        train`` round would — the in-order equivalent of the GT's
        fetch-time predict / flush repair / commit-time train — without
        building `Prediction`/`Checkpoint` objects.  Used by
        :class:`repro.sampling.ffwd.FastForwarder`.
        """
        static = self.config.kind == "static"
        bi = (addr >> 7) & 0x7FFFFFFF
        li = bi % self.n_lht
        lhist = self.lht[li]
        # -- predicted exit (predict())
        if static:
            exit_no = 0
            pbt = BT_BRANCH
        else:
            if self.config.kind == "gshare":
                exit_no = self.gshare.exit[(bi ^ self.ghist)
                                           % self.gshare.entries]
            else:
                use_global = self.choice[bi % self.n_choice] >= 2
                exit_no = (self.gshare.exit[(bi ^ self.ghist)
                                            % self.gshare.entries]
                           if use_global else
                           self.local.exit[(bi ^ (lhist * 7))
                                           % self.local.entries])
            pbt = self.btype[(bi ^ exit_no) % self.n_btype]
        self.predictions += 1
        # -- predicted target, with the speculative RAS effect held aside
        if pbt == BT_RETURN:
            target = self.ras[(self.ras_top - 1) % self.RAS_ENTRIES] \
                or fallthrough
        elif pbt == BT_CALL:
            target = self.ctb[bi % self.n_ctb] or fallthrough
        else:
            target = self.btb[(bi ^ exit_no) % self.n_btb] or fallthrough
        # -- history: predicted exit survives only when the target was
        # right (a wrong target restores the checkpoint and re-pushes the
        # architectural exit); the RAS keeps its speculative pop/push
        # likewise only on a correct prediction
        if target != actual_target:
            pushed = actual_exit
        else:
            pushed = exit_no
            if pbt == BT_RETURN:
                self.ras_top = (self.ras_top - 1) % self.RAS_ENTRIES
            elif pbt == BT_CALL:
                self.ras[self.ras_top] = fallthrough
                self.ras_top = (self.ras_top + 1) % self.RAS_ENTRIES
        self.ghist = ((self.ghist << 3) | pushed) & self.hist_mask
        self.lht[li] = ((lhist << 3) | pushed) & self.hist_mask
        # -- train(), which reads the post-push global history
        if static:
            return
        local_index = bi ^ (lhist * 7)
        global_index = bi ^ self.ghist
        local_was = self.local.predict(local_index)
        global_was = self.gshare.predict(global_index)
        self.local.update(local_index, actual_exit)
        self.gshare.update(global_index, actual_exit)
        if (local_was == actual_exit) != (global_was == actual_exit):
            ci = bi % self.n_choice
            if global_was == actual_exit:
                self.choice[ci] = min(3, self.choice[ci] + 1)
            else:
                self.choice[ci] = max(0, self.choice[ci] - 1)
        self.btype[(bi ^ actual_exit) % self.n_btype] = actual_btype
        if actual_btype == BT_CALL:
            self.ctb[bi % self.n_ctb] = actual_target
        elif actual_btype == BT_BRANCH:
            self.btb[(bi ^ actual_exit) % self.n_btb] = actual_target
        if exit_no != actual_exit:
            self.exit_mispredicts += 1
        if target != actual_target:
            self.target_mispredicts += 1

    def _ghist_at(self, bi: int) -> int:
        # Training uses the current global history as an approximation of
        # the history at prediction time; with in-order commit and
        # checkpoint repair the drift is bounded by the window depth.
        return self.ghist

    # ------------------------------------------------------------------
    # warm-state snapshot (repro.sampling checkpoints)
    def state_dict(self) -> dict:
        """Every mutable table, JSON-serializable and exact."""
        return {
            "local_exit": list(self.local.exit),
            "local_conf": list(self.local.conf),
            "gshare_exit": list(self.gshare.exit),
            "gshare_conf": list(self.gshare.conf),
            "choice": list(self.choice),
            "lht": list(self.lht),
            "ghist": self.ghist,
            "btb": list(self.btb),
            "ctb": list(self.ctb),
            "btype": list(self.btype),
            "ras": list(self.ras),
            "ras_top": self.ras_top,
        }

    def load_state(self, state: dict) -> None:
        """Restore tables captured by :meth:`state_dict` (sizes must
        match — the predictor must be built from the same config)."""
        for name, want in (("local_exit", self.local.entries),
                           ("gshare_exit", self.gshare.entries),
                           ("choice", self.n_choice), ("lht", self.n_lht),
                           ("btb", self.n_btb), ("ctb", self.n_ctb),
                           ("btype", self.n_btype),
                           ("ras", self.RAS_ENTRIES)):
            if len(state[name]) != want:
                raise ValueError(f"predictor state {name!r} has "
                                 f"{len(state[name])} entries, want {want}")
        self.local.exit = list(state["local_exit"])
        self.local.conf = list(state["local_conf"])
        self.gshare.exit = list(state["gshare_exit"])
        self.gshare.conf = list(state["gshare_conf"])
        self.choice = list(state["choice"])
        self.lht = list(state["lht"])
        self.ghist = state["ghist"]
        self.btb = list(state["btb"])
        self.ctb = list(state["ctb"])
        self.btype = list(state["btype"])
        self.ras = list(state["ras"])
        self.ras_top = state["ras_top"]

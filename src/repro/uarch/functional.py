"""tsim-arch: the untimed, block-atomic functional simulator.

Executes one TRIPS block at a time as a dataflow graph: reads fire first,
tokens flow along target edges, predicated instructions fire (or die) when
their predicate arrives, memory operations execute in LSID order, and the
block commits when it has produced its full output count — exactly one
branch, every register write, and every store-mask LSID (Section 4.4's
completion condition, without the timing).

This is the semantic reference for the cycle-level model and the fast
co-validation target for the compiler: for every workload, the functional
simulator's architectural results must match the TIR interpreter's golden
outputs bit for bit.

Null tokens (Section 4.2): a ``null`` instruction sends *null* tokens; any
instruction consuming a null data operand produces null; a store or register
write receiving null signals completion without touching state.  This is
what keeps the block's output count constant across predicated paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..isa import (
    EXIT_ADDRESS,
    ACCESS_SIZE,
    Instruction,
    NUM_ARCH_REGS,
    OpClass,
    Opcode,
    OperandKind,
    Program,
    TripsBlock,
)
from ..isa.alu import effective_address, execute
from ..isa.opcodes import SIGNED_LOADS
from ..mem.backing import BackingStore
from ..tir.semantics import truncate_load


class SimError(RuntimeError):
    """Deadlock, malformed block behaviour, or budget exhaustion."""


#: distinguished token payload for nullified values.
NULL_TOKEN = object()


@dataclass
class FunctionalStats:
    blocks: int = 0
    fired: int = 0               # body instructions that actually executed
    nullified_outputs: int = 0
    reads: int = 0
    loads: int = 0
    stores: int = 0
    branches_by_exit: Dict[int, int] = field(default_factory=dict)
    block_visits: Dict[int, int] = field(default_factory=dict)


@dataclass
class _Station:
    """Operand collection state for one body instruction."""

    inst: Instruction
    left: object = None
    right: object = None
    pred: object = None
    fired: bool = False
    dead: bool = False

    def ready(self) -> bool:
        if self.fired or self.dead:
            return False
        need = self.inst.opcode.num_operands
        if need >= 1 and self.left is None:
            return False
        if need >= 2 and self.right is None:
            return False
        if self.inst.pred is not None and self.pred is None:
            return False
        return True


class FunctionalSim:
    """Executes a :class:`Program` block-atomically, without timing."""

    def __init__(self, program: Program, max_blocks: int = 2_000_000):
        program.validate()
        self.program = program
        self.max_blocks = max_blocks
        self.memory = BackingStore()
        self.memory.load_image(program.memory_image())
        self.regs: List[int] = [0] * NUM_ARCH_REGS
        for reg, value in program.initial_regs.items():
            self.regs[reg] = value & (2**64 - 1)
        self.stats = FunctionalStats()
        self.pc = program.entry
        self.halted = False

    # ------------------------------------------------------------------
    def run(self) -> FunctionalStats:
        """Execute until HALT or a branch to the exit address."""
        while not self.halted:
            if self.stats.blocks >= self.max_blocks:
                raise SimError(f"block budget {self.max_blocks} exhausted")
            self.step_block()
        return self.stats

    def step_block(self) -> None:
        """Fetch, execute and commit the block at the current PC."""
        block = self.program.block_at(self.pc)
        next_pc, reg_writes = self._execute_block(block)
        for reg, value in reg_writes.items():
            self.regs[reg] = value
        self.stats.blocks += 1
        self.stats.block_visits[self.pc] = \
            self.stats.block_visits.get(self.pc, 0) + 1
        if next_pc == EXIT_ADDRESS:
            self.halted = True
        else:
            self.pc = next_pc

    # ------------------------------------------------------------------
    def _execute_block(self, block: TripsBlock) -> Tuple[int, Dict[int, int]]:
        stations = {slot: _Station(inst) for slot, inst in block.body.items()}
        write_values: Dict[int, object] = {}     # write slot -> token
        store_mask = block.store_mask
        # Stores are buffered until block commit (the LSQ does this in the
        # detailed model); loads forward from earlier-LSID buffered stores.
        store_buffer: List[Tuple[int, int, int, int]] = []  # (lsid,addr,size,val)
        stores_done: set = set()
        store_lsids = sorted(l for l in range(32) if (store_mask >> l) & 1)
        pending_loads: List[Tuple[int, _Station]] = []
        branch_result: Optional[int] = None

        worklist: List[Tuple[int, object, OperandKind]] = []

        def deliver(target, token) -> None:
            if target.kind is OperandKind.WRITE:
                if target.slot in write_values:
                    raise SimError(
                        f"block {block.name}: write slot {target.slot} "
                        "received two values — outputs not constant")
                write_values[target.slot] = token
                if token is NULL_TOKEN:
                    self.stats.nullified_outputs += 1
                return
            worklist.append((target.slot, token, target.kind))

        # Reads fire unconditionally at block start.
        for read in block.reads.values():
            self.stats.reads += 1
            value = self.regs[read.reg]
            for target in read.targets:
                deliver(target, value)

        def try_fire(slot: int) -> None:
            station = stations[slot]
            if not station.ready():
                return
            inst = station.inst
            if inst.pred is not None:
                pred_token = station.pred
                if pred_token is NULL_TOKEN:
                    station.dead = True
                    return
                if bool(pred_token & 1) != inst.pred:
                    station.dead = True
                    return
            station.fired = True
            if inst.opcode.is_store:
                run_store(station)
                return
            if inst.opcode.is_load:
                if any(l < inst.lsid and l not in stores_done
                       for l in store_lsids):
                    pending_loads.append((slot, station))
                else:
                    run_load(station)
                return
            self.stats.fired += 1
            run_alu(slot, station)

        def run_alu(slot: int, station: _Station) -> None:
            inst = station.inst
            opclass = inst.opcode.opclass
            if opclass is OpClass.BRANCH:
                resolve_branch(inst, station)
                return
            if opclass is OpClass.NULLIFY:
                for target in inst.targets:
                    deliver(target, NULL_TOKEN)
                return
            if station.left is NULL_TOKEN or station.right is NULL_TOKEN:
                result = NULL_TOKEN     # null poisons downstream dataflow
            else:
                result = execute(inst, station.left, station.right)
            for target in inst.targets:
                deliver(target, result)

        def run_store(station: _Station) -> None:
            inst = station.inst
            self.stats.fired += 1
            self.stats.stores += 1
            stores_done.add(inst.lsid)
            if station.left is NULL_TOKEN or station.right is NULL_TOKEN:
                self.stats.nullified_outputs += 1
            else:
                address = effective_address(inst, station.left)
                store_buffer.append(
                    (inst.lsid, address, ACCESS_SIZE[inst.opcode],
                     station.right))
            # A store arrival may unblock held-back loads.
            still_waiting = []
            for slot, load_station in pending_loads:
                lsid = load_station.inst.lsid
                if any(l < lsid and l not in stores_done for l in store_lsids):
                    still_waiting.append((slot, load_station))
                else:
                    run_load(load_station)
            pending_loads[:] = still_waiting

        def run_load(station: _Station) -> None:
            inst = station.inst
            self.stats.fired += 1
            self.stats.loads += 1
            if station.left is NULL_TOKEN:
                result = NULL_TOKEN
            else:
                address = effective_address(inst, station.left)
                size = ACCESS_SIZE[inst.opcode]
                raw = self._load_with_forwarding(
                    address, size, inst.lsid, store_buffer)
                result = truncate_load(raw, size,
                                       inst.opcode in SIGNED_LOADS)
            for target in inst.targets:
                deliver(target, result)

        def resolve_branch(inst: Instruction, station: _Station) -> None:
            nonlocal branch_result
            if branch_result is not None:
                raise SimError(f"block {block.name}: two branches fired")
            self.stats.branches_by_exit[inst.exit_no] = \
                self.stats.branches_by_exit.get(inst.exit_no, 0) + 1
            if inst.opcode is Opcode.HALT:
                branch_result = EXIT_ADDRESS
            elif inst.opcode in (Opcode.BRO, Opcode.CALLO):
                branch_result = (self.pc + inst.offset) & (2**64 - 1)
                if inst.opcode is Opcode.CALLO and inst.targets:
                    link = (self.pc + block.size_bytes) & (2**64 - 1)
                    deliver(inst.targets[0], link)
            else:  # BR / RET: target address arrives as the left operand
                if station.left is NULL_TOKEN:
                    raise SimError("branch received a null target address")
                branch_result = station.left

        # Token-pump main loop.
        guard = 0
        fired_any = True
        while True:
            while worklist:
                guard += 1
                if guard > 100_000:
                    raise SimError(f"block {block.name}: token storm")
                slot, token, kind = worklist.pop()
                if slot not in stations:
                    raise SimError(f"token for empty slot {slot}")
                station = stations[slot]
                attr = {OperandKind.LEFT: "left", OperandKind.RIGHT: "right",
                        OperandKind.PRED: "pred"}[kind]
                if getattr(station, attr) is not None:
                    raise SimError(
                        f"block {block.name}: slot {slot} received operand "
                        f"{attr} twice")
                setattr(station, attr, token)
                try_fire(slot)
            # Zero-operand instructions (constants, unpredicated null) fire
            # spontaneously; loop until a fixpoint.
            fired_any = False
            for slot, station in stations.items():
                if station.ready() and station.inst.opcode.num_operands == 0 \
                        and not station.fired:
                    try_fire(slot)
                    fired_any = True
                    break
            if not fired_any and not worklist:
                break

        # Completion check: one branch + all writes + all store LSIDs.
        if branch_result is None:
            raise SimError(f"block {block.name}: no branch fired (deadlock?)")
        missing_writes = set(block.writes) - set(write_values)
        if missing_writes:
            raise SimError(
                f"block {block.name}: write slots {sorted(missing_writes)} "
                "never received values")
        missing_stores = set(store_lsids) - stores_done
        if missing_stores:
            raise SimError(
                f"block {block.name}: store LSIDs {sorted(missing_stores)} "
                "never signalled")

        # Block commit: drain the store buffer to memory in LSID order.
        for _, address, size, value in sorted(store_buffer):
            self.memory.write(address, value, size)

        reg_writes = {
            block.writes[slot].reg: token
            for slot, token in write_values.items() if token is not NULL_TOKEN
        }
        return branch_result, reg_writes

    def _load_with_forwarding(self, address: int, size: int, lsid: int,
                              store_buffer) -> int:
        """Memory bytes overlaid with earlier-LSID buffered store bytes.

        Stores in ``store_buffer`` have not reached memory yet (they drain
        at block commit), so a load must merge them in, byte-granular and
        in ascending LSID order — the same answer the detailed LSQ gives.
        """
        result = bytearray(self.memory.read_bytes(address, size))
        for s_lsid, s_addr, s_size, s_value in sorted(store_buffer):
            if s_lsid >= lsid:
                break
            lo = max(address, s_addr)
            hi = min(address + size, s_addr + s_size)
            if lo >= hi:
                continue
            s_bytes = (s_value & ((1 << (8 * s_size)) - 1)).to_bytes(
                s_size, "little")
            for b in range(lo, hi):
                result[b - address] = s_bytes[b - s_addr]
        return int.from_bytes(result, "little")

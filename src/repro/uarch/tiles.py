"""Execution, register and data tiles of the detailed model (Figure 4).

Each tile class owns exactly the state its silicon counterpart holds and
talks to the rest of the core only through messages (OPN packets) and the
analytically-timed control networks managed by
:class:`repro.uarch.proc.TripsProcessor` (see that module's docstring for
the timing conventions).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..isa import ACCESS_SIZE, OpClass, Opcode, OperandKind
from ..isa.alu import execute
from ..isa.opcodes import SIGNED_LOADS
from ..telemetry import recorder as _tel
from ..tir.semantics import truncate_load
from .lsq import DependencePredictor, LoadStoreQueue
from .mesh import Packet

MASK64 = (1 << 64) - 1


# ----------------------------------------------------------------------
# Messages carried as OPN packet payloads
# ----------------------------------------------------------------------
@dataclass(slots=True)
class OperandMsg:
    """A 64-bit operand (or null token) headed for one target."""

    block_uid: int
    target: object                 # body slot int, or ("W", write slot)
    kind: OperandKind
    value: int
    is_null: bool
    producer_key: Tuple
    send_t: int


@dataclass(slots=True)
class MemRequest:
    block_uid: int
    seq: int
    lsid: int
    is_store: bool
    address: Optional[int]         # None for nullified stores
    size: int
    data: int
    is_null: bool
    signed: bool
    targets: Tuple                 # load reply destinations
    producer_key: Tuple
    send_t: int


@dataclass(slots=True)
class BranchMsg:
    block_uid: int
    exit_no: int
    target: int
    btype: int
    producer_key: Tuple
    send_t: int


# ----------------------------------------------------------------------
# Execution tile
# ----------------------------------------------------------------------
class _Station:
    """One reservation station: an instruction plus its operand buffer."""

    __slots__ = ("inst", "seq", "left", "right", "pred", "left_null",
                 "right_null", "fired", "dead", "dispatch_t", "release",
                 "ready_t", "waiting")

    def __init__(self):
        self.inst = None
        self.seq = -1
        self.left = None
        self.right = None
        self.pred = None
        self.left_null = False
        self.right_null = False
        self.fired = False
        self.dead = False
        self.dispatch_t = -1
        self.release = ("dispatch", -1)
        self.ready_t = -1
        self.waiting = False       # telemetry: dispatched but not ready

    def ready(self) -> bool:
        if self.inst is None or self.fired or self.dead:
            return False
        need = self.inst.opcode.num_operands
        if need >= 1 and self.left is None:
            return False
        if need >= 2 and self.right is None:
            return False
        if self.inst.pred is not None and self.pred is None:
            return False
        return True


class ExecTile:
    """One of the 16 ETs: single-issue pipeline + 64 reservation stations."""

    def __init__(self, proc, index: int):
        self.proc = proc
        self.index = index
        self.coord = (1 + index // 4, 1 + index % 4)
        # block uid -> {slot -> _Station}: two-level so a block's stations
        # vanish in O(1) at commit/flush instead of an O(stations) sweep
        self.stations: Dict[int, Dict[object, _Station]] = {}
        self.candidates: set = set()
        self.div_busy_until = 0
        self.outbox: deque = deque()
        self.issued = 0
        # telemetry (maintained only when proc.tel is not None)
        self._tel_waiting = 0      # dispatched stations missing operands
        self._tel_issue_t = -1     # cycle of the most recent issue

    def is_idle(self) -> bool:
        """No issuable instruction and nothing waiting to inject.

        Stations still waiting for operands don't count: they can only be
        woken by an OPN delivery or a timed event, both of which the fast
        path accounts for separately.
        """
        return not self.candidates and not self.outbox

    # -- state arrival --------------------------------------------------
    def _station(self, block_uid: int, slot: int) -> _Station:
        per_block = self.stations.get(block_uid)
        if per_block is None:
            per_block = self.stations[block_uid] = {}
        station = per_block.get(slot)
        if station is None:
            station = per_block[slot] = _Station()
        return station

    def dispatch_inst(self, block_uid: int, seq: int, slot: int, inst,
                      t: int) -> None:
        if block_uid not in self.proc.live_uids:
            return                       # flushed before its GDN stream ended
        station = self._station(block_uid, slot)
        station.inst = inst
        station.seq = seq
        station.dispatch_t = t
        if self.proc.tel is not None and not station.ready():
            station.waiting = True
            self._tel_waiting += 1
        self._maybe_ready((block_uid, slot), station, ("dispatch", t))

    def deliver_operand(self, msg: OperandMsg, t: int,
                        hops: int = 0, queue: int = 0, local: bool = False) -> None:
        if msg.block_uid not in self.proc.live_uids:
            return                       # stale packet from a flushed block
        station = self._station(msg.block_uid, msg.target)
        if msg.kind is OperandKind.LEFT:
            station.left = msg.value
            station.left_null = msg.is_null
        elif msg.kind is OperandKind.RIGHT:
            station.right = msg.value
            station.right_null = msg.is_null
        else:
            station.pred = (msg.value, msg.is_null)
        release = ("local", msg.producer_key, t) if local else \
            ("operand", msg.producer_key, msg.send_t, hops, queue, t)
        self._maybe_ready((msg.block_uid, msg.target), station, release)

    def _maybe_ready(self, key, station: _Station, release) -> None:
        """Mark the station issue-ready if this arrival completed it.

        ``release`` records the last-arriving requirement, which is what
        the critical-path analyzer walks backwards along.

        Candidates carry ``(seq, slot, uid, station)`` so issue selection
        is a single ``min()`` over the set — the (seq, slot) prefix is the
        age-ordered priority and is unique, so the station itself is
        never compared.  Commit and flush filter the set by uid, which
        keeps every member's station live and ready.
        """
        if station.ready():
            if station.waiting:
                station.waiting = False
                self._tel_waiting -= 1
            station.release = release
            station.ready_t = self.proc.cycle
            self.candidates.add((station.seq, key[1], key[0], station))

    # -- issue ------------------------------------------------------------
    def tick(self, t: int) -> None:
        if self.outbox:
            self._drain_outbox()
        candidates = self.candidates
        if not candidates:
            return
        best = min(candidates)
        station = best[3]
        if station.inst.opcode is Opcode.DIVS and self.div_busy_until > t:
            # rare structural hazard: the oldest candidate is a divide
            # waiting on the busy divider; issue the next-oldest
            # non-divide instead (the original scan's behaviour)
            best = None
            for cand in sorted(candidates):
                if cand[3].inst.opcode is Opcode.DIVS:
                    continue
                best = cand
                break
            if best is None:
                return
            station = best[3]
        candidates.discard(best)
        best_key = (best[2], best[1])
        inst = station.inst
        # Predicate check at issue: mismatch kills the instruction.
        if inst.pred is not None:
            pvalue, pnull = station.pred
            if pnull or bool(pvalue & 1) != inst.pred:
                station.dead = True
                return
        station.fired = True
        self.issued += 1
        if self.proc.tel is not None:
            self._tel_issue_t = t
        block = self.proc.window_by_uid.get(best_key[0])
        if block is not None:
            block.fired += 1
        latency = inst.opcode.latency
        if inst.opcode is Opcode.DIVS:
            self.div_busy_until = t + latency
        if self.proc.trace is not None:
            ev = self.proc.trace.inst(best_key, inst.opcode.mnemonic)
            ev.et = self.index
            ev.dispatch_t = station.dispatch_t
            ev.ready_t = station.ready_t
            ev.issue_t = t
            ev.complete_t = t + latency
            ev.release = station.release
        self.proc.schedule(t + latency, lambda s=station, k=best_key:
                           self._complete(k, s))

    # -- completion / result routing ---------------------------------------
    def _complete(self, key: Tuple[int, int], station: _Station) -> None:
        t = self.proc.cycle
        block_uid, slot = key
        if block_uid not in self.proc.live_uids:
            return
        inst = station.inst
        opclass = inst.opcode.opclass
        if opclass is OpClass.BRANCH:
            self._complete_branch(key, station, t)
            return
        if inst.opcode.is_memory:
            self._complete_memory(key, station, t)
            return
        if opclass is OpClass.NULLIFY:
            value, is_null = 0, True
        elif station.left_null or station.right_null:
            value, is_null = 0, True
        else:
            value = execute(inst, station.left, station.right)
            is_null = False
        for target in inst.targets:
            self._route(key, target, value, is_null, t)

    def _route(self, producer_key, target, value, is_null, t) -> None:
        block_uid = producer_key[0]
        if target.kind is OperandKind.WRITE:
            msg = OperandMsg(block_uid, ("W", target.slot), target.kind,
                             value, is_null, producer_key, t)
            dest = self.proc.rt_coord(target.slot // 8)
            self._send(msg, dest, t)
            return
        msg = OperandMsg(block_uid, target.slot, target.kind, value,
                         is_null, producer_key, t)
        consumer_et = target.slot % 16
        if consumer_et == self.index:
            # local bypass: usable for issue in the next cycle
            self.deliver_operand(msg, t, local=True)
        else:
            self._send(msg, self.proc.et_coord(consumer_et), t)

    def _complete_memory(self, key, station: _Station, t: int) -> None:
        inst = station.inst
        block = self.proc.window_by_uid.get(key[0])
        if block is None:
            return
        if inst.opcode.is_store:
            is_null = station.left_null or station.right_null
            address = None if is_null else \
                (station.left + inst.imm) & MASK64
            msg = MemRequest(key[0], block.seq, inst.lsid, True, address,
                             ACCESS_SIZE[inst.opcode],
                             0 if is_null else station.right, is_null,
                             False, (), key, t)
        else:
            if station.left_null:
                # A nullified load produces null tokens for its consumers
                # directly; it never reaches the DT (and loads are not
                # block outputs, so nothing waits on it).
                for target in inst.targets:
                    self._route(key, target, 0, True, t)
                return
            address = (station.left + inst.imm) & MASK64
            msg = MemRequest(key[0], block.seq, inst.lsid, False, address,
                             ACCESS_SIZE[inst.opcode], 0, False,
                             inst.opcode in SIGNED_LOADS,
                             tuple(inst.targets), key, t)
        dest = self.proc.dt_coord_for(0 if msg.address is None
                                      else msg.address)
        self._send(msg, dest, t)

    def _complete_branch(self, key, station: _Station, t: int) -> None:
        inst = station.inst
        block = self.proc.window_by_uid.get(key[0])
        if block is None:
            return
        from .predictor import BT_BRANCH, BT_CALL, BT_RETURN
        if inst.opcode is Opcode.HALT:
            target, btype = 0, BT_BRANCH
        elif inst.opcode is Opcode.BRO:
            target, btype = (block.addr + inst.offset) & MASK64, BT_BRANCH
        elif inst.opcode is Opcode.CALLO:
            target, btype = (block.addr + inst.offset) & MASK64, BT_CALL
            if inst.targets:
                link = (block.addr + block.decoded.block.size_bytes) & MASK64
                self._route(key, inst.targets[0], link, False, t)
        else:  # BR / RET
            target = station.left & MASK64
            btype = BT_RETURN if inst.opcode is Opcode.RET else BT_BRANCH
        msg = BranchMsg(key[0], inst.exit_no, target, btype, key, t)
        self._send(msg, self.proc.GT_COORD, t)

    def _send(self, msg, dest, t) -> None:
        packet = Packet(src=self.coord, dest=dest, payload=msg)
        if self.outbox:
            self.outbox.append(packet)
            self._drain_outbox()
        elif not self.proc.opn.inject(self.coord, packet):
            self.outbox.append(packet)

    def _drain_outbox(self) -> None:
        while self.outbox:
            if not self.proc.opn.inject(self.coord, self.outbox[0]):
                return
            self.outbox.popleft()

    # -- flush -------------------------------------------------------------
    def flush(self, uids) -> None:
        for uid in uids:
            per_block = self.stations.pop(uid, None)
            if per_block and self._tel_waiting:
                for station in per_block.values():
                    if station.waiting:
                        self._tel_waiting -= 1
        if self.candidates:
            self.candidates = {c for c in self.candidates
                               if c[2] not in uids}
        if self.outbox:
            self.outbox = deque(p for p in self.outbox
                                if p.payload.block_uid not in uids)

    # -- telemetry ---------------------------------------------------------
    def tel_state(self, t: int) -> str:
        """This tile's state for cycle ``t`` (called after the tick)."""
        if self._tel_issue_t == t:
            return _tel.BUSY
        if self.outbox:
            return _tel.OPN_BACKPRESSURE
        if self.candidates:
            return _tel.BUSY        # ready instructions backed up at issue
        if self._tel_waiting:
            return _tel.WAITING_OPERAND
        return _tel.IDLE

    def tel_account(self, timeline, t0: int, t1: int) -> None:
        """Charge a fast-forwarded stretch ``[t0, t1)`` to the timeline."""
        state = _tel.WAITING_OPERAND if self._tel_waiting else _tel.IDLE
        timeline.add(state, t0, t1)


# ----------------------------------------------------------------------
# Register tile
# ----------------------------------------------------------------------
class _WriteEntry:
    __slots__ = ("reg", "arrived", "value", "is_null", "producer_key",
                 "arrive_t")

    def __init__(self, reg: int):
        self.reg = reg
        self.arrived = False
        self.value = 0
        self.is_null = False
        self.producer_key = None
        self.arrive_t = -1


class RegTile:
    """One of the 4 RTs: a register bank + read and write queues."""

    def __init__(self, proc, bank: int):
        self.proc = proc
        self.bank = bank
        self.coord = (0, 1 + bank)
        # block uid -> {reg -> _WriteEntry}
        self.write_queues: Dict[int, Dict[int, _WriteEntry]] = {}
        # reads waiting for an in-flight write: (block_uid, reg, read)
        self.waiting_reads: List[Tuple[int, object]] = []
        self.read_requests: deque = deque()
        self.outbox: deque = deque()
        self.expected_writes: Dict[int, int] = {}   # uid -> remaining count
        self.commit_free_t = 0
        self.forwards = 0
        self.file_reads = 0
        self._tel_active_t = -1    # telemetry: last cycle a read was served

    def is_idle(self) -> bool:
        """No read to serve this cycle and nothing waiting to inject.

        ``waiting_reads`` don't count: they are woken exclusively by write
        deliveries (OPN packets) or flushes, never by time passing.
        """
        return not self.read_requests and not self.outbox

    # -- dispatch ---------------------------------------------------------
    def declare_writes(self, block_uid: int, regs: List[int], t: int) -> None:
        if block_uid not in self.proc.live_uids:
            return
        queue = self.write_queues.setdefault(block_uid, {})
        for reg in regs:
            queue[reg] = _WriteEntry(reg)
        self.expected_writes[block_uid] = len(regs)
        if not regs:
            self.proc.rt_reports_writes_done(self.bank, block_uid, t)

    def dispatch_read(self, block_uid: int, read_slot: int, read, t: int) -> None:
        self.read_requests.append((block_uid, read_slot, read, t))

    # -- write value arrival ----------------------------------------------
    def deliver_write(self, msg: OperandMsg, t: int) -> None:
        if msg.block_uid not in self.proc.live_uids:
            return
        wslot = msg.target[1]
        block = self.proc.window_by_uid[msg.block_uid]
        reg = block.decoded.write_reg_by_slot[wslot]
        entry = self.write_queues[msg.block_uid][reg]
        if entry.arrived:
            raise RuntimeError(
                f"write slot {wslot} of block {msg.block_uid} written twice")
        entry.arrived = True
        entry.value = msg.value
        entry.is_null = msg.is_null
        entry.producer_key = msg.producer_key
        entry.arrive_t = t
        remaining = self.expected_writes[msg.block_uid] - 1
        self.expected_writes[msg.block_uid] = remaining
        if remaining == 0:
            self.proc.rt_reports_writes_done(self.bank, msg.block_uid, t,
                                             msg.producer_key)
        self._wake_waiting(t)

    def _wake_waiting(self, t: int) -> None:
        # A woken read may target a write slot on this same RT, delivering
        # locally and re-entering this method; moving the list out first
        # gives each waiting entry exactly one owner.
        pending, self.waiting_reads = self.waiting_reads, []
        for item in pending:
            if not self._try_read(item, t):
                self.waiting_reads.append(item)

    # -- read processing -----------------------------------------------------
    def tick(self, t: int) -> None:
        if self.outbox:
            self._drain_outbox()
        # two read ports per bank (Section 3.3)
        for _ in range(2):
            if not self.read_requests:
                break
            if self.proc.tel is not None:
                self._tel_active_t = t
            item = self.read_requests.popleft()
            if not self._try_read(item, t):
                self.waiting_reads.append(item)

    def _try_read(self, item, t: int) -> bool:
        block_uid, read_slot, read, dispatch_t = item
        if block_uid not in self.proc.live_uids:
            return True
        block = self.proc.window_by_uid[block_uid]
        # search write queues of older in-flight blocks, youngest first
        for older in self.proc.older_blocks(block.seq):
            queue = self.write_queues.get(older.uid)
            if not queue or read.reg not in queue:
                continue
            entry = queue[read.reg]
            if not entry.arrived:
                return False                       # buffered until it lands
            if entry.is_null:
                continue                           # nullified: keep looking
            if entry.arrive_t <= dispatch_t:
                # the value was already waiting: the read was bound by its
                # own GDN arrival, not by the producing instruction
                release = ("dispatch", dispatch_t)
            else:
                release = ("regfwd", entry.producer_key, t, entry.arrive_t)
            self._emit_read_value(block_uid, read_slot, read, entry.value,
                                  release, t)
            self.forwards += 1
            return True
        value = self.proc.regs[read.reg]
        self.file_reads += 1
        self._emit_read_value(block_uid, read_slot, read, value,
                              ("dispatch", dispatch_t), t)
        return True

    def _emit_read_value(self, block_uid, read_slot, read, value, release,
                         t) -> None:
        key = (block_uid, ("R", read_slot))
        if self.proc.trace is not None:
            ev = self.proc.trace.inst(key, "read")
            ev.dispatch_t = ev.dispatch_t if ev.dispatch_t >= 0 else t
            ev.issue_t = t
            ev.complete_t = t
            ev.release = release
        for target in read.targets:
            if target.kind is OperandKind.WRITE:
                dest = self.proc.rt_coord(target.slot // 8)
                msg = OperandMsg(block_uid, ("W", target.slot), target.kind,
                                 value, False, key, t)
            else:
                dest = self.proc.et_coord(target.slot % 16)
                msg = OperandMsg(block_uid, target.slot, target.kind,
                                 value, False, key, t)
            if dest == self.coord:
                self.deliver_write(msg, t)
                continue
            self.outbox.append(Packet(src=self.coord, dest=dest, payload=msg))
        self._drain_outbox()

    def _drain_outbox(self) -> None:
        while self.outbox:
            if not self.proc.opn.inject(self.coord, self.outbox[0]):
                return
            self.outbox.popleft()

    # -- commit / flush --------------------------------------------------------
    def commit_block(self, block_uid: int, arrive_t: int) -> int:
        """Write the block's register values; returns the finish time."""
        queue = self.write_queues.get(block_uid, {})
        writes = [e for e in queue.values() if e.arrived and not e.is_null]
        for entry in writes:
            self.proc.regs[entry.reg] = entry.value
        start = max(arrive_t, self.commit_free_t)
        done = start + max(1, len(writes))          # one write port
        self.commit_free_t = done
        return done

    def deallocate(self, block_uid: int) -> None:
        self.write_queues.pop(block_uid, None)
        self.expected_writes.pop(block_uid, None)

    def flush(self, uids) -> None:
        for uid in uids:
            self.write_queues.pop(uid, None)
            self.expected_writes.pop(uid, None)
        if self.waiting_reads:
            self.waiting_reads = [w for w in self.waiting_reads
                                  if w[0] not in uids]
        if self.read_requests:
            self.read_requests = deque(r for r in self.read_requests
                                       if r[0] not in uids)
        if self.outbox:
            self.outbox = deque(p for p in self.outbox
                                if p.payload.block_uid not in uids)
        # reads of surviving blocks that waited on a flushed block's write
        # must retry (they will now see deeper state or the register file)
        self._wake_waiting(self.proc.cycle)

    # -- telemetry ---------------------------------------------------------
    def tel_state(self, t: int) -> str:
        if self._tel_active_t == t or self.commit_free_t > t:
            return _tel.BUSY        # serving reads or draining commit writes
        if self.outbox:
            return _tel.OPN_BACKPRESSURE
        if self.read_requests:
            return _tel.BUSY        # reads backed up on the two ports
        if self.waiting_reads:
            return _tel.WAITING_OPERAND
        return _tel.IDLE

    def tel_account(self, timeline, t0: int, t1: int) -> None:
        if self.commit_free_t > t0:
            mid = min(self.commit_free_t, t1)
            timeline.add(_tel.BUSY, t0, mid)
            t0 = mid
        if t0 < t1:
            state = _tel.WAITING_OPERAND if self.waiting_reads else _tel.IDLE
            timeline.add(state, t0, t1)


# ----------------------------------------------------------------------
# Data tile
# ----------------------------------------------------------------------
class DataTile:
    """One of the 4 DTs: L1D bank + LSQ copy + dependence predictor."""

    def __init__(self, proc, index: int):
        self.proc = proc
        self.index = index
        self.coord = (1 + index, 0)
        cfg = proc.config
        from .caches import CacheBank
        self.cache = CacheBank(cfg.l1d_bank_kb * 1024, cfg.l1d_assoc,
                               cfg.line_bytes)
        self.lsq = LoadStoreQueue(cfg.lsq_entries)
        self.deppred = DependencePredictor(
            cfg.dep_predictor_bits, cfg.dep_clear_interval_blocks,
            cfg.dep_predictor_enabled)
        self.requests: deque = deque()
        self.deferred: List[MemRequest] = []
        self.outbox: deque = deque()
        self.commit_free_t = 0
        self.loads = 0
        self.stores = 0
        self.deferred_count = 0
        # telemetry (maintained only when proc.tel is not None)
        self._tel_active_t = -1    # last cycle a request was processed
        self._tel_pending_loads = 0   # cache misses awaiting their reply

    def is_idle(self) -> bool:
        """Nothing queued, deferred, or waiting to inject.

        Deferred loads gate the fast path even though nothing is "moving":
        :meth:`_retry_deferred` re-evaluates them against wall-clock DSN
        propagation (``prior_stores_arrived``), so they can become
        executable purely by time advancing.
        """
        return not self.requests and not self.deferred and not self.outbox

    def next_work_t(self, t: int) -> Optional[int]:
        """Event-wheel wakeup: the earliest cycle this DT can act.

        ``t`` while requests or outbox packets demand per-cycle service;
        with only deferred loads pending, the earliest cycle a deferral's
        gating stores could all be within DSN reach (store arrival time
        plus inter-DT hop distance — the ``prior_stores_arrived`` gate).
        A deferral whose gating store has not even arrived yet contributes
        no wakeup: the store's own delivery re-opens the mesh, and if it
        never comes the slow path's retries would be no-ops too.
        """
        if self.requests or self.outbox:
            return t
        if not self.deferred:
            return None
        proc = self.proc
        live = proc.live_uids
        wake = None
        for msg, _hops, _queue in self.deferred:
            if msg.block_uid not in live:
                return t       # stale entry: the next tick drops it
            work = proc.deferred_wake_t((msg.seq, msg.lsid), self.index)
            if work is None:
                continue       # gated on a store still in flight
            if work < t:
                # cycle ``t`` has not been stepped yet (the run loop asks
                # after advancing ``cycle``), so a gate that opened in the
                # past is serviceable at ``t`` itself — never ``t + 1``
                work = t
            if wake is None or work < wake:
                wake = work
        return wake

    # -- arrivals ---------------------------------------------------------
    def deliver_request(self, msg: MemRequest, hops: int, queue: int,
                        t: int) -> None:
        if msg.block_uid not in self.proc.live_uids:
            return
        self.requests.append((msg, hops, queue, t))

    # -- main per-cycle work -------------------------------------------------
    def tick(self, t: int) -> None:
        if self.outbox:
            self._drain_outbox()
        # the LSQ accepts one load or store per cycle (Section 3.5);
        # oldest program order first, so speculative younger blocks'
        # traffic cannot starve the block the window is waiting on
        if self.requests:
            best = min(range(len(self.requests)),
                       key=lambda i: (self.requests[i][0].seq,
                                      self.requests[i][0].lsid))
            msg, hops, queue, arrive_t = self.requests[best]
            del self.requests[best]
            if self.proc.tel is not None:
                self._tel_active_t = t
            if msg.block_uid in self.proc.live_uids:
                if msg.is_store:
                    self._process_store(msg, t)
                else:
                    self._process_load(msg, hops, queue, arrive_t, t)
        self._retry_deferred(t)

    def _process_store(self, msg: MemRequest, t: int) -> None:
        self.stores += 1
        key = (msg.seq, msg.lsid)
        violators = self.lsq.insert_store(key, msg.address, msg.size,
                                          msg.data, msg.is_null)
        self.proc.note_store_arrival(msg, self.index, t)
        if violators:
            load_key = violators[0]
            entry = self.lsq.entries.get(load_key)
            if entry is not None and entry.address is not None:
                self.deppred.record_violation(entry.address)
            self.proc.request_violation_flush(load_key[0], self.index, t)

    def _process_load(self, msg: MemRequest, hops, queue, arrive_t,
                      t: int) -> None:
        key = (msg.seq, msg.lsid)
        if self.deppred.predict_dependent(msg.address) and \
                not self.proc.prior_stores_arrived(key, self.index, t):
            self.deferred.append((msg, hops, queue))
            self.deferred_count += 1
            return
        self._execute_load(msg, t, hops, queue)

    def _retry_deferred(self, t: int) -> None:
        if not self.deferred:
            return
        still = []
        for msg, hops, queue in self.deferred:
            if msg.block_uid not in self.proc.live_uids:
                continue
            key = (msg.seq, msg.lsid)
            if self.proc.prior_stores_arrived(key, self.index, t):
                self._execute_load(msg, t, hops, queue)
            else:
                still.append((msg, hops, queue))
        self.deferred = still

    def _execute_load(self, msg: MemRequest, t: int, hops: int = 0,
                      queue: int = 0) -> None:
        self.loads += 1
        if self.proc.tel is not None:
            self._tel_active_t = t     # covers deferred-load retries too
        key = (msg.seq, msg.lsid)
        self.lsq.insert_load(key, msg.address, msg.size)
        committed = self.proc.memory.read_bytes(msg.address, msg.size)
        raw = self.lsq.forward(key, msg.address, msg.size, committed)
        value = truncate_load(raw, msg.size, msg.signed)
        cfg = self.proc.config
        hit = self.cache.lookup(msg.address)
        if not hit:
            self.cache.fill(msg.address)
        if hit:
            latency = cfg.l1_hit_cycles
        elif self.proc.sysmem is None:
            latency = cfg.l1_hit_cycles + cfg.l2_hit_cycles
        else:
            # detailed path: the line request crosses the OCN to its home
            # NUCA bank through this DT's private port (Section 3.6)
            line = msg.address - (msg.address % cfg.line_bytes)
            if self.proc.tel is not None:
                self._tel_pending_loads += 1
            self.proc.schedule(
                t + cfg.l1_hit_cycles,
                lambda m=msg, v=value, ln=line: self.proc.sysmem.request(
                    self.proc.sysmem_port_base + self.index, ln, False,
                    meta=lambda mm=m, vv=v: self._reply(mm, vv, True)))
            if self.proc.trace is not None:
                ev = self.proc.trace.inst(msg.producer_key)
                ev.mem_hops = hops
                ev.mem_queue = queue
                ev.mem_wait = max(0, t - msg.send_t - hops - queue)
                ev.mem_latency = cfg.l1_hit_cycles
            return
        if self.proc.trace is not None:
            ev = self.proc.trace.inst(msg.producer_key)
            ev.mem_hops = hops
            ev.mem_queue = queue
            ev.mem_wait = max(0, t - msg.send_t - hops - queue)
            ev.mem_latency = latency
        if self.proc.tel is not None and not hit:
            self._tel_pending_loads += 1
        self.proc.schedule(t + latency,
                           lambda m=msg, v=value, ms=not hit:
                           self._reply(m, v, ms))

    def _reply(self, msg: MemRequest, value: int, miss: bool = False) -> None:
        t = self.proc.cycle
        # decrement before the liveness check: the scheduled reply always
        # fires, even when the block was flushed in the meantime
        if miss and self.proc.tel is not None and self._tel_pending_loads:
            self._tel_pending_loads -= 1
        if msg.block_uid not in self.proc.live_uids:
            return
        for target in msg.targets:
            if target.kind is OperandKind.WRITE:
                dest = self.proc.rt_coord(target.slot // 8)
                out = OperandMsg(msg.block_uid, ("W", target.slot),
                                 target.kind, value, False,
                                 msg.producer_key, t)
            else:
                dest = self.proc.et_coord(target.slot % 16)
                out = OperandMsg(msg.block_uid, target.slot, target.kind,
                                 value, False, msg.producer_key, t)
            self.outbox.append(Packet(src=self.coord, dest=dest, payload=out))
        self._drain_outbox()

    def _drain_outbox(self) -> None:
        while self.outbox:
            if not self.proc.opn.inject(self.coord, self.outbox[0]):
                return
            self.outbox.popleft()

    # -- commit / flush ----------------------------------------------------------
    def commit_block(self, seq: int, arrive_t: int) -> int:
        """Drain the block's stores to memory; returns the finish time."""
        stores = self.lsq.commit_block(seq)
        for entry in stores:
            self.proc.memory.write(entry.address, entry.data, entry.size)
            self.cache.fill(entry.address)
        self.deppred.on_block_commit()
        start = max(arrive_t, self.commit_free_t)
        done = start + max(1, len(stores))
        self.commit_free_t = done
        return done

    def flush(self, uids, seqs) -> None:
        self.lsq.flush_blocks(seqs)
        if self.requests:
            self.requests = deque(r for r in self.requests
                                  if r[0].block_uid not in uids)
        if self.deferred:
            self.deferred = [d for d in self.deferred
                             if d[0].block_uid not in uids]
        if self.outbox:
            self.outbox = deque(p for p in self.outbox
                                if p.payload.block_uid not in uids)

    # -- telemetry ---------------------------------------------------------
    def tel_state(self, t: int) -> str:
        if self._tel_active_t == t or self.commit_free_t > t:
            return _tel.BUSY        # serving a request or draining stores
        if self.outbox:
            return _tel.OPN_BACKPRESSURE
        if self.lsq.is_full():
            return _tel.LSQ_FULL
        if self.deferred:
            return _tel.DEP_DEFERRAL
        if self._tel_pending_loads:
            return _tel.CACHE_MISS
        if self.requests:
            return _tel.BUSY        # queued behind the one-per-cycle port
        return _tel.IDLE

    def tel_account(self, timeline, t0: int, t1: int) -> None:
        if self.commit_free_t > t0:
            mid = min(self.commit_free_t, t1)
            timeline.add(_tel.BUSY, t0, mid)
            t0 = mid
        if t0 < t1:
            if self._tel_pending_loads:
                state = _tel.CACHE_MISS
            elif self.lsq.is_full():
                state = _tel.LSQ_FULL
            elif self.deferred:
                # the event wheel can skip while a deferral waits on DSN
                # propagation; those cycles are dependence stalls
                state = _tel.DEP_DEFERRAL
            else:
                state = _tel.IDLE
            timeline.add(state, t0, t1)

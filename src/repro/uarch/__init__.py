"""The TRIPS processor microarchitecture.

* :mod:`repro.uarch.functional` — ``tsim-arch``: a fast, untimed
  block-dataflow simulator used as the compiler's co-validation target.
* :mod:`repro.uarch.proc` — ``tsim-proc``: the detailed cycle-level tiled
  model with all seven micronetworks and the distributed protocols.
"""

from .functional import FunctionalSim, FunctionalStats, SimError
from .config import PROTOTYPE, PredictorConfig, TripsConfig

__all__ = ["FunctionalSim", "FunctionalStats", "SimError",
           "PROTOTYPE", "PredictorConfig", "TripsConfig"]

# TripsProcessor is imported lazily by consumers (repro.uarch.proc) to keep
# `import repro.uarch` light; it is re-exported here for convenience.
from .proc import ProcStats, TripsProcessor  # noqa: E402

__all__ += ["ProcStats", "TripsProcessor"]

"""Set-associative cache banks (timing model).

Data correctness flows through the backing store plus the LSQ (committed
state + in-flight forwarding); the cache banks model *timing* — hit/miss,
LRU replacement, MSHR occupancy — exactly the split the paper's validation
methodology implies for tsim-proc.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


class CacheBank:
    """One N-way, LRU, ``size_bytes`` bank of ``line_bytes`` lines."""

    def __init__(self, size_bytes: int, assoc: int, line_bytes: int):
        if size_bytes % (assoc * line_bytes):
            raise ValueError("size must be a multiple of assoc * line size")
        self.line_bytes = line_bytes
        self.assoc = assoc
        self.num_sets = size_bytes // (assoc * line_bytes)
        # each set: list of line tags in LRU order (front = MRU)
        self._sets: List[List[int]] = [[] for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def _index(self, address: int) -> int:
        return (address // self.line_bytes) % self.num_sets

    def _tag(self, address: int) -> int:
        return address // self.line_bytes

    def lookup(self, address: int, touch: bool = True) -> bool:
        """Hit test; promotes the line to MRU on hit."""
        lines = self._sets[self._index(address)]
        tag = self._tag(address)
        if tag in lines:
            self.hits += 1
            if touch:
                lines.remove(tag)
                lines.insert(0, tag)
            return True
        self.misses += 1
        return False

    def contains(self, address: int) -> bool:
        return self._tag(address) in self._sets[self._index(address)]

    def fill(self, address: int) -> Optional[int]:
        """Install a line; returns the evicted line address, if any."""
        lines = self._sets[self._index(address)]
        tag = self._tag(address)
        if tag in lines:
            return None
        lines.insert(0, tag)
        if len(lines) > self.assoc:
            return lines.pop() * self.line_bytes
        return None

    def invalidate(self, address: int) -> None:
        lines = self._sets[self._index(address)]
        tag = self._tag(address)
        if tag in lines:
            lines.remove(tag)

    # -- warm-state snapshot (repro.sampling checkpoints) ---------------
    def state(self) -> List[List[int]]:
        """Tag contents of every set, MRU first (JSON-serializable)."""
        return [list(lines) for lines in self._sets]

    def load_state(self, sets: List[List[int]]) -> None:
        if len(sets) != self.num_sets:
            raise ValueError(f"cache state has {len(sets)} sets, "
                             f"bank has {self.num_sets}")
        self._sets = [list(lines) for lines in sets]


@dataclass
class Mshr:
    """Miss status holding registers: bounded outstanding lines."""

    max_lines: int
    max_requests: int
    lines: Dict[int, List[object]] = field(default_factory=dict)
    total_requests: int = 0

    def can_accept(self, line_addr: int) -> bool:
        if line_addr in self.lines:
            return self.total_requests < self.max_requests
        return (len(self.lines) < self.max_lines
                and self.total_requests < self.max_requests)

    def add(self, line_addr: int, token: object) -> bool:
        """Attach a waiting request; True if this line is a new miss."""
        new = line_addr not in self.lines
        self.lines.setdefault(line_addr, []).append(token)
        self.total_requests += 1
        return new

    def complete(self, line_addr: int) -> List[object]:
        tokens = self.lines.pop(line_addr, [])
        self.total_requests -= len(tokens)
        return tokens

"""``simlab watch``: a live terminal dashboard over the event log.

The watcher never talks to the sweep process — it tails the JSONL event
log next to the result cache, folds the lifecycle events into a frame
(per-worker occupancy, queue depth, cache hit rate, retry/timeout
counts, an ETA from finished-job latencies), and redraws.  That makes
it attachable from any shell, after the fact, or from CI:
``--once`` renders a single frame and exits, which is how the
``metrics-smoke`` job asserts a finished sweep's log is coherent.

The frame describes the *latest* sweep in the log (the log itself is
append-only across sweeps; ``simlab metrics`` aggregates all of them).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from .events import read_events

#: statistically honest minimum before the ETA is shown
_MIN_LATENCY_SAMPLES = 2


def _percentile(values: List[float], q: float) -> float:
    ordered = sorted(values)
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[index]


def frame_state(events: List[Dict],
                now: Optional[float] = None) -> Dict:
    """Fold events into the dashboard's view of the latest sweep."""
    begin_index = 0
    for i, record in enumerate(events):
        if record.get("event") == "sweep_begin":
            begin_index = i
    window = events[begin_index:]
    now = now if now is not None else time.time()

    jobs: Dict[str, Dict] = {}       # key -> {state, label, worker, t}
    state = {
        "events": len(events),
        "sweep_events": len(window),
        "jobs_declared": 0,
        "workers_declared": 0,
        "sweep_started": None,
        "sweep_elapsed": None,
        "sweep_done": False,
        "cache_hits": 0,
        "retries": 0,
        "timeouts": 0,
        "crashes": 0,
        "failed": 0,
        "latencies": [],
    }
    workers: Dict[int, Dict] = {}    # pid -> {key, label, since, busy}
    for record in window:
        name = record.get("event")
        ts = record.get("ts", now)
        key = record.get("key")
        if name == "sweep_begin":
            state["jobs_declared"] = record.get("jobs", 0)
            state["workers_declared"] = record.get("workers", 0)
            state["sweep_started"] = ts
        elif name == "sweep_end":
            state["sweep_done"] = True
            state["sweep_elapsed"] = record.get("elapsed_s")
        elif name == "submit":
            jobs[key] = {"state": "submitted",
                         "label": record.get("label", key), "t": ts}
        elif name == "cache_hit":
            state["cache_hits"] += 1
            jobs[key] = {"state": "cache_hit",
                         "label": record.get("label", key), "t": ts}
        elif name == "queued":
            job = jobs.setdefault(key, {"label": key})
            job.update(state="queued", t=ts)
        elif name == "start":
            job = jobs.setdefault(key, {"label": key})
            job.update(state="running", t=ts, worker=record.get("pid"))
            workers[record.get("pid")] = {
                "key": key, "label": job["label"], "since": ts,
                "busy": True}
        elif name == "finish":
            job = jobs.setdefault(key, {"label": key})
            job.update(state="done", t=ts)
            state["latencies"].append(
                float(record.get("elapsed_s", 0.0)))
            worker = workers.get(record.get("pid"))
            if worker is not None and worker.get("key") == key:
                worker["busy"] = False
        elif name == "retry":
            state["retries"] += 1
            cause = record.get("cause")
            if cause == "timeout":
                state["timeouts"] += 1
            elif cause == "crash":
                state["crashes"] += 1
            job = jobs.setdefault(key, {"label": key})
            job.update(state="retrying", t=ts)
        elif name == "fail":
            state["failed"] += 1
            job = jobs.setdefault(key, {"label": key})
            job.update(state="failed", t=ts)

    by_state: Dict[str, int] = {}
    for job in jobs.values():
        by_state[job.get("state", "?")] = \
            by_state.get(job.get("state", "?"), 0) + 1
    state["jobs"] = jobs
    state["by_state"] = by_state
    state["workers"] = workers
    state["running"] = [
        {"pid": pid, "label": worker["label"],
         "for_s": max(0.0, now - worker["since"])}
        for pid, worker in sorted(workers.items()) if worker["busy"]]
    done = by_state.get("done", 0)
    total = state["jobs_declared"] or (len(jobs) + state["cache_hits"])
    state["total"] = total
    state["remaining"] = max(
        0, total - state["cache_hits"] - done - state["failed"])
    if state["sweep_started"] is not None \
            and state["sweep_elapsed"] is None:
        state["sweep_elapsed"] = max(0.0, now - state["sweep_started"])

    latencies = state["latencies"]
    if len(latencies) >= _MIN_LATENCY_SAMPLES and state["remaining"]:
        p50 = _percentile(latencies, 0.50)
        lanes = max(1, state["workers_declared"]
                    or max(1, len(workers)))
        state["eta_s"] = state["remaining"] * p50 / lanes
    else:
        state["eta_s"] = None
    return state


def _rate(hits: int, total: int) -> str:
    if not total:
        return "n/a"
    return f"{100.0 * hits / total:.1f}%"


def _dur(seconds: Optional[float]) -> str:
    if seconds is None:
        return "?"
    if seconds < 120:
        return f"{seconds:.1f}s"
    if seconds < 7200:
        return f"{seconds / 60:.1f}m"
    return f"{seconds / 3600:.1f}h"


def render_frame(state: Dict, path: str = "") -> str:
    """One dashboard frame as plain text."""
    by_state = state["by_state"]
    phase = "done" if state["sweep_done"] else "running"
    lines = [
        f"simlab watch — {path or 'event log'} "
        f"({state['events']} events, sweep {phase} "
        f"{_dur(state['sweep_elapsed'])})"]
    lines.append(
        f"jobs      : {state['total']} total · "
        f"{by_state.get('done', 0)} done · "
        f"{len(state['running'])} running · "
        f"{by_state.get('queued', 0) + by_state.get('submitted', 0)} "
        f"queued · {state['cache_hits']} cache hits")
    lines.append(
        f"cache     : {state['cache_hits']}/{state['total']} hits "
        f"({_rate(state['cache_hits'], state['total'])})")
    lines.append(
        f"faults    : {state['retries']} retries "
        f"({state['timeouts']} timeout, {state['crashes']} crash) · "
        f"{state['failed']} failed")
    busy = len(state["running"])
    lines.append(f"workers   : {len(state['workers'])} seen · "
                 f"{busy} busy")
    for worker in state["running"][:8]:
        lines.append(f"  [{worker['pid']}] busy  "
                     f"{worker['label']:<32s} ({_dur(worker['for_s'])})")
    latencies = state["latencies"]
    if latencies:
        lines.append(
            f"latency   : p50 {_percentile(latencies, 0.50):.2f}s · "
            f"p90 {_percentile(latencies, 0.90):.2f}s "
            f"({len(latencies)} finished)")
    if state["eta_s"] is not None:
        lines.append(f"eta       : ~{_dur(state['eta_s'])} "
                     f"({state['remaining']} jobs left)")
    elif state["remaining"] and not state["sweep_done"]:
        lines.append(f"eta       : warming up "
                     f"({state['remaining']} jobs left)")
    return "\n".join(lines)


def watch(path, interval: float = 2.0, once: bool = False,
          out=None) -> int:
    """Tail the log and redraw; ``once`` renders one frame and returns.

    Returns nonzero when the log does not exist (nothing to watch).
    """
    import sys
    out = out or sys.stdout
    from pathlib import Path
    log_path = Path(path)
    if not log_path.exists():
        print(f"simlab watch: no event log at {log_path} "
              f"(run a sweep with the cache enabled first)",
              file=sys.stderr)
        return 1
    while True:
        events = list(read_events(log_path))
        frame = render_frame(frame_state(events), path=str(log_path))
        if once:
            print(frame, file=out)
            return 0
        # full clear + home, then the frame: flicker-free enough for a
        # dashboard that redraws every couple of seconds
        print("\x1b[2J\x1b[H" + frame, file=out, flush=True)
        try:
            time.sleep(interval)
        except KeyboardInterrupt:
            return 0

"""The simlab event log: append-only JSONL job-lifecycle spans.

One line per event, written next to the result cache
(``<cache-dir>/events.jsonl`` by default), so the log survives the
sweep process and ``simlab watch`` / ``simlab metrics`` can observe a
fleet they did not start.  Parent and worker processes append to the
same file; each line is one small ``O_APPEND`` write, which POSIX keeps
atomic, so concurrent writers interleave but never tear.

The lifecycle vocabulary (one sweep's trace, in causal order)::

    sweep_begin                      the sweep declares its job count
      submit      per job            a cache miss enters the queue
      cache_hit   per job            served from the result cache
      queued      per job            handed to the worker pool
      start       per job/attempt    a worker began executing (its pid)
      finish      per job            the attempt succeeded (elapsed_s)
      retry       per job/fault      exception | timeout | crash
      fail        per job            second failure — the sweep aborts
    sweep_end                        totals and wall time

Every event carries ``schema``, ``ts`` (unix seconds), ``event``, and
``pid``; per-event required fields are in :data:`EVENT_FIELDS` and
enforced by :func:`validate_event` (the CI schema gate).

:func:`replay_into` folds a recorded log back into a
:class:`~repro.metrics.registry.MetricsRegistry` — the canonical
definition of the fleet-level metrics, shared by the live executor
instruments and the post-hoc ``simlab metrics`` exposition.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .registry import MetricsRegistry

#: bump when the event layout changes; old logs then fail validation.
SCHEMA = 1

#: default log filename, created next to the simlab result cache.
DEFAULT_EVENTS_NAME = "events.jsonl"

#: event name -> fields required beyond the common envelope.
EVENT_FIELDS: Dict[str, Tuple[str, ...]] = {
    "sweep_begin": ("jobs", "workers"),
    "submit": ("key", "label", "kind"),
    "cache_hit": ("key", "label"),
    "queued": ("key",),
    "start": ("key",),
    "finish": ("key", "elapsed_s"),
    "retry": ("key", "cause"),
    "fail": ("key", "error"),
    "sweep_end": ("jobs", "done", "cache_hits", "retries", "failed",
                  "elapsed_s"),
}

#: causes a retry event may carry (parallel faults + in-job exceptions).
RETRY_CAUSES = ("exception", "timeout", "crash")


def default_events_path(cache_dir) -> Path:
    """Where a sweep using ``cache_dir`` keeps its event log."""
    return Path(cache_dir) / DEFAULT_EVENTS_NAME


class EventLog:
    """Append-only JSONL writer; safe for many processes, one file."""

    def __init__(self, path):
        self.path = Path(path)

    def emit(self, event: str, **fields) -> None:
        if event not in EVENT_FIELDS:
            raise ValueError(f"unknown event {event!r}")
        record = {"schema": SCHEMA, "ts": round(time.time(), 6),
                  "event": event, "pid": os.getpid(), **fields}
        line = json.dumps(record, separators=(",", ":")) + "\n"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a") as fh:
            fh.write(line)

    def truncate(self) -> None:
        """Start a fresh log (a new sweep over the same cache dir)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text("")


def validate_event(record) -> List[str]:
    """Schema errors for one parsed event object ([] = valid)."""
    if not isinstance(record, dict):
        return ["event is not an object"]
    errors = []
    if record.get("schema") != SCHEMA:
        errors.append(f"schema is {record.get('schema')!r}, "
                      f"expected {SCHEMA}")
    name = record.get("event")
    if name not in EVENT_FIELDS:
        errors.append(f"unknown event {name!r}")
        return errors
    if not isinstance(record.get("ts"), (int, float)):
        errors.append("ts missing or not a number")
    if not isinstance(record.get("pid"), int):
        errors.append("pid missing or not an int")
    for field in EVENT_FIELDS[name]:
        if field not in record:
            errors.append(f"{name}: missing field {field!r}")
    if name == "retry" and record.get("cause") not in RETRY_CAUSES:
        errors.append(f"retry: bad cause {record.get('cause')!r}")
    if name == "finish" \
            and not isinstance(record.get("elapsed_s"), (int, float)):
        errors.append("finish: elapsed_s not a number")
    return errors


def read_events(path) -> Iterator[Dict]:
    """Parsed events in file order; unparseable lines are skipped
    (a line being written this instant reads as truncated — that is a
    tailing artifact, not corruption)."""
    try:
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if isinstance(record, dict):
                    yield record
    except OSError:
        return


def check_events(path) -> List[str]:
    """Every line must parse and validate; the CI gate over a full log."""
    errors: List[str] = []
    try:
        lines = Path(path).read_text().splitlines()
    except OSError as exc:
        return [f"unreadable: {exc}"]
    if not lines:
        errors.append("event log is empty")
    for i, line in enumerate(lines, start=1):
        if not line.strip():
            errors.append(f"line {i}: blank")
            continue
        try:
            record = json.loads(line)
        except ValueError as exc:
            errors.append(f"line {i}: not JSON ({exc})")
            continue
        errors.extend(f"line {i}: {error}"
                      for error in validate_event(record))
    return errors


def replay_into(registry: MetricsRegistry,
                events: Iterable[Dict]) -> MetricsRegistry:
    """Fold an event stream into fleet metrics.

    This is the single definition of how lifecycle events become
    counters — the live executor increments the same metrics with the
    same semantics, so ``simlab metrics`` over a finished log agrees
    with what the sweep process would have exposed.
    """
    events_total = registry.counter(
        "simlab_events_total", "lifecycle events recorded", ("event",))
    jobs = registry.counter(
        "simlab_jobs_total", "jobs by final outcome", ("outcome",))
    retries = registry.counter(
        "simlab_job_retries_total", "job retries by cause", ("cause",))
    job_seconds = registry.histogram(
        "simlab_job_seconds", "per-attempt job wall time")
    sweeps = registry.counter("simlab_sweeps_total", "sweeps recorded")
    for record in events:
        name = record.get("event")
        if name not in EVENT_FIELDS:
            continue
        events_total.inc(event=name)
        if name == "sweep_begin":
            sweeps.inc()
        elif name == "cache_hit":
            jobs.inc(outcome="cache_hit")
        elif name == "finish":
            jobs.inc(outcome="done")
            job_seconds.observe(float(record.get("elapsed_s", 0.0)))
        elif name == "retry":
            cause = record.get("cause")
            if cause in RETRY_CAUSES:
                retries.inc(cause=cause)
        elif name == "fail":
            jobs.inc(outcome="failed")
    return registry


class FleetMetrics:
    """The executor's instrument bundle: one registry + optional log.

    Passed as ``metrics=`` to :func:`repro.simlab.executor.run_specs`
    and :class:`repro.simlab.cache.ResultCache`; every instrumented site
    guards with ``if metrics is not None``, so the default (no metrics)
    costs one pointer compare and produces byte-identical results.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 events: Optional[EventLog] = None):
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self.events = events
        self.jobs = self.registry.counter(
            "simlab_jobs_total", "jobs by final outcome", ("outcome",))
        self.retries = self.registry.counter(
            "simlab_job_retries_total", "job retries by cause", ("cause",))
        self.job_seconds = self.registry.histogram(
            "simlab_job_seconds", "per-attempt job wall time")
        self.queue_depth = self.registry.gauge(
            "simlab_queue_depth", "jobs submitted but not yet finished")
        self.workers = self.registry.gauge(
            "simlab_workers", "worker processes of the current sweep")
        self.cache_hits = self.registry.counter(
            "simlab_cache_hits_total", "result-cache lookups served")
        self.cache_misses = self.registry.counter(
            "simlab_cache_misses_total", "result-cache lookups missed")
        self.cache_put_bytes = self.registry.counter(
            "simlab_cache_put_bytes_total", "bytes written to the cache")

    @classmethod
    def for_cache_dir(cls, cache_dir) -> "FleetMetrics":
        """The standard wiring: log next to the cache, fresh per sweep."""
        return cls(events=EventLog(default_events_path(cache_dir)))

    def emit(self, event: str, **fields) -> None:
        if self.events is not None:
            self.events.emit(event, **fields)

    @property
    def events_path(self) -> Optional[str]:
        """Worker-visible log path (pickled into job payload kwargs)."""
        return None if self.events is None else str(self.events.path)

    def counts(self) -> Dict[str, int]:
        """The sweep-summary numbers, read back from the registry."""
        return {
            "done": int(self.jobs.value(outcome="done")),
            "cache_hits": int(self.jobs.value(outcome="cache_hit")),
            "failed": int(self.jobs.value(outcome="failed")),
            "retries": int(self.retries.total()),
            "timeouts": int(self.retries.value(cause="timeout")),
            "crashes": int(self.retries.value(cause="crash")),
        }

"""Cross-run telemetry diff: *where* a config change spent its cycles.

``python -m repro.harness diff <specA> <specB>`` pulls two telemetry
runs through simlab (served from the content-addressed cache, simulated
on a miss) and attributes the cycle delta to the PR-4 stall taxonomy,
per-tile busy/idle shifts, and per-link OPN/OCN traffic movers.

Spec grammar (everything but the workload is optional)::

    workload[@level][/mem][(+|-)flag ...]

    qr@hand/nuca              qr, hand-optimized code, NUCA memory
    sha@tcc                   sha, tcc code, perfect L2 (the default)
    vadd@hand-express_routing vadd with express routing disabled

``level`` is ``hand``/``tcc``; ``mem`` is ``l2perfect``/``nuca``
(mapping to ``TripsConfig.perfect_l2``); ``+flag``/``-flag`` toggles
any boolean :class:`~repro.uarch.config.TripsConfig` field.

**The attribution invariant.**  Telemetry charges every cycle of every
tile to exactly one of eight states (busy, six stall categories, idle),
so for each run::

    sum over states of tile-cycles == n_tiles * ProcStats.cycles

Subtracting the two runs' per-state tile-cycle totals therefore yields
category deltas that sum *exactly* — in integer tile-cycles — to
``n_tiles * (cycles_B - cycles_A)``.  :func:`diff_runs` checks this and
refuses to produce a table that does not add up.  The rendered
``Δ cycles`` column divides by ``n_tiles`` and rounds for readability;
the *residual* row is that rounding, and only that rounding (bounded by
half a unit-in-last-place per category — see EXPERIMENTS.md).
"""

from __future__ import annotations

import dataclasses
import re
from typing import Callable, Dict, List, Optional, Tuple

from ..simlab import ResultCache, RunSpec, run_specs
from ..telemetry.recorder import (
    BUSY,
    IDLE,
    STALL_STATES,
    TelemetrySummary,
)
from ..uarch.config import TripsConfig

#: attribution categories, in report order
CATEGORIES = (BUSY,) + STALL_STATES + (IDLE,)

_SPEC_RE = re.compile(
    r"^(?P<workload>[A-Za-z0-9_]+)"
    r"(?:@(?P<level>hand|tcc))?"
    r"(?:/(?P<mem>l2perfect|nuca))?"
    r"(?P<flags>(?:[+-][A-Za-z_][A-Za-z0-9_]*)*)$")

_BOOL_FIELDS = {f.name for f in dataclasses.fields(TripsConfig)
                if f.type == "bool" or isinstance(f.default, bool)}


class DiffError(ValueError):
    """A diff spec is malformed or the two runs are not comparable."""


@dataclasses.dataclass(frozen=True)
class DiffSpec:
    """One side of a diff: workload, code level, memory model, toggles."""

    workload: str
    level: str = "hand"
    mem: str = "l2perfect"
    toggles: Tuple[Tuple[str, bool], ...] = ()

    @property
    def label(self) -> str:
        flags = "".join(("+" if on else "-") + name
                        for name, on in self.toggles)
        return f"{self.workload}@{self.level}/{self.mem}{flags}"

    def config(self) -> TripsConfig:
        overrides: Dict[str, bool] = dict(self.toggles)
        return TripsConfig(perfect_l2=(self.mem != "nuca"), **overrides)


def parse_spec(text: str) -> DiffSpec:
    """Parse the ``workload[@level][/mem][±flag...]`` grammar."""
    match = _SPEC_RE.match(text.strip())
    if not match:
        raise DiffError(
            f"bad diff spec {text!r} "
            f"(expected workload[@level][/mem][+flag|-flag ...])")
    from ..workloads import workload_names
    workload = match.group("workload")
    if workload not in workload_names():
        raise DiffError(f"unknown workload {workload!r} "
                        f"(see 'python -m repro.harness list')")
    toggles: List[Tuple[str, bool]] = []
    flags = match.group("flags") or ""
    for sign, name in re.findall(r"([+-])([A-Za-z_][A-Za-z0-9_]*)", flags):
        if name not in _BOOL_FIELDS:
            raise DiffError(
                f"{text!r}: {name!r} is not a boolean TripsConfig field "
                f"(have: {', '.join(sorted(_BOOL_FIELDS))})")
        toggles.append((name, sign == "+"))
    return DiffSpec(workload=workload,
                    level=match.group("level") or "hand",
                    mem=match.group("mem") or "l2perfect",
                    toggles=tuple(toggles))


def fetch_runs(spec_a: DiffSpec, spec_b: DiffSpec,
               cache: Optional[ResultCache] = None, workers: int = 0,
               log: Optional[Callable[[str], None]] = None,
               metrics=None) -> Tuple[Dict, Dict]:
    """Both telemetry runs, via simlab: cached if seen, simulated if not."""
    specs = [RunSpec.trips(s.workload, level=s.level, config=s.config(),
                           telemetry=True) for s in (spec_a, spec_b)]
    results = run_specs(specs, workers=workers, cache=cache, log=log,
                        metrics=metrics)
    return results[0], results[1]


def _state_tile_cycles(summary: TelemetrySummary) -> Dict[str, int]:
    """Aggregate tile-cycles per state (exact integers)."""
    totals = {state: 0 for state in CATEGORIES}
    for per_tile in summary.tiles.values():
        for state, n in per_tile.items():
            if state not in totals:
                raise DiffError(f"unknown tile state {state!r} "
                                f"in telemetry summary")
            totals[state] += n
    return totals


def diff_runs(result_a: Dict, result_b: Dict,
              label_a: str, label_b: str) -> Dict:
    """The attribution report for two simlab trips+telemetry results."""
    for label, result in ((label_a, result_a), (label_b, result_b)):
        if "telemetry" not in result:
            raise DiffError(f"{label}: result carries no telemetry "
                            f"summary (was the spec telemetry=True?)")
    sum_a = TelemetrySummary.from_dict(result_a["telemetry"])
    sum_b = TelemetrySummary.from_dict(result_b["telemetry"])
    n_tiles = len(sum_a.tiles)
    if not n_tiles or len(sum_b.tiles) != n_tiles:
        raise DiffError(
            f"tile sets differ ({n_tiles} vs {len(sum_b.tiles)}): "
            f"runs are not attributable against each other")
    cycles_a, cycles_b = sum_a.cycles, sum_b.cycles
    delta_cycles = cycles_b - cycles_a

    states_a = _state_tile_cycles(sum_a)
    states_b = _state_tile_cycles(sum_b)
    for label, states, cycles in ((label_a, states_a, cycles_a),
                                  (label_b, states_b, cycles_b)):
        if sum(states.values()) != n_tiles * cycles:
            raise DiffError(
                f"{label}: tile-cycle accounting does not sum to "
                f"{n_tiles} tiles x {cycles} cycles — telemetry "
                f"summary is incomplete (tiles probe disabled?)")

    rows = []
    rounded_sum = 0.0
    for state in CATEGORIES:
        delta_tc = states_b[state] - states_a[state]
        delta_cyc = round(delta_tc / n_tiles, 1)
        rounded_sum += delta_cyc
        rows.append({"category": state,
                     "a_tile_cycles": states_a[state],
                     "b_tile_cycles": states_b[state],
                     "delta_tile_cycles": delta_tc,
                     "delta_cycles": delta_cyc})
    # exact in integer tile-cycles, always (checked above per run):
    assert sum(r["delta_tile_cycles"] for r in rows) \
        == n_tiles * delta_cycles
    residual = round(delta_cycles - rounded_sum, 1)

    per_tile = []
    for name in sum_a.tiles:
        tile_a, tile_b = sum_a.tiles[name], sum_b.tiles.get(name, {})
        per_tile.append({
            "tile": name,
            "delta_busy": tile_b.get(BUSY, 0) - tile_a.get(BUSY, 0),
            "delta_idle": tile_b.get(IDLE, 0) - tile_a.get(IDLE, 0),
            "delta_stall": sum(tile_b.get(s, 0) - tile_a.get(s, 0)
                               for s in STALL_STATES)})
    per_tile.sort(key=lambda row: -abs(row["delta_stall"]))

    links = {}
    for net in ("opn", "ocn"):
        net_a = (getattr(sum_a, net) or {}).get("links", {})
        net_b = (getattr(sum_b, net) or {}).get("links", {})
        movers = [{"link": link,
                   "a_flits": net_a.get(link, 0),
                   "b_flits": net_b.get(link, 0),
                   "delta_flits": net_b.get(link, 0) - net_a.get(link, 0)}
                  for link in sorted(set(net_a) | set(net_b))]
        movers.sort(key=lambda row: -abs(row["delta_flits"]))
        links[net] = movers

    def _side(label: str, result: Dict, summary: TelemetrySummary) -> Dict:
        stats = result["stats"]
        cycles = stats["cycles"]
        return {"label": label, "cycles": cycles,
                "ipc": round(stats["insts_committed"] / cycles, 3)
                if cycles else 0.0,
                "blocks_committed": stats["blocks_committed"],
                "blocks_flushed": stats["blocks_flushed"],
                "fast_forward_cycles":
                    summary.fast_forward.get("cycles", 0)}

    return {
        "a": _side(label_a, result_a, sum_a),
        "b": _side(label_b, result_b, sum_b),
        "delta_cycles": delta_cycles,
        "n_tiles": n_tiles,
        "attribution": rows,
        "residual": residual,
        "per_tile": per_tile,
        "links": links,
    }


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def render_diff(report: Dict, top: int = 8) -> str:
    """The human-readable attribution tables."""
    from ..harness.tables import render_table
    a, b = report["a"], report["b"]
    delta = report["delta_cycles"]
    pct = f" ({100.0 * delta / a['cycles']:+.1f}%)" if a["cycles"] else ""
    lines = [
        f"harness diff: {a['label']}  →  {b['label']}",
        f"  A: {a['cycles']} cycles, IPC {a['ipc']:.2f}    "
        f"B: {b['cycles']} cycles, IPC {b['ipc']:.2f}    "
        f"Δ {delta:+d} cycles{pct}",
        "",
    ]
    rows = [{"Category": row["category"],
             "A tile-cyc": row["a_tile_cycles"],
             "B tile-cyc": row["b_tile_cycles"],
             "Δ tile-cyc": f"{row['delta_tile_cycles']:+d}",
             "Δ cycles": f"{row['delta_cycles']:+.1f}"}
            for row in report["attribution"]]
    rows.append({"Category": "residual (rounding)", "A tile-cyc": "",
                 "B tile-cyc": "", "Δ tile-cyc": "",
                 "Δ cycles": f"{report['residual']:+.1f}"})
    rows.append({"Category": "total", "A tile-cyc": "",
                 "B tile-cyc": "", "Δ tile-cyc":
                 f"{report['n_tiles'] * delta:+d}",
                 "Δ cycles": f"{delta:+.1f}"})
    lines.append(render_table(
        rows, f"where the cycles went "
        f"(per-tile average over {report['n_tiles']} tiles)"))

    movers = [row for row in report["per_tile"]
              if row["delta_busy"] or row["delta_stall"]
              or row["delta_idle"]][:top]
    if movers:
        lines.append("")
        lines.append(render_table(
            [{"Tile": row["tile"],
              "Δ busy": f"{row['delta_busy']:+d}",
              "Δ stalled": f"{row['delta_stall']:+d}",
              "Δ idle": f"{row['delta_idle']:+d}"} for row in movers],
            f"per-tile movers (top {len(movers)} by |Δ stalled|)"))
    for net in ("opn", "ocn"):
        net_movers = [row for row in report["links"][net]
                      if row["delta_flits"]][:top]
        if net_movers:
            lines.append("")
            lines.append(render_table(
                [{"Link": row["link"],
                  "A flits": row["a_flits"], "B flits": row["b_flits"],
                  "Δ flits": f"{row['delta_flits']:+d}"}
                 for row in net_movers],
                f"{net.upper()} link movers (top {len(net_movers)})"))
    return "\n".join(lines)


def diff_specs(text_a: str, text_b: str,
               cache: Optional[ResultCache] = None, workers: int = 0,
               log: Optional[Callable[[str], None]] = None,
               metrics=None) -> Dict:
    """Parse, fetch (cached), and attribute — the CLI's whole pipeline."""
    spec_a, spec_b = parse_spec(text_a), parse_spec(text_b)
    result_a, result_b = fetch_runs(spec_a, spec_b, cache=cache,
                                    workers=workers, log=log,
                                    metrics=metrics)
    return diff_runs(result_a, result_b, spec_a.label, spec_b.label)

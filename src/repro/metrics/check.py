"""Format gates for the observability layer.

Two validators, both used by the ``metrics-smoke`` CI job and the
tests:

* :func:`lint_prometheus` — holds an exposition to the Prometheus
  text-format rules: ``# TYPE``/``# HELP`` before samples, legal metric
  and label names, parseable values, no duplicate sample keys, and the
  histogram contract (cumulative non-decreasing ``le`` buckets, a
  ``+Inf`` bucket equal to ``_count``).
* event-log validation — every JSONL line against the lifecycle schema
  (delegated to :func:`repro.metrics.events.check_events`).

Run it directly::

    python -m repro.metrics.check --prom metrics.prom \\
                                  --events .simlab-cache/events.jsonl
"""

from __future__ import annotations

import re
import sys
from typing import Dict, List, Optional, Tuple

from .events import check_events

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)(?:\s+(?P<ts>\S+))?$")
_LABEL_RE = re.compile(
    r'^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$')

_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}
#: suffixes a histogram family may expose samples under
_HIST_SUFFIXES = ("_bucket", "_sum", "_count")


def _split_labels(text: str) -> Optional[List[Tuple[str, str]]]:
    """Parse the {...} interior; None on malformed label syntax."""
    if not text:
        return []
    pairs = []
    # split on commas not inside quoted values (backslash escapes kept)
    parts: List[str] = []
    in_quotes = escaped = False
    current = ""
    for char in text:
        if escaped:
            current += char
            escaped = False
            continue
        if char == "\\" and in_quotes:
            current += char
            escaped = True
            continue
        if char == '"':
            in_quotes = not in_quotes
        if char == "," and not in_quotes:
            parts.append(current)
            current = ""
        else:
            current += char
    parts.append(current)
    for part in parts:
        part = part.strip()
        if not part:
            continue
        match = _LABEL_RE.match(part)
        if not match:
            return None
        pairs.append((match.group("name"), match.group("value")))
    return pairs


def _family(name: str, types: Dict[str, str]) -> Optional[str]:
    """The declared family a sample name belongs to, if any."""
    if name in types:
        return name
    for suffix in _HIST_SUFFIXES:
        if name.endswith(suffix) and name[:-len(suffix)] in types:
            return name[:-len(suffix)]
    return None


def lint_prometheus(text: str) -> List[str]:
    """Exposition-format errors ([] = clean)."""
    errors: List[str] = []
    types: Dict[str, str] = {}
    helped: Dict[str, bool] = {}
    seen: set = set()
    buckets: Dict[Tuple[str, tuple], List[Tuple[float, float]]] = {}
    counts: Dict[Tuple[str, tuple], float] = {}
    lines = text.splitlines()
    if not lines:
        return ["exposition is empty"]
    for i, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                continue                      # arbitrary comment: allowed
            name = parts[2]
            if not _NAME_RE.match(name):
                errors.append(f"line {i}: bad metric name {name!r}")
                continue
            if parts[1] == "TYPE":
                kind = parts[3].strip() if len(parts) > 3 else ""
                if kind not in _TYPES:
                    errors.append(f"line {i}: unknown type {kind!r}")
                elif name in types:
                    errors.append(f"line {i}: duplicate TYPE for {name}")
                else:
                    types[name] = kind
            else:
                helped[name] = True
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            errors.append(f"line {i}: unparseable sample {line!r}")
            continue
        name = match.group("name")
        labels = _split_labels(match.group("labels") or "")
        if labels is None:
            errors.append(f"line {i}: malformed labels in {line!r}")
            continue
        try:
            value = float(match.group("value"))
        except ValueError:
            errors.append(f"line {i}: bad value {match.group('value')!r}")
            continue
        family = _family(name, types)
        if family is None:
            errors.append(f"line {i}: sample {name!r} has no # TYPE")
            continue
        kind = types[family]
        if kind == "counter" and not name.endswith("_total"):
            errors.append(f"line {i}: counter {name!r} should end _total")
        if kind == "counter" and value < 0:
            errors.append(f"line {i}: counter {name!r} is negative")
        key = (name, tuple(sorted(labels)))
        if key in seen:
            errors.append(f"line {i}: duplicate sample {name}"
                          f"{dict(labels)!r}")
        seen.add(key)
        if kind == "histogram":
            plain = tuple(sorted(p for p in labels if p[0] != "le"))
            if name.endswith("_bucket"):
                le = dict(labels).get("le")
                if le is None:
                    errors.append(f"line {i}: bucket sample without le")
                    continue
                bound = float("inf") if le == "+Inf" else float(le)
                buckets.setdefault((family, plain), []).append(
                    (bound, value))
            elif name.endswith("_count"):
                counts[(family, plain)] = value
            elif name == family:
                errors.append(f"line {i}: histogram {family} exposes a "
                              f"bare sample")
    for name in types:
        if not helped.get(name):
            errors.append(f"metric {name}: # TYPE without # HELP")
    for (family, plain), series in sorted(buckets.items()):
        ordered = sorted(series)
        values = [v for _, v in ordered]
        if values != sorted(values):
            errors.append(f"histogram {family}{dict(plain)!r}: buckets "
                          f"not cumulative")
        if not ordered or ordered[-1][0] != float("inf"):
            errors.append(f"histogram {family}{dict(plain)!r}: "
                          f"missing +Inf bucket")
        elif (family, plain) in counts \
                and counts[(family, plain)] != ordered[-1][1]:
            errors.append(f"histogram {family}{dict(plain)!r}: +Inf "
                          f"bucket != _count")
    return errors


def main(argv=None) -> int:
    import argparse
    parser = argparse.ArgumentParser(
        prog="repro.metrics.check",
        description="Validate Prometheus expositions and simlab event "
                    "logs.")
    parser.add_argument("--prom", action="append", default=[],
                        metavar="FILE",
                        help="Prometheus text exposition to lint")
    parser.add_argument("--events", action="append", default=[],
                        metavar="FILE",
                        help="simlab event log (JSONL) to validate")
    args = parser.parse_args(argv)
    if not args.prom and not args.events:
        parser.error("nothing to check: pass --prom and/or --events")
    failed = False
    for path in args.prom:
        try:
            text = open(path).read()
        except OSError as exc:
            print(f"{path}: unreadable: {exc}", file=sys.stderr)
            failed = True
            continue
        errors = lint_prometheus(text)
        for error in errors:
            print(f"{path}: {error}", file=sys.stderr)
        if errors:
            failed = True
        else:
            print(f"{path}: OK ({len(text.splitlines())} lines)")
    for path in args.events:
        errors = check_events(path)
        for error in errors:
            print(f"{path}: {error}", file=sys.stderr)
        if errors:
            failed = True
        else:
            n = sum(1 for _ in open(path))
            print(f"{path}: OK ({n} events)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())

"""Process-local metrics: counters, gauges, and histograms with labels.

The registry is the one shared substrate of :mod:`repro.metrics` — the
executor's live instruments, the event-log replay in
``simlab metrics``, and the Prometheus/JSON exposition in
:mod:`repro.metrics.expo` all read and write the same structures.

Design constraints, in order:

* **Zero overhead when off.**  Nothing in the simulator ever talks to a
  registry directly; instrumented call sites hold an optional metrics
  object and guard with a single ``if metrics is not None`` (the same
  discipline :mod:`repro.telemetry` established for the probe bus).
* **Deterministic exposition.**  Metrics iterate in registration order
  and label sets in first-seen order, so two expositions of the same
  history are byte-identical — snapshots are diffable and pinnable in
  tests.
* **Prometheus-compatible.**  Names, label rules, and the histogram's
  cumulative-bucket layout follow the text-format conventions so
  :func:`repro.metrics.expo.render_prometheus` is a straight dump (and
  :func:`repro.metrics.check.lint_prometheus` can hold it to the spec).
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: default histogram buckets, tuned for job wall-times in seconds
DEFAULT_BUCKETS = (0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
                   10.0, 30.0, 60.0, 120.0, 300.0)

LabelKey = Tuple[Tuple[str, str], ...]


class MetricsError(ValueError):
    """A metric was declared or used inconsistently."""


def _label_key(labelnames: Sequence[str], labels: Dict[str, object],
               metric: str) -> LabelKey:
    if set(labels) != set(labelnames):
        raise MetricsError(
            f"{metric}: got labels {sorted(labels)}, "
            f"declared {sorted(labelnames)}")
    return tuple((name, str(labels[name])) for name in labelnames)


class _Metric:
    """Shared bookkeeping: declared name/help/labelnames, one child per
    label set, children kept in first-seen order."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = ()):
        if not _NAME_RE.match(name):
            raise MetricsError(f"bad metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise MetricsError(f"{name}: bad label name {label!r}")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._children: Dict[LabelKey, object] = {}

    def _child(self, labels: Dict[str, object], default):
        key = _label_key(self.labelnames, labels, self.name)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = default()
        return key, child

    def label_sets(self) -> List[LabelKey]:
        return list(self._children)


class Counter(_Metric):
    """Monotonic count; only increments are allowed."""

    kind = "counter"

    def inc(self, amount: float = 1, **labels) -> None:
        if amount < 0:
            raise MetricsError(f"{self.name}: counter decrease ({amount})")
        key, _ = self._child(labels, float)
        self._children[key] = self._children.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        key = _label_key(self.labelnames, labels, self.name)
        return float(self._children.get(key, 0.0))

    def total(self) -> float:
        """Sum over every label set (the sweep-summary convenience)."""
        return float(sum(self._children.values()))

    def samples(self) -> Iterable[Tuple[LabelKey, float]]:
        for key, value in self._children.items():
            yield key, float(value)


class Gauge(_Metric):
    """A value that can go up and down (queue depth, worker count)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        key, _ = self._child(labels, float)
        self._children[key] = float(value)

    def inc(self, amount: float = 1, **labels) -> None:
        key, _ = self._child(labels, float)
        self._children[key] = self._children.get(key, 0.0) + amount

    def dec(self, amount: float = 1, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        key = _label_key(self.labelnames, labels, self.name)
        return float(self._children.get(key, 0.0))

    def samples(self) -> Iterable[Tuple[LabelKey, float]]:
        for key, value in self._children.items():
            yield key, float(value)


class _HistogramChild:
    __slots__ = ("counts", "sum", "count")

    def __init__(self, n_buckets: int):
        self.counts = [0] * n_buckets      # per-bucket (non-cumulative)
        self.sum = 0.0
        self.count = 0


class Histogram(_Metric):
    """Observations bucketed by upper bound, Prometheus-style.

    Exposition is cumulative (``le`` buckets plus ``_sum``/``_count``);
    internally the counts are kept per-bucket so ``observe`` is O(log n).
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = (),
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        if "le" in labelnames:
            raise MetricsError(f"{name}: 'le' is reserved for buckets")
        super().__init__(name, help, labelnames)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise MetricsError(f"{name}: histogram needs buckets")
        self.buckets = bounds

    def observe(self, value: float, **labels) -> None:
        _, child = self._child(
            labels, lambda: _HistogramChild(len(self.buckets) + 1))
        lo, hi = 0, len(self.buckets)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.buckets[mid]:
                hi = mid
            else:
                lo = mid + 1
        child.counts[lo] += 1
        child.sum += value
        child.count += 1

    def snapshot_child(self, key: LabelKey) -> Dict:
        child = self._children[key]
        cumulative = []
        running = 0
        for n in child.counts:
            running += n
            cumulative.append(running)
        return {"buckets": [[b, c] for b, c
                            in zip(self.buckets, cumulative)],
                "inf": child.count,
                "sum": round(child.sum, 6),
                "count": child.count}

    def samples(self) -> Iterable[Tuple[LabelKey, Dict]]:
        for key in self._children:
            yield key, self.snapshot_child(key)


class MetricsRegistry:
    """Get-or-create home for every metric, in registration order."""

    def __init__(self):
        self._metrics: Dict[str, _Metric] = {}

    def _declare(self, cls, name: str, help: str,
                 labelnames: Sequence[str], **kwargs) -> _Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls) \
                    or existing.labelnames != tuple(labelnames):
                raise MetricsError(
                    f"{name}: redeclared as {cls.kind} with labels "
                    f"{tuple(labelnames)} (was {existing.kind} "
                    f"{existing.labelnames})")
            return existing
        metric = cls(name, help, labelnames, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        return self._declare(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        return self._declare(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._declare(Histogram, name, help, labelnames,
                             buckets=buckets)

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def metrics(self) -> List[_Metric]:
        return list(self._metrics.values())

    def snapshot(self) -> Dict:
        """JSON-native dump: {name: {type, help, samples: [...]}}.

        Samples carry labels as a plain dict; histogram samples carry the
        cumulative bucket table.  Deterministic for a given history.
        """
        out: Dict = {}
        for metric in self._metrics.values():
            samples = []
            for key, value in metric.samples():
                samples.append({"labels": dict(key), "value": value})
            out[metric.name] = {"type": metric.kind, "help": metric.help,
                                "samples": samples}
        return out

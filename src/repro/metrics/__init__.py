"""repro.metrics: fleet-level observability for the experiment platform.

PR 4's :mod:`repro.telemetry` answers "where did the cycles go" *inside*
one simulated processor; this package answers the same question about
the platform that runs thousands of those simulations.  Four pieces
share one registry:

* **Registry** (:mod:`repro.metrics.registry`) — process-local
  counters/gauges/histograms with labels; deterministic exposition.
* **Event log** (:mod:`repro.metrics.events`) — append-only JSONL job
  lifecycle spans (submit → queued → start → retry/timeout →
  finish/cache-hit) written next to the simlab result cache, with a
  schema validator and a replay that rebuilds the registry from disk.
* **Exposition** (:mod:`repro.metrics.expo`) — Prometheus text format
  and a JSON snapshot behind ``python -m repro.simlab metrics``, with
  git/host/time provenance.
* **Dashboards and diffs** — ``simlab watch`` (:mod:`~.watch`) tails
  the event log into a live terminal view; ``harness diff``
  (:mod:`~.diff`) attributes the cycle delta between two cached runs to
  the stall taxonomy, per-tile shifts, and per-link traffic movers.

The instrumentation discipline is PR 4's: every probe site in
:mod:`repro.simlab` is one ``if metrics is not None`` guard, so a run
without metrics is byte-identical to the pre-metrics code path, and the
simulator core itself is never touched at all.

This substrate is what the simlab-as-a-service layer (ROADMAP) will
expose over HTTP: admission control, priorities, and warm-cache
eviction stats all read these counters.
"""

from .events import EventLog, FleetMetrics, default_events_path
from .registry import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["Counter", "EventLog", "FleetMetrics", "Gauge", "Histogram",
           "MetricsRegistry", "default_events_path"]

"""Metrics exposition: Prometheus text format and a JSON snapshot.

``python -m repro.simlab metrics`` is the consumer: it rebuilds a
registry from the persisted event log (plus live cache gauges) and
dumps it here.  Both renderings carry provenance — git revision, host,
creation time — reusing :func:`repro.harness.bench.provenance`, so a
scraped exposition can always be traced to the source tree that
produced the numbers (the same discipline ``BENCH_engine.json``
follows).

The text format follows the Prometheus exposition conventions that
:func:`repro.metrics.check.lint_prometheus` enforces: ``# HELP`` and
``# TYPE`` precede each family, histograms expose cumulative ``le``
buckets plus ``_sum``/``_count``, and sample order is deterministic.
"""

from __future__ import annotations

from typing import Dict, Optional

from .registry import Counter, Gauge, Histogram, MetricsRegistry

#: provenance keys carried as simlab_build_info labels (str-valued only;
#: the full provenance record also has the nested config, JSON-only).
BUILD_INFO_KEYS = ("git_rev", "host", "python", "created_utc")


def _provenance() -> Dict:
    # Imported lazily: repro.harness pulls in the simulator stack, and
    # exposition must stay importable from lightweight tooling.
    from ..harness.bench import provenance
    return provenance()


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"') \
        .replace("\n", "\\n")


def _labels_text(key, extra: Optional[Dict[str, str]] = None) -> str:
    pairs = list(key) + sorted((extra or {}).items())
    if not pairs:
        return ""
    inner = ",".join(f'{name}="{_escape_label(str(value))}"'
                     for name, value in pairs)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry,
                      provenance: Optional[Dict] = None) -> str:
    """The registry in Prometheus text exposition format."""
    if provenance is None:
        provenance = _provenance()
    lines = []
    info_labels = {k: str(provenance[k]) for k in BUILD_INFO_KEYS
                   if k in provenance}
    lines.append("# HELP simlab_build_info source tree and host that "
                 "produced this exposition")
    lines.append("# TYPE simlab_build_info gauge")
    lines.append(f"simlab_build_info{_labels_text((), info_labels)} 1")
    for metric in registry.metrics():
        help_text = (metric.help or metric.name).replace("\n", " ")
        lines.append(f"# HELP {metric.name} {help_text}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            samples = list(metric.samples())
            if not samples and not metric.labelnames:
                samples = [((), 0.0)]
            for key, value in samples:
                lines.append(f"{metric.name}{_labels_text(key)} "
                             f"{_format_value(value)}")
        elif isinstance(metric, Histogram):
            samples = list(metric.samples())
            if not samples and not metric.labelnames:
                empty = {"buckets": [[b, 0] for b in metric.buckets],
                         "inf": 0, "sum": 0.0, "count": 0}
                samples = [((), empty)]
            for key, snap in samples:
                for bound, cumulative in snap["buckets"]:
                    le = _labels_text(key, {"le": _format_value(bound)})
                    lines.append(f"{metric.name}_bucket{le} {cumulative}")
                inf = _labels_text(key, {"le": "+Inf"})
                lines.append(f"{metric.name}_bucket{inf} {snap['inf']}")
                lines.append(f"{metric.name}_sum{_labels_text(key)} "
                             f"{_format_value(snap['sum'])}")
                lines.append(f"{metric.name}_count{_labels_text(key)} "
                             f"{snap['count']}")
    return "\n".join(lines) + "\n"


def render_json(registry: MetricsRegistry,
                provenance: Optional[Dict] = None) -> Dict:
    """The JSON twin: {provenance, metrics} with the full snapshot."""
    if provenance is None:
        provenance = _provenance()
    return {"provenance": {k: provenance[k] for k in BUILD_INFO_KEYS
                           if k in provenance},
            "metrics": registry.snapshot()}

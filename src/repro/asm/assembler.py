"""Two-pass assembler: TRIPS assembly text -> :class:`repro.isa.Program`."""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from ..isa import (
    BY_MNEMONIC,
    Format,
    Instruction,
    OperandKind,
    ProgramBuilder,
    ReadInstruction,
    Target,
    TripsBlock,
    WriteInstruction,
)


class AsmError(ValueError):
    """Syntax or semantic error in assembly text, with line number."""

    def __init__(self, lineno: int, message: str):
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


_TARGET_RE = re.compile(r"^N\[(\d+),([LRP])\]$")
_WSLOT_RE = re.compile(r"^W\[(\d+)\]$")
_SLOT_RE = re.compile(r"^([NRW])\[(\d+)\]$")
_KINDS = {"L": OperandKind.LEFT, "R": OperandKind.RIGHT, "P": OperandKind.PRED}


def _parse_target(token: str, lineno: int) -> Target:
    m = _TARGET_RE.match(token)
    if m:
        return Target(int(m.group(1)), _KINDS[m.group(2)])
    m = _WSLOT_RE.match(token)
    if m:
        return Target(int(m.group(1)), OperandKind.WRITE)
    raise AsmError(lineno, f"bad target {token!r}")


def _parse_int(token: str, lineno: int) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AsmError(lineno, f"bad integer {token!r}") from None


class _BlockAssembler:
    """Parses the lines of one ``.block`` into a :class:`TripsBlock`."""

    def __init__(self, name: str):
        self.block = TripsBlock(name=name)

    def add_line(self, slot_kind: str, slot: int, tokens: List[str],
                 lineno: int) -> None:
        if slot_kind == "R":
            self._add_read(slot, tokens, lineno)
        elif slot_kind == "W":
            self._add_write(slot, tokens, lineno)
        else:
            self._add_body(slot, tokens, lineno)

    def _add_read(self, slot: int, tokens: List[str], lineno: int) -> None:
        if len(tokens) < 3 or tokens[0] != "read" or not tokens[1].startswith("R"):
            raise AsmError(lineno, "read syntax: read Rn TARGET [TARGET]")
        reg = _parse_int(tokens[1][1:], lineno)
        targets = [_parse_target(t, lineno) for t in tokens[2:]]
        if slot in self.block.reads:
            raise AsmError(lineno, f"duplicate read slot {slot}")
        self.block.reads[slot] = ReadInstruction(reg, targets)

    def _add_write(self, slot: int, tokens: List[str], lineno: int) -> None:
        if len(tokens) != 2 or tokens[0] != "write" or not tokens[1].startswith("R"):
            raise AsmError(lineno, "write syntax: write Rn")
        if slot in self.block.writes:
            raise AsmError(lineno, f"duplicate write slot {slot}")
        self.block.writes[slot] = WriteInstruction(_parse_int(tokens[1][1:], lineno))

    def _add_body(self, slot: int, tokens: List[str], lineno: int) -> None:
        mnemonic = tokens[0]
        pred: Optional[bool] = None
        if mnemonic.endswith("_t"):
            mnemonic, pred = mnemonic[:-2], True
        elif mnemonic.endswith("_f"):
            mnemonic, pred = mnemonic[:-2], False
        if mnemonic not in BY_MNEMONIC:
            raise AsmError(lineno, f"unknown mnemonic {mnemonic!r}")
        opcode = BY_MNEMONIC[mnemonic]
        rest = tokens[1:]

        kwargs = {}
        label = None
        fmt = opcode.format
        if fmt in (Format.L, Format.S):
            m = re.match(r"^L\[(\d+)\]$", rest[0]) if rest else None
            if not m:
                raise AsmError(lineno, f"{mnemonic} needs L[lsid]")
            kwargs["lsid"] = int(m.group(1))
            rest = rest[1:]
            if rest and rest[0].startswith("#"):
                kwargs["imm"] = _parse_int(rest[0][1:], lineno)
                rest = rest[1:]
        elif fmt is Format.I:
            if not rest or not rest[0].startswith("#"):
                raise AsmError(lineno, f"{mnemonic} needs #imm")
            kwargs["imm"] = _parse_int(rest[0][1:], lineno)
            rest = rest[1:]
        elif fmt is Format.C:
            if not rest or not rest[0].startswith("#"):
                raise AsmError(lineno, f"{mnemonic} needs #const")
            kwargs["const"] = _parse_int(rest[0][1:], lineno)
            rest = rest[1:]
        elif fmt is Format.B:
            if rest and rest[0].startswith("exit"):
                kwargs["exit_no"] = _parse_int(rest[0][4:], lineno)
                rest = rest[1:]
            if rest and rest[0].startswith("@"):
                label = rest[0][1:]
                rest = rest[1:]

        targets = [_parse_target(t, lineno) for t in rest]
        try:
            inst = Instruction(opcode, pred=pred, targets=targets, **kwargs)
        except ValueError as exc:
            raise AsmError(lineno, str(exc)) from None
        if label is not None:
            inst.label = "@exit" if label == "exit" else label
        if slot in self.block.body:
            raise AsmError(lineno, f"duplicate body slot {slot}")
        self.block.body[slot] = inst


def assemble(text: str, base: int = 0x1000, data_base: int = 0x100000):
    """Assemble ``text`` into a validated :class:`repro.isa.Program`."""
    builder = ProgramBuilder(base=base, data_base=data_base)
    current: Optional[_BlockAssembler] = None
    entry_label: Optional[str] = None
    data_labels = {}
    pending_reg: List[Tuple[int, str, int]] = []  # (reg, symbol-or-int, lineno)

    def flush(lineno: int) -> None:
        nonlocal current
        if current is not None:
            try:
                builder.append(current.block, label=current.block.name)
            except ValueError as exc:
                raise AsmError(lineno, str(exc)) from None
            current = None

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue
        # Targets like N[1,L] contain no whitespace, so a whitespace split
        # keeps them whole; trailing commas (used in .data lists) are shed.
        tokens = [t.rstrip(",") for t in line.split()]
        tokens = [t for t in tokens if t]

        if tokens[0].startswith("."):
            directive = tokens[0]
            if directive == ".block":
                flush(lineno)
                if len(tokens) != 2:
                    raise AsmError(lineno, ".block needs a name")
                current = _BlockAssembler(tokens[1])
            elif directive == ".entry":
                entry_label = tokens[1]
            elif directive == ".data":
                flush(lineno)
                name = tokens[1]
                rest = tokens[2:]
                at = None
                if rest and rest[0].startswith("@"):
                    # exact placement (disassembler output): the address
                    # already encodes whatever alignment produced it
                    at = _parse_int(rest[0][1:], lineno)
                    rest = rest[1:]
                payload = bytes(
                    _parse_int(tok, lineno) & 0xFF for tok in rest)
                data_labels[name] = builder.add_data(payload, at=at)
            elif directive == ".word":
                flush(lineno)
                name = tokens[1]
                payload = b"".join(
                    (_parse_int(tok, lineno) & (2**64 - 1)).to_bytes(8, "little")
                    for tok in tokens[2:])
                data_labels[name] = builder.add_data(payload)
            elif directive == ".space":
                flush(lineno)
                data_labels[tokens[1]] = builder.add_data(
                    bytes(_parse_int(tokens[2], lineno)))
            elif directive == ".reg":
                # .reg R3 = 42     or    .reg R3 = &arrayname
                if len(tokens) != 4 or tokens[2] != "=":
                    raise AsmError(lineno, ".reg syntax: .reg Rn = value")
                reg = _parse_int(tokens[1][1:], lineno)
                pending_reg.append((reg, tokens[3], lineno))
            else:
                raise AsmError(lineno, f"unknown directive {directive}")
            continue

        if current is None:
            raise AsmError(lineno, "instruction outside .block")
        m = _SLOT_RE.match(tokens[0])
        if not m:
            raise AsmError(lineno, f"expected slot like N[0], got {tokens[0]!r}")
        current.add_line(m.group(1), int(m.group(2)), tokens[1:], lineno)

    flush(len(text.splitlines()) + 1)
    program = builder.finish()
    if entry_label is not None:
        if entry_label not in program.labels:
            raise AsmError(0, f"entry label {entry_label!r} undefined")
        program.entry = program.labels[entry_label]
    for reg, value, lineno in pending_reg:
        if value.startswith("&"):
            name = value[1:]
            if name not in data_labels:
                raise AsmError(lineno, f"unknown data symbol {name!r}")
            program.initial_regs[reg] = data_labels[name]
        else:
            program.initial_regs[reg] = _parse_int(value, lineno)
    return program

"""Disassembler: :class:`repro.isa.Program` -> assembly text.

The output re-assembles to an equivalent program (round-trip tested), which
makes the textual form a reliable interchange format for hand optimization —
the paper's methodology of editing compiler output by hand and feeding it
back (Section 5.4) is exactly this loop.
"""

from __future__ import annotations

from typing import Dict

from ..isa import EXIT_ADDRESS, Format, Program


def disassemble(program: Program) -> str:
    """Render ``program`` as assembly text accepted by :func:`assemble`."""
    addr_to_label: Dict[int, str] = {v: k for k, v in program.labels.items()}
    for i, addr in enumerate(sorted(program.blocks)):
        addr_to_label.setdefault(addr, f"blk_{addr:x}")

    lines = []
    entry = addr_to_label.get(program.entry)
    if entry:
        lines.append(f".entry {entry}")

    data_names: Dict[int, str] = {}
    for addr, payload in sorted(program.data.items()):
        name = f"data_{addr:x}"
        data_names[addr] = name
        byte_list = ", ".join(str(b) for b in payload)
        lines.append(f".data {name} @{addr:#x} {byte_list}")

    for reg, value in sorted(program.initial_regs.items()):
        if value in data_names:
            lines.append(f".reg R{reg} = &{data_names[value]}")
        else:
            lines.append(f".reg R{reg} = {value}")

    for addr in sorted(program.blocks):
        block = program.blocks[addr]
        lines.append("")
        lines.append(f".block {addr_to_label[addr]}")
        for slot in sorted(block.reads):
            read = block.reads[slot]
            targets = " ".join(str(t) for t in read.targets)
            lines.append(f"    R[{slot}] read R{read.reg} {targets}")
        for slot in sorted(block.writes):
            lines.append(f"    W[{slot}] write R{block.writes[slot].reg}")
        for slot in sorted(block.body):
            lines.append(f"    N[{slot}] {_render(program, addr, block, slot, addr_to_label)}")
    return "\n".join(lines) + "\n"


def _render(program, addr, block, slot, addr_to_label) -> str:
    inst = block.body[slot]
    mnemonic = inst.opcode.mnemonic
    if inst.pred is not None:
        mnemonic += "_t" if inst.pred else "_f"
    parts = [mnemonic]
    fmt = inst.opcode.format
    if fmt in (Format.L, Format.S):
        parts.append(f"L[{inst.lsid}]")
        parts.append(f"#{inst.imm}")
    elif fmt is Format.I:
        parts.append(f"#{inst.imm}")
    elif fmt is Format.C:
        parts.append(f"#{inst.const}")
    elif fmt is Format.B:
        parts.append(f"exit{inst.exit_no}")
        if inst.opcode.mnemonic in ("bro", "callo"):
            target = addr + inst.offset
            if target == EXIT_ADDRESS:
                parts.append("@exit")
            else:
                parts.append(f"@{addr_to_label[target]}")
    parts.extend(str(t) for t in inst.targets)
    return " ".join(parts)

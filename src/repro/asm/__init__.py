"""Assembler and disassembler for TRIPS assembly text (TASL).

The textual syntax mirrors the paper's Figure 5a listing::

    .block func1
        R[0]   read R4 N[1,L] N[2,L]
        W[8]   write R5
        N[0]   movi #0 N[1,R]
        N[1]   teq N[2,P] N[3,P]
        N[2]   muli_f #4 N[32,L]
        N[32]  lw L[0] #8 N[33,L]
        N[34]  sw L[1] #0
        N[35]  callo exit0 @func1 W[8]

Directives: ``.block NAME`` starts a block, ``.data NAME byte, byte, ...``
and ``.space NAME n`` reserve data, ``.entry NAME`` sets the entry block,
``.reg Rn = value`` sets an initial register.  Branches name their targets
symbolically (``@label`` or ``@exit``); the assembler resolves offsets.
"""

from .assembler import AsmError, assemble
from .disassembler import disassemble

__all__ = ["AsmError", "assemble", "disassemble"]

"""Architectural checkpoints: snapshot a fast-forwarded machine, resume
the cycle-accurate engine from it.

A checkpoint captures, at a block boundary:

* **architectural state** — PC, the 128 architectural registers, and
  every touched 4KB memory page (sparse, like the backing store itself),
* **warm microarchitectural state** — the next-block predictor's tables
  and the I-cache / D-cache / NUCA-bank LRU tag sets accumulated by the
  :class:`~repro.sampling.ffwd.FastForwarder`,
* **progress counters** — blocks and instructions retired before the
  snapshot, so sampled statistics can be stitched into whole-program
  estimates.

The JSON codec is exact in the same sense as :mod:`repro.tir.serialize`:
every field is integers, strings and hex page images, so a checkpoint
round-trips bit-for-bit through ``json.dumps``/``loads`` (there are no
floats anywhere in machine state).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..isa import EXIT_ADDRESS
from .ffwd import FastForwarder

CHECKPOINT_VERSION = 1


@dataclass
class ArchCheckpoint:
    """Resumable machine state at a block boundary."""

    pc: int
    blocks: int                      # blocks retired before this point
    insts: int                       # body instructions fired before it
    reads: int                       # register reads before it
    regs: List[int]
    pages: Dict[int, bytes]          # page base address -> 4KB image
    predictor: Optional[dict] = None
    icache: Optional[List[List[List[int]]]] = None
    dcache: Optional[List[List[List[int]]]] = None
    mt_banks: Optional[List[List[List[int]]]] = None
    halted: bool = False
    #: bounded-warming provenance: how many blocks the fast-forwarder
    #: executed *unwarmed* before this snapshot (``warm_horizon`` runs).
    #: Zero means continuously-warmed state; a large value means the tag
    #: and predictor contents are that many blocks stale — the bias this
    #: buys is measured by ``repro.sampling.validate.staleness_sweep``.
    unwarmed_blocks: int = 0

    # -- codec (exact: ints + hex strings only) -------------------------
    def to_dict(self) -> dict:
        return {
            "version": CHECKPOINT_VERSION,
            "pc": self.pc,
            "blocks": self.blocks,
            "insts": self.insts,
            "reads": self.reads,
            "halted": self.halted,
            "unwarmed_blocks": self.unwarmed_blocks,
            "regs": list(self.regs),
            "pages": {str(addr): data.hex()
                      for addr, data in sorted(self.pages.items())},
            "predictor": self.predictor,
            "icache": self.icache,
            "dcache": self.dcache,
            "mt_banks": self.mt_banks,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ArchCheckpoint":
        version = data.get("version", CHECKPOINT_VERSION)
        if version != CHECKPOINT_VERSION:
            raise ValueError(f"unknown checkpoint version {version}")
        return cls(
            pc=data["pc"], blocks=data["blocks"], insts=data["insts"],
            reads=data.get("reads", 0), halted=data.get("halted", False),
            unwarmed_blocks=data.get("unwarmed_blocks", 0),
            regs=list(data["regs"]),
            pages={int(addr): bytes.fromhex(image)
                   for addr, image in data["pages"].items()},
            predictor=data.get("predictor"),
            icache=data.get("icache"),
            dcache=data.get("dcache"),
            mt_banks=data.get("mt_banks"),
        )

    # -- restore --------------------------------------------------------
    def apply(self, proc) -> None:
        """Overwrite a freshly-constructed
        :class:`~repro.uarch.proc.TripsProcessor`'s state with this
        checkpoint (called from its ``__init__`` via ``checkpoint=``)."""
        if self.halted or self.pc == EXIT_ADDRESS:
            raise ValueError("cannot resume a checkpoint taken at HALT")
        proc.regs[:] = self.regs
        for addr, image in self.pages.items():
            proc.memory.write_bytes(addr, image)
        proc._pending_fetch_addr = self.pc
        if self.predictor is not None:
            proc.predictor.load_state(self.predictor)
        if self.icache is not None:
            for bank, sets in zip(proc.icache, self.icache):
                bank.load_state(sets)
        if self.dcache is not None:
            for dt, sets in zip(proc.dts, self.dcache):
                dt.cache.load_state(sets)
        if self.mt_banks is not None and proc.sysmem is not None:
            for mt, sets in zip(proc.sysmem.mts, self.mt_banks):
                mt.bank.load_state(sets)


def take_checkpoint(ff: FastForwarder) -> ArchCheckpoint:
    """Snapshot a fast-forwarder at its current block boundary.

    The predictor's *tables* (exit, confidence, choice, target, type) are
    shipped warm; its *history registers* (``ghist`` and the local history
    table) are zeroed.  In the detailed engine those registers carry
    wrong-path pollution — every flush leaves the speculative pushes of
    other in-flight blocks' local histories in place — and that pollution
    is what keeps hard-to-predict blocks hard to predict.  An in-order
    fast-forward never fetches a wrong path, so its clean histories bias
    a resumed window into an unrealistically predictable fixed point
    (measured up to -30% cycles on branchy workloads).  Zeroed registers
    refill under the detailed engine's own dynamics within ~10 blocks of
    warmup, which reproduces true window behavior exactly on most
    workloads (see tests/sampling/ and the sampling note in
    EXPERIMENTS.md).
    """
    stats = ff.stats
    predictor = None
    if ff.warm:
        predictor = ff.predictor.state_dict()
        predictor["ghist"] = 0
        predictor["lht"] = [0] * len(predictor["lht"])
    return ArchCheckpoint(
        pc=ff.pc,
        blocks=stats.blocks,
        insts=stats.fired,
        reads=stats.reads,
        halted=ff.halted,
        unwarmed_blocks=ff.unwarmed_blocks,
        regs=list(ff.regs),
        pages={addr: image for addr, image in ff.memory.touched_pages()},
        predictor=predictor,
        icache=[bank.state() for bank in ff.icache] if ff.warm else None,
        dcache=[bank.state() for bank in ff.dcache] if ff.warm else None,
        mt_banks=[bank.state() for bank in ff.mt_banks]
        if ff.warm and ff.mt_banks is not None else None,
    )

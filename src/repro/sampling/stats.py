"""Statistical aggregation of sampled measurement windows.

SMARTS-style estimation: the fast-forwarder retires *every* block, so
``blocks_total`` / ``insts_total`` / ``reads_total`` are exact; only the
*timing* is sampled.  Each measurement window contributes one observation
of cycles-per-block, and the whole-program cycle count is the mean CPB
scaled by the exact block count, with a confidence interval from the
inter-window variance (Student t for small window counts).  Event
counters (flushes, network messages, cache misses) extrapolate the same
way; ``lsq_peak`` is a peak, not a rate, and reports the maximum seen in
any window.

``SampledProcStats`` round-trips through :mod:`repro.serialize` like the
other stats dataclasses (Python's ``json`` emits ``repr``-exact floats,
so serialization is lossless here too).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: two-sided 95% Student-t quantiles by degrees of freedom (1-30);
#: beyond 30 the normal quantile is within 2%.
_T95 = [12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
        2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
        2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
        2.048, 2.045, 2.042]
_Z95 = 1.960


def t95(df: int) -> float:
    """95% two-sided Student-t critical value."""
    if df <= 0:
        return float("inf")
    if df <= len(_T95):
        return _T95[df - 1]
    return _Z95


#: ProcStats counters extrapolated as per-block rates.
RATE_FIELDS = ("blocks_flushed", "blocks_fetched", "flushes_mispredict",
               "flushes_violation", "icache_miss_blocks", "deferred_loads",
               "gdn_messages", "gcn_messages", "gsn_messages",
               "grn_messages", "dsn_messages", "opn_messages")


@dataclass
class WindowSample:
    """Raw deltas of one measurement window (warmup already excluded).

    ``phase``/``weight`` are set only by the phase-clustered scheduler
    (:mod:`~repro.sampling.phases`): the cluster this window samples and
    the population share it represents.  Stride-scheduled windows leave
    them at their defaults and serialize without the keys, so the
    defaults-off record format is unchanged.
    """

    start_block: int                 # block index where measurement began
    blocks: int
    cycles: int
    insts: int
    reads: int
    counters: Dict[str, int] = field(default_factory=dict)
    lsq_peak: int = 0
    phase: int = -1
    weight: float = 0.0

    def to_dict(self) -> dict:
        data = {"start_block": self.start_block, "blocks": self.blocks,
                "cycles": self.cycles, "insts": self.insts,
                "reads": self.reads, "counters": dict(self.counters),
                "lsq_peak": self.lsq_peak}
        if self.phase >= 0:
            data["phase"] = self.phase
            data["weight"] = self.weight
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "WindowSample":
        return cls(start_block=data["start_block"], blocks=data["blocks"],
                   cycles=data["cycles"], insts=data["insts"],
                   reads=data["reads"],
                   counters=dict(data.get("counters", {})),
                   lsq_peak=data.get("lsq_peak", 0),
                   phase=data.get("phase", -1),
                   weight=data.get("weight", 0.0))


@dataclass
class SampledProcStats:
    """Whole-program estimates from interval-sampled simulation.

    Exact fields (from the functional fast-forward): ``blocks_total``,
    ``insts_total``, ``reads_total``.  Estimated fields carry a 95%
    confidence half-width in the matching ``*_ci`` field.

    ``phases``/``phase_weights`` are populated only by the
    phase-clustered estimator (:func:`aggregate_phases`): the number of
    behavioral phases found and each phase's population share.  They are
    dropped from ``to_dict`` when unset, keeping the defaults-off
    serialization byte-identical to the stride-scheduled sampler's.
    """

    blocks_total: int = 0
    insts_total: int = 0
    reads_total: int = 0
    windows: int = 0
    measured_blocks: int = 0
    measured_cycles: int = 0
    measured_insts: int = 0
    cycles_est: float = 0.0
    cycles_ci: float = 0.0
    ipc_est: float = 0.0
    ipc_ci: float = 0.0
    lsq_peak: int = 0
    rates: Dict[str, float] = field(default_factory=dict)
    rates_ci: Dict[str, float] = field(default_factory=dict)
    window_detail: List[dict] = field(default_factory=list)
    phases: int = 0
    phase_weights: List[float] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        """Fraction of blocks simulated cycle-accurately (measured only)."""
        return self.measured_blocks / self.blocks_total \
            if self.blocks_total else 0.0

    def to_dict(self) -> dict:
        from ..serialize import dataclass_to_dict
        data = dataclass_to_dict(self)
        data["rates"] = dict(self.rates)
        data["rates_ci"] = dict(self.rates_ci)
        data["window_detail"] = list(self.window_detail)
        if not self.phases:             # defaults-off: PR-7 record format
            del data["phases"]
            del data["phase_weights"]
        else:
            data["phase_weights"] = list(self.phase_weights)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "SampledProcStats":
        from ..serialize import dataclass_from_dict
        return dataclass_from_dict(cls, data)


def _mean_ci(values: List[float]) -> (float, float):
    n = len(values)
    mean = sum(values) / n
    if n < 2:
        return mean, float("inf")
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    return mean, t95(n - 1) * math.sqrt(var / n)


def aggregate(windows: List[WindowSample], blocks_total: int,
              insts_total: int, reads_total: int) -> SampledProcStats:
    """Fold window observations into whole-program estimates."""
    if not windows:
        raise ValueError("no measurement windows to aggregate")
    usable = [w for w in windows if w.blocks > 0]
    if not usable:
        raise ValueError("every measurement window is empty")

    cpb = [w.cycles / w.blocks for w in usable]
    cpb_mean, cpb_ci = _mean_ci(cpb)
    cycles_est = cpb_mean * blocks_total
    cycles_ci = cpb_ci * blocks_total

    ipc_est = insts_total / cycles_est if cycles_est else 0.0
    # delta method: d(ipc)/d(cycles) = -insts/cycles^2
    ipc_ci = (insts_total / cycles_est ** 2) * cycles_ci \
        if cycles_est and math.isfinite(cycles_ci) else float("inf")

    rates: Dict[str, float] = {}
    rates_ci: Dict[str, float] = {}
    for name in RATE_FIELDS:
        per_block = [w.counters.get(name, 0) / w.blocks for w in usable]
        mean, ci = _mean_ci(per_block)
        rates[name] = mean * blocks_total
        rates_ci[name] = ci * blocks_total if math.isfinite(ci) \
            else float("inf")

    return SampledProcStats(
        blocks_total=blocks_total,
        insts_total=insts_total,
        reads_total=reads_total,
        windows=len(usable),
        measured_blocks=sum(w.blocks for w in usable),
        measured_cycles=sum(w.cycles for w in usable),
        measured_insts=sum(w.insts for w in usable),
        cycles_est=cycles_est,
        cycles_ci=cycles_ci,
        ipc_est=ipc_est,
        ipc_ci=ipc_ci,
        lsq_peak=max(w.lsq_peak for w in usable),
        rates=rates,
        rates_ci=rates_ci,
        window_detail=[w.to_dict() for w in usable],
    )


def _weighted_stats(values_by_phase: Dict[int, List[float]],
                    weights: Dict[int, float]) -> (float, float, int):
    """Stratified point estimate + variance of the estimate + df.

    Strata are phases; the estimate is the population-weighted mean of
    per-phase means, the variance is ``sum(w_c^2 * s_c^2 / n_c)``.
    Singleton strata (one window) cannot estimate their own variance, so
    they borrow the pooled within-phase variance of the multi-window
    strata; when *every* stratum is a singleton, the between-window
    variance over all windows stands in — an overestimate (it includes
    the between-phase spread the stratification removed), so the CI errs
    wide, never narrow.
    """
    est = sum(weights[c] * (sum(vals) / len(vals))
              for c, vals in values_by_phase.items())
    pooled_num = pooled_den = 0
    for vals in values_by_phase.values():
        n = len(vals)
        if n >= 2:
            mean = sum(vals) / n
            pooled_num += sum((v - mean) ** 2 for v in vals)
            pooled_den += n - 1
    if pooled_den:
        pooled = pooled_num / pooled_den
        var = sum(weights[c] ** 2 * pooled / len(vals)
                  if len(vals) < 2 else
                  weights[c] ** 2
                  * (sum((v - sum(vals) / len(vals)) ** 2
                         for v in vals) / (len(vals) - 1)) / len(vals)
                  for c, vals in values_by_phase.items())
        return est, var, pooled_den
    everything = [v for vals in values_by_phase.values() for v in vals]
    n_all = len(everything)
    if n_all < 2:
        return est, float("inf"), 0
    mean = sum(everything) / n_all
    s2 = sum((v - mean) ** 2 for v in everything) / (n_all - 1)
    var = sum(weights[c] ** 2 * s2 for c in values_by_phase)
    return est, var, n_all - 1


def aggregate_phases(windows: List[WindowSample], blocks_total: int,
                     insts_total: int, reads_total: int,
                     k: int, phase_weights: List[float]
                     ) -> SampledProcStats:
    """Fold phase-scheduled windows into population-weighted estimates.

    Each window carries its phase and the population share it represents
    (:class:`~repro.sampling.phases.PhaseWindow`); phases whose windows
    all fell past program end are dropped and the surviving phases'
    weights renormalized, so the estimator stays a convex combination.
    """
    if not windows:
        raise ValueError("no measurement windows to aggregate")
    usable = [w for w in windows if w.blocks > 0]
    if not usable:
        raise ValueError("every measurement window is empty")

    present: Dict[int, List[WindowSample]] = {}
    for w in usable:
        present.setdefault(w.phase, []).append(w)
    raw = {c: sum(w.weight for w in group)
           for c, group in present.items()}
    total_w = sum(raw.values())
    weights = {c: wt / total_w for c, wt in raw.items()}

    cpb_by_phase = {c: [w.cycles / w.blocks for w in group]
                    for c, group in present.items()}
    cpb_mean, cpb_var, df = _weighted_stats(cpb_by_phase, weights)
    cycles_est = cpb_mean * blocks_total
    cycles_ci = t95(df) * math.sqrt(cpb_var) * blocks_total \
        if math.isfinite(cpb_var) else float("inf")

    ipc_est = insts_total / cycles_est if cycles_est else 0.0
    ipc_ci = (insts_total / cycles_est ** 2) * cycles_ci \
        if cycles_est and math.isfinite(cycles_ci) else float("inf")

    rates: Dict[str, float] = {}
    rates_ci: Dict[str, float] = {}
    for name in RATE_FIELDS:
        by_phase = {c: [w.counters.get(name, 0) / w.blocks for w in group]
                    for c, group in present.items()}
        mean, var, rdf = _weighted_stats(by_phase, weights)
        rates[name] = mean * blocks_total
        rates_ci[name] = t95(rdf) * math.sqrt(var) * blocks_total \
            if math.isfinite(var) else float("inf")

    return SampledProcStats(
        blocks_total=blocks_total,
        insts_total=insts_total,
        reads_total=reads_total,
        windows=len(usable),
        measured_blocks=sum(w.blocks for w in usable),
        measured_cycles=sum(w.cycles for w in usable),
        measured_insts=sum(w.insts for w in usable),
        cycles_est=cycles_est,
        cycles_ci=cycles_ci,
        ipc_est=ipc_est,
        ipc_ci=ipc_ci,
        lsq_peak=max(w.lsq_peak for w in usable),
        rates=rates,
        rates_ci=rates_ci,
        window_detail=[w.to_dict() for w in usable],
        phases=k,
        phase_weights=list(phase_weights),
    )

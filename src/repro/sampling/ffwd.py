"""Compiled functional fast-forward: the sampling engine's block skipper.

Sampled simulation (SMARTS/SimPoint style) spends almost all of its time
*between* measurement windows, executing blocks only for their
architectural effect.  The stock :class:`~repro.uarch.functional.FunctionalSim`
interprets each block's dataflow graph with a token pump — faithful, but
only ~5x faster than the cycle engine, nowhere near enough to amortize a
sampled run.  This module compiles each :class:`~repro.isa.block.TripsBlock`
to a straight-line Python function once (the block's static dataflow DAG
is topologically sorted at compile time, so the token pump disappears)
and executes that function per block visit.

Semantics are identical to ``FunctionalSim`` by construction:

* null tokens poison downstream dataflow; a store or register write
  receiving null signals completion without touching state,
* predicated instructions fire (bit 0 of the predicate token matches) or
  die; dead producers leave their consumers unfired,
* stores buffer until block commit; loads execute only after every
  earlier-LSID store has signalled and forward bytes from earlier-LSID
  buffered stores,
* ``FunctionalStats`` counters (``fired`` — which equals the detailed
  engine's ``insts_committed`` — ``reads``, ``loads``, ``stores``,
  ``nullified_outputs``, ``branches_by_exit``) count exactly as the
  interpreter counts them.

Blocks the compiler cannot prove acyclic (a static dataflow cycle is
legal dead code) or that use a shape it does not model fall back to the
inherited interpreter per visit — ``fallback_blocks`` counts them.

The fast-forwarder also maintains *warm microarchitectural state* for
checkpoints: a :class:`~repro.uarch.predictor.NextBlockPredictor` trained
with each block's architectural outcome, and I-cache / D-cache / NUCA
bank LRU state touched with each fetch and memory access, mirroring the
detailed engine's ``lookup``/``fill`` discipline.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Set, Tuple

from ..isa import EXIT_ADDRESS, OperandKind, Program, TripsBlock
from ..isa.alu import _BINOP, _IMMOP, _UNOP
from ..isa.opcodes import ACCESS_SIZE, Opcode, OpClass, SIGNED_LOADS
from ..mem.mt import MtConfig
from ..tir import semantics
from ..uarch.caches import CacheBank
from ..uarch.config import PROTOTYPE, TripsConfig
from ..uarch.functional import NULL_TOKEN, FunctionalSim, SimError
from ..uarch.predictor import BT_BRANCH, BT_CALL, BT_RETURN, NextBlockPredictor

MASK64 = 0xFFFFFFFFFFFFFFFF
_SIGN = 0x8000000000000000

#: FP opcodes whose IEEE-double bit casts are inlined into the compiled
#: source instead of routed through ``semantics.binop`` — the dispatch
#: chain plus per-call ``bits_to_float``/``float_to_bits`` round-trips
#: is ~half the fast-forward time on FP-dense workloads (basefp01).
#: Python floats *are* C doubles, so ``+``/``-``/``*`` and the ordered
#: comparisons (NaN-unordered, like the lambdas they replace) are
#: bit-identical to the ``semantics`` path.  FDIV keeps the call: its
#: zero-divisor special cases don't belong in a template.
_FINLINE = {Opcode.FADD: "+", Opcode.FSUB: "-", Opcode.FMUL: "*",
            Opcode.FEQ: "==", Opcode.FNE: "!=", Opcode.FLT: "<",
            Opcode.FLE: "<=", Opcode.FGT: ">", Opcode.FGE: ">="}
_FARITH = {Opcode.FADD, Opcode.FSUB, Opcode.FMUL}
_QS = struct.Struct("<Q")
_DS = struct.Struct("<d")


class BlockCompileError(Exception):
    """This block cannot be compiled; execute it with the interpreter."""


# ----------------------------------------------------------------------
# runtime helper shared by every compiled block
def _ld(mem, sb, addr, size, lsid):
    """A load's raw bytes: memory overlaid with earlier-LSID buffered
    stores (same answer as ``FunctionalSim._load_with_forwarding``)."""
    if not sb:
        return mem.read(addr, size)
    result = bytearray(mem.read_bytes(addr, size))
    for s_lsid, s_addr, s_size, s_value in sorted(sb):
        if s_lsid >= lsid:
            break
        lo = max(addr, s_addr)
        hi = min(addr + size, s_addr + s_size)
        if lo >= hi:
            continue
        s_bytes = (s_value & ((1 << (8 * s_size)) - 1)).to_bytes(
            s_size, "little")
        for b in range(lo, hi):
            result[b - addr] = s_bytes[b - s_addr]
    return int.from_bytes(result, "little")


# ----------------------------------------------------------------------
# expression templates (operands are plain local names holding 64-bit
# patterns; every produced value is already masked to 64 bits)
def _expr(inst, A: str, B: str) -> str:
    op = inst.opcode
    if op is Opcode.ADD:
        return f"({A} + {B}) & {MASK64}"
    if op is Opcode.SUB:
        return f"({A} - {B}) & {MASK64}"
    if op is Opcode.MUL:
        return f"({A} * {B}) & {MASK64}"
    if op is Opcode.AND:
        return f"{A} & {B}"
    if op is Opcode.OR:
        return f"{A} | {B}"
    if op is Opcode.XOR:
        return f"{A} ^ {B}"
    if op is Opcode.SLL:
        return f"({A} << ({B} & 63)) & {MASK64}"
    if op is Opcode.SRL:
        return f"{A} >> ({B} & 63)"
    if op is Opcode.SRA:
        return f"(({A} - (({A} >> 63) << 64)) >> ({B} & 63)) & {MASK64}"
    if op is Opcode.TEQ:
        return f"1 if {A} == {B} else 0"
    if op is Opcode.TNE:
        return f"1 if {A} != {B} else 0"
    if op is Opcode.TLT:
        return f"1 if ({A} ^ {_SIGN}) < ({B} ^ {_SIGN}) else 0"
    if op is Opcode.TLE:
        return f"1 if ({A} ^ {_SIGN}) <= ({B} ^ {_SIGN}) else 0"
    if op is Opcode.TGT:
        return f"1 if ({A} ^ {_SIGN}) > ({B} ^ {_SIGN}) else 0"
    if op is Opcode.TGE:
        return f"1 if ({A} ^ {_SIGN}) >= ({B} ^ {_SIGN}) else 0"
    if op is Opcode.TLTU:
        return f"1 if {A} < {B} else 0"
    if op is Opcode.TGEU:
        return f"1 if {A} >= {B} else 0"
    if op is Opcode.NOT:
        return f"{A} ^ {MASK64}"
    if op is Opcode.MOV:
        return A
    if op is Opcode.MOVI:
        return str(inst.const & MASK64)
    if op is Opcode.MOVIH:
        return f"(({A} << 16) | {inst.const & 0xFFFF}) & {MASK64}"
    if op in _IMMOP:
        ib = inst.imm & MASK64
        name = _IMMOP[op]
        if name == "add":
            return f"({A} + {ib}) & {MASK64}"
        if name == "sub":
            return f"({A} - {ib}) & {MASK64}"
        if name == "mul":
            return f"({A} * {ib}) & {MASK64}"
        if name == "and":
            return f"{A} & {ib}"
        if name == "or":
            return f"{A} | {ib}"
        if name == "xor":
            return f"{A} ^ {ib}"
        if name == "shl":
            return f"({A} << {ib & 63}) & {MASK64}"
        if name == "shr":
            return f"{A} >> {ib & 63}"
        if name == "sra":
            return f"(({A} - (({A} >> 63) << 64)) >> {ib & 63}) & {MASK64}"
        if name == "eq":
            return f"1 if {A} == {ib} else 0"
        if name == "ne":
            return f"1 if {A} != {ib} else 0"
        if name == "lt":
            return f"1 if ({A} ^ {_SIGN}) < {ib ^ _SIGN} else 0"
        if name == "le":
            return f"1 if ({A} ^ {_SIGN}) <= {ib ^ _SIGN} else 0"
        if name == "gt":
            return f"1 if ({A} ^ {_SIGN}) > {ib ^ _SIGN} else 0"
        if name == "ge":
            return f"1 if ({A} ^ {_SIGN}) >= {ib ^ _SIGN} else 0"
        raise BlockCompileError(f"immediate op {name!r}")
    if op in _FINLINE:
        fa, fb = f"_du(_qp({A}))[0]", f"_du(_qp({B}))[0]"
        if op in _FARITH:
            return f"_qu(_dp({fa} {_FINLINE[op]} {fb}))[0]"
        return f"1 if {fa} {_FINLINE[op]} {fb} else 0"
    if op in _BINOP:        # divide + FDIV
        return f"_binop({_BINOP[op]!r}, {A}, {B})"
    if op in _UNOP:
        return f"_unop({_UNOP[op]!r}, {A})"
    raise BlockCompileError(f"no expression template for {op.mnemonic}")


# ----------------------------------------------------------------------
class _Compiler:
    """Emits one block's Python source (see module docstring)."""

    def __init__(self, block: TripsBlock, addr: int):
        self.block = block
        self.addr = addr
        self.lines: List[str] = []
        # (slot, kind) -> producer var names; write slot -> producer names
        self.ops: Dict[Tuple[int, OperandKind], List[str]] = {}
        self.wops: Dict[int, List[str]] = {}
        self.certain: Dict[str, bool] = {}      # var fires unconditionally
        self.nonnull: Dict[str, bool] = {}      # var is never a null token
        self.fired_const = 0
        self.loads_const = 0
        self.stores_const = 0
        self.n_branches = sum(
            1 for i in block.body.values() if i.opcode.is_branch)

    def emit(self, line: str, depth: int = 1) -> None:
        self.lines.append("    " * depth + line)

    # -- producer wiring ------------------------------------------------
    def _route(self, target, var: str) -> None:
        if target.kind is OperandKind.WRITE:
            if target.slot not in self.block.writes:
                raise BlockCompileError(f"write target {target.slot} unmapped")
            self.wops.setdefault(target.slot, []).append(var)
        else:
            if target.slot not in self.block.body:
                raise BlockCompileError(f"target slot {target.slot} empty")
            self.ops.setdefault((target.slot, target.kind), []).append(var)

    def _wire(self) -> None:
        for rslot, read in sorted(self.block.reads.items()):
            var = f"r{rslot}"
            self.certain[var] = True
            self.nonnull[var] = True
            for target in read.targets:
                self._route(target, var)
        for slot, inst in sorted(self.block.body.items()):
            op = inst.opcode
            if op.is_store:
                continue
            if op.is_branch and op is not Opcode.CALLO:
                continue
            var = f"t{slot}"
            targets = inst.targets[:1] if op is Opcode.CALLO \
                else inst.targets
            for target in targets:
                self._route(target, var)

    # -- topological order (store -> later-LSID load edges included) ----
    def _order(self) -> List[int]:
        body = self.block.body
        deps: Dict[int, Set[int]] = {s: set() for s in body}
        for (cslot, _kind), plist in self.ops.items():
            for p in plist:
                if p[0] == "t":
                    deps[cslot].add(int(p[1:]))
        stores = [(inst.lsid, slot) for slot, inst in body.items()
                  if inst.opcode.is_store]
        for slot, inst in body.items():
            if inst.opcode.is_load:
                deps[slot].update(s for lsid, s in stores
                                  if lsid < inst.lsid)
        order: List[int] = []
        remaining = dict(deps)
        while remaining:
            ready = sorted(s for s, d in remaining.items() if not d)
            if not ready:
                raise BlockCompileError("static dataflow cycle")
            for s in ready:
                del remaining[s]
            for d in remaining.values():
                d.difference_update(ready)
            order.extend(ready)
        return order

    # -- operand resolution ---------------------------------------------
    def _operand(self, slot: int, kind: OperandKind,
                 temp: str) -> Optional[Tuple[str, bool, bool]]:
        """(name, present_certain, nonnull) or None when no producer."""
        plist = self.ops.get((slot, kind))
        if not plist:
            return None
        if len(plist) == 1:
            p = plist[0]
            return p, self.certain[p], self.nonnull[p]
        # predicated phi: at most one producer fires dynamically
        expr = plist[-1]
        for p in reversed(plist[:-1]):
            expr = f"({p} if {p} is not None else {expr})"
        self.emit(f"{temp} = {expr}")
        return (temp, any(self.certain[p] for p in plist),
                all(self.nonnull[p] for p in plist))

    # -- per-instruction emission ---------------------------------------
    def _emit_inst(self, slot: int) -> None:
        inst = self.block.body[slot]
        op = inst.opcode
        need = op.num_operands
        produces = not op.is_store and (
            not op.is_branch or op is Opcode.CALLO)
        var = f"t{slot}"

        operands = []
        dead = False
        for kind, required in ((OperandKind.LEFT, need >= 1),
                               (OperandKind.RIGHT, need >= 2),
                               (OperandKind.PRED, inst.pred is not None)):
            if not required:
                operands.append(None)
                continue
            got = self._operand(slot, kind, f"{var}{kind.name[0].lower()}")
            if got is None:
                dead = True         # a required operand can never arrive
                break
            operands.append(got)
        if dead:
            if produces:
                self.certain[var] = False
                self.nonnull[var] = False
                self.emit(f"{var} = None")
            return
        left, right, pred = operands

        conds: List[str] = []
        if pred is not None:
            pname, pcert, pnn = pred
            if not pcert:
                conds.append(f"{pname} is not None")
            if not pnn:
                conds.append(f"{pname} is not N")
            conds.append(f"{pname} & 1 == {int(inst.pred)}")
        for o in (left, right):
            if o is not None and not o[1]:
                conds.append(f"{o[0]} is not None")
        fires_certain = not conds

        nulls = [o[0] for o in (left, right)
                 if o is not None and not o[2]]

        if produces:
            self.certain[var] = fires_certain
        if op.is_store:
            self._emit_store(inst, var, left, right, conds, nulls)
        elif op.is_load:
            self._emit_load(inst, var, left, conds, nulls)
        elif op.is_branch:
            self._emit_branch(inst, var, left, conds, nulls, fires_certain)
        elif op.opclass is OpClass.NULLIFY:
            self.nonnull[var] = False
            if fires_certain:
                self.fired_const += 1
                self.emit(f"{var} = N")
            else:
                self.emit(f"{var} = None")
                self.emit(f"if {' and '.join(conds)}:")
                self.emit("f += 1", 2)
                self.emit(f"{var} = N", 2)
        else:
            self._emit_alu(inst, var, left, right, conds, nulls,
                           fires_certain)

    def _emit_alu(self, inst, var, left, right, conds, nulls,
                  fires_certain) -> None:
        value = _expr(inst, left and left[0], right and right[0])
        self.nonnull[var] = not nulls
        if fires_certain and not nulls:
            self.fired_const += 1
            self.emit(f"{var} = {value}")
            return
        depth = 1
        if not fires_certain:
            self.emit(f"{var} = None")
            self.emit(f"if {' and '.join(conds)}:")
            self.emit("f += 1", 2)
            depth = 2
        else:
            self.fired_const += 1
        if nulls:
            null_test = " or ".join(f"{n} is N" for n in nulls)
            self.emit(f"{var} = N if {null_test} else ({value})", depth)
        else:
            self.emit(f"{var} = {value}", depth)

    def _emit_load(self, inst, var, left, conds, nulls) -> None:
        size = ACCESS_SIZE[inst.opcode]
        ib = inst.imm & MASK64
        raw = f"_ld(mem, sb, _a, {size}, {inst.lsid})"
        if inst.opcode in SIGNED_LOADS and size < 8:
            hs, fs = 1 << (8 * size - 1), 1 << (8 * size)
            value = (f"(_v - {fs}) & {MASK64} if _v >= {hs} else _v")
        else:
            value = "_v"
        self.nonnull[var] = not nulls
        depth = 1
        if conds:
            self.emit(f"{var} = None")
            self.emit(f"if {' and '.join(conds)}:")
            depth = 2
            self.emit("lc += 1", depth)
        else:
            self.loads_const += 1
        if nulls:
            self.emit(f"if {nulls[0]} is N:", depth)
            self.emit(f"{var} = N", depth + 1)
            self.emit("else:", depth)
            depth += 1
        self.emit(f"_a = ({left[0]} + {ib}) & {MASK64}", depth)
        self.emit("ma.append(_a)", depth)
        self.emit(f"_v = {raw}", depth)
        self.emit(f"{var} = {value}", depth)

    def _emit_store(self, inst, var, left, right, conds, nulls) -> None:
        size = ACCESS_SIZE[inst.opcode]
        ib = inst.imm & MASK64
        depth = 1
        if conds:
            self.emit(f"if {' and '.join(conds)}:")
            depth = 2
            self.emit("sc += 1", depth)
        else:
            self.stores_const += 1
        self.emit(f"sd |= {1 << inst.lsid}", depth)
        if nulls:
            null_test = " or ".join(f"{n} is N" for n in nulls)
            self.emit(f"if {null_test}:", depth)
            self.emit("nul += 1", depth + 1)
            self.emit("else:", depth)
            depth += 1
        self.emit(f"_a = ({left[0]} + {ib}) & {MASK64}", depth)
        self.emit(f"sb.append(({inst.lsid}, _a, {size}, {right[0]}))",
                  depth)

    def _emit_branch(self, inst, var, left, conds, nulls,
                     fires_certain) -> None:
        op = inst.opcode
        delivers_link = op is Opcode.CALLO and inst.targets
        depth = 1
        if conds:
            if delivers_link:
                self.emit(f"{var} = None")
            self.emit(f"if {' and '.join(conds)}:")
            depth = 2
            self.emit("f += 1", depth)
        else:
            self.fired_const += 1
        if self.n_branches > 1:
            self.emit("if nx is not None:", depth)
            self.emit(f"raise SimError('block {self.block.name}: two "
                      "branches fired')", depth + 1)
        self.emit(f"ex = {inst.exit_no}", depth)
        if op is Opcode.HALT:
            self.emit(f"nx = {EXIT_ADDRESS}", depth)
            self.emit(f"bt = {BT_BRANCH}", depth)
        elif op in (Opcode.BRO, Opcode.CALLO):
            target = (self.addr + inst.offset) & MASK64
            self.emit(f"nx = {target}", depth)
            self.emit(f"bt = {BT_CALL if op is Opcode.CALLO else BT_BRANCH}",
                      depth)
            if delivers_link:
                link = (self.addr + self.block.size_bytes) & MASK64
                self.nonnull[var] = True
                self.emit(f"{var} = {link}", depth)
        else:                       # BR / RET: target is the left operand
            if nulls:
                self.emit(f"if {left[0]} is N:", depth)
                self.emit("raise SimError('branch received a null target "
                          "address')", depth + 1)
            self.emit(f"nx = {left[0]}", depth)
            self.emit(f"bt = {BT_RETURN if op is Opcode.RET else BT_BRANCH}",
                      depth)

    # -- whole-function emission ----------------------------------------
    def compile(self):
        block, addr = self.block, self.addr
        regs_written = [w.reg for w in block.writes.values()]
        if len(set(regs_written)) != len(regs_written):
            raise BlockCompileError("two write slots share a register")
        self._wire()
        order = self._order()

        name = f"_blk_{addr:x}"
        self.lines.append(f"def {name}(sim):")
        self.emit("st = sim.stats")
        self.emit("regs = sim.regs")
        self.emit("mem = sim.memory")
        self.emit("sb = []; ma = []")
        self.emit("f = 0; lc = 0; sc = 0; nul = 0; sd = 0")
        self.emit("nx = None; ex = 0; bt = 0")
        for rslot, read in sorted(block.reads.items()):
            self.emit(f"r{rslot} = regs[{read.reg}]")
        for slot in order:
            self._emit_inst(slot)

        # completion + commit
        self.emit("if nx is None:")
        self.emit(f"raise SimError('block {block.name}: no branch fired "
                  "(deadlock?)')", 2)
        if block.store_mask:
            self.emit(f"if sd != {block.store_mask}:")
            self.emit(f"raise SimError('block {block.name}: store LSIDs "
                      "never signalled')", 2)
        for wslot, write in sorted(block.writes.items()):
            plist = self.wops.get(wslot, [])
            if not plist:
                self.emit(f"raise SimError('block {block.name}: write slot "
                          f"{wslot} never received a value')")
                continue
            if len(plist) == 1 and self.certain[plist[0]] \
                    and self.nonnull[plist[0]]:
                self.emit(f"regs[{write.reg}] = {plist[0]}")
                continue
            expr = plist[-1]
            for p in reversed(plist[:-1]):
                expr = f"({p} if {p} is not None else {expr})"
            self.emit(f"_w = {expr}")
            self.emit("if _w is None:")
            self.emit(f"raise SimError('block {block.name}: write slot "
                      f"{wslot} never received a value')", 2)
            self.emit("elif _w is N:")
            self.emit("nul += 1", 2)
            self.emit("else:")
            self.emit(f"regs[{write.reg}] = _w", 2)
        if any(i.opcode.is_store for i in block.body.values()):
            self.emit("if sb:")
            self.emit("sb.sort()", 2)
            self.emit("for _s in sb:", 2)
            self.emit("mem.write(_s[1], _s[3], _s[2])", 3)
            self.emit("msa = [_s[1] for _s in sb]")
        else:
            self.emit("msa = ()")
        fired_all = self.fired_const + self.loads_const + self.stores_const
        self.emit(f"st.fired += {fired_all} + f + lc + sc")
        if self.loads_const or any(i.opcode.is_load
                                   for i in block.body.values()):
            self.emit(f"st.loads += {self.loads_const} + lc")
        if self.stores_const or any(i.opcode.is_store
                                    for i in block.body.values()):
            self.emit(f"st.stores += {self.stores_const} + sc")
        if block.reads:
            self.emit(f"st.reads += {len(block.reads)}")
        self.emit("if nul:")
        self.emit("st.nullified_outputs += nul", 2)
        self.emit("_b = st.branches_by_exit")
        self.emit("_b[ex] = _b.get(ex, 0) + 1")
        self.emit("return nx, ex, bt, ma, msa")

        source = "\n".join(self.lines) + "\n"
        namespace = {"N": NULL_TOKEN, "SimError": SimError, "_ld": _ld,
                     "_binop": semantics.binop, "_unop": semantics.unop,
                     "_qp": _QS.pack, "_qu": _QS.unpack,
                     "_dp": _DS.pack, "_du": _DS.unpack}
        exec(compile(source, f"<ffwd:{block.name}>", "exec"), namespace)
        fn = namespace[name]
        fn.__ffwd_source__ = source
        return fn


def compile_block(block: TripsBlock, addr: int):
    """Compile one block to an executor ``fn(sim) -> (next_pc, exit_no,
    btype, load_addrs, store_addrs)``; raises :class:`BlockCompileError`
    when the block needs the interpreter."""
    return _Compiler(block, addr).compile()


# ----------------------------------------------------------------------
class FastForwarder(FunctionalSim):
    """Block-compiled functional simulator with warm-state tracking.

    Drop-in for :class:`FunctionalSim` (same ``regs``/``memory``/``stats``
    /``pc``/``halted``), plus:

    * ``predictor`` — a :class:`NextBlockPredictor` given one
      predict/train round per block transition with the architectural
      outcome (the in-order equivalent of the detailed engine's
      fetch-time predict / commit-time train),
    * ``icache`` / ``dcache`` / ``mt_banks`` — LRU tag state touched per
      fetch and per memory access exactly as the detailed tiles touch
      theirs (``mt_banks`` is ``None`` under ``perfect_l2``),
    * ``run_blocks(n)`` — stop at a block boundary for checkpointing.

    ``warm=False`` skips all of that and just executes fast (~3.5x the
    warm throughput); ``unwarmed_blocks`` counts how many blocks ran
    that way, so a checkpoint can report how stale its warm state is.

    ``bbv_interval=N`` additionally accumulates one basic-block vector
    (static block address -> committed count) per N retired blocks — the
    raw material for :mod:`~repro.sampling.phases`.  The counts ride the
    per-block dispatch that ``step_block`` already does, so collection
    costs one dict increment per block on top of the compiled closures.
    """

    def __init__(self, program: Program, config: TripsConfig = PROTOTYPE,
                 warm: bool = True, max_blocks: int = 2_000_000,
                 bbv_interval: Optional[int] = None):
        super().__init__(program, max_blocks)
        self.config = config
        self.warm = warm
        self.unwarmed_blocks = 0
        self.bbv_interval = bbv_interval
        self.bbvs: List[Dict[int, int]] = []
        self._bbv_cur: Optional[Dict[int, int]] = \
            {} if bbv_interval else None
        self.predictor = NextBlockPredictor(config.predictor)
        self.icache = [CacheBank(config.l1i_bank_kb * 1024,
                                 config.l1i_assoc, 128) for _ in range(5)]
        self.dcache = [CacheBank(config.l1d_bank_kb * 1024,
                                 config.l1d_assoc, config.line_bytes)
                       for _ in range(4)]
        mt = MtConfig()
        self.mt_banks = None if config.perfect_l2 else \
            [CacheBank(mt.size_kb * 1024, mt.assoc, mt.line_bytes)
             for _ in range(16)]
        self.fallback_blocks = 0
        self._fns: Dict[int, object] = {}
        self._meta: Dict[int, Tuple[int, int]] = {}  # addr -> (chunks, fall)
        # MRU memos: skip cache touches that provably change no tag state
        # (a re-access of a set's MRU line only bumps hit counters, which
        # the fast-forwarder's private banks don't report anywhere)
        self._ic_last: int = -1          # last block addr warmed in the I$
        self._dc_last = [-1, -1, -1, -1]  # per-DT-bank MRU line tag

    # ------------------------------------------------------------------
    def _fn_for(self, addr: int):
        try:
            return self._fns[addr]
        except KeyError:
            block = self.program.block_at(addr)
            try:
                fn = compile_block(block, addr)
            except BlockCompileError:
                fn = None
            self._fns[addr] = fn
            self._meta[addr] = (1 + block.num_body_chunks,
                               addr + block.size_bytes)
            return fn

    def step_block(self) -> None:
        addr = self.pc
        fn = self._fn_for(addr)
        st = self.stats
        if fn is None:
            # interpreter fallback: architecturally exact, but this
            # block's visit contributes no warm state (no branch-type /
            # address introspection on the token-pump path)
            block = self.program.block_at(addr)
            nx, reg_writes = self._execute_block(block)
            for reg, value in reg_writes.items():
                self.regs[reg] = value
            self.fallback_blocks += 1
        else:
            nx, ex, bt, ma, msa = fn(self)
            if self.warm:
                self._warm_block(addr, nx, ex, bt, ma, msa)
            else:
                self.unwarmed_blocks += 1
        st.blocks += 1
        st.block_visits[addr] = st.block_visits.get(addr, 0) + 1
        cur = self._bbv_cur
        if cur is not None:
            cur[addr] = cur.get(addr, 0) + 1
            if st.blocks % self.bbv_interval == 0:
                self.bbvs.append(cur)
                self._bbv_cur = {}
        if nx == EXIT_ADDRESS:
            self.halted = True
        else:
            self.pc = nx

    def bbv_vectors(self) -> List[Dict[int, int]]:
        """The per-interval basic-block vectors collected so far,
        including the trailing partial interval (if any)."""
        out = list(self.bbvs)
        if self._bbv_cur:
            out.append(dict(self._bbv_cur))
        return out

    def restore_arch(self, ckpt) -> None:
        """Jump *forward* to an architectural snapshot taken by an
        earlier cold pass over the same program (deterministic functional
        execution makes its state at any block boundary exact).

        Only ``pc``/``regs``/``memory`` and the exact-progress counters
        are overwritten; warm predictor/cache state is left untouched —
        exactly what executing the skipped stretch with ``warm=False``
        would have done — so a bounded-warming (``warm_horizon``)
        measurement pass can skip its cold stretches outright instead of
        re-executing them.  The skipped blocks are charged to
        ``unwarmed_blocks`` to keep staleness provenance honest."""
        st = self.stats
        if ckpt.blocks < st.blocks:
            raise ValueError("restore_arch only jumps forward")
        self.unwarmed_blocks += ckpt.blocks - st.blocks
        self.pc = ckpt.pc
        self.halted = ckpt.halted
        self.regs[:] = ckpt.regs
        for addr, image in ckpt.pages.items():
            self.memory.write_bytes(addr, image)
        st.blocks = ckpt.blocks
        st.fired = ckpt.insts
        st.reads = ckpt.reads

    def run_blocks(self, n: int) -> int:
        """Execute until ``stats.blocks`` reaches ``n`` (or HALT);
        returns the block count actually reached."""
        st = self.stats
        while not self.halted and st.blocks < n:
            if st.blocks >= self.max_blocks:
                raise SimError(f"block budget {self.max_blocks} exhausted")
            self.step_block()
        return st.blocks

    # ------------------------------------------------------------------
    def _warm_block(self, addr, nx, ex, bt, ma, msa) -> None:
        nchunks, fallthrough = self._meta[addr]
        self.predictor.warm_update(addr, fallthrough, nx, ex, bt)
        if addr != self._ic_last:       # re-fetch of the MRU block: no-op
            icache = self.icache
            for k in range(nchunks):
                bank = icache[k]
                if not bank.lookup(addr):
                    bank.fill(addr)
            self._ic_last = addr
        dcache = self.dcache
        dc_last = self._dc_last
        mt = self.mt_banks
        for a in ma:                    # loads: lookup, fill on miss
            line = a >> 6
            b = line & 3
            if line == dc_last[b]:      # already the set's MRU line
                continue
            bank = dcache[b]
            if not bank.lookup(a):
                bank.fill(a)
                if mt is not None:
                    mb = mt[line % 16]
                    if not mb.lookup(a):
                        mb.fill(a)
            dc_last[b] = line
        for a in msa:                   # committed stores: unconditional fill
            line = a >> 6
            b = line & 3
            if line != dc_last[b]:
                dcache[b].fill(a)
                dc_last[b] = -1         # fill doesn't promote present lines

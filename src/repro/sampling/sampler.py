"""The interval-sampling driver: fast-forward, checkpoint, measure.

The fast-forwarder is the master timeline — it retires every block of the
program (so architectural outputs and instruction counts are exact) and
carries warm predictor/cache state.  At each sample point it is
checkpointed, and a cycle-accurate :class:`~repro.uarch.proc.TripsProcessor`
is resumed from the checkpoint for ``warmup_blocks`` (stats discarded —
this rebuilds the short-lived state a checkpoint cannot carry: in-flight
blocks, LSQ, dependence predictor, event wheel) followed by
``measure_blocks`` whose deltas become one
:class:`~repro.sampling.stats.WindowSample`.

Telemetry: probes exist only inside window processors — the fast-forward
path has no probe sites at all, so ``telemetry=True`` costs nothing
outside the measurement windows and yields one summary per window.

A program too short for even one window (shorter than ``offset_blocks``
plus one measurement) degenerates to a single full-length window, i.e.
ordinary full simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..compiler import compile_tir
from ..tir import TirProgram, interpret
from ..uarch.config import PROTOTYPE, TripsConfig
from ..uarch.proc import TripsProcessor
from .checkpoint import take_checkpoint
from .ffwd import FastForwarder
from .stats import RATE_FIELDS, SampledProcStats, WindowSample, aggregate


@dataclass(frozen=True)
class SamplingConfig:
    """Sample-point geometry, in committed blocks.

    One measurement window of ``measure_blocks`` starts every
    ``interval_blocks`` (the first at ``offset_blocks``), preceded by
    ``warmup_blocks`` of discarded detailed simulation.

    ``warm_horizon`` bounds *functional* warming: ``None`` keeps the
    fast-forwarder's predictor/cache warming on for every block (most
    accurate); a block count H warms only the last H blocks before each
    detailed window, letting the stretches in between run at full
    fast-forward speed.  Tables are never cleared, so bounded warming
    only makes warm state slightly stale, and the detailed warmup still
    runs on top of it.

    ``jitter`` staggers each window start by a deterministic
    pseudo-random offset of up to ``jitter * interval_blocks`` blocks
    (stratified sampling).  Strictly-periodic sample points can alias
    against a program's own period — e.g. 41 windows every 1052 blocks
    over dct8x8's 2630-block macroblock loop land on just 5 distinct
    phases (5*1052 = 2*2630), turning phase structure into bias.  The
    stagger sequence is a fixed LCG, so runs stay reproducible.
    """

    interval_blocks: int = 2000
    warmup_blocks: int = 150
    measure_blocks: int = 300
    offset_blocks: int = 0
    warm_horizon: Optional[int] = None
    jitter: float = 0.25

    def to_dict(self) -> Dict[str, object]:
        return {"interval_blocks": self.interval_blocks,
                "warmup_blocks": self.warmup_blocks,
                "measure_blocks": self.measure_blocks,
                "offset_blocks": self.offset_blocks,
                "warm_horizon": self.warm_horizon,
                "jitter": self.jitter}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SamplingConfig":
        horizon = data.get("warm_horizon")
        return cls(interval_blocks=int(data["interval_blocks"]),
                   warmup_blocks=int(data["warmup_blocks"]),
                   measure_blocks=int(data["measure_blocks"]),
                   offset_blocks=int(data.get("offset_blocks", 0)),
                   warm_horizon=None if horizon is None else int(horizon),
                   jitter=float(data.get("jitter", 0.25)))

    def validate(self) -> None:
        if self.measure_blocks <= 0 or self.interval_blocks <= 0:
            raise ValueError("interval/measure block counts must be > 0")
        if self.warmup_blocks < 0 or self.offset_blocks < 0:
            raise ValueError("warmup/offset block counts must be >= 0")
        min_gap = self.interval_blocks - 2 * int(self.jitter *
                                                 self.interval_blocks)
        if self.measure_blocks + self.warmup_blocks > min_gap:
            raise ValueError("windows overlap: warmup + measure exceeds "
                             "the worst-case jittered sampling gap "
                             f"({min_gap} blocks)")
        if self.warm_horizon is not None and self.warm_horizon < 0:
            raise ValueError("warm_horizon must be >= 0 or None")
        if not 0.0 <= self.jitter <= 0.4:
            raise ValueError("jitter must be in [0, 0.4]")

    def window_start(self, k: int) -> int:
        """Measurement-start block index of window ``k`` (jittered)."""
        base = self.offset_blocks + k * self.interval_blocks
        if not self.jitter:
            return base
        # fixed LCG (numerical recipes constants): deterministic stagger
        u = ((k * 1664525 + 1013904223) & 0xFFFFFFFF) / 0x100000000
        span = int(self.jitter * self.interval_blocks)
        return base + int((2 * u - 1.0) * span)


def _counter_snapshot(stats) -> Dict[str, int]:
    return {name: getattr(stats, name) for name in RATE_FIELDS}


def run_sampled_program(program, config: TripsConfig = PROTOTYPE,
                        sampling: SamplingConfig = SamplingConfig(),
                        telemetry=None,
                        max_blocks: int = 500_000_000,
                        ) -> Tuple[SampledProcStats, FastForwarder,
                                   List[dict]]:
    """Sample one compiled :class:`~repro.isa.program.Program`.

    Returns the aggregated stats, the (completed) fast-forwarder — whose
    ``regs``/``memory`` hold the exact architectural results — and one
    telemetry summary dict per window when ``telemetry`` is set.
    """
    sampling.validate()
    ff = FastForwarder(program, config, warm=True, max_blocks=max_blocks)
    windows: List[WindowSample] = []
    summaries: List[dict] = []
    k = 0
    horizon = sampling.warm_horizon
    while not ff.halted:
        start = max(sampling.window_start(k), ff.stats.blocks)
        k += 1
        warm_start = max(0, start - sampling.warmup_blocks)
        if horizon is not None:
            ff.warm = False
            ff.run_blocks(max(ff.stats.blocks, warm_start - horizon))
            ff.warm = True
        ff.run_blocks(warm_start)
        if ff.halted:
            break
        ckpt = take_checkpoint(ff)
        proc = TripsProcessor(program, config, telemetry=telemetry,
                              checkpoint=ckpt)
        warm_target = start - ff.stats.blocks
        if warm_target:
            proc.run(until_blocks=warm_target)
        if proc.halted and proc.stats.blocks_committed <= warm_target:
            continue            # program ended inside the warmup span
        proc.finalize_stats()
        cycles0 = proc.cycle
        insts0 = proc.stats.insts_committed
        reads0 = proc.stats.reads_committed
        counters0 = _counter_snapshot(proc.stats)
        proc.run(until_blocks=warm_target + sampling.measure_blocks)
        proc.finalize_stats()
        measured = proc.stats.blocks_committed - warm_target
        if measured <= 0:
            continue
        counters = {name: getattr(proc.stats, name) - counters0[name]
                    for name in RATE_FIELDS}
        windows.append(WindowSample(
            start_block=start, blocks=measured,
            cycles=proc.cycle - cycles0,
            insts=proc.stats.insts_committed - insts0,
            reads=proc.stats.reads_committed - reads0,
            counters=counters, lsq_peak=proc.stats.lsq_peak))
        if proc.tel is not None:
            summaries.append(proc.tel.summary().to_dict())

    if not windows:
        # program shorter than one sampling period: fall back to one
        # full-length window (= ordinary full simulation, zero error)
        proc = TripsProcessor(program, config, telemetry=telemetry)
        stats = proc.run()
        windows.append(WindowSample(
            start_block=0, blocks=stats.blocks_committed,
            cycles=stats.cycles, insts=stats.insts_committed,
            reads=stats.reads_committed,
            counters=_counter_snapshot(stats), lsq_peak=stats.lsq_peak))
        if proc.tel is not None:
            summaries.append(proc.tel.summary().to_dict())

    sampled = aggregate(windows, ff.stats.blocks, ff.stats.fired,
                        ff.stats.reads)
    return sampled, ff, summaries


@dataclass
class SampledRun:
    """One workload's sampled-simulation result."""

    name: str
    level: str
    sampled: SampledProcStats
    fallback_blocks: int = 0
    telemetry_windows: List[dict] = field(default_factory=list)

    @property
    def cycles(self) -> float:
        return self.sampled.cycles_est

    @property
    def ipc(self) -> float:
        return self.sampled.ipc_est


def run_sampled_workload(workload, level: str = "tcc",
                         config: Optional[TripsConfig] = None,
                         sampling: SamplingConfig = SamplingConfig(),
                         telemetry=None, validate: bool = True,
                         size: int = 1) -> SampledRun:
    """Compile and sample one workload, co-validating architectural
    outputs (from the fast-forwarder, which executes every block) against
    the TIR interpreter's golden results."""
    from ..workloads import get_workload
    if isinstance(workload, TirProgram):
        tir = workload
    else:
        tir = get_workload(workload, size=size)
    compiled = compile_tir(tir, level=level)
    sampled, ff, summaries = run_sampled_program(
        compiled.program, config=config or TripsConfig(),
        sampling=sampling, telemetry=telemetry)
    if validate:
        golden = interpret(tir).output_signature(tir.outputs)
        got = compiled.extract_outputs(ff.regs, ff.memory)
        if got != golden:
            from ..harness.runner import ValidationError
            raise ValidationError(
                f"{tir.name}@{level}: sampled outputs diverge from golden")
    return SampledRun(name=tir.name, level=level, sampled=sampled,
                      fallback_blocks=ff.fallback_blocks,
                      telemetry_windows=summaries)

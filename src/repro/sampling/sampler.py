"""The interval-sampling driver: fast-forward, checkpoint, measure.

The fast-forwarder is the master timeline — it retires every block of the
program (so architectural outputs and instruction counts are exact) and
carries warm predictor/cache state.  At each sample point it is
checkpointed, and a cycle-accurate :class:`~repro.uarch.proc.TripsProcessor`
is resumed from the checkpoint for ``warmup_blocks`` (stats discarded —
this rebuilds the short-lived state a checkpoint cannot carry: in-flight
blocks, LSQ, dependence predictor, event wheel) followed by
``measure_blocks`` whose deltas become one
:class:`~repro.sampling.stats.WindowSample`.

Telemetry: probes exist only inside window processors — the fast-forward
path has no probe sites at all, so ``telemetry=True`` costs nothing
outside the measurement windows and yields one summary per window.

A program too short for even one window (shorter than ``offset_blocks``
plus one measurement) degenerates to a single full-length window, i.e.
ordinary full simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..compiler import compile_tir
from ..tir import TirProgram, interpret
from ..uarch.config import PROTOTYPE, TripsConfig
from ..uarch.proc import TripsProcessor
from .checkpoint import ArchCheckpoint, take_checkpoint
from .ffwd import FastForwarder
from .stats import (RATE_FIELDS, SampledProcStats, WindowSample, aggregate,
                    aggregate_phases)


@dataclass(frozen=True)
class SamplingConfig:
    """Sample-point geometry, in committed blocks.

    One measurement window of ``measure_blocks`` starts every
    ``interval_blocks`` (the first at ``offset_blocks``), preceded by
    ``warmup_blocks`` of discarded detailed simulation.

    ``warm_horizon`` bounds *functional* warming: ``None`` keeps the
    fast-forwarder's predictor/cache warming on for every block (most
    accurate); a block count H warms only the last H blocks before each
    detailed window, letting the stretches in between run at full
    fast-forward speed.  Tables are never cleared, so bounded warming
    only makes warm state slightly stale, and the detailed warmup still
    runs on top of it.

    ``jitter`` staggers each window start by a deterministic
    pseudo-random offset of up to ``jitter * interval_blocks`` blocks
    (stratified sampling).  Strictly-periodic sample points can alias
    against a program's own period — e.g. 41 windows every 1052 blocks
    over dct8x8's 2630-block macroblock loop land on just 5 distinct
    phases (5*1052 = 2*2630), turning phase structure into bias.  The
    stagger sequence is a fixed LCG, so runs stay reproducible.

    ``clustering=True`` replaces the stratified-stride schedule with
    SimPoint-style phase clustering (:mod:`~repro.sampling.phases`): a
    cold fast-forward profiling pass collects one basic-block vector
    per ``interval_blocks``, k-means (k chosen by a BIC-style score up
    to ``max_phases``) groups the intervals into behavioral phases, and
    ~``phase_windows`` measurement windows are placed on representative
    intervals in proportion to phase population.  Estimates become
    population-weighted (:func:`~repro.sampling.stats.aggregate_phases`)
    and ``jitter``/``offset_blocks`` are ignored.  All randomness comes
    from the fixed LCG seeded by ``phase_seed``, so schedules are
    byte-identical across runs.
    """

    interval_blocks: int = 2000
    warmup_blocks: int = 150
    measure_blocks: int = 300
    offset_blocks: int = 0
    warm_horizon: Optional[int] = None
    jitter: float = 0.25
    clustering: bool = False
    phase_windows: int = 12
    max_phases: int = 8
    phase_seed: int = 1

    def to_dict(self) -> Dict[str, object]:
        return {"interval_blocks": self.interval_blocks,
                "warmup_blocks": self.warmup_blocks,
                "measure_blocks": self.measure_blocks,
                "offset_blocks": self.offset_blocks,
                "warm_horizon": self.warm_horizon,
                "jitter": self.jitter,
                "clustering": self.clustering,
                "phase_windows": self.phase_windows,
                "max_phases": self.max_phases,
                "phase_seed": self.phase_seed}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SamplingConfig":
        horizon = data.get("warm_horizon")
        return cls(interval_blocks=int(data["interval_blocks"]),
                   warmup_blocks=int(data["warmup_blocks"]),
                   measure_blocks=int(data["measure_blocks"]),
                   offset_blocks=int(data.get("offset_blocks", 0)),
                   warm_horizon=None if horizon is None else int(horizon),
                   jitter=float(data.get("jitter", 0.25)),
                   clustering=bool(data.get("clustering", False)),
                   phase_windows=int(data.get("phase_windows", 12)),
                   max_phases=int(data.get("max_phases", 8)),
                   phase_seed=int(data.get("phase_seed", 1)))

    def validate(self) -> None:
        if self.measure_blocks <= 0 or self.interval_blocks <= 0:
            raise ValueError("interval/measure block counts must be > 0")
        if self.warmup_blocks < 0 or self.offset_blocks < 0:
            raise ValueError("warmup/offset block counts must be >= 0")
        if self.clustering:
            if self.measure_blocks + self.warmup_blocks \
                    > self.interval_blocks:
                raise ValueError("windows overlap: warmup + measure must "
                                 "fit inside one clustering interval "
                                 f"({self.interval_blocks} blocks)")
            if self.phase_windows < 1:
                raise ValueError("phase_windows must be >= 1")
            if self.max_phases < 1:
                raise ValueError("max_phases must be >= 1")
        else:
            min_gap = self.interval_blocks - 2 * int(self.jitter *
                                                     self.interval_blocks)
            if self.measure_blocks + self.warmup_blocks > min_gap:
                raise ValueError("windows overlap: warmup + measure exceeds "
                                 "the worst-case jittered sampling gap "
                                 f"({min_gap} blocks)")
        if self.warm_horizon is not None and self.warm_horizon < 0:
            raise ValueError("warm_horizon must be >= 0 or None")
        if not 0.0 <= self.jitter <= 0.4:
            raise ValueError("jitter must be in [0, 0.4]")

    def window_start(self, k: int) -> int:
        """Measurement-start block index of window ``k`` (jittered)."""
        base = self.offset_blocks + k * self.interval_blocks
        if not self.jitter:
            return base
        # fixed LCG (numerical recipes constants): deterministic stagger
        u = ((k * 1664525 + 1013904223) & 0xFFFFFFFF) / 0x100000000
        span = int(self.jitter * self.interval_blocks)
        return base + int((2 * u - 1.0) * span)


def _counter_snapshot(stats) -> Dict[str, int]:
    return {name: getattr(stats, name) for name in RATE_FIELDS}


def _run_clustered(program, config: TripsConfig,
                   sampling: SamplingConfig, telemetry,
                   max_blocks: int) -> Tuple[SampledProcStats,
                                             FastForwarder, List[dict],
                                             "PhasePlan"]:
    """The phase-clustered sampling driver (``clustering=True``).

    Two fast-forward passes instead of one, both mostly *cold*:

    1. A profiling pass (``warm=False`` + BBV collection) retires every
       block — it is the source of the exact architectural outputs and
       the exact block/instruction totals, and its per-interval BBVs
       feed :func:`~repro.sampling.phases.plan_phases`.
    2. A measurement pass that replays only up to the *last* scheduled
       window (the totals are already known), warming predictor/cache
       state continuously when ``warm_horizon`` is ``None`` or only
       within the horizon of each window when it is set.

    With a ``warm_horizon`` the measurement pass does not even replay:
    the profiling pass snapshots architectural state at every interval
    boundary, and since a cold stretch touches nothing *but*
    architectural state, the measurement fast-forwarder teleports to the
    latest snapshot before each window's warming horizon
    (:meth:`~repro.sampling.ffwd.FastForwarder.restore_arch`) instead of
    re-executing the stretch — byte-identical estimates, but the
    second pass shrinks from O(program) to O(windows * interval).

    Returns the plan alongside the usual triple so callers can report
    phase counts and weights.
    """
    from .phases import plan_phases

    prof = FastForwarder(program, config, warm=False,
                         max_blocks=max_blocks,
                         bbv_interval=sampling.interval_blocks)
    restarts: List["ArchCheckpoint"] = []
    boundary = sampling.interval_blocks
    while not prof.halted:
        prof.run_blocks(boundary)
        if not prof.halted:
            restarts.append(take_checkpoint(prof))
        boundary += sampling.interval_blocks
    plan = plan_phases(prof.bbv_vectors(), sampling.interval_blocks,
                       total_blocks=prof.stats.blocks,
                       target_windows=sampling.phase_windows,
                       warmup_blocks=sampling.warmup_blocks,
                       measure_blocks=sampling.measure_blocks,
                       seed=sampling.phase_seed,
                       max_phases=sampling.max_phases)

    horizon = sampling.warm_horizon
    ff = FastForwarder(program, config, warm=(horizon is None),
                       max_blocks=max_blocks)
    windows: List[WindowSample] = []
    summaries: List[dict] = []
    ri = 0                      # next profiling snapshot to consider
    # a program shorter than two clustering intervals has no phase
    # structure to exploit — skip straight to the full-simulation
    # fallback below (exact, single phase) instead of estimating the
    # whole program with one partial window and an unbounded CI
    for win in (plan.windows if plan.n_intervals > 1 else ()):
        start = max(win.start_block, ff.stats.blocks)
        warm_start = max(0, start - sampling.warmup_blocks)
        if horizon is not None:
            cold_target = max(ff.stats.blocks, warm_start - horizon)
            jump = None
            while ri < len(restarts) and \
                    restarts[ri].blocks <= cold_target:
                jump = restarts[ri]
                ri += 1
            if jump is not None and jump.blocks > ff.stats.blocks:
                ff.restore_arch(jump)
            ff.warm = False
            ff.run_blocks(cold_target)
            ff.warm = True
        ff.run_blocks(warm_start)
        if ff.halted:
            break
        ckpt = take_checkpoint(ff)
        proc = TripsProcessor(program, config, telemetry=telemetry,
                              checkpoint=ckpt)
        warm_target = start - ff.stats.blocks
        if warm_target:
            proc.run(until_blocks=warm_target)
        if proc.halted and proc.stats.blocks_committed <= warm_target:
            continue            # program ended inside the warmup span
        proc.finalize_stats()
        cycles0 = proc.cycle
        insts0 = proc.stats.insts_committed
        reads0 = proc.stats.reads_committed
        counters0 = _counter_snapshot(proc.stats)
        proc.run(until_blocks=warm_target + sampling.measure_blocks)
        proc.finalize_stats()
        measured = proc.stats.blocks_committed - warm_target
        if measured <= 0:
            continue
        counters = {name: getattr(proc.stats, name) - counters0[name]
                    for name in RATE_FIELDS}
        windows.append(WindowSample(
            start_block=start, blocks=measured,
            cycles=proc.cycle - cycles0,
            insts=proc.stats.insts_committed - insts0,
            reads=proc.stats.reads_committed - reads0,
            counters=counters, lsq_peak=proc.stats.lsq_peak,
            phase=win.phase, weight=win.weight))
        if proc.tel is not None:
            summaries.append(proc.tel.summary().to_dict())

    if not windows:
        # program shorter than one clustering interval (or every window
        # fell past program end): one full-length window == exact full
        # simulation, reported as a single phase of weight 1
        proc = TripsProcessor(program, config, telemetry=telemetry)
        stats = proc.run()
        windows.append(WindowSample(
            start_block=0, blocks=stats.blocks_committed,
            cycles=stats.cycles, insts=stats.insts_committed,
            reads=stats.reads_committed,
            counters=_counter_snapshot(stats), lsq_peak=stats.lsq_peak,
            phase=0, weight=1.0))
        if proc.tel is not None:
            summaries.append(proc.tel.summary().to_dict())
        sampled = aggregate_phases(windows, prof.stats.blocks,
                                   prof.stats.fired, prof.stats.reads,
                                   k=1, phase_weights=[1.0])
        return sampled, prof, summaries, plan

    sampled = aggregate_phases(windows, prof.stats.blocks,
                               prof.stats.fired, prof.stats.reads,
                               k=plan.k, phase_weights=plan.weights)
    return sampled, prof, summaries, plan


def run_sampled_program(program, config: TripsConfig = PROTOTYPE,
                        sampling: SamplingConfig = SamplingConfig(),
                        telemetry=None,
                        max_blocks: int = 500_000_000,
                        ) -> Tuple[SampledProcStats, FastForwarder,
                                   List[dict]]:
    """Sample one compiled :class:`~repro.isa.program.Program`.

    Returns the aggregated stats, the (completed) fast-forwarder — whose
    ``regs``/``memory`` hold the exact architectural results — and one
    telemetry summary dict per window when ``telemetry`` is set.

    With ``sampling.clustering`` the stride schedule is replaced by the
    phase-clustered driver (see :func:`_run_clustered`); the returned
    fast-forwarder is then the completed profiling pass.
    """
    sampling.validate()
    if sampling.clustering:
        sampled, ff, summaries, _ = _run_clustered(
            program, config or PROTOTYPE, sampling, telemetry, max_blocks)
        return sampled, ff, summaries
    ff = FastForwarder(program, config, warm=True, max_blocks=max_blocks)
    windows: List[WindowSample] = []
    summaries: List[dict] = []
    k = 0
    horizon = sampling.warm_horizon
    while not ff.halted:
        start = max(sampling.window_start(k), ff.stats.blocks)
        k += 1
        warm_start = max(0, start - sampling.warmup_blocks)
        if horizon is not None:
            ff.warm = False
            ff.run_blocks(max(ff.stats.blocks, warm_start - horizon))
            ff.warm = True
        ff.run_blocks(warm_start)
        if ff.halted:
            break
        ckpt = take_checkpoint(ff)
        proc = TripsProcessor(program, config, telemetry=telemetry,
                              checkpoint=ckpt)
        warm_target = start - ff.stats.blocks
        if warm_target:
            proc.run(until_blocks=warm_target)
        if proc.halted and proc.stats.blocks_committed <= warm_target:
            continue            # program ended inside the warmup span
        proc.finalize_stats()
        cycles0 = proc.cycle
        insts0 = proc.stats.insts_committed
        reads0 = proc.stats.reads_committed
        counters0 = _counter_snapshot(proc.stats)
        proc.run(until_blocks=warm_target + sampling.measure_blocks)
        proc.finalize_stats()
        measured = proc.stats.blocks_committed - warm_target
        if measured <= 0:
            continue
        counters = {name: getattr(proc.stats, name) - counters0[name]
                    for name in RATE_FIELDS}
        windows.append(WindowSample(
            start_block=start, blocks=measured,
            cycles=proc.cycle - cycles0,
            insts=proc.stats.insts_committed - insts0,
            reads=proc.stats.reads_committed - reads0,
            counters=counters, lsq_peak=proc.stats.lsq_peak))
        if proc.tel is not None:
            summaries.append(proc.tel.summary().to_dict())

    if not windows:
        # program shorter than one sampling period: fall back to one
        # full-length window (= ordinary full simulation, zero error)
        proc = TripsProcessor(program, config, telemetry=telemetry)
        stats = proc.run()
        windows.append(WindowSample(
            start_block=0, blocks=stats.blocks_committed,
            cycles=stats.cycles, insts=stats.insts_committed,
            reads=stats.reads_committed,
            counters=_counter_snapshot(stats), lsq_peak=stats.lsq_peak))
        if proc.tel is not None:
            summaries.append(proc.tel.summary().to_dict())

    sampled = aggregate(windows, ff.stats.blocks, ff.stats.fired,
                        ff.stats.reads)
    return sampled, ff, summaries


@dataclass
class SampledRun:
    """One workload's sampled-simulation result."""

    name: str
    level: str
    sampled: SampledProcStats
    fallback_blocks: int = 0
    telemetry_windows: List[dict] = field(default_factory=list)

    @property
    def cycles(self) -> float:
        return self.sampled.cycles_est

    @property
    def ipc(self) -> float:
        return self.sampled.ipc_est


def run_sampled_workload(workload, level: str = "tcc",
                         config: Optional[TripsConfig] = None,
                         sampling: SamplingConfig = SamplingConfig(),
                         telemetry=None, validate: bool = True,
                         size: int = 1) -> SampledRun:
    """Compile and sample one workload, co-validating architectural
    outputs (from the fast-forwarder, which executes every block) against
    the TIR interpreter's golden results."""
    from ..workloads import get_workload
    if isinstance(workload, TirProgram):
        tir = workload
    else:
        tir = get_workload(workload, size=size)
    compiled = compile_tir(tir, level=level)
    sampled, ff, summaries = run_sampled_program(
        compiled.program, config=config or TripsConfig(),
        sampling=sampling, telemetry=telemetry)
    if validate:
        golden = interpret(tir).output_signature(tir.outputs)
        got = compiled.extract_outputs(ff.regs, ff.memory)
        if got != golden:
            from ..harness.runner import ValidationError
            raise ValidationError(
                f"{tir.name}@{level}: sampled outputs diverge from golden")
    return SampledRun(name=tir.name, level=level, sampled=sampled,
                      fallback_blocks=ff.fallback_blocks,
                      telemetry_windows=summaries)

"""Sampled-vs-full validation: measure the sampling error directly.

The whole point of :mod:`repro.sampling` is trading cycle-accuracy
*coverage* for wall-clock, with a statistical bound on the damage.  This
module closes the loop: it runs the same scaled workload twice — once
fully cycle-accurate, once sampled — and reports the realized error in
cycles and IPC next to the confidence interval the sampler claimed, plus
the wall-clock of both runs (the *effective speedup*, which includes all
fast-forward and checkpoint overhead, not just the coverage ratio).

``warmup_sweep`` repeats the measurement across warmup lengths; it is the
tool behind EXPERIMENTS.md's warmup-sensitivity note.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from ..compiler import compile_tir
from ..uarch.config import TripsConfig
from ..uarch.proc import TripsProcessor
from ..workloads import get_workload
from .sampler import SamplingConfig, run_sampled_program


def measure_error(workload: str, size: int = 1,
                  sampling: SamplingConfig = SamplingConfig(),
                  level: str = "tcc",
                  config: Optional[TripsConfig] = None) -> Dict:
    """Run one workload fully and sampled; return the realized error.

    The full run is the ground truth the paper-scale user can no longer
    afford — which is exactly why it must stay affordable *here*: call
    this with the largest size whose full simulation still fits your
    patience, and trust the CI machinery beyond it.
    """
    config = config or TripsConfig()
    program = compile_tir(get_workload(workload, size=size),
                          level=level).program

    t0 = time.perf_counter()
    full = TripsProcessor(program, config=config).run()
    full_wall = time.perf_counter() - t0

    t0 = time.perf_counter()
    sampled, ff, _ = run_sampled_program(program, config=config,
                                         sampling=sampling)
    sampled_wall = time.perf_counter() - t0

    cycles_err = sampled.cycles_est / full.cycles - 1.0
    ipc_err = sampled.ipc_est / full.ipc - 1.0
    return {
        "workload": workload,
        "size": size,
        "level": level,
        "sampling": sampling.to_dict(),
        "blocks": full.blocks_committed,
        "windows": sampled.windows,
        "phases": sampled.phases,
        "coverage": round(sampled.coverage, 5),
        "full_cycles": full.cycles,
        "full_ipc": round(full.ipc, 4),
        "est_cycles": round(sampled.cycles_est, 1),
        "est_cycles_ci": round(sampled.cycles_ci, 1),
        "est_ipc": round(sampled.ipc_est, 4),
        "est_ipc_ci": round(sampled.ipc_ci, 4),
        "cycles_err_pct": round(100.0 * cycles_err, 3),
        "ipc_err_pct": round(100.0 * ipc_err, 3),
        "ci_covers_truth": abs(sampled.cycles_est - full.cycles)
        <= sampled.cycles_ci,
        "full_wall_s": round(full_wall, 3),
        "sampled_wall_s": round(sampled_wall, 3),
        "effective_speedup": round(full_wall / sampled_wall, 2)
        if sampled_wall else float("inf"),
        "fallback_blocks": ff.fallback_blocks,
    }


def warmup_sweep(workload: str, size: int,
                 warmups: Sequence[int],
                 sampling: SamplingConfig = SamplingConfig(),
                 level: str = "tcc",
                 config: Optional[TripsConfig] = None) -> List[Dict]:
    """``measure_error`` across warmup lengths, other geometry fixed.

    The interesting read-out is where the error *stops improving*: past
    that point extra warmup only burns detailed-simulation budget.
    """
    rows = []
    for warmup in warmups:
        cfg = replace(sampling, warmup_blocks=warmup)
        rows.append(measure_error(workload, size=size, sampling=cfg,
                                  level=level, config=config))
    return rows


def staleness_sweep(workload: str, size: int,
                    horizons: Sequence[Optional[int]],
                    sampling: SamplingConfig = SamplingConfig(),
                    level: str = "tcc",
                    config: Optional[TripsConfig] = None) -> List[Dict]:
    """``measure_error`` across ``warm_horizon`` values — the
    cache-staleness bias budget behind bounded functional warming.

    ``None`` (continuous warming) is the reference row; finite horizons
    trade staleness of the warm tag/predictor state between windows for
    fast-forward speed.  The read-out mirrors :func:`warmup_sweep`: the
    smallest horizon whose error matches the ``None`` row is all the
    warming the workload actually needs — everything beyond it is
    wall-clock spent touching tags nobody will sample.
    """
    rows = []
    for horizon in horizons:
        cfg = replace(sampling, warm_horizon=horizon)
        rows.append(measure_error(workload, size=size, sampling=cfg,
                                  level=level, config=config))
    return rows

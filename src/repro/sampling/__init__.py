"""Sampled + checkpointed simulation (SMARTS-style).

Three layers:

* :mod:`~repro.sampling.ffwd` — a compiled functional fast-forwarder
  (per-block code generation over the static dataflow graph) that retires
  blocks 10-50x faster than the cycle-accurate engine while optionally
  warming the next-block predictor and cache tag state;
* :mod:`~repro.sampling.checkpoint` — exact-JSON architectural
  checkpoints taken at block boundaries, restorable into a fresh
  :class:`~repro.uarch.proc.TripsProcessor`;
* :mod:`~repro.sampling.sampler` / :mod:`~repro.sampling.stats` — the
  interval-sampling driver and the statistical aggregation
  (point estimates with 95% confidence intervals from inter-window
  variance).

Together they let the harness run workloads 100-1000x bigger than full
cycle-accurate simulation allows, at a quantified (typically <2%) error
in cycles/IPC.
"""

from .checkpoint import CHECKPOINT_VERSION, ArchCheckpoint, take_checkpoint
from .ffwd import BlockCompileError, FastForwarder, compile_block
from .sampler import (SampledRun, SamplingConfig, run_sampled_program,
                      run_sampled_workload)
from .stats import SampledProcStats, WindowSample, aggregate, t95
from .validate import measure_error, warmup_sweep

__all__ = [
    "ArchCheckpoint", "BlockCompileError", "CHECKPOINT_VERSION",
    "FastForwarder", "SampledProcStats", "SampledRun", "SamplingConfig",
    "WindowSample", "aggregate", "compile_block", "measure_error",
    "run_sampled_program", "run_sampled_workload", "take_checkpoint",
    "t95", "warmup_sweep",
]

"""Sampled + checkpointed simulation (SMARTS-style).

Four layers:

* :mod:`~repro.sampling.ffwd` — a compiled functional fast-forwarder
  (per-block code generation over the static dataflow graph) that retires
  blocks 10-50x faster than the cycle-accurate engine while optionally
  warming the next-block predictor and cache tag state, and optionally
  collecting per-interval basic-block vectors as a near-free side
  effect;
* :mod:`~repro.sampling.checkpoint` — exact-JSON architectural
  checkpoints taken at block boundaries, restorable into a fresh
  :class:`~repro.uarch.proc.TripsProcessor`;
* :mod:`~repro.sampling.phases` — SimPoint-style phase clustering over
  those BBVs (deterministic k-means, BIC-chosen k), scheduling
  measurement windows on representative intervals in proportion to
  phase population instead of by stratified stride;
* :mod:`~repro.sampling.sampler` / :mod:`~repro.sampling.stats` — the
  sampling driver and the statistical aggregation (point estimates with
  95% confidence intervals; population-weighted when phase-clustered).

Together they let the harness run workloads 100-1000x bigger than full
cycle-accurate simulation allows, at a quantified (typically <1%) error
in cycles/IPC and >=20x effective speedup (BENCH_sampling.json).
"""

from .checkpoint import CHECKPOINT_VERSION, ArchCheckpoint, take_checkpoint
from .ffwd import BlockCompileError, FastForwarder, compile_block
from .phases import PhasePlan, PhaseWindow, kmeans, plan_phases, project_bbvs
from .sampler import (SampledRun, SamplingConfig, run_sampled_program,
                      run_sampled_workload)
from .stats import (SampledProcStats, WindowSample, aggregate,
                    aggregate_phases, t95)
from .validate import measure_error, staleness_sweep, warmup_sweep

__all__ = [
    "ArchCheckpoint", "BlockCompileError", "CHECKPOINT_VERSION",
    "FastForwarder", "PhasePlan", "PhaseWindow", "SampledProcStats",
    "SampledRun", "SamplingConfig", "WindowSample", "aggregate",
    "aggregate_phases", "compile_block", "kmeans", "measure_error",
    "plan_phases", "project_bbvs", "run_sampled_program",
    "run_sampled_workload", "staleness_sweep", "take_checkpoint", "t95",
    "warmup_sweep",
]

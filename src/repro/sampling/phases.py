"""SimPoint-style phase clustering: pick measurement windows by BBV
similarity instead of stratified stride.

The stratified sampler treats every stretch of the program as equally
worth measuring, so a workload whose cycles-per-block distribution is
bimodal (mcf: pointer-chase phases vs. arithmetic phases) needs enough
windows for the *mixture* variance to average out — 50 windows at
interval 8000 just to hold a <=2% draw.  Phase clustering spends windows
where the behavioral diversity actually is: the program is cut into
fixed-size intervals, each interval is summarized by its basic-block
vector (static block address -> committed count, collected for free by
:class:`~repro.sampling.ffwd.FastForwarder`), similar intervals are
clustered, and each cluster gets measurement windows in proportion to
its population.  Within a phase the cycles-per-block variance is small,
so a handful of windows per phase matches the accuracy of dozens of
stratified ones.

Everything here is deterministic pure python: the only randomness is a
fixed 32-bit LCG seeded from ``SamplingConfig.phase_seed`` (projection
signs, k-means++ seeding), so the same program + seed always yields
byte-identical phase assignments and window schedules — across runs,
hosts, and engine tiers (the fast-forwarder that collects BBVs never
consults ``TripsConfig.fast_path``).

The pipeline:

1. **Normalize + project.**  Each interval's BBV is L1-normalized (so
   interval length doesn't dominate) and random-projected to
   ``dims`` dimensions with per-block-address +-1 sign rows — the
   SimPoint trick that makes k-means O(dims) per distance regardless of
   how many static blocks the program has.
2. **Cluster.**  k-means (k-means++ seeding, Lloyd iterations,
   deterministic tie-breaks) for every k up to ``max_phases``; the
   knee is picked with a BIC-style score (spherical-Gaussian
   log-likelihood minus a parameter-count penalty), taking the
   *smallest* k within 10% of the best score's range — SimPoint's
   "good enough, prefer fewer simulation points" rule.
3. **Schedule.**  Each cluster receives ``round(target * weight)``
   windows (at least one), placed at its member intervals: the
   interval closest to the centroid first (the phase's representative),
   the rest spread evenly across the cluster's extent in program order
   so a drifting phase is sampled along its drift.  Window weights are
   the cluster's population share split across its windows, which is
   what makes the population-weighted estimator in
   :func:`~repro.sampling.stats.aggregate_phases` honest.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["PhasePlan", "PhaseWindow", "kmeans", "plan_phases",
           "project_bbvs"]


# ----------------------------------------------------------------------
class _Rand:
    """The fixed 32-bit LCG (numerical recipes constants) used for every
    random choice in this module — deterministic by construction."""

    def __init__(self, seed: int):
        self.state = seed & 0xFFFFFFFF

    def next(self) -> float:
        """Uniform float in [0, 1)."""
        self.state = (self.state * 1664525 + 1013904223) & 0xFFFFFFFF
        return self.state / 0x100000000

    def pick(self, n: int) -> int:
        """Uniform index in [0, n)."""
        return min(n - 1, int(self.next() * n))


def project_bbvs(bbvs: Sequence[Dict[int, int]], dims: int = 16,
                 seed: int = 1) -> List[List[float]]:
    """L1-normalize each BBV and random-project it to ``dims`` floats.

    Every distinct static block address gets a deterministic +-1 sign
    row (drawn from the LCG over addresses in sorted order), so two
    intervals that execute the same blocks in the same proportions map
    to the same point no matter what else the program contains.
    """
    addrs = sorted({addr for vec in bbvs for addr in vec})
    rand = _Rand(seed ^ 0x5EEDB17)
    signs = {addr: [1.0 if rand.next() < 0.5 else -1.0
                    for _ in range(dims)] for addr in addrs}
    points: List[List[float]] = []
    for vec in bbvs:
        total = sum(vec.values()) or 1
        point = [0.0] * dims
        for addr, count in vec.items():
            w = count / total
            row = signs[addr]
            for d in range(dims):
                point[d] += w * row[d]
        points.append(point)
    return points


# ----------------------------------------------------------------------
def _dist2(a: Sequence[float], b: Sequence[float]) -> float:
    return sum((x - y) ** 2 for x, y in zip(a, b))


def kmeans(points: Sequence[Sequence[float]], k: int, seed: int = 1,
           iters: int = 60):
    """Deterministic k-means: k-means++ seeding off the LCG, Lloyd
    iterations with lowest-index tie-breaks, empty clusters reseeded to
    the farthest point.  Returns ``(assignments, centroids, sse)``."""
    n = len(points)
    if not 1 <= k <= n:
        raise ValueError(f"k={k} out of range for {n} points")
    rand = _Rand(seed ^ 0xC10C)
    centroids = [list(points[rand.pick(n)])]
    d2 = [_dist2(p, centroids[0]) for p in points]
    while len(centroids) < k:
        total = sum(d2)
        if total <= 0.0:            # all points coincide with a centroid
            centroids.append(list(points[rand.pick(n)]))
            continue
        r = rand.next() * total
        acc = 0.0
        chosen = n - 1
        for i, w in enumerate(d2):
            acc += w
            if acc >= r:
                chosen = i
                break
        centroids.append(list(points[chosen]))
        d2 = [min(a, _dist2(p, centroids[-1])) for a, p in zip(d2, points)]

    assignments = [0] * n
    for _ in range(iters):
        changed = False
        for i, p in enumerate(points):
            best, best_d = 0, _dist2(p, centroids[0])
            for c in range(1, k):
                d = _dist2(p, centroids[c])
                if d < best_d:
                    best, best_d = c, d
            if assignments[i] != best:
                assignments[i] = best
                changed = True
        sums = [[0.0] * len(points[0]) for _ in range(k)]
        counts = [0] * k
        for i, p in enumerate(points):
            c = assignments[i]
            counts[c] += 1
            for d, x in enumerate(p):
                sums[c][d] += x
        for c in range(k):
            if counts[c]:
                centroids[c] = [x / counts[c] for x in sums[c]]
            else:
                # reseed an empty cluster to the point farthest from its
                # current centroid assignment (deterministic: lowest
                # index among the maxima)
                far_i = max(range(n), key=lambda i: (
                    _dist2(points[i], centroids[assignments[i]]), -i))
                centroids[c] = list(points[far_i])
                changed = True
        if not changed:
            break
    sse = sum(_dist2(p, centroids[assignments[i]])
              for i, p in enumerate(points))
    return assignments, centroids, sse


def _bic(points, assignments, k: int, sse: float) -> float:
    """Spherical-Gaussian BIC (the X-means / SimPoint scoring): data
    log-likelihood under a per-cluster spherical model with shared
    variance, minus a ``(k * (dims + 1) / 2) * log(n)`` penalty."""
    n = len(points)
    dims = len(points[0])
    if n <= k:
        return -math.inf
    counts = [0] * k
    for c in assignments:
        counts[c] += 1
    variance = sse / (dims * (n - k)) + 1e-12
    loglike = 0.0
    for nj in counts:
        if nj:
            loglike += (nj * math.log(nj / n)
                        - nj * dims / 2.0 * math.log(2 * math.pi * variance)
                        - (nj - 1) * dims / 2.0)
    return loglike - (k * (dims + 1) / 2.0) * math.log(n)


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PhaseWindow:
    """One scheduled measurement window."""

    start_block: int        # measurement starts here (warmup precedes it)
    phase: int              # cluster index
    weight: float           # population share this window represents

    def to_dict(self) -> dict:
        return {"start_block": self.start_block, "phase": self.phase,
                "weight": self.weight}


@dataclass
class PhasePlan:
    """The clustering outcome: assignments, weights, window schedule."""

    interval_blocks: int
    total_blocks: int
    n_intervals: int
    k: int
    assignments: List[int] = field(default_factory=list)
    weights: List[float] = field(default_factory=list)   # per cluster
    windows: List[PhaseWindow] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {"interval_blocks": self.interval_blocks,
                "total_blocks": self.total_blocks,
                "n_intervals": self.n_intervals,
                "k": self.k,
                "assignments": list(self.assignments),
                "weights": list(self.weights),
                "windows": [w.to_dict() for w in self.windows]}


def _spread(members: List[int], count: int) -> List[int]:
    """``count`` member indices spread evenly across ``members``."""
    if count >= len(members):
        return list(members)
    if count == 1:
        return [members[len(members) // 2]]
    picked = []
    for j in range(count):
        idx = round(j * (len(members) - 1) / (count - 1))
        if not picked or members[idx] != picked[-1]:
            picked.append(members[idx])
    return picked


def plan_phases(bbvs: Sequence[Dict[int, int]], interval_blocks: int,
                total_blocks: int, target_windows: int,
                warmup_blocks: int = 0, measure_blocks: int = 0,
                seed: int = 1, max_phases: int = 8,
                dims: int = 16) -> PhasePlan:
    """Cluster per-interval BBVs and schedule measurement windows.

    Each window sits at a deterministically *staggered* position inside
    its interval: at least ``warmup_blocks`` in (so the detailed warmup
    replays the same phase it is about to measure — an interval boundary
    is exactly where behavior may change) and ending before the interval
    does, with the slack between those bounds filled by a fixed-LCG
    offset keyed on the interval index.  Pinning every window to its
    interval boundary instead would resurrect the aliasing bias that
    jitter fixed for the stride scheduler: a loop period that divides
    ``interval_blocks`` puts every boundary at the same loop phase, and
    the measured −2.8% cycles on ``basefp01`` (any geometry, any
    horizon) flips to +0.4% with the stagger.  Weights are per-interval
    block populations, so a trailing partial interval counts for what
    it is.
    """
    n = len(bbvs)
    if n == 0:
        return PhasePlan(interval_blocks=interval_blocks,
                         total_blocks=total_blocks, n_intervals=0, k=0)
    blocks_per = [interval_blocks] * n
    blocks_per[-1] = total_blocks - interval_blocks * (n - 1)

    points = project_bbvs(bbvs, dims=dims, seed=seed)
    kmax = max(1, min(max_phases, n))
    runs = {}
    scores = {}
    for k in range(1, kmax + 1):
        assignments, centroids, sse = kmeans(points, k, seed=seed)
        runs[k] = (assignments, centroids)
        scores[k] = _bic(points, assignments, k, sse)
    finite = {k: s for k, s in scores.items() if math.isfinite(s)}
    if finite:
        best = max(finite.values())
        worst = min(finite.values())
        span = best - worst
        # smallest k whose score is within 10% of the best (SimPoint's
        # rule: prefer fewer phases among near-equal fits)
        chosen_k = min(k for k, s in sorted(finite.items())
                       if s >= best - 0.1 * span)
    else:
        chosen_k = 1        # too few intervals to score any split
    assignments, centroids = runs[chosen_k]

    cluster_blocks = [0] * chosen_k
    members: List[List[int]] = [[] for _ in range(chosen_k)]
    for i, c in enumerate(assignments):
        cluster_blocks[c] += blocks_per[i]
        members[c].append(i)
    weights = [b / total_blocks for b in cluster_blocks]

    windows: List[PhaseWindow] = []
    for c in range(chosen_k):
        if not members[c]:
            continue
        want = max(1, round(target_windows * weights[c]))
        # the representative (closest to centroid) always measures...
        rep = min(members[c],
                  key=lambda i: (_dist2(points[i], centroids[c]), i))
        chosen = [rep]
        if want > 1:
            # ...and the rest spread across the phase in program order
            for i in _spread(members[c], want):
                if i not in chosen:
                    chosen.append(i)
        share = weights[c] / len(chosen)
        slack = max(0, interval_blocks - warmup_blocks - measure_blocks)
        for i in chosen:
            # one LCG draw keyed on the interval index: stable no matter
            # which intervals end up chosen or in what order.  The
            # golden-ratio multiply scrambles the index first — adjacent
            # indices fed straight into the LCG give near-identical
            # fractions (the low-entropy tail of one affine step)
            h = ((i + 1) * 0x9E3779B1 ^ seed * 0x85EBCA6B) & 0xFFFFFFFF
            u = ((h * 1664525 + 1013904223) & 0xFFFFFFFF) / 0x100000000
            windows.append(PhaseWindow(
                start_block=(i * interval_blocks + warmup_blocks
                             + int(u * slack)),
                phase=c, weight=share))
    windows.sort(key=lambda w: w.start_block)
    return PhasePlan(interval_blocks=interval_blocks,
                     total_blocks=total_blocks, n_intervals=n,
                     k=chosen_k, assignments=list(assignments),
                     weights=weights, windows=windows)

"""Table 3 (left half): distributed network overheads as a percentage of
each benchmark's critical path, for all 21 workloads.

Expected shape (the claims we verify, per DESIGN.md): operand-network
terms (hops + contention) are the dominant distributed overhead on most
benchmarks; the control-protocol categories (block completion, commit,
fetch for hand-level code) are individually modest; fanout overhead
appears but stays a minority share.
"""

import pytest

from repro.analysis import analyze_critical_path
from repro.harness import render_table
from repro.harness.runner import run_trips_workload
from repro.simlab import RunSpec, cache_from_env, run_specs, workers_from_env
from repro.workloads import workload_names
from repro.workloads.registry import HAND_OPTIMIZED

from .conftest import save

CATEGORIES = ["IFetch", "OPN Hops", "OPN Cont.", "Fanout Ops",
              "Block Complete", "Block Commit", "Other"]


def _overhead_rows():
    # traced runs submitted through simlab (parallel/cached when
    # SIMLAB_WORKERS / SIMLAB_CACHE are set; identical results serially)
    levels = ["hand" if name in HAND_OPTIMIZED else "tcc"
              for name in workload_names()]
    specs = [RunSpec.trips(name, level=level, trace=True)
             for name, level in zip(workload_names(), levels)]
    results = run_specs(specs, workers=workers_from_env(),
                        cache=cache_from_env())
    rows = []
    for name, level, result in zip(workload_names(), levels, results):
        row = {"Benchmark": name, "Level": level}
        row.update({k: round(v, 2) for k, v in result["critpath"].items()})
        rows.append(row)
    return rows


@pytest.fixture(scope="module")
def overhead_rows():
    return _overhead_rows()


def test_table3_overheads(benchmark, overhead_rows, results_dir):
    # benchmark one representative workload's full pipeline; the module
    # fixture above computed the complete table once
    benchmark.pedantic(
        lambda: analyze_critical_path(
            run_trips_workload("qr", level="hand", trace=True).proc.trace),
        rounds=1, iterations=1)
    text = render_table(overhead_rows,
                        "Table 3 (left): network overheads as % of the "
                        "critical path")
    save(results_dir, "table3_overheads.txt", text)

    for row in overhead_rows:
        total = sum(row[c] for c in CATEGORIES)
        assert abs(total - 100.0) < 0.6, row["Benchmark"]

    def mean(cat):
        return sum(r[cat] for r in overhead_rows) / len(overhead_rows)

    # operand routing is the largest distributed overhead on average
    opn = mean("OPN Hops") + mean("OPN Cont.")
    assert opn > mean("Block Complete") + mean("Block Commit")
    # control protocols are individually modest (paper: typically <10%)
    assert mean("Block Complete") < 15
    assert mean("Block Commit") < 15
    # fanout shows up but is a minority share (paper: up to ~12-25%)
    assert 0 < mean("Fanout Ops") < 30

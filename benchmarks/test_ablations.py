"""Ablations over the design choices DESIGN.md calls out.

* operand-network bandwidth (the paper's proposed architectural
  extension: "more operand network bandwidth"),
* speculation depth (0 vs the prototype's 7 speculative blocks),
* the memory dependence predictor (on/off and the 10,000-block clearing),
* next-block predictor organization (tournament vs gshare vs static),
* LSQ sizing (the paper's brute-force 256-entry replication vs an ideal
  right-sized partition, Section 7's area complaint).
"""

from repro.analysis.area import AreaModel
from repro.harness import render_table
from repro.harness.runner import run_trips_workload
from repro.uarch.config import PredictorConfig, TripsConfig

from .conftest import save


def test_ablation_opn_bandwidth(benchmark, results_dir):
    def sweep():
        rows = []
        for lanes in (1, 2):
            cfg = TripsConfig(opn_links_per_hop=lanes)
            for name in ("conv", "matrix"):
                run = run_trips_workload(name, level="hand", config=cfg)
                rows.append({"Workload": name, "OPN lanes": lanes,
                             "Cycles": run.cycles,
                             "IPC": round(run.ipc, 2)})
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save(results_dir, "ablation_opn_bw.txt",
         render_table(rows, "Ablation: operand network bandwidth"))
    by = {(r["Workload"], r["OPN lanes"]): r["Cycles"] for r in rows}
    # doubling operand bandwidth helps (paper Section 7's extension)
    assert by[("conv", 2)] <= by[("conv", 1)]
    assert by[("matrix", 2)] <= by[("matrix", 1)]


def test_ablation_speculation_depth(benchmark, results_dir):
    def sweep():
        rows = []
        for spec in (0, 3, 7):
            cfg = TripsConfig(speculative_blocks=spec)
            run = run_trips_workload("matrix", level="hand", config=cfg)
            rows.append({"Speculative blocks": spec, "Cycles": run.cycles,
                         "Mispredict flushes":
                             run.stats.flushes_mispredict})
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save(results_dir, "ablation_speculation.txt",
         render_table(rows, "Ablation: speculation depth (matrix, hand)"))
    cycles = {r["Speculative blocks"]: r["Cycles"] for r in rows}
    assert cycles[7] < cycles[0]          # speculation pays
    assert rows[0]["Mispredict flushes"] == 0


def test_ablation_dependence_predictor(benchmark, results_dir):
    def sweep():
        rows = []
        for enabled in (True, False):
            cfg = TripsConfig(dep_predictor_enabled=enabled)
            run = run_trips_workload("sha", level="hand", config=cfg)
            rows.append({"Dep predictor": "on" if enabled else "off",
                         "Cycles": run.cycles,
                         "Violation flushes":
                             run.stats.flushes_violation,
                         "Deferred loads":
                             sum(dt.deferred_count
                                 for dt in run.proc.dts)})
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save(results_dir, "ablation_deppred.txt",
         render_table(rows, "Ablation: memory dependence predictor (sha)"))
    on, off = rows[0], rows[1]
    # the predictor holds predicted-dependent loads back ("stalled until
    # all prior stores have completed"); disabled, nothing ever defers
    assert on["Deferred loads"] > 0
    assert off["Deferred loads"] == 0
    # both configurations recover correct results via violation flushes
    assert off["Violation flushes"] > 0


def test_ablation_block_predictor(benchmark, results_dir):
    def sweep():
        rows = []
        for kind in ("tournament", "gshare", "static"):
            cfg = TripsConfig(predictor=PredictorConfig(kind=kind))
            run = run_trips_workload("tblook01", level="hand", config=cfg)
            rows.append({"Exit predictor": kind, "Cycles": run.cycles,
                         "Mispredict flushes":
                             run.stats.flushes_mispredict})
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save(results_dir, "ablation_predictor.txt",
         render_table(rows, "Ablation: next-block predictor (tblook01)"))
    cycles = {r["Exit predictor"]: r["Cycles"] for r in rows}
    assert cycles["tournament"] <= cycles["static"]


def test_ablation_lsq_area(benchmark, results_dir):
    def sweep():
        rows = []
        for entries in (256, 128, 64):
            model = AreaModel.prototype().with_lsq_entries(entries)
            rows.append({
                "LSQ entries/DT": entries,
                "DT size (mm2)": model.by_name("DT").size_mm2,
                "LSQ % of core":
                    round(100 * model.lsq_fraction_of_core(), 1),
                "Core area (mm2)":
                    round(model.processor_core_area(), 1),
            })
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save(results_dir, "ablation_lsq_area.txt",
         render_table(rows, "Ablation: LSQ sizing (Section 7's area "
                            "complaint: replicated 256-entry LSQs)"))
    assert rows[0]["LSQ % of core"] > rows[2]["LSQ % of core"]

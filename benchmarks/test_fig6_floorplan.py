"""Figure 6: the chip floorplan and area-by-function breakdown."""

import re

from repro.analysis.floorplan import render_floorplan

from .conftest import save


def test_fig6_floorplan(benchmark, results_dir):
    text = benchmark(render_floorplan)
    save(results_dir, "fig6_floorplan.txt", text)
    for tile in ("GT", "RT", "ET", "DT", "IT", "MT", "SDC", "DMA",
                 "EBC", "C2C", "NT"):
        assert tile in text
    values = [float(m) for m in re.findall(r"(\d+\.\d)%", text)]
    assert abs(sum(values) - 100.0) < 0.5
    assert "PROC 0" in text and "PROC 1" in text

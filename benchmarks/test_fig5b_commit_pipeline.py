"""Figure 5b: block completion / commit / acknowledgment pipelining.

Checks the three-phase commit protocol's timeline properties on a traced
run: completion precedes commit, acks trail commits, commits stay in
program order, and commit commands overlap older blocks' outstanding
acknowledgments (the pipelined-commit optimization of Section 4.4).
"""

from repro.compiler import compile_tir
from repro.tir import Assign, For, TirProgram, V
from repro.uarch.proc import TripsProcessor

from .conftest import save


def _run():
    # independent straight-line blocks complete in bursts, which is what
    # exercises the pipelined-commit rule (a loop's serial register chain
    # spaces completions out instead)
    from repro.tir import Array, Const, Store
    prog = TirProgram("fig5b",
                      arrays={"a": Array("i64", [0] * 200)},
                      body=[Store("a", Const(i), Const(i * i))
                            for i in range(200)],
                      outputs=["a"])
    compiled = compile_tir(prog, level="hand")
    proc = TripsProcessor(compiled.program, trace=True)
    proc.run()
    return proc


def test_fig5b_commit_pipeline(benchmark, results_dir):
    proc = benchmark.pedantic(_run, rounds=1, iterations=1)
    committed = proc.trace.committed_blocks()
    assert len(committed) >= 6

    lines = ["Figure 5b protocol timeline (committed blocks):",
             f"{'seq':>4} {'fetch':>6} {'finish':>6} {'commit':>6} {'ack':>6}"]
    for b in committed:
        lines.append(f"{b.seq:>4} {b.fetch_t:>6} {b.completed_t:>6} "
                     f"{b.commit_t:>6} {b.ack_t:>6}")

    # phase ordering within each block
    for b in committed:
        assert b.fetch_t < b.completed_t <= b.commit_t < b.ack_t
    # commits in program order
    commits = [b.commit_t for b in committed]
    assert commits == sorted(commits)
    # pipelined commit: some commit is sent before an older ack returns
    overlapped = sum(1 for a, b in zip(committed, committed[1:])
                     if b.commit_t < a.ack_t)
    lines.append(f"\npipelined commits (sent before the previous ack "
                 f"returned): {overlapped}/{len(committed) - 1}")
    save(results_dir, "fig5b_commit_pipeline.txt", "\n".join(lines))
    assert overlapped > 0

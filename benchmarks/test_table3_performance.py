"""Table 3 (right half): TRIPS speedups over the conventional baseline and
the IPCs of all three configurations, for all 21 workloads.

Expected shape: hand-optimized code beats compiled (TCC) code everywhere;
`sha` (serial) loses to the baseline; the regular parallel kernels are the
best TRIPS cases; the SPEC proxies have no hand numbers (the paper never
hand-optimized SPEC).  Absolute speedups are NOT expected to match the
paper — see EXPERIMENTS.md for the measured-vs-paper discussion.
"""

import pytest

from repro.harness import render_table
from repro.harness.runner import Comparison, compare_workload
from repro.simlab import RunSpec, cache_from_env, run_specs, workers_from_env
from repro.workloads import workload_names
from repro.workloads.registry import HAND_OPTIMIZED

from .conftest import save


def _performance_rows():
    # one simlab job per benchmark; SIMLAB_WORKERS / SIMLAB_CACHE opt the
    # sweep into parallelism and caching without changing its results
    specs = [RunSpec.compare(name, hand=name in HAND_OPTIMIZED)
             for name in workload_names()]
    results = run_specs(specs, workers=workers_from_env(),
                        cache=cache_from_env())
    rows = []
    for name, result in zip(workload_names(), results):
        cmp = Comparison.from_dict(result)
        hand = name in HAND_OPTIMIZED
        rows.append({
            "Benchmark": name,
            "Speedup TCC": round(cmp.speedup_tcc, 2),
            "Speedup Hand": round(cmp.speedup_hand, 2) if hand else None,
            "IPC Alpha": round(cmp.ipc_alpha, 2),
            "IPC TCC": round(cmp.ipc_tcc, 2),
            "IPC Hand": round(cmp.ipc_hand, 2) if hand else None,
        })
    return rows


@pytest.fixture(scope="module")
def perf_rows():
    return _performance_rows()


def test_table3_performance(benchmark, perf_rows, results_dir):
    benchmark.pedantic(lambda: compare_workload("vadd"),
                       rounds=1, iterations=1)
    text = render_table(perf_rows,
                        "Table 3 (right): preliminary performance vs the "
                        "conventional baseline")
    save(results_dir, "table3_performance.txt", text)

    by_name = {r["Benchmark"]: r for r in perf_rows}
    # hand beats (or at worst ties) compiled code; the serial benchmark is
    # allowed a small regression since hand-level restructuring cannot
    # mine concurrency that is not there
    for name in HAND_OPTIMIZED:
        row = by_name[name]
        assert row["Speedup Hand"] >= 0.85 * row["Speedup TCC"], name
    hand_wins = sum(1 for n in HAND_OPTIMIZED
                    if by_name[n]["Speedup Hand"] > by_name[n]["Speedup TCC"])
    assert hand_wins >= len(HAND_OPTIMIZED) - 1
    # the serial benchmark loses to the baseline (paper: sha 0.91x)
    assert by_name["sha"]["Speedup Hand"] < 1.0
    # regular parallel kernels are TRIPS's best cases
    best = max(r["Speedup Hand"] or 0 for r in perf_rows)
    assert best > 1.0
    assert by_name["sha"]["Speedup Hand"] < best / 2
    # hand IPCs land in a sensible concurrency band (paper: 1.1-6.5)
    hand_ipcs = [r["IPC Hand"] for r in perf_rows if r["IPC Hand"]]
    assert min(hand_ipcs) > 0.5
    assert max(hand_ipcs) < 8.0

"""Section 5.2's occupancy claims, measured.

The paper: "the processor control networks themselves do not have a large
area impact", "the control protocol overheads are insignificant", and the
LSQ replication is wasteful "since the maximum occupancy of all LSQs is
25%".  We measure both on real runs: control-network bit volume vs
operand-network bit volume, and peak LSQ occupancy.
"""

from repro.harness import render_table
from repro.simlab import RunSpec, cache_from_env, run_specs, workers_from_env
from repro.uarch.proc import ProcStats

from .conftest import save


def test_control_traffic_insignificant(benchmark, results_dir):
    def measure():
        names = ("matrix", "conv", "tblook01")
        specs = [RunSpec.trips(name, level="hand") for name in names]
        results = run_specs(specs, workers=workers_from_env(),
                            cache=cache_from_env())
        rows = []
        for name, result in zip(names, results):
            traffic = ProcStats.from_dict(result["stats"]).network_traffic()
            control = sum(v for k, v in traffic.items()
                          if k not in ("OPN", "GDN"))
            rows.append({
                "Workload": name,
                "OPN bits": traffic["OPN"],
                "GDN bits": traffic["GDN"],
                "Control bits (GCN+GSN+GRN+DSN)": control,
                "Control/OPN": round(control / traffic["OPN"], 3),
            })
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    save(results_dir, "section52_traffic.txt",
         render_table(rows, "Section 5.2: micronetwork bit volume "
                            "(control protocols vs data networks)"))
    for row in rows:
        # control protocol traffic is a small fraction of operand traffic
        assert row["Control/OPN"] < 0.25, row["Workload"]


def test_lsq_occupancy_claim(benchmark, results_dir):
    def measure():
        names = ("vadd", "ct", "mgrid")
        specs = [RunSpec.trips(
            name, level="hand" if name != "mgrid" else "tcc")
            for name in names]
        results = run_specs(specs, workers=workers_from_env(),
                            cache=cache_from_env())
        rows = []
        for name, result in zip(names, results):
            peak = result["stats"]["lsq_peak"]
            rows.append({"Workload": name,
                         "Peak LSQ occupancy": peak,
                         "% of 256 entries": round(100 * peak / 256, 1)})
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    save(results_dir, "section52_lsq_occupancy.txt",
         render_table(rows, 'Section 3.5: "maximum occupancy of all LSQs '
                            'is 25%" — measured peaks'))
    for row in rows:
        assert row["% of 256 entries"] <= 30.0, row["Workload"]

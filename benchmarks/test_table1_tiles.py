"""Table 1: TRIPS tile specifications.

Regenerates the per-tile area table from the parametric model and checks
the derived shape against the paper: ET/MT/DT dominate the chip, control
tiles are small, 106 tiles of 11 types total.
"""

from repro.analysis.area import AreaModel
from repro.harness import render_table, table1_rows

from .conftest import save


def test_table1_tiles(benchmark, results_dir):
    rows = benchmark(table1_rows)
    text = render_table(
        [{k: (round(v, 2) if isinstance(v, float) else v)
          for k, v in r.items()} for r in rows],
        "Table 1: TRIPS Tile Specifications")
    save(results_dir, "table1_tiles.txt", text)

    pct = {r["Tile"]: r["% Chip Area"] for r in rows}
    assert rows[-1]["Tile Count"] == 106
    assert len(rows) == 12             # 11 tile types + total
    # paper shape: compute and memory tiles dominate
    assert pct["ET"] > 25 and pct["MT"] > 28 and pct["DT"] > 18
    assert pct["GT"] < 3


def test_section52_overhead_attributions(benchmark, results_dir):
    model = AreaModel.prototype()

    def attributions():
        return {
            "LSQ share of processor core": model.lsq_fraction_of_core(),
            "OPN share of processor core": model.opn_fraction_of_processor(),
            "OCN share of chip": model.ocn_fraction_of_chip(),
        }

    shares = benchmark(attributions)
    lines = ["Section 5.2 distributed-design area overheads "
             "(paper: LSQ ~13%, OPN ~12%, OCN ~14%):"]
    for k, v in shares.items():
        lines.append(f"  {k}: {100 * v:.1f}%")
    save(results_dir, "table1_overheads.txt", "\n".join(lines))
    assert 0.10 < shares["LSQ share of processor core"] < 0.18
    assert 0.09 < shares["OPN share of processor core"] < 0.15
    assert 0.11 < shares["OCN share of chip"] < 0.17

"""Figure 5a: the paper's predicated-dataflow execution example.

Runs the example block down both predicate paths on the cycle simulator
and verifies the nullification protocol: the store signals completion on
both paths but only writes memory on one.
"""

from repro.asm import assemble
from repro.uarch.proc import TripsProcessor

from .conftest import save

FIG5A = """.reg R4 = {r4}
.data mem 0, 0, 0, 0, 0, 0, 0, 0, 9, 0, 0, 0, 0, 0, 0, 0
.reg R8 = &mem
.block fig5a
    R[0]  read R4 N[1,L] N[2,L]
    R[1]  read R8 N[4,L]
    N[0]  movi #0 N[1,R]
    N[1]  teq N[2,P] N[3,P]
    N[2]  muli_f #4 N[4,R]
    N[3]  null_t N[34,L] N[34,R]
    N[4]  add N[32,L]
    N[32] ld L[0] #0 N[33,L]
    N[33] mov N[34,L] N[34,R]
    N[34] sd L[1] #0
    N[35] callo exit0 @func1
.block func1
    N[0]  bro exit0 @exit
"""


def _run(r4):
    proc = TripsProcessor(assemble(FIG5A.format(r4=r4)))
    stats = proc.run()
    return proc, stats


def test_fig5a_both_paths(benchmark, results_dir):
    (proc_f, stats_f) = benchmark.pedantic(lambda: _run(2),
                                           rounds=1, iterations=1)
    proc_t, stats_t = _run(0)

    lines = ["Figure 5a execution example:"]
    lines.append(f"  false path (R4=2): {stats_f.cycles} cycles, "
                 f"mem[9]={proc_f.memory.read(9, 8)} (store performed)")
    lines.append(f"  true  path (R4=0): {stats_t.cycles} cycles, "
                 f"mem[9]={proc_t.memory.read(9, 8)} (store nullified)")
    save(results_dir, "fig5a_example.txt", "\n".join(lines))

    assert proc_f.memory.read(9, 8) == 9
    assert proc_t.memory.read(9, 8) == 0
    # both paths commit both blocks: constant output counts
    assert stats_f.blocks_committed == stats_t.blocks_committed == 2

"""Figures 2-3: tile topology and micronetwork connectivity.

Verifies the simulator's structural facts against the figures — the 5x5
OPN with GT/RT/DT/ET placement, nearest-neighbour-only links, one cycle
per hop — and benchmarks raw OPN throughput under uniform-random traffic.
"""

import random

from repro.uarch.config import TripsConfig
from repro.uarch.mesh import Packet, WormholeMesh
from repro.uarch.proc import TripsProcessor
from repro.isa import ProgramBuilder, TripsBlock, make

from .conftest import save


def _proc():
    builder = ProgramBuilder()
    blk = TripsBlock()
    blk.body[0] = make("halt")
    builder.append(blk)
    return TripsProcessor(builder.finish())


def test_fig2_tile_counts(benchmark, results_dir):
    proc = benchmark(_proc)
    cfg = proc.config
    lines = ["Figure 2 per-core tile census:"]
    counts = {"GT": 1, "RT": len(proc.rts), "DT": len(proc.dts),
              "ET": len(proc.ets), "IT": cfg.num_its}
    for k, v in counts.items():
        lines.append(f"  {k} x {v}")
    save(results_dir, "fig2_topology.txt", "\n".join(lines))
    assert counts == {"GT": 1, "RT": 4, "DT": 4, "ET": 16, "IT": 5}
    assert cfg.window_size == 1024


def test_fig3_opn_placement(benchmark):
    proc = benchmark(_proc)
    # Figure 3: GT top-left, RTs across the top, DTs down the left side,
    # ETs in the 4x4 interior — all OPN coordinates distinct
    coords = {proc.GT_COORD}
    assert proc.GT_COORD == (0, 0)
    for b, rt in enumerate(proc.rts):
        assert rt.coord == (0, 1 + b)
        coords.add(rt.coord)
    for d, dt in enumerate(proc.dts):
        assert dt.coord == (1 + d, 0)
        coords.add(dt.coord)
    for e, et in enumerate(proc.ets):
        assert et.coord == (1 + e // 4, 1 + e % 4)
        coords.add(et.coord)
    assert len(coords) == 25


def test_opn_uniform_random_throughput(benchmark, results_dir):
    def run():
        rng = random.Random(42)
        mesh = WormholeMesh(5, 5, queue_depth=2)
        nodes = [(r, c) for r in range(5) for c in range(5)]
        sent = delivered = 0
        pending = []
        for cycle in range(400):
            for _ in range(4):  # offered load: 4 packets/cycle
                src, dst = rng.sample(nodes, 2)
                pending.append((src, Packet(src=src, dest=dst)))
            pending = [(s, p) for s, p in pending if not mesh.inject(s, p)]
            sent += 1
            mesh.step()
            for node in nodes:
                delivered += len(mesh.take_delivered(node))
        return mesh, delivered

    mesh, delivered = benchmark(run)
    avg_queue = mesh.stats.total_queue_cycles / max(1, mesh.stats.delivered)
    text = (f"OPN uniform-random traffic: delivered {delivered} packets in "
            f"400 cycles\n  avg hops "
            f"{mesh.stats.total_hops / max(1, mesh.stats.delivered):.2f}, "
            f"avg contention {avg_queue:.2f} cycles/packet")
    save(results_dir, "fig3_opn_throughput.txt", text)
    assert delivered > 800

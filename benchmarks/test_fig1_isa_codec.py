"""Figure 1: instruction formats — codec fidelity and throughput.

Round-trips every opcode through its 32-bit word form and benchmarks the
encoder/decoder over a full synthetic block.
"""

import random

from repro.isa import Instruction, Opcode, OperandKind, Target, TripsBlock, make

from .conftest import save


def _random_block(rng):
    blk = TripsBlock(name="codec")
    for slot in range(0, 100, 2):
        inst = make("addi", imm=rng.randrange(-8192, 8192),
                    targets=[Target(slot + 1, OperandKind.LEFT)])
        blk.body[slot] = inst
        blk.body[slot + 1] = make("mov")
    blk.body[101] = make("bro", offset=128)
    return blk


def test_fig1_codec_roundtrip(benchmark, results_dir):
    rng = random.Random(7)
    blk = _random_block(rng)

    def roundtrip():
        return TripsBlock.decode(blk.encode())

    again = benchmark(roundtrip)
    assert again.body.keys() == blk.body.keys()
    for slot in blk.body:
        assert str(again.body[slot]) == str(blk.body[slot])

    lines = ["Figure 1 formats: every opcode encodes to one 32-bit word "
             "and round-trips:"]
    from repro.isa.opcodes import Format
    for op in Opcode:
        kwargs = {"offset": 128} if op.format is Format.B else {}
        inst = Instruction(op, **kwargs)
        word = inst.encode()
        assert Instruction.decode(word).opcode is op
        lines.append(f"  {op.mnemonic:6s} fmt={op.format.value} "
                     f"word={word:#010x}")
    save(results_dir, "fig1_isa_codec.txt", "\n".join(lines))

"""Table 2: control and data networks.

Regenerates the micronetwork table and cross-checks the OPN's 141-wire
link against the simulator's own message model.
"""

from repro.analysis.area import wire_count_check
from repro.harness import render_table, table2_rows

from .conftest import save


def test_table2_networks(benchmark, results_dir):
    rows = benchmark(table2_rows)
    text = render_table(rows, "Table 2: TRIPS Control and Data Networks")
    check = wire_count_check()
    text += "\n\nOPN link decomposition (cross-check against the message "
    text += "model):\n  " + ", ".join(f"{k}={v}" for k, v in check.items())
    save(results_dir, "table2_networks.txt", text)

    names = [r["Network"] for r in rows]
    assert len(rows) == 8
    assert any("GDN" in n for n in names)
    assert any("DSN" in n for n in names)
    bits = {r["Network"]: r["Bits"] for r in rows}
    assert bits["Operand Network (OPN)"] == "141 (x8)"
    assert sum(v for k, v in check.items() if k != "total") == 141

"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures (or an
ablation DESIGN.md calls out) and writes its output under
``benchmarks/results/`` so a full ``pytest benchmarks/ --benchmark-only``
run leaves the reproduced evaluation on disk.
"""

import pathlib

import pytest

RESULTS = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir():
    RESULTS.mkdir(exist_ok=True)
    return RESULTS


def save(results_dir, name: str, text: str) -> None:
    path = results_dir / name
    path.write_text(text + "\n")
    print(f"\n[saved {path}]")
    print(text)

"""Figure 5a walk-through: predicated dataflow execution with null tokens.

The paper's execution example (Section 4.2): a block tests R4 against zero;
on the false path a load feeds a store, on the true path a ``null``
instruction feeds the store's operands, nullifying it — so the block emits
the same output count either way, which is what lets the distributed
substrate detect completion.

Run:  python examples/dataflow_predication.py
"""

from repro.asm import assemble
from repro.uarch import FunctionalSim
from repro.uarch.proc import TripsProcessor

FIG5A = """.reg R4 = {r4}
.data mem 0, 0, 0, 0, 0, 0, 0, 0, 9, 0, 0, 0, 0, 0, 0, 0
.reg R8 = &mem
.block fig5a
    R[0]  read R4 N[1,L] N[2,L]
    R[1]  read R8 N[4,L]
    N[0]  movi #0 N[1,R]
    N[1]  teq N[2,P] N[3,P]
    N[2]  muli_f #4 N[4,R]
    N[3]  null_t N[34,L] N[34,R]
    N[4]  add N[32,L]
    N[32] ld L[0] #0 N[33,L]
    N[33] mov N[34,L] N[34,R]
    N[34] sd L[1] #0
    N[35] callo exit0 @func1
.block func1
    N[0]  bro exit0 @exit
"""


def run_path(r4: int) -> None:
    program = assemble(FIG5A.format(r4=r4))
    print(f"--- R4 = {r4} "
          f"({'true path: store nullified' if r4 == 0 else 'false path: load->store'}) ---")
    print(program.blocks[program.entry].listing())

    sim = FunctionalSim(program)
    sim.run()
    print(f"functional: fired {sim.stats.fired} instructions, "
          f"nullified outputs {sim.stats.nullified_outputs}, "
          f"loads {sim.stats.loads}")

    proc = TripsProcessor(program)
    stats = proc.run()
    stored = proc.memory.read(9, 8)
    print(f"cycle-level: {stats.cycles} cycles; mem[9] = {stored} "
          f"({'store suppressed' if stored == 0 else 'store performed'})")
    print()


def main() -> None:
    run_path(r4=2)   # teq 2,0 -> 0: predicated-false path executes
    run_path(r4=0)   # teq 0,0 -> 1: null fires, store nullified


if __name__ == "__main__":
    main()

"""The full TRIPS chip: two cores communicating through shared memory.

The prototype carries two complete processors connected only through the
secondary memory system (Section 3).  This example runs a producer on
core 0 and a consumer on core 1: the producer computes into its region
and raises a flag; the DMA controller moves the block between physical
regions; the consumer spins on its flag and then reduces the data — the
same memory-system-mediated patterns the silicon supports.

Run:  python examples/dual_core.py
"""

from repro.chip import TripsChip
from repro.compiler import compile_tir
from repro.tir import (
    Array,
    Assign,
    Const,
    For,
    Load,
    Store,
    TirProgram,
    V,
    While,
    bits_to_int,
)


def main() -> None:
    producer = TirProgram(
        "producer",
        arrays={"seed": Array("i64", list(range(32))),
                "out": Array("i64", [0] * 32)},
        body=[For("i", 0, 32, 1, [
            Store("out", V("i"), Load("seed", V("i")) * 3 + 1)], unroll=4)],
        outputs=["out"])
    consumer = TirProgram(
        "consumer",
        arrays={"inbox": Array("i64", [0] * 32),
                "flag": Array("i64", [0])},
        scalars={"total": 0},
        body=[
            While(Load("flag", Const(0)).eq(0), [Assign("total", Const(0))]),
            For("i", 0, 32, 1, [
                Assign("total", V("total") + Load("inbox", V("i")))]),
        ],
        outputs=["total"])

    p0 = compile_tir(producer, level="hand", base=0x1000, data_base=0x100000)
    p1 = compile_tir(consumer, level="hand", base=0x40000, data_base=0x180000)
    chip = TripsChip(p0.program, p1.program, max_cycles=3_000_000)

    # phase 1: run until the producer halts (the consumer spins)
    while not chip.cores[0].halted:
        for core in chip.cores:
            if not core.halted:
                core.step()
        chip.sysmem.step()
        for core in chip.cores:
            core.poll_sysmem()
        chip.cycle += 1
    print(f"core 0 (producer) halted at chip cycle {chip.cycle}: "
          f"{chip.cores[0].stats.blocks_committed} blocks committed")

    # phase 2: DMA the produced region into the consumer's inbox, raise
    # its flag, and let the chip run to completion
    done_at = chip.dma_copy(p0.array_addrs["out"],
                            p1.array_addrs["inbox"], 32 * 8)
    chip.memory.write(p1.array_addrs["flag"], 1, 8)
    print(f"DMA transfer programmed (estimated completion: cycle {done_at})")
    stats = chip.run()

    total = bits_to_int(chip.cores[1].regs[p1.var_regs["total"]])
    expect = sum(i * 3 + 1 for i in range(32))
    print(f"core 1 (consumer) summed the inbox: {total} "
          f"({'correct' if total == expect else 'WRONG, expected %d' % expect})")
    print(f"chip: {stats.cycles} cycles, OCN requests {stats.ocn_requests}, "
          f"DRAM accesses {stats.dram_accesses}")


if __name__ == "__main__":
    main()

"""Figure 5b: the fetch / complete / commit / ack pipeline across blocks.

Runs a small loop with tracing enabled and prints the per-block protocol
timeline — showing that fetches pipeline every ~8 cycles, completion
(Finish) precedes the commit command, commit commands pipeline without
waiting for older acks, and deallocation waits for the ack (Section 4.4).

Run:  python examples/protocol_trace.py
"""

from repro.compiler import compile_tir
from repro.tir import Assign, For, TirProgram, V
from repro.uarch.proc import TripsProcessor


def main() -> None:
    prog = TirProgram(
        "timeline", scalars={"acc": 0},
        body=[For("i", 0, 12, 1, [Assign("acc", V("acc") + V("i"))])],
        outputs=["acc"])
    compiled = compile_tir(prog, level="hand")
    proc = TripsProcessor(compiled.program, trace=True)
    stats = proc.run()

    print(f"{stats.cycles} cycles, {stats.blocks_committed} blocks "
          f"committed, {stats.blocks_flushed} flushed\n")
    header = (f"{'seq':>4} {'addr':>8} {'fetch':>6} {'dispat':>6} "
              f"{'finish':>6} {'commit':>6} {'ack':>6}  outcome")
    print(header)
    print("-" * len(header))
    for ev in sorted(proc.trace.blocks.values(), key=lambda b: b.seq):
        print(f"{ev.seq:>4} {ev.addr:#8x} {ev.fetch_t:>6} "
              f"{ev.dispatch_done_t:>6} {ev.completed_t:>6} "
              f"{ev.commit_t:>6} {ev.ack_t:>6}  {ev.outcome}")

    committed = proc.trace.committed_blocks()
    fetch_gaps = [b.fetch_t - a.fetch_t
                  for a, b in zip(committed, committed[1:])]
    print(f"\nfetch-to-fetch gaps (committed blocks): {fetch_gaps}")
    print("commit commands are pipelined: a block's commit may be sent "
          "before older blocks' acks return —")
    overlapped = sum(1 for a, b in zip(committed, committed[1:])
                     if b.commit_t < a.ack_t)
    print(f"{overlapped} of {len(committed) - 1} commits overlapped an "
          "older block's in-flight acknowledgment")


if __name__ == "__main__":
    main()

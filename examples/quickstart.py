"""Quickstart: write a small program, compile it for TRIPS, run it on both
simulators, and compare against a conventional out-of-order baseline.

Run:  python examples/quickstart.py
"""

from repro.compiler import compile_tir
from repro.harness import compare_workload
from repro.tir import Array, Assign, For, Load, Store, TirProgram, V, interpret
from repro.uarch import FunctionalSim
from repro.uarch.proc import TripsProcessor


def main() -> None:
    # 1. A workload in TIR, the repository's C stand-in: a saxpy-style loop.
    n = 64
    prog = TirProgram(
        "quickstart",
        arrays={"x": Array("i64", list(range(n))),
                "y": Array("i64", [3] * n)},
        scalars={"a": 7},
        body=[
            For("i", 0, n, 1, [
                Store("y", V("i"),
                      V("a") * Load("x", V("i")) + Load("y", V("i"))),
            ], unroll=8),
        ],
        outputs=["y"])

    # 2. Golden results from the reference interpreter.
    golden = interpret(prog).output_signature(prog.outputs)

    # 3. Compile to TRIPS blocks (hand-optimized level) and inspect one.
    compiled = compile_tir(prog, level="hand")
    print(f"compiled into {len(compiled.program.blocks)} TRIPS blocks, "
          f"{compiled.program.static_instruction_count()} static instructions")
    first = min(compiled.program.blocks)
    print("\nfirst block listing:")
    print(compiled.program.blocks[first].listing())

    # 4. Functional simulation (tsim-arch): fast dataflow execution.
    sim = FunctionalSim(compiled.program)
    sim.run()
    assert compiled.extract_outputs(sim.regs, sim.memory) == golden
    print(f"\ntsim-arch: {sim.stats.blocks} blocks, "
          f"{sim.stats.fired} instructions fired — outputs match golden")

    # 5. Cycle-level simulation (tsim-proc): the distributed protocols.
    proc = TripsProcessor(compiled.program)
    stats = proc.run()
    assert compiled.extract_outputs(proc.regs, proc.memory) == golden
    print(f"tsim-proc: {stats.cycles} cycles, IPC {stats.ipc:.2f}, "
          f"{stats.blocks_committed} blocks committed, "
          f"{stats.blocks_flushed} flushed — outputs match golden")

    # 6. Against the Alpha-21264-style baseline.
    cmp = compare_workload(prog)
    print(f"\nvs baseline: speedup tcc {cmp.speedup_tcc:.2f}x, "
          f"hand {cmp.speedup_hand:.2f}x "
          f"(IPCs: alpha {cmp.ipc_alpha:.2f}, tcc {cmp.ipc_tcc:.2f}, "
          f"hand {cmp.ipc_hand:.2f})")


if __name__ == "__main__":
    main()

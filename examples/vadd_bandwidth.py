"""The vadd/conv bandwidth story (Section 5.4).

TRIPS's four data tiles give it exactly double the L1 memory bandwidth of
the two-ported baseline, so streaming kernels are capped at ~2x speedup.
This example measures vadd and conv on both machines and on a
baseline variant with four memory ports, showing the cap is a *bandwidth*
effect, not a core-width effect.

Run:  python examples/vadd_bandwidth.py
"""

from repro.baseline.ooo import BaselineConfig, OooCore
from repro.baseline.srisc import run_functional
from repro.compiler.srisc import compile_srisc
from repro.harness import run_baseline_workload, run_trips_workload
from repro.workloads import get_workload


def main() -> None:
    for name in ("vadd", "conv"):
        tir = get_workload(name)
        trips = run_trips_workload(tir, level="hand")
        alpha2 = run_baseline_workload(tir)
        # a hypothetical 4-ported baseline
        program = compile_srisc(get_workload(name))
        functional = run_functional(program)
        alpha4 = OooCore(BaselineConfig(mem_ports=4)).run(program, functional)

        speedup2 = alpha2.cycles / trips.cycles
        speedup4 = alpha4.cycles / trips.cycles
        print(f"{name}:")
        print(f"  TRIPS (hand, 4 DT ports):     {trips.cycles:6d} cycles, "
              f"IPC {trips.ipc:.2f}")
        print(f"  baseline (2 L1D ports):       {alpha2.cycles:6d} cycles, "
              f"IPC {alpha2.ipc:.2f}  -> TRIPS speedup {speedup2:.2f}x")
        print(f"  baseline (4 L1D ports):       {alpha4.cycles:6d} cycles, "
              f"IPC {alpha4.ipc:.2f}  -> TRIPS speedup {speedup4:.2f}x")
        print(f"  bandwidth effect: widening the baseline's ports closes "
              f"{100 * (1 - speedup4 / speedup2):.0f}% of the gap\n")


if __name__ == "__main__":
    main()

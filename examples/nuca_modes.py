"""The configurable secondary memory system (Section 3.6).

The 1MB NUCA array can be programmed — by rewriting NT routing tables and
MT mode bits — as one shared L2, two split L2s, or on-chip scratchpad
memory.  This example issues the same access stream under each
configuration and reports bank usage and latency, then demonstrates a DMA
transfer and running a processor with the detailed (non-perfect) L2.

Run:  python examples/nuca_modes.py
"""

from repro.harness import run_trips_workload
from repro.mem.backing import BackingStore
from repro.mem.sysmem import SecondaryMemory, SysMemConfig
from repro.uarch.config import TripsConfig


def exercise(mode: str) -> None:
    sysmem = SecondaryMemory(SysMemConfig(mode=mode))
    addresses = [0x100000 + 64 * i for i in range(32)]
    latencies = []
    for port, addr in enumerate(addresses):
        sysmem.request(port % 8, addr, False, meta=sysmem.cycle)
        sent = sysmem.cycle
        for _ in range(600):
            sysmem.step()
            got = sysmem.take_responses(port % 8)
            if got:
                latencies.append(sysmem.cycle - sent)
                break
    banks = sum(1 for mt in sysmem.mts
                if mt.hits or mt.misses or mt.scratch_accesses)
    print(f"  {mode:<10s}: {banks:2d} banks touched, "
          f"avg latency {sum(latencies) / len(latencies):5.1f} cycles, "
          f"DRAM accesses {sysmem.stats['dram_accesses']}")


def main() -> None:
    print("same 32-line access stream under each memory configuration:")
    for mode in ("shared_l2", "split_l2", "scratchpad"):
        exercise(mode)

    print("\nDMA transfer between physical regions:")
    backing = BackingStore()
    backing.write_bytes(0x100000, bytes(range(256)))
    sysmem = SecondaryMemory(backing=backing)
    done = sysmem.dma_copy(0x100000, 0x180000, 256)
    ok = backing.read_bytes(0x180000, 256) == bytes(range(256))
    print(f"  256 bytes copied ({'ok' if ok else 'FAILED'}), "
          f"estimated completion at cycle {done}")

    print("\nrunning qr with the detailed NUCA L2 instead of a perfect L2:")
    perfect = run_trips_workload("qr", level="hand",
                                 config=TripsConfig(perfect_l2=True))
    detailed = run_trips_workload("qr", level="hand",
                                  config=TripsConfig(perfect_l2=False))
    print(f"  perfect L2: {perfect.cycles} cycles; "
          f"NUCA: {detailed.cycles} cycles "
          f"({detailed.proc.sysmem.stats['dram_accesses']} cold DRAM fills)")


if __name__ == "__main__":
    main()

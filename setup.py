"""Setuptools shim.

The project is fully described by pyproject.toml; this file exists so that
`python setup.py develop` works in offline environments whose setuptools
predates PEP-660 editable installs (no `wheel` package available).
"""

from setuptools import setup

setup()

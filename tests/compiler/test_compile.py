"""End-to-end compiler tests: TIR -> TRIPS blocks -> tsim-arch == interp."""

import pytest

from repro.compiler import CompileError, compile_tir
from repro.tir import (
    Array,
    Assign,
    BinOp,
    Const,
    F,
    For,
    If,
    Load,
    Store,
    TirProgram,
    UnOp,
    V,
    While,
)

from .conftest import co_validate


class TestStraightLine:
    def test_constants_and_arithmetic(self):
        co_validate(TirProgram("t", scalars={"x": 0, "y": 0}, body=[
            Assign("x", Const(6) * 7),
            Assign("y", V("x") + V("x") * 2),
        ], outputs=["x", "y"]))

    def test_wide_constants(self):
        co_validate(TirProgram("t", scalars={"a": 0, "b": 0, "c": 0}, body=[
            Assign("a", Const(0x123456789ABCDEF0)),
            Assign("b", Const(-1)),
            Assign("c", Const(0x7FFFFFFF) + 1),
        ], outputs=["a", "b", "c"]))

    def test_float_constants_and_math(self):
        co_validate(TirProgram("t", scalars={"x": 0}, body=[
            Assign("x", BinOp("fdiv", BinOp("fadd", F(1.5), F(2.5)), F(8.0))),
        ], outputs=["x"]))

    def test_division_and_rem(self):
        co_validate(TirProgram("t", scalars={"q": 0, "r": 0, "n": -17, "d": 5},
                               body=[
            Assign("q", BinOp("div", V("n"), V("d"))),
            Assign("r", BinOp("rem", V("n"), V("d"))),
        ], outputs=["q", "r"]))

    def test_unops(self):
        co_validate(TirProgram("t", scalars={"a": 0, "b": 0, "c": 0}, body=[
            Assign("a", UnOp("not", Const(0))),
            Assign("b", UnOp("neg", Const(7))),
            Assign("c", UnOp("ftoi", UnOp("itof", Const(12345)))),
        ], outputs=["a", "b", "c"]))

    def test_immediate_folding_roundtrip(self):
        # values near the 14-bit immediate boundary
        co_validate(TirProgram("t", scalars={"x": 1, "a": 0, "b": 0}, body=[
            Assign("a", V("x") + 8191),
            Assign("b", V("x") + 8192),   # too wide for an immediate
        ], outputs=["a", "b"]))

    def test_array_copy(self):
        co_validate(TirProgram("t",
            arrays={"src": Array("i64", [3, 1, 4, 1, 5]),
                    "dst": Array("i64", [0] * 5)},
            body=[Store("dst", Const(i), Load("src", Const(i)))
                  for i in range(5)],
            outputs=["dst"]))

    def test_narrow_arrays(self):
        co_validate(TirProgram("t",
            arrays={"bytes": Array("u8", [250, 251, 252]),
                    "halves": Array("i16", [-2, -1, 0])},
            scalars={"s": 0},
            body=[
                Assign("s", Load("bytes", Const(0)) + Load("halves", Const(0))),
                Store("bytes", Const(2), Const(0x1FF)),
                Store("halves", Const(2), UnOp("neg", Const(5))),
            ],
            outputs=["bytes", "halves", "s"]))


class TestControlFlow:
    def test_counted_loop(self):
        co_validate(TirProgram("t", scalars={"acc": 0}, body=[
            For("i", 0, 10, 1, [Assign("acc", V("acc") + V("i"))]),
        ], outputs=["acc"]))

    def test_loop_with_dynamic_bound(self):
        co_validate(TirProgram("t", scalars={"n": 7, "acc": 0}, body=[
            For("i", 0, V("n"), 1, [Assign("acc", V("acc") + V("i") * V("i"))]),
        ], outputs=["acc"]))

    def test_nested_loops(self):
        co_validate(TirProgram("t", scalars={"acc": 0}, body=[
            For("i", 0, 4, 1, [
                For("j", 0, 3, 1, [
                    Assign("acc", V("acc") + V("i") * 10 + V("j")),
                ]),
            ]),
        ], outputs=["acc"]))

    def test_if_else_both_levels(self):
        for init in (3, -3):
            co_validate(TirProgram("t", scalars={"x": init, "y": 0}, body=[
                If(V("x").gt(0),
                   [Assign("y", V("x") * 2)],
                   [Assign("y", 0 - V("x"))]),
            ], outputs=["y"]))

    def test_if_with_one_sided_assignment(self):
        for init in (1, 0):
            co_validate(TirProgram("t", scalars={"f": init, "y": 42}, body=[
                If(V("f").ne(0), [Assign("y", Const(7))], []),
            ], outputs=["y"]))

    def test_conditional_store_nullification(self):
        # the Figure 5a shape: a store on only one predicated path
        for flag in (0, 1):
            co_validate(TirProgram("t",
                arrays={"out": Array("i64", [99])},
                scalars={"f": flag},
                body=[If(V("f").eq(0), [Store("out", Const(0), Const(11))], [])],
                outputs=["out"]))

    def test_if_inside_loop(self):
        co_validate(TirProgram("t",
            arrays={"a": Array("i64", [5, -2, 7, -4, 0, 3])},
            scalars={"pos": 0, "neg": 0},
            body=[
                For("i", 0, 6, 1, [
                    Assign("v", Load("a", V("i"))),
                    If(V("v").lt(0),
                       [Assign("neg", V("neg") + 1)],
                       [Assign("pos", V("pos") + V("v"))]),
                ]),
            ], outputs=["pos", "neg"]))

    def test_while_loop(self):
        co_validate(TirProgram("t", scalars={"n": 6, "f": 1}, body=[
            While(V("n").gt(1), [
                Assign("f", V("f") * V("n")),
                Assign("n", V("n") - 1),
            ]),
        ], outputs=["f"]))

    def test_unroll_hint(self):
        results = co_validate(TirProgram("t",
            arrays={"a": Array("i64", list(range(8))),
                    "b": Array("i64", [0] * 8)},
            body=[
                For("i", 0, 8, 1,
                    [Store("b", V("i"), Load("a", V("i")) * 3)],
                    unroll=4),
            ], outputs=["b"]))
        # hand level honours the unroll: fewer blocks executed
        _, sim_tcc = results["tcc"]
        _, sim_hand = results["hand"]
        assert sim_hand.stats.blocks < sim_tcc.stats.blocks

    def test_empty_loop_body_degenerate(self):
        co_validate(TirProgram("t", scalars={"x": 5}, body=[
            For("i", 0, 0, 1, [Assign("x", Const(0))]),
        ], outputs=["x"]))


class TestBlockStructure:
    def test_hand_level_produces_fewer_blocks(self):
        prog = TirProgram("t", scalars={"acc": 0}, body=[
            For("i", 0, 20, 1, [
                Assign("t1", V("i") * 3),
                Assign("acc", V("acc") + V("t1")),
            ]),
        ], outputs=["acc"])
        results = co_validate(prog)
        tcc_prog = results["tcc"][0].program
        hand_prog = results["hand"][0].program
        assert len(hand_prog.blocks) < len(tcc_prog.blocks)
        # rotated loops: one block per iteration at hand level
        assert results["hand"][1].stats.blocks < results["tcc"][1].stats.blocks

    def test_large_block_splits(self):
        # 80 stores cannot fit one block (32 LSID limit): must split and
        # still produce correct results.
        n = 80
        prog = TirProgram("t",
            arrays={"a": Array("i64", [0] * n)},
            body=[Store("a", Const(i), Const(i * i)) for i in range(n)],
            outputs=["a"])
        results = co_validate(prog)
        assert len(results["tcc"][0].program.blocks) >= 3

    def test_cse_within_block(self):
        prog = TirProgram("t",
            arrays={"a": Array("i64", [7, 8, 9])},
            scalars={"i": 1, "s": 0},
            body=[Assign("s", Load("a", V("i") + 1) + (V("i") + 1))],
            outputs=["s"])
        compiled = compile_tir(prog, level="hand")
        # (i+1) computed once: count ADDI/ADD instructions
        from repro.isa import Opcode
        addis = sum(
            1 for blk in compiled.program.blocks.values()
            for inst in blk.body.values()
            if inst.opcode in (Opcode.ADDI, Opcode.ADD))
        # one i+1, one base+scaled address add
        assert addis <= 3

    def test_every_block_satisfies_isa_constraints(self):
        prog = TirProgram("t",
            arrays={"m": Array("i64", list(range(64)))},
            scalars={"acc": 0},
            body=[
                For("i", 0, 8, 1, [
                    For("j", 0, 8, 1, [
                        Assign("acc", V("acc")
                               + Load("m", V("i") * 8 + V("j"))),
                    ]),
                ]),
            ], outputs=["acc"])
        for level in ("tcc", "hand"):
            compiled = compile_tir(prog, level=level)
            for blk in compiled.program.blocks.values():
                blk.validate()    # would raise on any violation

    def test_too_many_scalars_rejected(self):
        body = [Assign(f"v{i}", Const(i)) for i in range(130)]
        prog = TirProgram("t", body=body, outputs=[])
        with pytest.raises(CompileError, match="register budget"):
            compile_tir(prog)

"""Unit tests for materialization (DCE, fanout, cloning) and scheduling."""

import pytest

from repro.compiler.dag import BlockDag
from repro.compiler.emit import materialize
from repro.isa import Opcode, OperandKind
from repro.tir import Array, Const, V
from repro.tir.ir import BinOp, Load


def fresh_dag(arrays=None, addrs=None, var_regs=None):
    return BlockDag(var_regs or {"x": 0, "y": 1, "z": 2},
                    addrs or {"a": 0x100000},
                    arrays or {"a": Array("i64", [0] * 64)})


class TestMaterialization:
    def test_dead_code_eliminated(self):
        dag = fresh_dag()
        dag.set_var("x", dag.expr(BinOp("add", Const(1), Const(2))))  # dead
        live = dag.expr(BinOp("mul", V("y"), Const(3)))
        dag.add_write(1, live)
        dag.branch_halt()
        block = materialize(dag, "t")
        mnemonics = [i.opcode.mnemonic for i in block.body.values()]
        # the constant-folded dead add (a movi) is gone
        assert "halt" in mnemonics
        assert len(block.reads) == 1          # only y read

    def test_dead_load_dropped_and_lsids_compacted(self):
        dag = fresh_dag()
        dag.expr(Load("a", Const(0)))                  # dead load, LSID 0
        kept = dag.expr(Load("a", Const(1)))           # LSID 1
        dag.store("a", Const(2), V("y"))               # LSID 2
        dag.add_write(0, kept)
        dag.branch_halt()
        block = materialize(dag, "t")
        lsids = sorted(i.lsid for i in block.body.values()
                       if i.opcode.is_memory)
        assert lsids == [0, 1]                          # compacted

    def test_fanout_tree_inserted_for_unclonable_producer(self):
        dag = fresh_dag()
        # a load is not clonable: over-fanout must build a mov tree
        shared = dag.expr(Load("a", V("x")))
        for k in range(6):
            dag.add_write(k * 4, shared)    # 6 consumers > cap 2
        dag.branch_halt()
        block = materialize(dag, "t")
        movs = [i for i in block.body.values() if i.opcode is Opcode.MOV]
        assert len(movs) >= 4                # 6 endpoints, cap 2 -> 4 movs

    def test_cheap_op_cloned_instead_of_tree(self):
        dag = fresh_dag()
        # an add feeding 6 write slots: cloning replicates the cheap op
        # rather than paying mov-tree latency
        shared = dag.expr(BinOp("add", V("x"), V("y")))
        for k in range(6):
            dag.add_write(k * 4, shared)
        dag.branch_halt()
        block = materialize(dag, "t")
        adds = [i for i in block.body.values() if i.opcode is Opcode.ADD]
        assert len(adds) >= 3                # original + >= 2 clones

    def test_every_instruction_gets_a_unique_slot(self):
        dag = fresh_dag()
        acc = dag.expr(V("x"))
        for k in range(20):
            acc = dag.expr(BinOp("add", V("x"), Const(k)))
            dag.add_write(0, acc) if k == 19 else None
        dag.branch_halt()
        block = materialize(dag, "t")
        assert len(set(block.body.keys())) == len(block.body)
        block.validate()

    def test_predicated_branch_pair(self):
        dag = fresh_dag()
        cond = dag.expr(BinOp("gt", V("x"), Const(0)))
        dag.branch_cond(cond, "then_l", "else_l")
        block = materialize(dag, "t")
        branches = [block.body[s] for s in block.branches()]
        assert {b.pred for b in branches} == {True, False}
        assert {b.exit_no for b in branches} == {0, 1}
        assert {getattr(b, "label", None) for b in branches} == \
            {"then_l", "else_l"}


class TestSchedulerPlacement:
    def test_slots_map_to_distinct_stations(self):
        dag = fresh_dag()
        nodes = [dag.expr(BinOp("add", V("x"), Const(k))) for k in range(30)]
        for k, n in enumerate(nodes[:8]):
            dag.add_write((k % 8) * 4, n)
        dag.branch_halt()
        block = materialize(dag, "t")
        per_et = {}
        for slot in block.body:
            per_et.setdefault(slot % 16, []).append(slot // 16)
        for et, stations in per_et.items():
            assert len(set(stations)) == len(stations)
            assert max(stations) < 8

    def test_dependent_chain_placed_compactly(self):
        # a chain rooted at a bank-0 read should hug the west side
        dag = fresh_dag()
        v = dag.read_var("x")       # reg 0 -> RT0 at (0,1)
        node = v
        for _ in range(4):
            node = dag.expr(BinOp("add", V("x"), Const(1)))
        dag.add_write(0, node)
        dag.branch_halt()
        block = materialize(dag, "t")
        cols = [1 + (slot % 16) % 4 for slot, inst in block.body.items()
                if inst.opcode is Opcode.ADDI]
        assert cols and sum(cols) / len(cols) <= 2.5

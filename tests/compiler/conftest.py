"""Shared helpers for compiler tests."""

import pytest

from repro.compiler import compile_tir
from repro.tir import interpret
from repro.uarch import FunctionalSim


def co_validate(tir_prog, levels=("tcc", "hand")):
    """Compile at each level, run on tsim-arch, compare with the interpreter.

    Returns {level: (CompiledProgram, FunctionalSim)} for further checks.
    """
    golden = interpret(tir_prog).output_signature(tir_prog.outputs)
    results = {}
    for level in levels:
        compiled = compile_tir(tir_prog, level=level)
        sim = FunctionalSim(compiled.program)
        sim.run()
        got = compiled.extract_outputs(sim.regs, sim.memory)
        assert got == golden, (
            f"{tir_prog.name} @ {level}: outputs diverge\n"
            f"golden: {golden}\ngot:    {got}")
        results[level] = (compiled, sim)
    return results

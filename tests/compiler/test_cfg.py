"""Unit tests for CFG lowering, level transforms, and liveness."""

import pytest

from repro.compiler.cfg import (
    CfgBlock,
    CompileError,
    CondJump,
    Halt,
    Jump,
    PredRegion,
    _assigned_vars,
    _subst_expr,
    _subst_stmt,
    block_uses_defs,
    liveness,
    lower_to_cfg,
    stmt_uses_defs,
)
from repro.tir import (
    Assign,
    BinOp,
    Const,
    For,
    If,
    Load,
    Store,
    TirProgram,
    V,
    Var,
    While,
)


def prog(body, **kw):
    return TirProgram("t", body=body, **kw)


class TestLowering:
    def test_tcc_for_produces_head_body_exit(self):
        cfg = lower_to_cfg(prog([For("i", 0, 4, 1, [Assign("x", V("i"))])]),
                           "tcc")
        kinds = [type(b.term).__name__ for b in cfg.blocks]
        assert "CondJump" in kinds
        # tcc: entry -> head -> body -> head loop shape: >= 4 blocks
        assert len(cfg.blocks) >= 4

    def test_hand_rotates_loops(self):
        cfg = lower_to_cfg(prog([For("i", 0, 4, 1, [Assign("x", V("i"))])]),
                           "hand")
        # rotated: the body block's terminator is the back CondJump
        back = [b for b in cfg.blocks
                if isinstance(b.term, CondJump) and b.term.if_true == b.label]
        assert len(back) == 1

    def test_hand_if_converts_simple_arms(self):
        cfg = lower_to_cfg(prog([
            Assign("x", Const(1)),
            If(V("x").gt(0), [Assign("y", Const(1))],
               [Assign("y", Const(2))])]), "hand")
        regions = [s for b in cfg.blocks for s in b.stmts
                   if isinstance(s, PredRegion)]
        assert len(regions) == 1

    def test_tcc_never_if_converts(self):
        cfg = lower_to_cfg(prog([
            Assign("x", Const(1)),
            If(V("x").gt(0), [Assign("y", Const(1))], [])]), "tcc")
        assert not any(isinstance(s, PredRegion)
                       for b in cfg.blocks for s in b.stmts)

    def test_nested_if_falls_back_to_branches(self):
        cfg = lower_to_cfg(prog([
            Assign("x", Const(1)),
            If(V("x").gt(0),
               [If(V("x").gt(5), [Assign("y", Const(1))], [])],
               [])]), "hand")
        # the outer If has a non-simple arm -> CondJump diamond
        assert any(isinstance(b.term, CondJump) for b in cfg.blocks)

    def test_full_unroll_eliminates_loop(self):
        cfg = lower_to_cfg(prog([
            For("i", 0, 4, 1, [Assign("x", V("i") * 2)], unroll=4)]), "hand")
        # no back edges remain: every terminator is Jump/Halt or forward
        for b in cfg.blocks:
            if isinstance(b.term, CondJump):
                assert b.term.if_true != b.label

    def test_unsafe_unroll_degrades_to_one(self):
        cfg7 = lower_to_cfg(prog([
            For("i", 0, 7, 1, [Assign("x", V("i"))], unroll=4)]), "hand")
        cfg8 = lower_to_cfg(prog([
            For("i", 0, 8, 1, [Assign("x", V("i"))], unroll=4)]), "hand")
        count = lambda cfg: sum(len(b.stmts) for b in cfg.blocks)
        assert count(cfg8) > count(cfg7)   # 8 unrolled, 7 not

    def test_merge_chains_shrinks_hand_cfg(self):
        body = [Assign("a", Const(1)),
                If(V("a").gt(0), [Assign("b", Const(1))],
                   [While(V("a").gt(5), [Assign("a", V("a") - 1)])]),
                Assign("c", V("a"))]
        tcc = lower_to_cfg(prog(body), "tcc")
        hand = lower_to_cfg(prog(body), "hand")
        assert len(hand.blocks) <= len(tcc.blocks)

    def test_unknown_level(self):
        with pytest.raises(CompileError):
            lower_to_cfg(prog([]), "O3")

    def test_unreachable_pruned(self):
        cfg = lower_to_cfg(prog([
            For("i", 0, 0, 1, [Assign("x", Const(1))])]), "tcc")
        labels = {b.label for b in cfg.blocks}
        for b in cfg.blocks:
            for succ in cfg.successors(b):
                assert succ in labels


class TestSubstitution:
    def test_expr_substitution(self):
        e = _subst_expr(V("i") + Load("a", V("i") * 2), "i", Const(3))
        from repro.tir import interpret, TirProgram, Array
        p = TirProgram("t", arrays={"a": Array("i64", [0] * 10)},
                       scalars={"x": 0},
                       body=[Assign("x", e)], outputs=["x"])
        res = interpret(p)
        assert res.scalars["x"] == 3     # 3 + a[6] where a[6]=0

    def test_stmt_substitution_descends_control_flow(self):
        s = If(V("i").gt(0), [Store("a", V("i"), V("i"))],
               [Assign("x", V("i"))])
        out = _subst_stmt(s, "i", Const(5))
        assert isinstance(out, If)
        assert out.then_body[0].index == Const(5)

    def test_substitution_respects_shadowing(self):
        inner = For("i", 0, 3, 1, [Assign("x", V("i"))])
        out = _subst_stmt(inner, "i", Const(9))
        assert out is inner     # inner loop redefines i: untouched

    def test_assigned_vars(self):
        stmts = [Assign("a", Const(1)),
                 If(V("a").gt(0), [Assign("b", Const(1))], []),
                 For("k", 0, 2, 1, [Assign("c", V("k"))])]
        assert _assigned_vars(stmts) == {"a", "b", "c", "k"}


class TestLiveness:
    def test_straightline(self):
        block = CfgBlock("b", [Assign("x", Const(1)),
                               Assign("y", V("x") + V("z"))], Halt())
        uses, defs = block_uses_defs(block)
        assert uses == {"z"}             # x defined before use
        assert defs == {"x", "y"}

    def test_pred_region_one_sided_def_counts_as_use(self):
        region = PredRegion(V("c").gt(0), [Assign("x", Const(1))], [])
        uses, defs = stmt_uses_defs(region)
        assert "x" in uses and "x" in defs and "c" in uses

    def test_loop_carried_liveness(self):
        cfg = lower_to_cfg(prog([
            Assign("acc", Const(0)),
            For("i", 0, 4, 1, [Assign("acc", V("acc") + V("i"))])],
            scalars={}), "tcc")
        live = liveness(cfg, exit_live={"acc"})
        # acc is live around the back edge
        heads = [b for b in cfg.blocks if isinstance(b.term, CondJump)]
        assert any("acc" in live[b.label][0] for b in heads)

    def test_exit_live_reaches_halt_blocks(self):
        cfg = lower_to_cfg(prog([Assign("x", Const(1))]), "tcc")
        live = liveness(cfg, exit_live={"x", "ghost"})
        halt_blocks = [b for b in cfg.blocks if isinstance(b.term, Halt)]
        for b in halt_blocks:
            assert "ghost" in live[b.label][1]

"""Differential testing: random TIR programs across every execution model.

Hypothesis generates small structured programs (arithmetic, arrays, loops,
branches); the TIR interpreter's outputs are the oracle and the TRIPS
functional simulator (both compile levels) plus the SRISC baseline must
agree bit for bit.  A thinner sample also runs the cycle-level simulator.
"""

import pytest
from hypothesis import HealthCheck, example, given, settings, strategies as st

from repro.baseline.ooo import run_baseline
from repro.compiler import compile_tir
from repro.compiler.srisc import compile_srisc
from repro.tir import (
    Array,
    Assign,
    BinOp,
    Const,
    For,
    If,
    Load,
    Store,
    TirProgram,
    UnOp,
    V,
    interpret,
)
from repro.tir.semantics import truncate_load
from repro.uarch import FunctionalSim
from repro.uarch.proc import TripsProcessor

ARRAY_LEN = 8
VARS = ["v0", "v1", "v2"]
SAFE_BINOPS = ["add", "sub", "mul", "and", "or", "xor",
               "eq", "ne", "lt", "ge", "div", "rem", "shl", "sra"]


def exprs(depth):
    base = st.one_of(
        st.integers(-100, 100).map(Const),
        st.sampled_from(VARS).map(V),
        st.integers(0, ARRAY_LEN - 1).map(lambda i: Load("arr", Const(i))),
    )
    if depth <= 0:
        return base
    sub = exprs(depth - 1)
    return st.one_of(
        base,
        st.tuples(st.sampled_from(SAFE_BINOPS), sub, sub).map(
            lambda t: BinOp(t[0], _shift_safe(t[0], t[1]), _shift_guard(t[0], t[2]))),
        sub.map(lambda e: UnOp("not", e)),
    )


def _shift_safe(op, e):
    return e


def _shift_guard(op, e):
    # keep shift amounts bounded so semantics stay interesting
    if op in ("shl", "sra"):
        return BinOp("and", e, Const(7))
    return e


def stmts(depth):
    assign = st.tuples(st.sampled_from(VARS), exprs(2)).map(
        lambda t: Assign(t[0], t[1]))
    store = st.tuples(st.integers(0, ARRAY_LEN - 1), exprs(1)).map(
        lambda t: Store("arr", Const(t[0]), t[1]))
    if depth <= 0:
        return st.one_of(assign, store)
    inner = st.lists(stmts(depth - 1), min_size=1, max_size=3)
    loop = st.tuples(st.integers(1, 4), inner).map(
        lambda t: For("it%d" % depth, 0, t[0], 1, t[1]))
    branch = st.tuples(exprs(1), inner,
                       st.lists(stmts(depth - 1), max_size=2)).map(
        lambda t: If(BinOp("ge", t[0], Const(0)), t[1], t[2]))
    return st.one_of(assign, store, loop, branch)


programs = st.lists(stmts(2), min_size=1, max_size=5).map(
    lambda body: TirProgram(
        "rand",
        arrays={"arr": Array("i64", [((i * 13) % 7) - 3
                                     for i in range(ARRAY_LEN)])},
        scalars={name: i - 1 for i, name in enumerate(VARS)},
        body=body,
        outputs=["arr"] + VARS))


def _baseline_outputs(prog):
    sp = compile_srisc(prog)
    functional, _ = run_baseline(sp)
    parts = []
    for out in prog.outputs:
        if out in prog.arrays:
            arr = prog.arrays[out]
            base = sp.array_addrs[out]
            parts.append((out, tuple(
                truncate_load(functional.memory.read(base + i * 8, 8), 8,
                              True)
                for i in range(len(arr.data)))))
        else:
            parts.append((out, functional.regs[sp.var_regs[out]]))
    return tuple(parts)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(programs)
@example(
    # Discovered failure: hand-level if-conversion produced a write slot fed
    # both by a predicated mov and by an unpredicated fanout mov hanging off
    # the opposite-polarity predicated mov; TripsBlock.validate rejected the
    # (dynamically correct) block.  Fixed by the guardedness refinement in
    # isa/block.py plus the constant-condition phi fold in compiler/dag.py.
    prog=TirProgram(
        name='rand',
        arrays={'arr': Array(dtype='i64', data=[-3, 3, 2, 1, 0, -1, -2, -3])},
        scalars={'v0': -1, 'v1': 0, 'v2': 1},
        body=[If(cond=BinOp(op='ge', a=Const(bits=0), b=Const(bits=0)),
                 then_body=[Assign(var='v0', expr=Const(bits=0))],
                 else_body=[Assign(var='v2', expr=Const(bits=0))]),
              Assign(var='v1', expr=V('v2')),
              Assign(var='v0', expr=V('v1'))],
        outputs=['arr', 'v0', 'v1', 'v2']),
).via('discovered failure')
def test_all_functional_models_agree(prog):
    golden = interpret(prog).output_signature(prog.outputs)
    for level in ("tcc", "hand"):
        compiled = compile_tir(prog, level=level)
        sim = FunctionalSim(compiled.program)
        sim.run()
        got = compiled.extract_outputs(sim.regs, sim.memory)
        assert got == golden, f"level {level} diverged"
    assert _baseline_outputs(prog) == golden, "baseline diverged"


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(programs)
def test_cycle_simulator_agrees(prog):
    golden = interpret(prog).output_signature(prog.outputs)
    compiled = compile_tir(prog, level="hand")
    proc = TripsProcessor(compiled.program)
    proc.run()
    assert compiled.extract_outputs(proc.regs, proc.memory) == golden

"""Slow tier: the full co-validation matrix on the cycle-level simulator.

Every workload, both compilation levels, must produce bit-identical
architectural results on tsim-proc.  (The fast functional-simulator matrix
runs in test_workloads.py; this is the expensive half.)
"""

import pytest

from repro.compiler import compile_tir
from repro.tir import interpret
from repro.uarch.proc import TripsProcessor
from repro.workloads import get_workload, workload_names


@pytest.mark.slow
@pytest.mark.parametrize("name", workload_names())
@pytest.mark.parametrize("level", ["tcc", "hand"])
def test_tsim_proc_covalidation(name, level):
    prog = get_workload(name)
    golden = interpret(prog).output_signature(prog.outputs)
    compiled = compile_tir(prog, level=level)
    proc = TripsProcessor(compiled.program)
    stats = proc.run()
    assert compiled.extract_outputs(proc.regs, proc.memory) == golden
    assert stats.blocks_committed > 0

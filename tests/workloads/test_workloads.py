"""Workload-suite tests.

Every benchmark must (a) validate as TIR, (b) compile at every level, and
(c) produce bit-identical outputs on the functional TRIPS simulator and on
the baseline — the full co-validation matrix.  (tsim-proc co-validation for
the whole suite lives in the slow/benchmark tier; a sample runs here.)
"""

import pytest

from repro.baseline.ooo import run_baseline
from repro.compiler import compile_tir
from repro.compiler.srisc import compile_srisc
from repro.tir import interpret
from repro.tir.semantics import truncate_load
from repro.uarch import FunctionalSim
from repro.workloads import ALL_WORKLOADS, SUITES, get_workload, workload_names
from repro.workloads.registry import HAND_OPTIMIZED

NAMES = workload_names()


class TestRegistry:
    def test_suite_size(self):
        # the paper's 21 benchmarks plus the promoted fuzz-corpus synths
        assert len(NAMES) == 21 + len(SUITES["synth"])
        assert len(set(NAMES)) == len(NAMES)
        assert len(SUITES["synth"]) == 4

    def test_suites_cover_all(self):
        assert sorted(n for s in SUITES.values() for n in s) == sorted(NAMES)
        assert set(SUITES) == {"micro", "kernels", "eembc", "spec", "synth"}

    def test_spec_not_hand_optimized(self):
        assert set(SUITES["spec"]) & set(HAND_OPTIMIZED) == set()
        assert set(SUITES["synth"]) & set(HAND_OPTIMIZED) == set()

    def test_synth_provenance(self):
        from repro.workloads.synth import provenance
        for name in SUITES["synth"]:
            info = provenance(name)
            assert info["origin"].startswith("tests/fuzz/corpus/")
            assert info["reason"]

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("quake3")

    def test_factories_produce_fresh_programs(self):
        a = get_workload("vadd")
        b = get_workload("vadd")
        assert a is not b


def _golden(prog):
    return interpret(prog).output_signature(prog.outputs)


@pytest.mark.parametrize("name", NAMES)
class TestCoValidation:
    def test_trips_functional_tcc(self, name):
        prog = get_workload(name)
        compiled = compile_tir(prog, level="tcc")
        sim = FunctionalSim(compiled.program)
        sim.run()
        assert compiled.extract_outputs(sim.regs, sim.memory) == _golden(prog)

    def test_trips_functional_hand(self, name):
        prog = get_workload(name)
        compiled = compile_tir(prog, level="hand")
        sim = FunctionalSim(compiled.program)
        sim.run()
        assert compiled.extract_outputs(sim.regs, sim.memory) == _golden(prog)

    def test_baseline(self, name):
        prog = get_workload(name)
        sp = compile_srisc(prog)
        functional, stats = run_baseline(sp)
        parts = []
        for out in prog.outputs:
            if out in prog.arrays:
                arr = prog.arrays[out]
                base = sp.array_addrs[out]
                parts.append((out, tuple(
                    truncate_load(
                        functional.memory.read(base + i * arr.elem_size,
                                               arr.elem_size),
                        arr.elem_size, arr.signed)
                    for i in range(len(arr.data)))))
            else:
                parts.append((out, functional.regs[sp.var_regs[out]]))
        assert tuple(parts) == _golden(prog)
        assert stats.cycles > 0


class TestCharacter:
    """Each workload must exhibit the microarchitectural character the
    paper's analysis depends on."""

    def test_sha_is_serial(self):
        # sha's dependence chain yields the lowest TRIPS concurrency of
        # the microbenchmarks (the paper's "almost entirely serial" case)
        from repro.compiler import compile_tir
        from repro.uarch.proc import TripsProcessor

        def trips_ipc(name):
            compiled = compile_tir(get_workload(name), level="hand")
            proc = TripsProcessor(compiled.program)
            return proc.run().ipc

        assert trips_ipc("sha") < trips_ipc("vadd")

    def test_vadd_is_memory_heavy(self):
        prog = get_workload("vadd")
        res = interpret(prog)
        mem_ops = res.op_counts.get("load", 0) + res.op_counts.get("store", 0)
        alu_ops = res.op_counts.get("fadd", 0)
        assert mem_ops >= 3 * alu_ops

    def test_mcf_chases_pointers(self):
        # every successor load depends on the previous load's value
        prog = get_workload("mcf")
        res = interpret(prog)
        assert res.op_counts["load"] >= 2 * 3 * 64 - 64

    def test_twolf_is_branchy(self):
        sp = compile_srisc(get_workload("twolf"))
        _, stats = run_baseline(sp)
        assert stats.branches / stats.instructions > 0.05

    def test_cfar_finds_the_planted_targets(self):
        prog = get_workload("cfar")
        res = interpret(prog)
        from repro.tir import bits_to_int
        detections = bits_to_int(res.scalars["detections"])
        assert detections == 3

    def test_sha_digest_nontrivial(self):
        res = interpret(get_workload("sha"))
        assert len(set(res.arrays["digest"])) == 5

    def test_pm_finds_the_planted_shift(self):
        res = interpret(get_workload("pm"))
        from repro.tir import bits_to_int
        assert bits_to_int(res.scalars["bestpos"]) == 7
        assert bits_to_int(res.scalars["bestsad"]) == 0

"""Disassembler integration: compiled programs survive the text round trip.

This is the paper's hand-optimization loop (Section 5.4): compiler output
is rendered as assembly, (potentially edited,) and re-assembled — so the
round trip must preserve architectural behaviour exactly.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.asm import assemble, disassemble
from repro.compiler import compile_tir
from repro.isa import Instruction, TripsBlock
from repro.tir import interpret
from repro.uarch import FunctionalSim
from repro.workloads import get_workload


@pytest.mark.parametrize("name", ["vadd", "qr", "rspeed01", "mcf"])
@pytest.mark.parametrize("level", ["tcc", "hand"])
def test_compiled_program_roundtrips_through_text(name, level):
    prog = get_workload(name)
    compiled = compile_tir(prog, level=level)
    text = disassemble(compiled.program)
    again = assemble(text)

    # same block census and instruction census
    assert len(again.blocks) == len(compiled.program.blocks)
    insts = lambda p: sorted(
        str(i) for b in p.blocks.values() for i in b.body.values()
        if not i.opcode.is_branch)          # branch offsets shift with layout
    assert insts(again) == insts(compiled.program)

    # and identical architectural behaviour (addresses may differ, so we
    # compare register outputs only on a register-producing workload)
    golden = interpret(prog).output_signature(prog.outputs)
    sim = FunctionalSim(compiled.program)
    sim.run()
    assert compiled.extract_outputs(sim.regs, sim.memory) == golden
    # the re-assembled program must at least run to completion
    sim2 = FunctionalSim(again)
    sim2.run()
    assert sim2.stats.blocks == sim.stats.blocks


class TestBlockCodecProperty:
    """Random valid blocks survive the 128-byte-chunk binary round trip."""

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 126), st.integers(-500, 500)),
                    min_size=1, max_size=40, unique_by=lambda t: t[0]))
    def test_binary_roundtrip(self, slots):
        from repro.isa import make
        blk = TripsBlock(name="rnd")
        for slot, imm in slots:
            blk.body[slot] = make("movi", const=imm % 1000)
        blk.body[127] = make("bro", offset=128)
        image = blk.encode()
        again = TripsBlock.decode(image)
        assert {s: str(i) for s, i in again.body.items()} == \
            {s: str(i) for s, i in blk.body.items()}

"""Tests for the assembler / disassembler round trip."""

import pytest

from repro.asm import AsmError, assemble, disassemble
from repro.isa import Opcode, OperandKind

FIG5A = """
.entry fig5a
.block fig5a
    R[0]  read R4 N[1,L] N[2,L]
    N[0]  movi #0 N[1,R]
    N[1]  teq N[2,P] N[3,P]
    N[2]  muli_f #4 N[32,L]
    N[3]  null_t N[34,L] N[34,R]
    N[32] lw L[0] #8 N[33,L]
    N[33] mov N[34,L] N[34,R]
    N[34] sw L[1] #0
    N[35] callo exit0 @func1
.block func1
    N[0]  bro exit0 @exit
"""


class TestAssemble:
    def test_fig5a_assembles(self):
        prog = assemble(FIG5A)
        assert prog.entry == prog.labels["fig5a"]
        blk = prog.blocks[prog.entry]
        assert blk.body[1].opcode is Opcode.TEQ
        assert blk.body[2].pred is False
        assert blk.body[3].pred is True
        assert blk.reads[0].reg == 4
        assert blk.store_mask == 0b10

    def test_callo_offset_resolved(self):
        prog = assemble(FIG5A)
        blk = prog.blocks[prog.entry]
        callo = blk.body[35]
        assert prog.entry + callo.offset == prog.labels["func1"]

    def test_branch_to_exit(self):
        prog = assemble(FIG5A)
        func1 = prog.blocks[prog.labels["func1"]]
        assert prog.labels["func1"] + func1.body[0].offset == 0

    def test_data_and_reg_directives(self):
        prog = assemble(""".entry main
.data tab 1, 2, 3, 255
.word big 70000, -1
.reg R0 = &tab
.reg R4 = 42
.block main
    N[0] bro exit0 @exit
""")
        addr = prog.initial_regs[0]
        assert prog.data[addr] == bytes([1, 2, 3, 255])
        assert prog.initial_regs[4] == 42
        big_addr = prog.initial_regs.get(1, None)
        words = [a for a in prog.data if a != addr]
        assert prog.data[words[0]][:8] == (70000).to_bytes(8, "little")

    def test_space_directive(self):
        prog = assemble(""".block main
    N[0] halt exit0
.space buf 64
""")
        assert any(len(v) == 64 and v == bytes(64) for v in prog.data.values())

    def test_comments_ignored(self):
        prog = assemble("""; a comment
.block main ; another
    N[0] bro exit0 @exit ; inline
""")
        assert len(prog.blocks) == 1

    def test_error_has_line_number(self):
        with pytest.raises(AsmError, match="line 3"):
            assemble(".block main\n    N[0] bro exit0 @exit\n    N[1] bogus\n")

    def test_instruction_outside_block(self):
        with pytest.raises(AsmError, match="outside"):
            assemble("N[0] movi #1\n")

    def test_duplicate_slot(self):
        with pytest.raises(AsmError, match="duplicate body slot"):
            assemble(".block m\n N[0] movi #1\n N[0] movi #2\n")

    def test_undefined_branch_label(self):
        with pytest.raises(Exception, match="undefined"):
            assemble(".block m\n N[0] bro exit0 @nowhere\n")

    def test_bad_target_kind(self):
        with pytest.raises(AsmError, match="bad target"):
            assemble(".block m\n N[0] movi #1 N[2,X]\n N[2] teq\n N[1] halt exit0\n")

    def test_lsid_required_for_memory(self):
        with pytest.raises(AsmError, match="L\\[lsid\\]"):
            assemble(".block m\n N[0] lw #8 N[1,L]\n")


class TestRoundTrip:
    def test_fig5a_roundtrip(self):
        prog1 = assemble(FIG5A)
        text = disassemble(prog1)
        prog2 = assemble(text)
        assert len(prog2.blocks) == len(prog1.blocks)
        b1 = prog1.blocks[prog1.entry]
        b2 = prog2.blocks[prog2.entry]
        assert sorted(map(str, b1.body.values())) == sorted(map(str, b2.body.values()))
        assert {r.reg for r in b1.reads.values()} == {r.reg for r in b2.reads.values()}

    def test_roundtrip_preserves_data_and_regs(self):
        src = """.entry main
.data t 9, 8
.reg R0 = &t
.reg R8 = 7
.block main
    N[0] halt exit0
"""
        prog1 = assemble(src)
        prog2 = assemble(disassemble(prog1))
        a1 = prog1.initial_regs[0]
        a2 = prog2.initial_regs[0]
        assert prog1.data[a1] == prog2.data[a2]
        assert prog2.initial_regs[8] == 7

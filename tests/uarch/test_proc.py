"""Tests for tsim-proc, the cycle-level tiled processor model.

Two layers: (1) architectural co-validation — every program must produce
bit-identical results to the TIR interpreter / functional simulator; and
(2) protocol behaviour — fetch pipelining, speculation and flush recovery,
memory-ordering violations and the dependence predictor, commit ordering.
"""

import pytest

from repro.asm import assemble
from repro.compiler import compile_tir
from repro.tir import (
    Array,
    Assign,
    BinOp,
    Const,
    F,
    For,
    If,
    Load,
    Store,
    TirProgram,
    V,
    While,
    interpret,
)
from repro.uarch.config import TripsConfig
from repro.uarch.proc import TripsProcessor


def run_proc(program, config=None, trace=False):
    proc = TripsProcessor(program, config=config or TripsConfig(),
                          trace=trace)
    proc.run()
    return proc


def co_validate(tir_prog, levels=("tcc", "hand"), config=None):
    golden = interpret(tir_prog).output_signature(tir_prog.outputs)
    procs = {}
    for level in levels:
        compiled = compile_tir(tir_prog, level=level)
        proc = run_proc(compiled.program, config=config)
        got = compiled.extract_outputs(proc.regs, proc.memory)
        assert got == golden, f"{tir_prog.name}@{level}: {got} != {golden}"
        procs[level] = proc
    return procs


# ----------------------------------------------------------------------
PROGRAMS = [
    TirProgram("sum", scalars={"acc": 0},
               body=[For("i", 0, 12, 1, [Assign("acc", V("acc") + V("i"))])],
               outputs=["acc"]),
    TirProgram("copy3",
               arrays={"a": Array("i64", [7, 8, 9]),
                       "b": Array("i64", [0, 0, 0])},
               body=[For("i", 0, 3, 1,
                         [Store("b", V("i"), Load("a", V("i")))])],
               outputs=["b"]),
    TirProgram("branchy",
               arrays={"a": Array("i64", [5, -2, 7, -4, 0, 3, -9, 8]),
                       "out": Array("i64", [0] * 8)},
               scalars={"pos": 0, "neg": 0},
               body=[For("i", 0, 8, 1, [
                   Assign("v", Load("a", V("i"))),
                   If(V("v").lt(0),
                      [Assign("neg", V("neg") + 1),
                       Store("out", V("i"), 0 - V("v"))],
                      [Assign("pos", V("pos") + V("v"))])])],
               outputs=["pos", "neg", "out"]),
    TirProgram("fp", scalars={},
               arrays={"s": Array("f64", [0.0])},
               body=[Assign("acc", F(0.0)),
                     For("i", 0, 6, 1, [
                         Assign("acc", BinOp("fadd", V("acc"),
                                             BinOp("fmul", F(0.5), F(3.0))))]),
                     Store("s", Const(0), V("acc"))],
               outputs=["s"]),
    TirProgram("whileloop", scalars={"n": 19, "steps": 0},
               body=[While(V("n").ne(1), [
                   If((V("n") & 1).eq(0),
                      [Assign("n", BinOp("div", V("n"), Const(2)))],
                      [Assign("n", V("n") * 3 + 1)]),
                   Assign("steps", V("steps") + 1)])],
               outputs=["steps"]),
    TirProgram("bytes",
               arrays={"raw": Array("u8", list(range(16))),
                       "out": Array("i16", [0] * 8)},
               body=[For("i", 0, 8, 1, [
                   Store("out", V("i"),
                         Load("raw", V("i") * 2) +
                         (Load("raw", V("i") * 2 + 1) << 8))])],
               outputs=["out"]),
]


@pytest.mark.parametrize("prog", PROGRAMS, ids=lambda p: p.name)
class TestCoValidation:
    def test_architectural_equivalence(self, prog):
        co_validate(prog)


class TestPerformanceShape:
    def test_hand_beats_tcc(self):
        prog = TirProgram("t", scalars={"acc": 0},
                          body=[For("i", 0, 24, 1, [
                              Assign("acc", V("acc") + V("i") * 3)])],
                          outputs=["acc"])
        procs = co_validate(prog)
        assert procs["hand"].stats.cycles < procs["tcc"].stats.cycles
        assert procs["hand"].stats.ipc > procs["tcc"].stats.ipc

    def test_speculation_depth_helps(self):
        prog = TirProgram("t", scalars={"acc": 0},
                          body=[For("i", 0, 20, 1, [
                              Assign("acc", V("acc") + V("i"))])],
                          outputs=["acc"])
        compiled = compile_tir(prog, level="hand")
        deep = run_proc(compiled.program)
        shallow = run_proc(compiled.program,
                           config=TripsConfig(speculative_blocks=0))
        assert deep.stats.cycles < shallow.stats.cycles
        # no speculation -> no mispredict flushes
        assert shallow.stats.flushes_mispredict == 0

    def test_window_is_1024_instructions(self):
        assert TripsConfig().window_size == 1024


class TestFetchProtocol:
    def test_dispatch_pipelined_every_8_cycles(self):
        prog = TirProgram("t", scalars={"acc": 0},
                          body=[For("i", 0, 10, 1, [
                              Assign("acc", V("acc") + 1)])],
                          outputs=["acc"])
        compiled = compile_tir(prog, level="hand")
        proc = run_proc(compiled.program, trace=True)
        blocks = proc.trace.committed_blocks()
        starts = []
        for b in blocks:
            inst_block = None
            starts.append(b.fetch_t)
        fetched = sorted(ev.fetch_t for ev in proc.trace.blocks.values())
        gaps = [b - a for a, b in zip(fetched, fetched[1:])]
        # dispatch occupancy bounds back-to-back fetches to >= 8 cycles
        # except refetches after a flush may start in the same cycle region
        assert all(g >= 0 for g in gaps)
        assert proc.stats.blocks_fetched >= proc.stats.blocks_committed

    def test_cold_icache_misses_counted(self):
        prog = assemble(""".block main
    W[0] write R4
    N[0] movi #1 W[0]
    N[1] halt exit0
""")
        proc = run_proc(prog)
        assert proc.stats.icache_miss_blocks == 1

    def test_warm_icache_hits(self):
        # a loop re-fetches the same block: only the first is a miss
        prog = assemble(""".reg R4 = 5
.block loop
    R[0]  read R4 N[2,L]
    W[0]  write R4
    N[2]  subi #1 N[0,L]
    N[0]  mov W[0] N[4,L]
    N[4]  tgti #0 N[7,L]
    N[7]  mov N[5,P] N[6,P]
    N[5]  bro_t exit0 @loop
    N[6]  bro_f exit1 @exit
""")
        proc = run_proc(prog)
        assert proc.stats.icache_miss_blocks == 1
        assert proc.stats.blocks_committed == 5


class TestFlushRecovery:
    def test_mispredict_flush_and_recover(self):
        # data-dependent exit alternation defeats the exit predictor at
        # least once; results must still be exact
        prog = TirProgram("t",
                          arrays={"a": Array("i64", [1, 0, 1, 0, 1, 0])},
                          scalars={"x": 0},
                          body=[For("i", 0, 6, 1, [
                              If(Load("a", V("i")).ne(0),
                                 [Assign("x", V("x") * 3 + 1)],
                                 [Assign("x", V("x") + 10)])])],
                          outputs=["x"])
        procs = co_validate(prog, levels=("tcc",))
        assert procs["tcc"].stats.flushes_mispredict > 0

    def test_flushed_blocks_not_committed(self):
        prog = TirProgram("t", scalars={"acc": 0},
                          body=[For("i", 0, 8, 1, [
                              Assign("acc", V("acc") + V("i"))])],
                          outputs=["acc"])
        compiled = compile_tir(prog, level="hand")
        proc = run_proc(compiled.program, trace=True)
        outcomes = [b.outcome for b in proc.trace.blocks.values()]
        assert outcomes.count("committed") == proc.stats.blocks_committed
        assert outcomes.count("flushed") == proc.stats.blocks_flushed


VIOLATION_ASM = """.reg R8 = 0x3000
.reg R4 = {count}
.block producer
    R[0]  read R8 N[1,L]
    N[0]  movi #2376 N[10,L]
    N[9]  movi #24 N[10,R]
    N[10] divs N[1,R]
    N[1]  sd L[0] #0
    N[4]  bro exit0 @consumer
.block consumer
    R[0]  read R8 N[0,L]
    R[1]  read R4 N[2,L]
    W[0]  write R4
    W[8]  write R9
    N[0]  ld L[0] #0 W[8]
    N[2]  subi #1 N[3,L]
    N[3]  mov W[0] N[4,L]
    N[4]  tgti #0 N[7,L]
    N[7]  mov N[5,P] N[6,P]
    N[5]  bro_t exit0 @producer
    N[6]  bro_f exit1 @exit
"""


def violation_program(count=1):
    """Producer stores 2376/24 = 99 (data behind a 24-cycle divide); the
    consumer block, fetched speculatively on the fall-through prediction,
    loads the same address early -> a memory-ordering violation."""
    return assemble(VIOLATION_ASM.format(count=count))


class TestMemoryOrdering:
    def test_violation_flush_recovers_correct_value(self):
        prog = violation_program(count=1)
        proc = run_proc(prog)
        # 2376 / 24 = 99 must be loaded despite the early speculative load
        assert proc.regs[9] == 99
        assert proc.stats.flushes_violation >= 1

    def test_dependence_predictor_learns(self):
        # two trips through the producer/consumer pair: the first trip
        # violates, trains the predictor, and the second defers instead
        prog = violation_program(count=2)
        proc = run_proc(prog)
        assert proc.regs[9] == 99
        assert proc.stats.flushes_violation == 1
        assert sum(dt.deferred_count for dt in proc.dts) >= 1

    def test_predictor_disabled_violates_every_time(self):
        prog = violation_program(count=3)
        proc = run_proc(prog, config=TripsConfig(dep_predictor_enabled=False))
        assert proc.regs[9] == 99
        assert proc.stats.flushes_violation >= 2

    def test_store_forwarding_across_blocks(self):
        # block A stores, block B loads the same address before A commits:
        # the LSQ must forward A's uncommitted value
        prog = assemble(""".reg R8 = 0x3000
.block a
    R[0]  read R8 N[0,L]
    N[1]  movi #321 N[0,R]
    N[0]  sd L[0] #0
    N[2]  bro exit0 @b
.block b
    R[0]  read R8 N[0,L]
    W[8]  write R9
    N[0]  ld L[0] #0 W[8]
    N[1]  halt exit0
""")
        proc = run_proc(prog)
        assert proc.regs[9] == 321


class TestCommitProtocol:
    def test_blocks_commit_in_order(self):
        prog = TirProgram("t", scalars={"acc": 0},
                          body=[For("i", 0, 10, 1, [
                              Assign("acc", V("acc") + 1)])],
                          outputs=["acc"])
        compiled = compile_tir(prog, level="hand")
        proc = run_proc(compiled.program, trace=True)
        committed = proc.trace.committed_blocks()
        commit_ts = [b.commit_t for b in committed]
        assert commit_ts == sorted(commit_ts)
        for b in committed:
            assert b.completed_t <= b.commit_t <= b.ack_t

    def test_register_forwarding_between_blocks(self):
        prog = assemble(""".block a
    W[0] write R4
    N[0] movi #7 N[1,L]
    N[1] muli #6 W[0]
    N[2] bro exit0 @b
.block b
    R[0] read R4 N[0,L]
    W[8] write R5
    N[0] addi #1 W[8]
    N[1] halt exit0
""")
        proc = run_proc(prog)
        assert proc.regs[4] == 42
        assert proc.regs[5] == 43
        # the read was satisfied by write-queue forwarding, not the file
        assert any(rt.forwards > 0 for rt in proc.rts)

    NULLWRITE_ASM = """.reg R4 = 5
.reg R6 = {r6}
.block a
    R[16] read R6 N[0,L]
    W[0] write R4
    N[0] teqi #1 N[4,L]
    N[4] mov N[1,P] N[2,P]
    N[6] movi #77 N[1,L]
    N[1] mov_t W[0]
    N[2] null_f W[0]
    N[5] bro exit0 @b
.block b
    R[0] read R4 N[0,L]
    W[8] write R9
    N[0] addi #100 W[8]
    N[1] halt exit0
"""

    def test_predicated_write_value_forwards(self):
        # R6 == 1 -> predicate true -> mov_t writes 77 -> R9 = 177
        proc = run_proc(assemble(self.NULLWRITE_ASM.format(r6=1)))
        assert proc.regs[9] == 177
        assert proc.regs[4] == 77

    def test_nullified_write_forwards_older_value(self):
        # R6 == 0 -> null write: the next block's read must skip the
        # nullified write-queue entry and see the old R4 (5) -> R9 = 105
        proc = run_proc(assemble(self.NULLWRITE_ASM.format(r6=0)))
        assert proc.regs[9] == 105
        assert proc.regs[4] == 5

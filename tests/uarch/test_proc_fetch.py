"""Fetch-protocol corner cases: I-cache capacity, refill, calls/returns."""

import pytest

from repro.asm import assemble
from repro.isa import ProgramBuilder, Target, OperandKind, TripsBlock, make
from repro.uarch.config import TripsConfig
from repro.uarch.proc import TripsProcessor


def chain_program(n_blocks: int, loops: int = 2):
    """A chain of ``n_blocks`` trivial blocks walked ``loops`` times."""
    builder = ProgramBuilder(base=0x1000)
    for i in range(n_blocks):
        blk = TripsBlock(name=f"b{i}")
        inst = make("bro")
        inst.label = f"c{i + 1}" if i + 1 < n_blocks else "tail"
        blk.body[0] = inst
        builder.append(blk, label=f"c{i}")
    tail = TripsBlock(name="tail")
    # countdown in R4: loop back to c0 while positive
    from repro.isa import ReadInstruction
    tail.reads[0] = ReadInstruction(4, [Target(0, OperandKind.LEFT)])
    tail.writes[0] = __import__("repro.isa", fromlist=["WriteInstruction"]) \
        .WriteInstruction(4)
    tail.body[0] = make("subi", imm=1,
                        targets=[Target(1, OperandKind.LEFT)])
    tail.body[1] = make("mov", targets=[Target(0, OperandKind.WRITE),
                                        Target(2, OperandKind.LEFT)])
    tail.body[2] = make("tgei", imm=0,
                        targets=[Target(3, OperandKind.LEFT)])
    tail.body[3] = make("mov", targets=[Target(4, OperandKind.PRED),
                                        Target(5, OperandKind.PRED)])
    back = make("bro", pred=True)
    back.label = "c0"
    tail.body[4] = back
    out = make("bro", pred=False, exit_no=1)
    out.label = "@exit"
    tail.body[5] = out
    builder.append(tail, label="tail")
    program = builder.finish()
    program.initial_regs[4] = loops - 1
    return program


class TestICache:
    def test_small_chain_hits_on_second_pass(self):
        program = chain_program(20, loops=2)
        proc = TripsProcessor(program)
        proc.run()
        # 21 cold misses; the second pass hits
        assert proc.stats.icache_miss_blocks == 21
        assert proc.stats.blocks_committed == 2 * 21

    def test_capacity_evictions_on_long_chain(self):
        # each IT bank holds 128 chunks; a 140-block chain walked twice
        # must evict and re-miss
        program = chain_program(140, loops=2)
        proc = TripsProcessor(program, config=TripsConfig(
            max_cycles=2_000_000))
        proc.run()
        assert proc.stats.blocks_committed == 2 * 141
        assert proc.stats.icache_miss_blocks > 141

    def test_refill_latency_observable(self):
        program = chain_program(4, loops=1)
        slow = TripsProcessor(program,
                              config=TripsConfig(l2_hit_cycles=200))
        slow.run()
        fast = TripsProcessor(program,
                              config=TripsConfig(l2_hit_cycles=4))
        fast.run()
        assert slow.stats.cycles > fast.stats.cycles + 100


class TestCallReturn:
    PROGRAM = """.reg R4 = 3
.block main
    W[8]  write R9
    N[0]  callo exit0 @callee W[8]
.block after
    R[0]  read R4 N[2,L]
    W[0]  write R4
    N[2]  subi #1 N[3,L]
    N[3]  mov W[0] N[4,L]
    N[4]  tgti #0 N[7,L]
    N[7]  mov N[5,P] N[6,P]
    N[5]  bro_t exit0 @main
    N[6]  bro_f exit1 @exit
.block callee
    R[8]  read R9 N[0,L]
    N[0]  ret exit0
"""

    def test_call_return_loop(self):
        # main calls callee; callee returns through the link register to
        # main's fall-through ("after"), which loops — the RAS and branch
        # type predictor see real call/return traffic
        proc = TripsProcessor(assemble(self.PROGRAM))
        proc.run()
        # 3 x (main + callee + after) = 9 committed blocks
        assert proc.stats.blocks_committed == 9
        assert proc.halted

    def test_ras_reduces_flushes_eventually(self):
        proc = TripsProcessor(assemble(self.PROGRAM.replace("= 3", "= 8")))
        proc.run()
        assert proc.stats.blocks_committed == 24
        # the tournament + RAS must do better than one flush per block
        assert proc.stats.flushes_mispredict < proc.stats.blocks_committed

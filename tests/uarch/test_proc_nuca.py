"""tsim-proc with the detailed NUCA secondary memory (perfect_l2=False)."""

import pytest

from repro.compiler import compile_tir
from repro.tir import interpret
from repro.uarch.config import TripsConfig
from repro.uarch.proc import TripsProcessor
from repro.workloads import get_workload


@pytest.mark.parametrize("name", ["vadd", "qr"])
def test_nuca_path_is_correct_and_slower(name):
    prog = get_workload(name)
    golden = interpret(prog).output_signature(prog.outputs)
    compiled = compile_tir(prog, level="hand")

    perfect = TripsProcessor(compiled.program,
                             config=TripsConfig(perfect_l2=True))
    perfect.run()
    assert compiled.extract_outputs(perfect.regs, perfect.memory) == golden

    nuca = TripsProcessor(compiled.program,
                          config=TripsConfig(perfect_l2=False))
    nuca.run()
    assert compiled.extract_outputs(nuca.regs, nuca.memory) == golden

    # cold NUCA misses go to DRAM through the OCN, costing cycles
    assert nuca.sysmem is not None and perfect.sysmem is None
    assert nuca.sysmem.stats["requests"] > 0
    assert nuca.sysmem.stats["dram_accesses"] > 0
    assert nuca.stats.cycles >= perfect.stats.cycles


def test_nuca_second_pass_hits_in_l2():
    # running the same data twice: the second pass finds lines in the NUCA
    # banks instead of DRAM
    from repro.tir import Array, Assign, For, Load, TirProgram, V
    n = 1024     # 8KB: overflows the shrunken 1KB L1 banks, fits the L2
    prog = TirProgram("twice",
                      arrays={"a": Array("i64", [i % 97 for i in range(n)])},
                      scalars={"acc": 0},
                      body=[For("r", 0, 2, 1, [
                          For("i", 0, n, 1, [
                              Assign("acc", V("acc") + Load("a", V("i")))],
                              unroll=8)])],
                      outputs=["acc"])
    golden = interpret(prog).output_signature(prog.outputs)
    compiled = compile_tir(prog, level="hand")
    # tiny L1 so the second pass misses L1 but hits the NUCA L2
    proc = TripsProcessor(compiled.program,
                          config=TripsConfig(perfect_l2=False,
                                             l1d_bank_kb=1))
    proc.run()
    assert compiled.extract_outputs(proc.regs, proc.memory) == golden
    total = proc.sysmem.stats["requests"]
    dram = proc.sysmem.stats["dram_accesses"]
    assert total > dram            # some requests were NUCA hits

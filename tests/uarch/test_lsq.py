"""Unit and property tests for the LSQ and the dependence predictor."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.uarch.lsq import DependencePredictor, LoadStoreQueue


class TestLsqBasics:
    def test_forward_exact_match(self):
        lsq = LoadStoreQueue()
        lsq.insert_store((0, 0), 0x100, 8, 0xAABBCCDD)
        got = lsq.forward((0, 1), 0x100, 8, b"\x00" * 8)
        assert got == 0xAABBCCDD

    def test_forward_respects_program_order(self):
        lsq = LoadStoreQueue()
        lsq.insert_store((0, 0), 0x100, 8, 1)
        lsq.insert_store((0, 2), 0x100, 8, 2)    # younger store
        # a load between them sees only the first
        assert lsq.forward((0, 1), 0x100, 8, b"\x00" * 8) == 1
        # a load after both sees the second
        assert lsq.forward((1, 0), 0x100, 8, b"\x00" * 8) == 2

    def test_partial_overlap_merges_bytes(self):
        lsq = LoadStoreQueue()
        lsq.insert_store((0, 0), 0x102, 2, 0xBEEF)
        raw = (0x1111111111111111).to_bytes(8, "little")
        got = lsq.forward((0, 1), 0x100, 8, raw)
        assert got == 0x11111111BEEF1111

    def test_nullified_store_is_transparent(self):
        lsq = LoadStoreQueue()
        lsq.insert_store((0, 0), None, 8, 0, nullified=True)
        assert lsq.forward((0, 1), 0x100, 8, b"\x07" + b"\x00" * 7) == 7

    def test_violation_detects_younger_executed_load(self):
        lsq = LoadStoreQueue()
        lsq.insert_load((1, 3), 0x100, 8)        # younger load ran early
        violators = lsq.insert_store((0, 5), 0x104, 4, 0xFF)
        assert violators == [(1, 3)]

    def test_no_violation_for_older_or_disjoint_loads(self):
        lsq = LoadStoreQueue()
        lsq.insert_load((0, 1), 0x100, 8)        # older than the store
        lsq.insert_load((2, 0), 0x200, 8)        # disjoint address
        assert lsq.insert_store((1, 0), 0x100, 8, 1) == []

    def test_commit_drains_in_lsid_order(self):
        lsq = LoadStoreQueue()
        lsq.insert_store((0, 5), 0x108, 8, 2)
        lsq.insert_store((0, 1), 0x100, 8, 1)
        lsq.insert_load((0, 3), 0x100, 8)
        entries = lsq.commit_block(0)
        assert [e.key for e in entries] == [(0, 1), (0, 5)]
        assert lsq.occupancy() == 0

    def test_flush_removes_only_named_blocks(self):
        lsq = LoadStoreQueue()
        lsq.insert_store((0, 0), 0x100, 8, 1)
        lsq.insert_store((1, 0), 0x108, 8, 2)
        lsq.flush_blocks({1})
        assert (0, 0) in lsq.entries and (1, 0) not in lsq.entries

    def test_duplicate_key_rejected(self):
        lsq = LoadStoreQueue()
        lsq.insert_store((0, 0), 0x100, 8, 1)
        with pytest.raises(ValueError):
            lsq.insert_store((0, 0), 0x100, 8, 1)


class TestForwardingProperty:
    """Byte-granular forwarding equals a naive byte-replay reference."""

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(
        st.integers(0, 3),                       # block seq
        st.integers(0, 31),                      # lsid
        st.integers(0x100, 0x11F),               # address
        st.sampled_from([1, 2, 4, 8]),           # size
        st.integers(0, 2**64 - 1)),              # data
        min_size=1, max_size=12,
        unique_by=lambda t: (t[0], t[1])),
        st.tuples(st.integers(0, 4), st.integers(0, 31),
                  st.integers(0x100, 0x118), st.sampled_from([1, 2, 4, 8])))
    def test_matches_byte_replay(self, stores, load):
        lsq = LoadStoreQueue()
        for seq, lsid, addr, size, data in stores:
            lsq.insert_store((seq, lsid), addr, size, data)
        lseq, llsid, laddr, lsize = load
        base = bytes((i * 37) % 256 for i in range(lsize))
        got = lsq.forward((lseq, llsid), laddr, lsize, base)

        # reference: replay older stores byte by byte in program order
        mem = {laddr + i: base[i] for i in range(lsize)}
        for seq, lsid, addr, size, data in sorted(stores):
            if (seq, lsid) >= (lseq, llsid):
                continue
            payload = (data & ((1 << (8 * size)) - 1)).to_bytes(size,
                                                                "little")
            for i in range(size):
                if addr + i in mem:
                    mem[addr + i] = payload[i]
        expect = int.from_bytes(
            bytes(mem[laddr + i] for i in range(lsize)), "little")
        assert got == expect


class TestDependencePredictor:
    def test_learns_and_clears(self):
        pred = DependencePredictor(bits=64, clear_interval=3)
        assert not pred.predict_dependent(0x100)
        pred.record_violation(0x100)
        assert pred.predict_dependent(0x100)
        # aliasing: addresses sharing the hash bit also defer
        assert pred.predict_dependent(0x100 + 64 * 8)
        for _ in range(3):
            pred.on_block_commit()
        assert not pred.predict_dependent(0x100)
        assert pred.clears == 1

    def test_disabled_never_predicts(self):
        pred = DependencePredictor(enabled=False)
        pred.record_violation(0x100)
        assert not pred.predict_dependent(0x100)

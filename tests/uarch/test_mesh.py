"""Tests for the wormhole mesh (OPN/OCN substrate)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.uarch.mesh import Packet, WormholeMesh


def drain(mesh, nodes, cycles):
    got = []
    for _ in range(cycles):
        mesh.step()
        for node in nodes:
            got.extend(mesh.take_delivered(node))
    return got


class TestLatency:
    def test_one_hop_one_cycle(self):
        mesh = WormholeMesh(5, 5)
        pkt = Packet(src=(0, 0), dest=(0, 1), payload="x")
        assert mesh.inject((0, 0), pkt)
        mesh.step()
        out = mesh.take_delivered((0, 1))
        assert out == [pkt]
        assert pkt.delivered - pkt.injected == 1
        assert pkt.hops == 1
        assert pkt.queue_cycles == 0

    @pytest.mark.parametrize("dest,hops", [((0, 4), 4), ((4, 0), 4),
                                           ((4, 4), 8), ((2, 3), 5)])
    def test_uncontended_latency_equals_manhattan(self, dest, hops):
        mesh = WormholeMesh(5, 5)
        pkt = Packet(src=(0, 0), dest=dest)
        mesh.inject((0, 0), pkt)
        got = drain(mesh, [dest], hops + 2)
        assert got == [pkt]
        assert pkt.delivered - pkt.injected == hops
        assert pkt.queue_cycles == 0

    def test_row_first_routing(self):
        mesh = WormholeMesh(5, 5, route_order="row_first")
        # row-first means a (0,0)->(2,2) packet passes through (2,0) area;
        # verified indirectly: a packet from (0,0) to (2,2) and another from
        # (4,0) to (2,2) contend only on the final column links.
        a = Packet(src=(0, 0), dest=(2, 2))
        b = Packet(src=(0, 2), dest=(2, 2))
        mesh.inject((0, 0), a)
        mesh.inject((0, 2), b)
        got = drain(mesh, [(2, 2)], 8)
        assert {id(p) for p in got} == {id(a), id(b)}


class TestContention:
    def test_link_contention_serializes(self):
        mesh = WormholeMesh(5, 5)
        # two packets from the same node to the same neighbour: one link,
        # one operand per cycle -> second is delayed one cycle.
        a = Packet(src=(1, 1), dest=(1, 2))
        b = Packet(src=(1, 1), dest=(1, 2))
        mesh.inject((1, 1), a)
        mesh.inject((1, 1), b)
        got = drain(mesh, [(1, 2)], 4)
        assert len(got) == 2
        times = sorted(p.delivered for p in got)
        assert times[1] == times[0] + 1
        assert sum(p.queue_cycles for p in got) == 1

    def test_two_lanes_remove_contention(self):
        # a and b arrive at (1,1) from different ports and both want the
        # east link; with two lanes they cross it in the same cycle.
        def race(lanes):
            mesh = WormholeMesh(5, 5, lanes=lanes)
            a = Packet(src=(1, 0), dest=(1, 2))
            b = Packet(src=(0, 1), dest=(1, 2))
            mesh.inject((1, 0), a)
            mesh.inject((0, 1), b)
            got = drain(mesh, [(1, 2)], 8)
            assert len(got) == 2
            return sorted(p.delivered for p in got)

        single = race(lanes=1)
        double = race(lanes=2)
        assert single[1] == single[0] + 1
        assert double[1] == double[0]

    def test_multiflit_serialization(self):
        mesh = WormholeMesh(4, 10)
        a = Packet(src=(0, 0), dest=(0, 3), flits=5)
        b = Packet(src=(0, 0), dest=(0, 3), flits=5)
        mesh.inject((0, 0), a)
        mesh.inject((0, 0), b)
        got = drain(mesh, [(0, 3)], 30)
        assert len(got) == 2
        times = sorted(p.delivered for p in got)
        # the second head flit waits ~5 cycles at each shared link
        assert times[1] >= times[0] + 4

    def test_injection_backpressure(self):
        mesh = WormholeMesh(2, 2, queue_depth=1)
        assert mesh.inject((0, 0), Packet(src=(0, 0), dest=(1, 1)))
        assert not mesh.inject((0, 0), Packet(src=(0, 0), dest=(1, 1)))
        assert mesh.stats.inject_stalls == 1

    def test_round_robin_fairness(self):
        mesh = WormholeMesh(3, 3)
        # north and west neighbours both stream packets through (1,1) east
        pending = []
        for i in range(4):
            pending.append(((1, 0), Packet(src=(1, 0), dest=(1, 2))))
            pending.append(((0, 1), Packet(src=(0, 1), dest=(1, 2))))
        got = []
        for _ in range(40):
            pending = [(n, p) for n, p in pending if not mesh.inject(n, p)]
            mesh.step()
            got.extend(mesh.take_delivered((1, 2)))
        assert len(got) == 8
        by_src = {}
        for p in got:
            by_src.setdefault(p.src, []).append(p.delivered)
        # neither source is starved: deliveries interleave
        assert max(by_src[(1, 0)]) - min(by_src[(0, 1)]) < 12


class TestConservation:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(0, 4), st.integers(0, 4),
                  st.integers(0, 4), st.integers(0, 4)),
        min_size=1, max_size=30))
    def test_every_injected_packet_is_delivered_exactly_once(self, routes):
        mesh = WormholeMesh(5, 5, queue_depth=4)
        packets = []
        for sr, sc, dr, dc in routes:
            pkt = Packet(src=(sr, sc), dest=(dr, dc), payload=len(packets))
            if mesh.inject((sr, sc), pkt):
                packets.append(pkt)
        nodes = [(r, c) for r in range(5) for c in range(5)]
        got = drain(mesh, nodes, 200)
        assert sorted(p.payload for p in got) == sorted(
            p.payload for p in packets)
        for p in got:
            assert p.delivered - p.injected >= p.min_latency
            assert p.hops == p.min_latency  # dimension order: minimal route

    def test_stats_consistency(self):
        mesh = WormholeMesh(5, 5)
        sent = 0
        got = []
        for cycle in range(100):
            if sent < 10 and mesh.inject(
                    (0, 0), Packet(src=(0, 0), dest=(4, 4))):
                sent += 1
            mesh.step()
            got.extend(mesh.take_delivered((4, 4)))
        assert sent == 10 and len(got) == 10
        assert mesh.stats.delivered == mesh.stats.injected == 10
        assert mesh.stats.total_hops == 10 * 8

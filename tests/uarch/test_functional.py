"""Tests for tsim-arch, the functional block-dataflow simulator.

These tests execute hand-written assembly, including the paper's Figure 5a
example, checking dataflow firing rules, predication/null-token semantics,
LSID-ordered memory, and block-atomic commit.
"""

import pytest

from repro.asm import assemble
from repro.tir import bits_to_int
from repro.uarch import FunctionalSim, SimError


def run(text):
    sim = FunctionalSim(assemble(text))
    sim.run()
    return sim


class TestStraightLine:
    def test_movi_write(self):
        sim = run(""".block main
    W[0] write R4
    N[0] movi #42 W[0]
    N[1] halt exit0
""")
        assert sim.regs[4] == 42

    def test_arith_chain(self):
        sim = run(""".block main
    W[0] write R4
    N[0] movi #6 N[2,L]
    N[1] movi #7 N[2,R]
    N[2] mul N[3,L]
    N[3] addi #1 W[0]
    N[4] halt exit0
""")
        assert sim.regs[4] == 43

    def test_read_forwards_register(self):
        sim = run(""".reg R8 = 100
.block main
    R[0]  read R8 N[0,L]
    W[8]  write R9
    N[0]  addi #11 W[8]
    N[1]  halt exit0
""")
        assert sim.regs[9] == 111

    def test_wide_constant_synthesis(self):
        # movi/movih chain builds 0x12345678.
        sim = run(""".block main
    W[0] write R4
    N[0] movi #0x1234 N[1,L]
    N[1] movih #0x5678 W[0]
    N[2] halt exit0
""")
        assert sim.regs[4] == 0x12345678

    def test_block_atomicity_reads_see_old_values(self):
        # Both reads of R4 see the pre-block value even though the block
        # also writes R4.
        sim = run(""".reg R4 = 5
.block main
    R[0]  read R4 N[0,L] N[1,L]
    W[8]  write R5
    W[0]  write R4
    N[0]  addi #1 W[0]
    N[1]  addi #2 W[8]
    N[2]  halt exit0
""")
        assert sim.regs[4] == 6
        assert sim.regs[5] == 7


class TestFig5aPredication:
    """The paper's Figure 5a block, with an added base-address read.

    teq(R4, 0) produces a predicate.  On false (R4 != 0) the predicated
    path muli -> add base -> lw -> mov feeds the store's address and data;
    on true the null instruction feeds both store operands, nullifying it.
    The store fires either way, keeping the output count constant.
    """

    TEMPLATE = """.reg R4 = {r4}
.data mem 0, 0, 0, 0, 0, 0, 0, 0, 9, 0, 0, 0, 0, 0, 0, 0
.reg R8 = &mem
.block fig5a
    R[0]  read R4 N[1,L] N[2,L]
    R[1]  read R8 N[4,L]
    N[0]  movi #0 N[1,R]
    N[1]  teq N[2,P] N[3,P]
    N[2]  muli_f #4 N[4,R]
    N[3]  null_t N[34,L] N[34,R]
    N[4]  add N[32,L]
    N[32] ld L[0] #0 N[33,L]
    N[33] mov N[34,L] N[34,R]
    N[34] sd L[1] #0
    N[35] callo exit0 @func1
.block func1
    N[0]  bro exit0 @exit
"""

    def test_false_path_load_store(self):
        # R4 = 2 (non-zero): teq -> 0, predicated-false path fires.
        # Load address = &mem + 2*4 = mem[8..15] = 9; the loaded value (9)
        # fans out to both the store's address and data, so mem[9] = 9.
        sim = run(self.TEMPLATE.format(r4=2))
        assert sim.memory.read(9, 8) == 9
        assert sim.stats.nullified_outputs == 0
        assert sim.stats.blocks == 2

    def test_true_path_nullifies_store(self):
        sim = run(self.TEMPLATE.format(r4=0))
        # teq 0,0 -> 1: null fires, store is nullified: memory unchanged.
        assert sim.memory.read(9, 8) == 0
        assert sim.stats.nullified_outputs >= 1
        # The block still completed (store LSID signalled) and branched.
        assert sim.stats.blocks == 2

    def test_exactly_one_path_fires(self):
        taken = run(self.TEMPLATE.format(r4=0))    # true path: null
        not_taken = run(self.TEMPLATE.format(r4=2))  # false path: 4 insts
        # true path fires: movi teq null sd callo (+1 block for func1's bro)
        # false path fires: movi teq muli add ld mov sd callo (+func1)
        assert not_taken.stats.fired - taken.stats.fired == 3
        assert taken.stats.loads == 0
        assert not_taken.stats.loads == 1


class TestControlFlow:
    def test_loop_sums_to_ten(self):
        # Single-block loop: R4 counts 4..1, R5 accumulates old R4.
        sim = run(""".reg R4 = 4
.block loop
    R[0]  read R4 N[2,L] N[4,L]
    R[8]  read R5 N[1,L]
    W[0]  write R4
    W[8]  write R5
    N[2]  mov N[0,L] N[1,R]
    N[0]  subi #1 W[0]
    N[1]  add W[8]
    N[4]  tgti #1 N[7,L]
    N[7]  mov N[5,P] N[6,P]
    N[5]  bro_t exit0 @loop
    N[6]  bro_f exit1 @exit
""")
        assert bits_to_int(sim.regs[5]) == 4 + 3 + 2 + 1
        assert sim.stats.blocks == 4
        assert sim.stats.branches_by_exit == {0: 3, 1: 1}

    def test_callo_link_value(self):
        sim = run(""".block main
    W[0] write R4
    N[0] callo exit0 @callee W[0]
.block callee
    N[0] halt exit0
""")
        # link = address after main = entry + 256 (header + 1 chunk)
        entry = 0x1000
        assert sim.regs[4] == entry + 256

    def test_ret_via_operand(self):
        # main is header + 1 body chunk = 256 bytes, so "pad" sits at 0x1100.
        sim = run(""".reg R4 = 0x1100
.block main
    R[0] read R4 N[0,L]
    N[0] ret exit0
.block pad
    N[0] halt exit0
""")
        assert sim.stats.blocks == 2
        assert sim.halted


class TestMemoryOrdering:
    def test_store_to_load_forwarding_in_block(self):
        # Store LSID 0 then load LSID 1 from the same address.
        sim = run(""".reg R8 = 0x3000
.block main
    R[0] read R8 N[0,L] N[2,L]
    W[8] write R9
    N[0] mov N[1,L]
    N[1] sd L[0] #0
    N[3] movi #77 N[1,R]
    N[2] ld L[1] #0 W[8]
    N[4] halt exit0
""")
        assert sim.regs[9] == 77

    def test_narrow_store_load(self):
        sim = run(""".reg R8 = 0x3000
.block main
    R[0] read R8 N[0,L] N[2,L]
    W[8] write R9
    N[0] mov N[1,L]
    N[1] sb L[0] #0
    N[3] movi #0x1FF N[1,R]
    N[2] lb L[1] #0 W[8]
    N[4] halt exit0
""")
        # sb stores 0xFF; lb sign-extends -> -1
        assert bits_to_int(sim.regs[9]) == -1


class TestErrors:
    def test_missing_branch_deadlocks(self):
        text = """.block main
    W[0] write R4
    N[0] movi #1 W[0]
    N[1] halt exit0
"""
        # sabotage: replace the halt with an instruction that waits forever
        bad = text.replace("halt exit0", "mov W[0]")
        with pytest.raises(Exception):
            run(bad)

    def test_double_operand_delivery_rejected(self):
        with pytest.raises(SimError, match="twice"):
            run(""".block main
    N[0] movi #1 N[2,L]
    N[1] movi #2 N[2,L]
    N[2] mov
    N[3] halt exit0
""")

    def test_block_budget(self):
        prog = assemble(""".block spin
    N[0] bro exit0 @spin
""")
        sim = FunctionalSim(prog, max_blocks=10)
        with pytest.raises(SimError, match="budget"):
            sim.run()

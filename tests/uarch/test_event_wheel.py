"""Event-wheel scheduler equivalence: full-matrix, byte-identical stats.

``TripsConfig.event_wheel`` replaces the per-cycle activity scan with a
per-component calendar (timed events, express-arrival wakeups, deferred
loads, DRAM completions).  It must be cycle-for-cycle identical to the
activity-gated fast engine — which in turn matches the original
full-scan engine (tests/uarch/test_fast_path.py).  These tests compare
the complete ``ProcStats`` record across the whole workload matrix, plus
NUCA, the dual-core chip, and telemetry-on runs where each tile's
busy + stall + idle taxonomy must still sum exactly to the cycle count.
"""

import pytest

from repro.compiler import compile_tir
from repro.uarch.config import TripsConfig
from repro.uarch.proc import TripsProcessor
from repro.workloads import get_workload
from repro.workloads.registry import HAND_OPTIMIZED, workload_names

_CASES = [(name, "tcc") for name in workload_names()] + \
         [(name, "hand") for name in workload_names()
          if name in HAND_OPTIMIZED]


def _run(program, telemetry=False, **overrides):
    proc = TripsProcessor(program, config=TripsConfig(**overrides),
                          telemetry=telemetry)
    stats = proc.run()
    return proc, stats


@pytest.mark.parametrize("name,level", _CASES,
                         ids=[f"{n}-{lv}" for n, lv in _CASES])
def test_wheel_matches_activity_gated_engine(name, level):
    program = compile_tir(get_workload(name), level=level).program
    _, wheel = _run(program, fast_path=True, event_wheel=True)
    _, gated = _run(program, fast_path=True, event_wheel=False)
    assert wheel.to_dict() == gated.to_dict()


@pytest.mark.parametrize("name", ["vadd", "sha"])
def test_wheel_matches_under_nuca(name):
    program = compile_tir(get_workload(name), level="hand").program
    _, wheel = _run(program, fast_path=True, event_wheel=True,
                    perfect_l2=False)
    _, gated = _run(program, fast_path=True, event_wheel=False,
                    perfect_l2=False)
    assert wheel.to_dict() == gated.to_dict()


def test_wheel_matches_on_dual_core_chip():
    from repro.chip import TripsChip
    from repro.tir import Assign, For, TirProgram, V

    p0 = compile_tir(get_workload("vadd"), level="hand",
                     base=0x1000, data_base=0x100000)
    prog1 = TirProgram(
        "adder", scalars={"acc": 0},
        body=[For("i", 0, 20, 1, [Assign("acc", V("acc") + V("i"))])],
        outputs=["acc"])
    p1 = compile_tir(prog1, level="hand", base=0x40000, data_base=0x180000)

    def run_chip(wheel):
        config = TripsConfig(fast_path=True, event_wheel=wheel)
        chip = TripsChip(p0.program, p1.program, config=config)
        stats = chip.run()
        return ([core.to_dict() for core in stats.per_core],
                chip.cycle, stats.ocn_requests)

    assert run_chip(True) == run_chip(False)


@pytest.mark.parametrize("name", ["vadd", "matrix"])
def test_wheel_telemetry_taxonomy_still_sums(name):
    """Fast-forwarded stretches under the wheel are accounted as
    idle/passive spans: per-tile totals must sum to ProcStats.cycles."""
    program = compile_tir(get_workload(name), level="hand").program
    proc, stats = _run(program, telemetry=True, fast_path=True,
                       event_wheel=True)
    summary = proc.tel.summary()
    assert summary.cycles == stats.cycles
    assert len(summary.tiles) == 25
    for tile, totals in summary.tiles.items():
        assert sum(totals.values()) == stats.cycles, \
            f"{tile}: {totals} != {stats.cycles}"

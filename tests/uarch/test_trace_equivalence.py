"""Trace collection must be engine-invariant.

``trace=True`` runs on the fast-path engine must record *identical*
event streams to the ``fast_path=False`` escape hatch: every InstEvent
(timestamps, release tuples, memory-latency splits) and every
BlockEvent (lifecycle timestamps, causes, outcomes).  This is stronger
than the ProcStats equivalence of ``test_fast_path.py`` — it pins the
per-instruction microarchitectural history the critical-path analyzer
consumes.
"""

from dataclasses import asdict

import pytest

from repro.compiler import compile_tir
from repro.uarch.config import TripsConfig
from repro.uarch.proc import TripsProcessor
from repro.workloads import get_workload

CASES = [("vadd", "hand"), ("sha", "hand"), ("qr", "hand"),
         ("genalg", "hand"), ("tblook01", "hand"), ("mcf", "tcc")]


def _trace(program, **overrides):
    proc = TripsProcessor(program, config=TripsConfig(**overrides),
                          trace=True)
    proc.run()
    return proc.trace


def _assert_traces_equal(fast, slow):
    assert fast.final_block_uid == slow.final_block_uid
    assert set(fast.blocks) == set(slow.blocks)
    for uid, fast_block in fast.blocks.items():
        assert asdict(fast_block) == asdict(slow.blocks[uid]), \
            f"BlockEvent {uid} diverges"
    assert set(fast.insts) == set(slow.insts)
    for key, fast_event in fast.insts.items():
        assert asdict(fast_event) == asdict(slow.insts[key]), \
            f"InstEvent {key} diverges"


@pytest.mark.parametrize("name,level", CASES,
                         ids=[f"{n}-{lv}" for n, lv in CASES])
def test_trace_identical_both_engines(name, level):
    program = compile_tir(get_workload(name), level=level).program
    fast = _trace(program, fast_path=True)
    slow = _trace(program, fast_path=False)
    _assert_traces_equal(fast, slow)


@pytest.mark.parametrize("name", ["vadd", "sha"])
def test_trace_identical_both_engines_nuca(name):
    """NUCA runs fill InstEvent.mem_* from the detailed memory path."""
    program = compile_tir(get_workload(name), level="hand").program
    fast = _trace(program, fast_path=True, perfect_l2=False)
    slow = _trace(program, fast_path=False, perfect_l2=False)
    _assert_traces_equal(fast, slow)

"""Fast-path engine equivalence: every workload, byte-identical stats.

The fast-path cycle engine (active-set mesh stepping, pending-set
deliveries, activity-gated tile ticks, idle-cycle fast-forward) must be
*cycle-for-cycle identical* to the original engine that
``TripsConfig.fast_path=False`` preserves.  These tests compare the full
``ProcStats`` record — cycle counts, flush counts, network statistics,
everything — for every registered workload at both code levels, plus the
NUCA memory-system configuration and the dual-core chip.
"""

import pytest

from repro.chip import TripsChip
from repro.compiler import compile_tir
from repro.uarch.config import TripsConfig
from repro.uarch.proc import TripsProcessor
from repro.workloads import get_workload
from repro.workloads.registry import HAND_OPTIMIZED, workload_names

_CASES = [(name, "tcc") for name in workload_names()] + \
         [(name, "hand") for name in workload_names()
          if name in HAND_OPTIMIZED]


def _run(program, **overrides):
    proc = TripsProcessor(program, config=TripsConfig(**overrides))
    return proc.run().to_dict()


@pytest.mark.parametrize("name,level", _CASES,
                         ids=[f"{n}-{lv}" for n, lv in _CASES])
def test_stats_identical_both_engines(name, level):
    program = compile_tir(get_workload(name), level=level).program
    fast = _run(program, fast_path=True)
    slow = _run(program, fast_path=False)
    assert fast == slow


@pytest.mark.parametrize("name", ["vadd", "sha"])
def test_nuca_stats_identical_both_engines(name):
    """perfect_l2=False exercises the OCN + fast-forward to fills."""
    program = compile_tir(get_workload(name), level="hand").program
    fast = _run(program, fast_path=True, perfect_l2=False)
    slow = _run(program, fast_path=False, perfect_l2=False)
    assert fast == slow


def test_chip_dual_core_identical_both_engines():
    from repro.tir import Assign, For, TirProgram, V

    p0 = compile_tir(get_workload("vadd"), level="hand",
                     base=0x1000, data_base=0x100000)
    prog1 = TirProgram(
        "adder", scalars={"acc": 0},
        body=[For("i", 0, 20, 1, [Assign("acc", V("acc") + V("i"))])],
        outputs=["acc"])
    p1 = compile_tir(prog1, level="hand", base=0x40000, data_base=0x180000)

    def run_chip(fast_path):
        config = TripsConfig(fast_path=fast_path)
        chip = TripsChip(p0.program, p1.program, config=config)
        stats = chip.run()
        return ([core.to_dict() for core in stats.per_core],
                chip.cycle, stats.ocn_requests)

    assert run_chip(True) == run_chip(False)


def test_fast_path_deterministic():
    """Back-to-back fast-path runs produce identical stats."""
    program = compile_tir(get_workload("qr"), level="hand").program
    assert _run(program, fast_path=True) == _run(program, fast_path=True)

"""Active-set mesh stepping vs. a full-scan reference model.

The fast-path ``WormholeMesh.step()`` only visits routers whose input
FIFOs hold packets; ``active_set=False`` is the original algorithm that
scans the whole grid every cycle.  The two must be cycle-for-cycle
identical: same packets delivered at the same coordinates on the same
cycles, with the same hop counts, queueing delays and aggregate stats.

This drives both engines with identical randomized traffic (seeded, so
failures replay) across VC counts, lane counts and the two production
geometries (5x5 OPN, 4x10 OCN with 4 VCs).
"""

import random

import pytest

from repro.uarch.mesh import Packet, WormholeMesh


def _make_pair(rows, cols, vcs, lanes, queue_depth=2):
    fast = WormholeMesh(rows, cols, vcs=vcs, queue_depth=queue_depth,
                        lanes=lanes, active_set=True)
    slow = WormholeMesh(rows, cols, vcs=vcs, queue_depth=queue_depth,
                        lanes=lanes, active_set=False)
    return fast, slow


def _drive(fast, slow, rows, cols, vcs, seed, cycles, inject_prob,
           burst=3):
    """Inject identical random traffic into both meshes; compare per cycle."""
    rng = random.Random(seed)
    coords = [(r, c) for r in range(rows) for c in range(cols)]
    pending = []          # mirrored offers: (src, fast packet, slow packet)
    delivered = 0
    for cycle in range(cycles):
        # offer the same packets to both meshes (retrying refusals, which
        # must match: inject acceptance depends only on FIFO occupancy)
        offers = list(pending)
        pending.clear()
        if rng.random() < inject_prob:
            for _ in range(rng.randrange(1, burst + 1)):
                src = rng.choice(coords)
                dest = rng.choice(coords)
                while dest == src:
                    dest = rng.choice(coords)
                vc = rng.randrange(vcs)
                flits = rng.choice((1, 1, 1, 5))
                offers.append((src,
                               Packet(src=src, dest=dest, vc=vc,
                                      flits=flits, payload=cycle),
                               Packet(src=src, dest=dest, vc=vc,
                                      flits=flits, payload=cycle)))
        for src, fpkt, spkt in offers:
            took_fast = fast.inject(src, fpkt)
            took_slow = slow.inject(src, spkt)
            assert took_fast == took_slow, \
                f"inject acceptance diverged at cycle {cycle} from {src}"
            if not took_fast:
                pending.append((src, fpkt, spkt))
        fast.step()
        slow.step()
        assert fast.cycle_count == slow.cycle_count
        for node in coords:
            got_fast = fast.take_delivered(node)
            got_slow = slow.take_delivered(node)
            key = lambda p: (p.payload, p.src, p.dest, p.vc, p.flits,
                             p.created, p.injected, p.delivered, p.hops,
                             p.queue_cycles)
            assert [key(p) for p in got_fast] == \
                   [key(p) for p in got_slow], \
                f"deliveries diverged at {node}, cycle {cycle}"
            delivered += len(got_fast)
    assert vars(fast.stats) == vars(slow.stats)
    return delivered


@pytest.mark.parametrize("seed", range(6))
def test_opn_geometry_matches_full_scan(seed):
    """5x5 single-VC single-lane (the OPN) under moderate load."""
    fast, slow = _make_pair(5, 5, vcs=1, lanes=1)
    n = _drive(fast, slow, 5, 5, vcs=1, seed=seed, cycles=240,
               inject_prob=0.7)
    assert n > 0


@pytest.mark.parametrize("seed", range(4))
@pytest.mark.parametrize("vcs", [2, 4])
def test_virtual_channels_match_full_scan(seed, vcs):
    """Multi-VC arbitration (the OCN runs 4 VCs) stays identical."""
    fast, slow = _make_pair(4, 10, vcs=vcs, lanes=1)
    n = _drive(fast, slow, 4, 10, vcs=vcs, seed=100 + seed, cycles=240,
               inject_prob=0.6)
    assert n > 0


@pytest.mark.parametrize("seed", range(4))
def test_multi_lane_matches_full_scan(seed):
    """Two output lanes per port: round-robin grants stay identical."""
    fast, slow = _make_pair(5, 5, vcs=2, lanes=2)
    n = _drive(fast, slow, 5, 5, vcs=2, seed=200 + seed, cycles=240,
               inject_prob=0.8)
    assert n > 0


@pytest.mark.parametrize("seed", range(3))
def test_saturating_load_matches_full_scan(seed):
    """Every-cycle bursts overflow FIFOs; refusal/retry behaviour matches."""
    fast, slow = _make_pair(5, 5, vcs=1, lanes=1, queue_depth=1)
    n = _drive(fast, slow, 5, 5, vcs=1, seed=300 + seed, cycles=300,
               inject_prob=1.0, burst=5)
    assert n > 0


def test_sparse_traffic_exercises_idle_shortcut():
    """Long quiescent stretches: the active-set early-out stays in sync."""
    fast, slow = _make_pair(5, 5, vcs=1, lanes=1)
    n = _drive(fast, slow, 5, 5, vcs=1, seed=42, cycles=400,
               inject_prob=0.05)
    assert n > 0
    assert fast.is_idle() == slow.is_idle()

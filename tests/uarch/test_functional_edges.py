"""Edge cases for the functional simulator and supporting pieces."""

import pytest

from repro.asm import assemble
from repro.isa import Program, ProgramBuilder, TripsBlock, make
from repro.uarch import FunctionalSim, SimError
from repro.uarch.mesh import Packet, WormholeMesh


class TestFunctionalEdges:
    def test_null_poisons_arithmetic_chain(self):
        # null -> add -> mov -> write: the write arrives nullified
        sim = FunctionalSim(assemble(""".reg R4 = 9
.block main
    R[0] read R4 N[5,L]
    W[0] write R4
    N[0] teqi #1 N[4,L]
    N[5] mov N[0,L] N[6,L]
    N[4] mov N[1,P] N[6,P]
    N[1] null_t N[3,L]
    N[6] mov_f N[3,L]
    N[3] addi #1 W[0]
    N[7] halt exit0
"""))
        sim.run()
        # R4 == 9 -> teqi 9==1 false -> mov_f forwards 9 -> R4 = 10
        assert sim.regs[4] == 10

    def test_divide_by_zero_defined(self):
        sim = FunctionalSim(assemble(""".block main
    W[0] write R4
    N[0] movi #5 N[2,L]
    N[1] movi #0 N[2,R]
    N[2] divs W[0]
    N[3] halt exit0
"""))
        sim.run()
        assert sim.regs[4] == 0           # defined: x/0 == 0

    def test_predicated_branch_pair_one_fires(self):
        for r4, blocks in ((0, 1), (1, 2)):
            sim = FunctionalSim(assemble(f""".reg R4 = {r4}
.block main
    R[0] read R4 N[0,L]
    N[0] teqi #1 N[3,L]
    N[3] mov N[1,P] N[2,P]
    N[1] bro_t exit0 @extra
    N[2] bro_f exit1 @exit
.block extra
    N[0] bro exit0 @exit
"""))
            sim.run()
            assert sim.stats.blocks == blocks

    def test_listing_and_memory_image(self):
        prog = assemble(""".entry main
.block main
    N[0] halt exit0
""")
        text = prog.listing()
        assert "halt" in text and "main" in text
        image = prog.memory_image()
        assert sum(len(v) for v in image.values()) >= 256


class TestMeshColumnFirst:
    def test_col_first_routing_delivers(self):
        mesh = WormholeMesh(4, 4, route_order="col_first")
        pkt = Packet(src=(0, 0), dest=(3, 3))
        mesh.inject((0, 0), pkt)
        for _ in range(10):
            mesh.step()
        got = mesh.take_delivered((3, 3))
        assert got == [pkt]
        assert pkt.hops == 6

    def test_bad_route_order_rejected(self):
        with pytest.raises(ValueError):
            WormholeMesh(2, 2, route_order="diagonal")


class TestProgramBuilderEdges:
    def test_branch_offset_resolution_backward(self):
        pb = ProgramBuilder(base=0x1000)
        blk_a = TripsBlock()
        fwd = make("bro")
        fwd.label = "b"
        blk_a.body[0] = fwd
        pb.append(blk_a, label="a")
        blk_b = TripsBlock()
        back = make("bro")
        back.label = "a"
        blk_b.body[0] = back
        pb.append(blk_b, label="b")
        prog = pb.finish()
        a, b = prog.labels["a"], prog.labels["b"]
        assert a + prog.blocks[a].body[0].offset == b
        assert b + prog.blocks[b].body[0].offset == a

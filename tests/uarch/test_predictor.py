"""Unit tests for the next-block predictor (exit + target prediction)."""

import pytest

from repro.uarch.config import PredictorConfig
from repro.uarch.predictor import (
    BT_BRANCH,
    BT_CALL,
    BT_RETURN,
    NextBlockPredictor,
)

A, B, C = 0x1000, 0x2000, 0x3000


def train_steadily(pred, addr, exit_no, target, btype=BT_BRANCH, times=8):
    for _ in range(times):
        p = pred.predict(addr, addr + 0x100)
        pred.train(addr, exit_no, target, btype, p.exit_no, p.target,
                   pred.lht[(addr >> 7) % pred.n_lht])


class TestExitPrediction:
    def test_learns_a_constant_exit(self):
        pred = NextBlockPredictor()
        train_steadily(pred, A, exit_no=3, target=B)
        assert pred.predict(A, A + 0x100).exit_no == 3

    def test_learns_targets_per_exit(self):
        pred = NextBlockPredictor()
        train_steadily(pred, A, exit_no=1, target=B)
        p = pred.predict(A, A + 0x100)
        assert p.target == B

    def test_static_kind_never_trains(self):
        pred = NextBlockPredictor(PredictorConfig(kind="static"))
        train_steadily(pred, A, exit_no=2, target=B)
        p = pred.predict(A, A + 0x100)
        assert p.exit_no == 0
        assert p.target == A + 0x100       # fallthrough

    def test_mispredict_counters(self):
        pred = NextBlockPredictor()
        p = pred.predict(A, A + 0x100)
        pred.train(A, (p.exit_no + 1) % 8, B, BT_BRANCH, p.exit_no,
                   p.target, 0)
        assert pred.exit_mispredicts == 1
        assert pred.target_mispredicts == 1


class TestRas:
    def test_call_then_return(self):
        pred = NextBlockPredictor()
        # teach it A is a call and B is a return
        train_steadily(pred, A, exit_no=0, target=C, btype=BT_CALL)
        train_steadily(pred, B, exit_no=0, target=A + 0x100,
                       btype=BT_RETURN)
        link = A + 0x100
        p_call = pred.predict(A, link)       # pushes link
        p_ret = pred.predict(B, B + 0x100)   # pops it
        assert p_call.target == C
        assert p_ret.target == link

    def test_checkpoint_restores_ras(self):
        pred = NextBlockPredictor()
        train_steadily(pred, A, exit_no=0, target=C, btype=BT_CALL)
        top_before = pred.ras_top
        saved = list(pred.ras)
        p = pred.predict(A, A + 0x100)
        assert pred.ras_top != top_before
        pred.restore(p.checkpoint)
        assert pred.ras_top == top_before
        assert pred.ras == saved


class TestCheckpoints:
    def test_history_restore(self):
        pred = NextBlockPredictor()
        train_steadily(pred, A, exit_no=5, target=B)   # nonzero exit
        ghist_before = pred.ghist
        p = pred.predict(A, A + 0x100)
        assert p.exit_no == 5
        assert pred.ghist != ghist_before
        pred.restore(p.checkpoint)
        assert pred.ghist == ghist_before

    def test_note_actual_pushes(self):
        pred = NextBlockPredictor()
        pred.note_actual(A >> 7, 5)
        assert pred.ghist & 0x7 == 5


class TestSizing:
    def test_budgets_respected(self):
        pred = NextBlockPredictor()
        cfg = pred.config
        assert pred.local.entries * 5 <= cfg.local_bits
        assert pred.gshare.entries * 5 <= cfg.global_bits
        assert pred.n_choice * 2 <= cfg.choice_bits
        assert pred.n_btb * 32 <= cfg.btb_bits
